//! A small application kernel on top of the MPI-like API: a 1-D domain
//! decomposition of a heat-diffusion stencil with halo exchange via
//! point-to-point messages and a global residual via allreduce — the kind of
//! workload whose collective phases the paper accelerates.
//!
//! ```text
//! cargo run --release --example halo_exchange
//! ```

use pip_mcoll::core::prelude::*;

const CELLS_PER_RANK: usize = 64;
const STEPS: usize = 50;

fn main() {
    let results = World::builder()
        .nodes(2)
        .ppn(4)
        .library(Library::PipMColl)
        .run(|comm| {
            let rank = comm.rank();
            let size = comm.size();
            // Local domain with one ghost cell on each side.
            let mut u = vec![0.0f64; CELLS_PER_RANK + 2];
            // Initial condition: a spike in the middle of the global domain.
            let global_mid = size * CELLS_PER_RANK / 2;
            for i in 0..CELLS_PER_RANK {
                let gi = rank * CELLS_PER_RANK + i;
                if gi == global_mid {
                    u[i + 1] = 1000.0;
                }
            }

            let mut residual = 0.0;
            for step in 0..STEPS {
                // Halo exchange with neighbours (non-periodic boundaries).
                let tag = step as u64;
                if rank + 1 < size {
                    let got = comm.sendrecv(rank + 1, &[u[CELLS_PER_RANK]], rank + 1, 1, tag);
                    u[CELLS_PER_RANK + 1] = got[0];
                }
                if rank > 0 {
                    let got = comm.sendrecv(rank - 1, &[u[1]], rank - 1, 1, tag);
                    u[0] = got[0];
                }

                // Jacobi update.
                let mut next = u.clone();
                let mut local_residual = 0.0;
                for i in 1..=CELLS_PER_RANK {
                    next[i] = u[i] + 0.25 * (u[i - 1] - 2.0 * u[i] + u[i + 1]);
                    local_residual += (next[i] - u[i]).abs();
                }
                u = next;

                // Global residual via allreduce.
                let mut acc = [local_residual];
                comm.allreduce(&mut acc, ReduceOp::Sum);
                residual = acc[0];
            }

            // Total heat must be conserved (up to boundary losses): check
            // with a second allreduce.
            let mut heat = [u[1..=CELLS_PER_RANK].iter().sum::<f64>()];
            comm.allreduce(&mut heat, ReduceOp::Sum);
            (residual, heat[0])
        })
        .expect("halo exchange ran");

    let (residual, heat) = results[0];
    for &(r, h) in &results {
        assert!(
            (r - residual).abs() < 1e-9,
            "ranks disagree on the residual"
        );
        assert!((h - heat).abs() < 1e-9, "ranks disagree on the total heat");
    }
    println!("halo_exchange: {STEPS} steps on {} ranks", results.len());
    println!("final global residual: {residual:.6}");
    println!("total heat (conserved): {heat:.3}");
    assert!(heat > 990.0 && heat <= 1000.0 + 1e-9);
}
