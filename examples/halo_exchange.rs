//! A 2-D application kernel on top of the MPI-like API: a Jacobi
//! heat-diffusion stencil on a PX × PY process grid, exercising the two
//! features real stencil codes lean on:
//!
//! * **derived datatypes** — the east/west halos are *columns* of the
//!   row-major tile, exchanged in place with [`Layout::vector`]-shaped
//!   strided sends that pick every `C + 2`-th element (the
//!   `MPI_Type_vector` idiom); the north/south halos are contiguous rows
//!   and use the plain point-to-point calls;
//! * **a user-defined operator** — the global residual is the
//!   absolute-value maximum of the per-cell update deltas, reduced with a
//!   registered `(f64, abs-max)` operator ([`Op::of_typed`], the
//!   `MPI_Op_create` idiom) rather than a builtin.
//!
//! Every rank's tile and the reduced residual are checked against a
//! sequential oracle that runs the identical update on the undecomposed
//! global grid — cell for cell, the distributed run must reproduce it
//! exactly.
//!
//! ```text
//! cargo run --release --example halo_exchange
//! ```

use pip_mcoll::core::prelude::*;

/// Process grid: PX × PY ranks on 2 nodes × 4 processes.
const PX: usize = 4;
const PY: usize = 2;
/// Interior tile size per rank: R rows × C cols (deliberately non-square).
const R: usize = 6;
const C: usize = 5;
const STEPS: usize = 25;

/// Index into a row-major grid with a one-cell ghost ring.
fn idx(row: usize, col: usize, width: usize) -> usize {
    row * (width + 2) + col
}

/// One Jacobi update over the interior of a ghost-ringed grid; returns
/// (next grid, max |delta|).  Shared verbatim by the distributed tiles and
/// the sequential oracle so their arithmetic is identical.
fn jacobi_step(u: &[f64], rows: usize, cols: usize) -> (Vec<f64>, f64) {
    let mut next = u.to_vec();
    let mut max_delta = 0.0f64;
    for r in 1..=rows {
        for c in 1..=cols {
            let here = u[idx(r, c, cols)];
            let neighbours = u[idx(r - 1, c, cols)]
                + u[idx(r + 1, c, cols)]
                + u[idx(r, c - 1, cols)]
                + u[idx(r, c + 1, cols)];
            let updated = here + 0.25 * (neighbours - 4.0 * here);
            next[idx(r, c, cols)] = updated;
            max_delta = max_delta.max((updated - here).abs());
        }
    }
    (next, max_delta)
}

/// The sequential oracle: the same stencil on the undecomposed global grid
/// (ghost ring pinned at zero — Dirichlet boundaries).  Returns the final
/// grid and the final step's residual.
fn sequential_oracle() -> (Vec<f64>, f64) {
    let (width, height) = (PX * C, PY * R);
    let mut g = vec![0.0f64; (height + 2) * (width + 2)];
    g[idx(height / 2 + 1, width / 2 + 1, width)] = 1000.0;
    let mut residual = 0.0;
    for _ in 0..STEPS {
        let (next, delta) = jacobi_step(&g, height, width);
        g = next;
        residual = delta;
    }
    (g, residual)
}

fn main() {
    let results = World::builder()
        .nodes(2)
        .ppn(PX * PY / 2)
        .library(Library::PipMColl)
        .run(|comm| {
            let rank = comm.rank();
            assert_eq!(comm.size(), PX * PY, "the process grid must fill the world");
            let (cx, cy) = (rank % PX, rank / PX);
            let west = (cx > 0).then(|| rank - 1);
            let east = (cx + 1 < PX).then(|| rank + 1);
            let north = (cy > 0).then(|| rank - PX);
            let south = (cy + 1 < PY).then(|| rank + PX);

            // Local tile with a one-cell ghost ring, row-major.
            let mut u = vec![0.0f64; (R + 2) * (C + 2)];
            let (width, height) = (PX * C, PY * R);
            let (gx_mid, gy_mid) = (width / 2, height / 2);
            for r in 1..=R {
                for c in 1..=C {
                    if (cy * R + r - 1, cx * C + c - 1) == (gy_mid, gx_mid) {
                        u[idx(r, c, C)] = 1000.0;
                    }
                }
            }

            // A column of the interior: R single-element blocks, one per
            // row, stride = the padded row width.  This is
            // MPI_Type_vector(R, 1, C + 2) — the wire carries the packed
            // column, the receiver scatters it into its ghost column.
            let column = Layout::vector(R, 1, C + 2);

            // The residual operator: |x| vs |y| maximum over f64, a
            // registered user operator with its own plan-cache identity.
            let abs_max = Op::of_typed::<f64>(|x, y| if x.abs() >= y.abs() { x } else { y });

            let mut residual = 0.0;
            for step in 0..STEPS {
                // One tag per (step, axis); both ends of an exchange must
                // use the same tag, and messages are matched by (source,
                // tag), so west and east traffic share the axis tag safely.
                let tag = 2 * step as u64;

                // East/west: strided column halos, in place.  The send
                // column is copied out first because the receive column of
                // the same tile overlaps it element-wise in memory.
                for (peer, send_col, ghost_col) in [(west, 1, 0), (east, C, C + 1)] {
                    if let Some(peer) = peer {
                        let start = idx(1, send_col, C);
                        let outgoing = u[start..start + column.extent()].to_vec();
                        let ghost = idx(1, ghost_col, C);
                        comm.sendrecv_strided(
                            peer,
                            &outgoing,
                            column,
                            peer,
                            column,
                            &mut u[ghost..ghost + column.extent()],
                            tag,
                        );
                    }
                }
                // North/south: rows are contiguous, plain sendrecv.
                for (peer, send_row, ghost_row) in [(north, 1, 0), (south, R, R + 1)] {
                    if let Some(peer) = peer {
                        let row = u[idx(send_row, 1, C)..=idx(send_row, C, C)].to_vec();
                        let got = comm.sendrecv(peer, &row, peer, C, tag + 1);
                        u[idx(ghost_row, 1, C)..=idx(ghost_row, C, C)].copy_from_slice(&got);
                    }
                }

                let (next, local_delta) = jacobi_step(&u, R, C);
                u = next;

                // Global residual: abs-max across ranks via the user
                // operator.
                let mut acc = [local_delta];
                comm.allreduce_op(&mut acc, &abs_max);
                residual = acc[0];
            }

            // Total heat is conserved up to boundary losses: a builtin-op
            // allreduce alongside the user-operator one.
            let local_heat: f64 = (1..=R)
                .flat_map(|r| (1..=C).map(move |c| (r, c)))
                .map(|(r, c)| u[idx(r, c, C)])
                .sum();
            let mut heat = [local_heat];
            comm.allreduce(&mut heat, ReduceOp::Sum);

            (u, residual, heat[0])
        })
        .expect("halo exchange ran");

    // Every rank's tile must reproduce the sequential oracle exactly —
    // identical arithmetic, identical order, so no tolerance.
    let (global, want_residual) = sequential_oracle();
    let width = PX * C;
    for (rank, (tile, residual, _)) in results.iter().enumerate() {
        let (cx, cy) = (rank % PX, rank / PX);
        for r in 1..=R {
            for c in 1..=C {
                let want = global[idx(cy * R + r, cx * C + c, width)];
                assert_eq!(
                    tile[idx(r, c, C)],
                    want,
                    "rank {rank} cell ({r},{c}) diverged from the oracle"
                );
            }
        }
        assert_eq!(
            *residual, want_residual,
            "rank {rank} disagrees with the oracle residual"
        );
    }
    let heat = results[0].2;
    for (_, _, h) in &results {
        assert!((h - heat).abs() < 1e-9, "ranks disagree on the total heat");
    }

    println!(
        "halo_exchange: {STEPS} steps of a {}x{} global grid on a {PX}x{PY} process grid",
        PY * R,
        PX * C
    );
    println!("final abs-max residual (user op, matches oracle): {want_residual:.6}");
    println!("total heat (minus boundary losses): {heat:.3}");
    // The reduced heat must equal the oracle's global sum (up to summation
    // order) and stay within the initial injection.
    let want_heat: f64 = global.iter().sum();
    assert!((heat - want_heat).abs() < 1e-6, "heat diverged from oracle");
    assert!(heat > 0.0 && heat <= 1000.0 + 1e-9);
}
