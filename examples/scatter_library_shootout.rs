//! Figure-1-style comparison from the public API: simulate MPI_Scatter with
//! small messages for every modelled MPI library and print the scaled
//! execution times.
//!
//! The default cluster is small so the example finishes in a couple of
//! seconds; pass `--paper` to use the paper's 128-node × 18-ppn testbed.
//!
//! ```text
//! cargo run --release --example scatter_library_shootout [-- --paper]
//! ```

use pip_mcoll::collectives::CollectiveKind;
use pip_mcoll::model::{dispatch, Library};
use pip_mcoll::netsim::cluster::ClusterSpec;
use pip_mcoll::netsim::network::simulate;

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    let cluster = if paper_scale {
        ClusterSpec::hpdc23()
    } else {
        ClusterSpec::new(16, 6)
    };
    let sizes = [16usize, 64, 256, 512];
    println!(
        "{} on {} nodes x {} ppn ({} ranks)\n",
        CollectiveKind::Scatter.name(),
        cluster.nodes,
        cluster.ppn,
        cluster.world_size()
    );

    let mut times = vec![vec![0.0f64; sizes.len()]; Library::ALL.len()];
    for (li, library) in Library::ALL.iter().enumerate() {
        let profile = library.profile();
        let params = profile.sim_params(cluster.nic);
        for (si, &bytes) in sizes.iter().enumerate() {
            let trace = dispatch::record_scatter(&profile, cluster.topology(), bytes, 0);
            times[li][si] = simulate(library.name(), &trace, &params)
                .expect("valid trace")
                .makespan_us;
        }
    }

    print!("{:<12}", "library");
    for &bytes in &sizes {
        print!("{:>12}", format!("{bytes} B"));
    }
    println!();
    let reference = times[Library::ALL.len() - 1].clone();
    for (li, library) in Library::ALL.iter().enumerate() {
        print!("{:<12}", library.name());
        for (si, _) in sizes.iter().enumerate() {
            print!("{:>12}", format!("{:.2}x", times[li][si] / reference[si]));
        }
        println!();
    }
    println!("\n(values are scaled execution time, PiP-MColl = 1.00x; lower is better)");
}
