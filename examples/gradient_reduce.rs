//! The ML gradient-sharding loop over the reduction family — every result
//! asserted against the expected value so this example doubles as a smoke
//! test (CI runs it).
//!
//! ```text
//! cargo run --example gradient_reduce
//! ```
//!
//! Three patterns, each the reduction-family workhorse of a real workload:
//!
//! 1. **`ireduce` overlapped with compute** — the parameter-server step:
//!    every worker contributes its gradient, the root applies the update
//!    while the next batch's forward pass runs.
//! 2. **`reduce_scatter` + `allgather`** — sharded data-parallel training
//!    (ZeRO-style): each rank owns one shard of the summed gradient, updates
//!    it locally, and the shards are allgathered back — the decomposition
//!    the paper's multi-object allreduce is built from (§2).
//! 3. **`scan`/`exscan`** — prefix sums over per-rank batch counts, the
//!    standard way to compute global sample offsets in a data pipeline.

use pip_mcoll::core::prelude::*;

fn main() {
    let nodes = 2;
    let ppn = 3;
    let world = nodes * ppn;
    let shard = 4usize; // gradient elements owned per rank

    let results = World::builder()
        .nodes(nodes)
        .ppn(ppn)
        .library(Library::PipMColl)
        .run(|comm| {
            let rank = comm.rank() as i64;

            // Real f32 gradients, as a training loop would produce. The
            // values are multiples of 0.25 (exactly representable), so the
            // sums below are exact in any combination order and the
            // assertions can use `==`.
            let grad = |i: usize| (rank as f32 * 10.0 + i as f32) * 0.25;

            // --- 1. ireduce: parameter-server gradient aggregation ------
            let gradient: Vec<f32> = (0..8).map(grad).collect();
            let request = comm.ireduce(&gradient, ReduceOp::Sum, 0);
            // Overlap: the next batch's "forward pass" runs while the
            // reduction progresses.
            let mut forward = 1u64;
            for i in 0..5_000u64 {
                forward = forward.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            let aggregated = request.wait();
            if comm.rank() == 0 {
                let got = aggregated.expect("root receives the aggregate");
                for (i, value) in got.iter().enumerate() {
                    let want: f32 = (0..world)
                        .map(|r| (r as f32 * 10.0 + i as f32) * 0.25)
                        .sum();
                    assert_eq!(*value, want, "ireduce element {i}");
                }
            } else {
                assert!(aggregated.is_none(), "non-roots receive nothing");
            }

            // --- 2. reduce_scatter + allgather: sharded update ----------
            let full_gradient: Vec<f32> = (0..world * shard)
                .map(|i| rank as f32 * 0.25 + i as f32)
                .collect();
            let mut my_shard = comm.reduce_scatter(&full_gradient, shard, ReduceOp::Sum);
            // Local optimizer step on the owned shard only: average the
            // summed gradient across the data-parallel workers.
            for value in &mut my_shard {
                *value /= world as f32;
            }
            let updated = comm.allgather(&my_shard);
            assert_eq!(updated.len(), world * shard);
            let rank_sum: f32 = (0..world).map(|r| r as f32 * 0.25).sum();
            for (i, value) in updated.iter().enumerate() {
                let summed = rank_sum + (world * i) as f32;
                assert_eq!(*value, summed / world as f32, "sharded update element {i}");
            }

            // --- 3. scan/exscan: global sample offsets ------------------
            let batch = [rank + 1]; // rank r contributes r + 1 samples
            let mut offset = batch;
            comm.exscan(&mut offset, ReduceOp::Sum);
            let start = if comm.rank() == 0 { 0 } else { offset[0] };
            let mut total = batch;
            comm.scan(&mut total, ReduceOp::Sum);
            assert_eq!(start, (0..rank).map(|r| r + 1).sum::<i64>());
            assert_eq!(total[0], (0..=rank).map(|r| r + 1).sum::<i64>());

            (forward, start, total[0])
        })
        .unwrap();

    println!("gradient_reduce: all reduction-family assertions passed");
    for (rank, (_, start, through)) in results.iter().enumerate() {
        println!("  rank {rank}: samples [{start}, {through})");
    }
}
