//! Quickstart: launch a simulated 2-node × 4-process cluster inside this
//! process, run a few collectives with the PiP-MColl algorithms, and verify
//! the results.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pip_mcoll::core::prelude::*;

fn main() {
    // A "cluster" of 2 nodes with 4 PiP tasks each, using the paper's
    // multi-object algorithms.
    let results = World::builder()
        .nodes(2)
        .ppn(4)
        .library(Library::PipMColl)
        .run(|comm| {
            // Every rank contributes its rank id; allgather returns the full
            // vector on every rank.
            let gathered = comm.allgather(&[comm.rank() as u32]);

            // The root scatters one double per rank.
            let scattered = if comm.rank() == 0 {
                let payload: Vec<f64> = (0..comm.size()).map(|r| r as f64 * 1.5).collect();
                comm.scatter(Some(&payload), 1, 0)
            } else {
                comm.scatter(None, 1, 0)
            };

            // Global sum of every rank's value.
            let mut sum = [comm.rank() as u64 + 1];
            comm.allreduce(&mut sum, ReduceOp::Sum);

            comm.barrier();
            (gathered, scattered[0], sum[0])
        })
        .expect("cluster ran to completion");

    let world = results.len();
    for (rank, (gathered, scattered, sum)) in results.iter().enumerate() {
        assert_eq!(gathered.len(), world);
        assert_eq!(*scattered, rank as f64 * 1.5);
        assert_eq!(*sum, (world * (world + 1) / 2) as u64);
    }
    println!("quickstart: {world} ranks ran allgather, scatter, allreduce and barrier");
    println!("rank 0 allgather result: {:?}", results[0].0);
    println!("rank 3 scatter block:    {}", results[3].1);
    println!("global sum (all ranks):  {}", results[0].2);
}
