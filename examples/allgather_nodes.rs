//! The paper's §2 workload from the public API: run the multi-object
//! allgather for real on the thread runtime across a grid of node counts and
//! processes per node, verify every result against the oracle, and report
//! how many inter-node messages each design issues per process (the quantity
//! the multi-object design minimizes on the critical path).
//!
//! ```text
//! cargo run --release --example allgather_nodes
//! ```

use pip_mcoll::collectives::comm::{record_trace, Comm};
use pip_mcoll::collectives::multi_object::allgather_multi_object;
use pip_mcoll::collectives::{bruck, hierarchical};
use pip_mcoll::core::prelude::*;

fn main() {
    println!("multi-object allgather, real execution on the thread runtime\n");
    println!(
        "{:<10} {:<6} {:<8} {:<10}",
        "nodes", "ppn", "ranks", "verified"
    );
    for (nodes, ppn) in [(2, 2), (3, 3), (4, 4), (6, 3), (8, 2)] {
        let results = World::builder()
            .nodes(nodes)
            .ppn(ppn)
            .library(Library::PipMColl)
            .run(|comm| comm.allgather(&[comm.rank() as u32]))
            .expect("run succeeded");
        let world = nodes * ppn;
        let expected: Vec<u32> = (0..world as u32).collect();
        let ok = results.iter().all(|r| *r == expected);
        println!("{:<10} {:<6} {:<8} {:<10}", nodes, ppn, world, ok);
        assert!(ok);
    }

    // Critical-path message counts per process for the three designs on a
    // mid-sized cluster (recorded, not executed).
    let topo = Topology::new(32, 8);
    let block = 64;
    let per_rank_sends = |label: &str, f: &dyn Fn(&pip_mcoll::collectives::comm::TraceComm)| {
        let trace = record_trace(topo, f);
        let max_sends = trace.ranks.iter().map(|r| r.send_count()).max().unwrap();
        let total: usize = trace.ranks.iter().map(|r| r.send_count()).sum();
        println!("{label:<24} max sends/process: {max_sends:<4} total messages: {total}");
    };
    println!("\nschedule shape on 32 nodes x 8 ppn, 64 B per process:");
    per_rank_sends("multi-object (PiP-MColl)", &|comm| {
        let sendbuf = vec![0u8; block];
        let mut recvbuf = vec![0u8; comm.world_size() * block];
        allgather_multi_object(comm, &sendbuf, &mut recvbuf, 1);
    });
    per_rank_sends("single-leader hierarchical", &|comm| {
        let sendbuf = vec![0u8; block];
        let mut recvbuf = vec![0u8; comm.world_size() * block];
        hierarchical::allgather_hierarchical(comm, &sendbuf, &mut recvbuf, 1);
    });
    per_rank_sends("flat Bruck", &|comm| {
        let sendbuf = vec![0u8; block];
        let mut recvbuf = vec![0u8; comm.world_size() * block];
        bruck::allgather_bruck(comm, &sendbuf, &mut recvbuf, 1);
    });
}
