//! Overlapping a non-blocking allreduce with local compute, and pipelining
//! iterations through a persistent handle — the request-based API end to
//! end, with every result asserted against the expected value so this
//! example doubles as a smoke test (CI runs it).
//!
//! ```text
//! cargo run --example overlap_pipeline
//! ```
//!
//! The shape of the pipeline is the classic iterative-solver loop:
//!
//! ```text
//! iallreduce(x)  ──►  compute on local data  ──►  wait  ──►  next iteration
//! ```
//!
//! While the rank computes, messages the collective already posted keep
//! moving, and any `test`/`wait` on the communicator advances *every*
//! outstanding request — so interleaving several requests works too.

use pip_mcoll::core::prelude::*;

/// Stand-in for application compute: a little arithmetic the optimizer
/// cannot delete.
fn local_compute(seed: u64, iters: u64) -> u64 {
    let mut acc = seed | 1;
    for i in 0..iters {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    acc
}

fn main() {
    let nodes = 2;
    let ppn = 3;
    let world = nodes * ppn;

    // --- Non-blocking allreduce overlapped with compute -----------------
    let results = World::builder()
        .nodes(nodes)
        .ppn(ppn)
        .library(Library::PipMColl)
        .run(|comm| {
            let rank = comm.rank() as u64;
            let contribution: Vec<u64> = (0..8).map(|i| rank * 100 + i).collect();

            // Post the collective, then compute while it progresses.
            let request = comm.iallreduce(&contribution, ReduceOp::Sum);
            let computed = local_compute(rank, 10_000);
            let reduced = request.wait();

            // Interleaved outstanding requests complete in any order.
            let r1 = comm.iallgather(&[rank]);
            let bcast_in = if comm.rank() == 0 { [7u64] } else { [0u64] };
            let r2 = comm.ibcast(&bcast_in, 0);
            let bcast = r2.wait();
            let gathered = r1.wait();

            (computed, reduced, gathered, bcast)
        })
        .expect("cluster ran to completion");

    let expected_reduced: Vec<u64> = (0..8)
        .map(|i| (0..world as u64).map(|r| r * 100 + i).sum())
        .collect();
    let expected_gathered: Vec<u64> = (0..world as u64).collect();
    for (rank, (computed, reduced, gathered, bcast)) in results.iter().enumerate() {
        assert_eq!(*computed, local_compute(rank as u64, 10_000));
        assert_eq!(
            reduced, &expected_reduced,
            "iallreduce result at rank {rank}"
        );
        assert_eq!(
            gathered, &expected_gathered,
            "iallgather result at rank {rank}"
        );
        assert_eq!(bcast, &[7u64], "ibcast result at rank {rank}");
    }
    println!("non-blocking allreduce + compute overlap: OK ({world} ranks)");

    // --- Persistent pipeline: compile once, start every iteration --------
    let iterations = 4u64;
    let results = World::builder()
        .nodes(nodes)
        .ppn(ppn)
        .library(Library::PipMColl)
        .run(|comm| {
            let rank = comm.rank() as u64;
            let mut handle = comm.allreduce_init(&[rank, rank], ReduceOp::Sum);
            let (_, misses_after_init) = comm.plan_stats();

            let mut sums = Vec::new();
            for iter in 0..iterations {
                // Refresh the pinned input, start, overlap compute, wait.
                handle.write_send(&[rank + iter, rank * 2 + iter]);
                handle.start();
                let _ = local_compute(rank ^ iter, 2_000);
                sums.push(handle.wait());
            }

            let (_, misses_after_loop) = comm.plan_stats();
            assert_eq!(
                misses_after_init, misses_after_loop,
                "persistent starts must reuse the compiled plan"
            );
            sums
        })
        .expect("cluster ran to completion");

    for (rank, sums) in results.iter().enumerate() {
        for iter in 0..iterations {
            let expected = [
                (0..world as u64).map(|r| r + iter).sum::<u64>(),
                (0..world as u64).map(|r| r * 2 + iter).sum::<u64>(),
            ];
            assert_eq!(
                sums[iter as usize], expected,
                "persistent allreduce at rank {rank}, iteration {iter}"
            );
        }
    }
    println!("persistent allreduce pipeline ({iterations} starts, one compile): OK");
}
