//! The motivation behind the multi-object design, from the public API: how
//! the achievable per-node message rate grows with the number of concurrent
//! sender processes ("objects"), and where the adapter's aggregate message
//! rate caps it.
//!
//! ```text
//! cargo run --release --example message_rate
//! ```

use pip_mcoll::netsim::params::SimParams;
use pip_mcoll::netsim::trace::{Trace, TraceOp};
use pip_mcoll::netsim::SimEngine;
use pip_mcoll::runtime::Topology;
use pip_mcoll::transport::netcard::NicModel;

fn main() {
    let nic = NicModel::default();
    let bytes = 64;
    println!(
        "Omni-Path model: 100 Gb/s, {:.0} M msg/s aggregate\n",
        1e9 / nic.nic_occupancy(bytes) / 1e6
    );
    println!(
        "{:<10} {:<22} {:<22}",
        "senders", "model rate (M msg/s)", "simulated (M msg/s)"
    );
    for senders in [1usize, 2, 4, 8, 12, 18] {
        let model = nic.node_message_rate(senders, bytes) / 1e6;

        let topo = Topology::new(2, senders);
        let mut trace = Trace::empty(topo);
        let per_sender = 200;
        for s in 0..senders {
            for m in 0..per_sender {
                let dest = topo.rank_of(1, s);
                trace.push(
                    s,
                    TraceOp::Send {
                        dest,
                        bytes,
                        tag: m as u64,
                    },
                );
                trace.push(
                    dest,
                    TraceOp::Recv {
                        source: s,
                        bytes,
                        tag: m as u64,
                    },
                );
            }
        }
        let outcome = SimEngine::new(SimParams::default()).run(&trace).unwrap();
        let simulated = (senders * per_sender) as f64 / (outcome.makespan / 1e9) / 1e6;
        println!("{senders:<10} {model:<22.2} {simulated:<22.2}");
    }
    println!("\nA single process is limited by its per-message host overhead; eighteen");
    println!("concurrent sender objects (one per core used by the paper) multiply the");
    println!("achievable rate, which is exactly what PiP-MColl's multi-object design does.");
}
