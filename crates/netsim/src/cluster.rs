//! Cluster descriptions: how many nodes, how many processes per node, and
//! what the interconnect looks like.

use pip_runtime::Topology;
use pip_transport::netcard::NicParams;
use serde::{Deserialize, Serialize};

/// A simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Processes (PiP tasks) per node.
    pub ppn: usize,
    /// The adapter/link model shared by every node.
    pub nic: NicParams,
}

impl ClusterSpec {
    /// Build a cluster of `nodes` × `ppn` with the default (Omni-Path) NIC.
    pub fn new(nodes: usize, ppn: usize) -> Self {
        Self {
            nodes,
            ppn,
            nic: NicParams::default(),
        }
    }

    /// The paper's testbed: 128 dual-socket Broadwell nodes, 18 ranks per
    /// node (2304 ranks total), Intel Omni-Path at 100 Gb/s and 97 M msg/s.
    pub fn hpdc23() -> Self {
        Self::new(128, 18)
    }

    /// A laptop-sized cluster for tests and examples.
    pub fn small() -> Self {
        Self::new(4, 4)
    }

    /// Replace the NIC model.
    pub fn with_nic(mut self, nic: NicParams) -> Self {
        self.nic = nic;
        self
    }

    /// Total number of ranks.
    pub fn world_size(&self) -> usize {
        self.nodes * self.ppn
    }

    /// The topology of this cluster.
    pub fn topology(&self) -> Topology {
        Topology::new(self.nodes, self.ppn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpdc23_matches_the_paper() {
        let spec = ClusterSpec::hpdc23();
        assert_eq!(spec.nodes, 128);
        assert_eq!(spec.ppn, 18);
        assert_eq!(spec.world_size(), 2304);
        assert!((spec.nic.bytes_per_ns - 12.5).abs() < 1e-12);
    }

    #[test]
    fn topology_agrees_with_spec() {
        let spec = ClusterSpec::new(6, 3);
        let topo = spec.topology();
        assert_eq!(topo.nodes(), 6);
        assert_eq!(topo.ppn(), 3);
        assert_eq!(topo.world_size(), spec.world_size());
    }

    #[test]
    fn with_nic_replaces_parameters() {
        let spec = ClusterSpec::small().with_nic(NicParams::commodity_25g());
        assert!(spec.nic.bytes_per_ns < 4.0);
    }
}
