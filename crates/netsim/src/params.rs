//! Simulation parameters: everything the engine needs besides the trace.

use pip_transport::cost::{IntranodeCost, IntranodeMechanism, Nanos};
use pip_transport::memcpy::MemcpyModel;
use pip_transport::netcard::{NicModel, NicParams};
use serde::{Deserialize, Serialize};

use crate::cluster::ClusterSpec;

/// Parameters of one simulation run.
///
/// A comparator MPI library is expressed as a `SimParams`: its intra-node
/// transport, its per-message software overhead on top of the raw
/// send/receive path, and any per-operation synchronization cost (the
/// PiP-MPICH "message size synchronization" the paper discusses).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimParams {
    /// The interconnect.
    pub nic: NicParams,
    /// Intra-node transport used when a message's endpoints share a node or
    /// when the trace contains `CopyIntra` operations without an override.
    pub intranode: IntranodeCost,
    /// Host memory model for reductions and local packing.
    pub memcpy: MemcpyModel,
    /// Base cost of a node-local barrier episode.
    pub local_barrier_base: Nanos,
    /// Additional barrier cost per participating rank (fan-in/fan-out work).
    pub local_barrier_per_rank: Nanos,
    /// Library software overhead added to every send (matching, queueing,
    /// datatype handling) on top of the NIC host overhead.
    pub software_send_overhead: Nanos,
    /// Library software overhead added to every receive.
    pub software_recv_overhead: Nanos,
    /// Whether intra-node copies are treated as warm (registration caches
    /// populated, pages touched).  Benchmark loops are warm; one-shot
    /// collectives are not.
    pub warm_buffers: bool,
}

impl SimParams {
    /// Parameters using the default Omni-Path NIC and PiP intra-node
    /// transport with no extra software overhead.
    pub fn pip_defaults() -> Self {
        Self {
            nic: NicParams::default(),
            intranode: IntranodeCost::defaults_for(IntranodeMechanism::Pip),
            memcpy: MemcpyModel::default(),
            local_barrier_base: 180.0,
            local_barrier_per_rank: 18.0,
            software_send_overhead: 0.0,
            software_recv_overhead: 0.0,
            warm_buffers: true,
        }
    }

    /// Parameters for a cluster spec (copies its NIC model).
    pub fn for_cluster(spec: &ClusterSpec) -> Self {
        Self {
            nic: spec.nic,
            ..Self::pip_defaults()
        }
    }

    /// Replace the intra-node transport.
    pub fn with_intranode(mut self, mechanism: IntranodeMechanism) -> Self {
        self.intranode = IntranodeCost::defaults_for(mechanism);
        self
    }

    /// Add per-message software overhead (library tax).
    pub fn with_software_overhead(mut self, send: Nanos, recv: Nanos) -> Self {
        self.software_send_overhead = send;
        self.software_recv_overhead = recv;
        self
    }

    /// Set cold-buffer behaviour (first-use attach / page-fault charges).
    pub fn with_cold_buffers(mut self) -> Self {
        self.warm_buffers = false;
        self
    }

    /// The NIC model wrapper.
    pub fn nic_model(&self) -> NicModel {
        NicModel::new(self.nic)
    }

    /// Cost of one node-local barrier episode with `ppn` participants.
    pub fn barrier_cost(&self, ppn: usize) -> Nanos {
        self.local_barrier_base + self.local_barrier_per_rank * ppn as Nanos
    }
}

impl Default for SimParams {
    fn default() -> Self {
        Self::pip_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_use_pip_transport() {
        let params = SimParams::default();
        assert_eq!(params.intranode.mechanism, IntranodeMechanism::Pip);
        assert!(params.warm_buffers);
    }

    #[test]
    fn builders_modify_fields() {
        let params = SimParams::pip_defaults()
            .with_intranode(IntranodeMechanism::Cma)
            .with_software_overhead(100.0, 120.0)
            .with_cold_buffers();
        assert_eq!(params.intranode.mechanism, IntranodeMechanism::Cma);
        assert_eq!(params.software_send_overhead, 100.0);
        assert_eq!(params.software_recv_overhead, 120.0);
        assert!(!params.warm_buffers);
    }

    #[test]
    fn barrier_cost_grows_with_ppn() {
        let params = SimParams::default();
        assert!(params.barrier_cost(18) > params.barrier_cost(2));
    }

    #[test]
    fn for_cluster_copies_nic() {
        let spec = ClusterSpec::small().with_nic(NicParams::commodity_25g());
        let params = SimParams::for_cluster(&spec);
        assert_eq!(params.nic, spec.nic);
    }
}
