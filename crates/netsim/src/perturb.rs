//! Deterministic fault and variability injection for the simulation plane.
//!
//! A [`Perturbation`] describes a degraded fabric: straggling ranks, noisy
//! links, and lossy links with a retry budget.  It is carried through
//! [`crate::engine::RunOptions`] and applied identically by the
//! calendar-queue engine, the seed reference engine, and (when the config
//! is node-symmetric) the folded replay, so the three paths stay
//! differentially pinned under every config.
//!
//! ## Determinism
//!
//! Nothing here keeps mutable random state.  Every draw is a pure hash of
//! the config seed plus *static* identifiers of the thing being perturbed:
//!
//! * straggler draws hash `(seed, rank)`;
//! * link draws hash `(seed, source node, destination node)`;
//! * drop draws hash `(seed, sender rank, program counter, attempt)`.
//!
//! The two engines process events in different orders (the calendar engine
//! chains rank-local ops inline; the heap engine round-trips every op), but
//! since no draw depends on processing order they compute bit-identical
//! values, which is what lets the chaos-differential suite assert exact
//! equality of makespans, per-rank finish times and retry counts.

use pip_transport::cost::Nanos;

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash step.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash `(seed, domain, keys...)` to a uniform draw in `[0, 1)`.
#[inline]
fn draw(seed: u64, domain: u64, keys: &[u64]) -> f64 {
    let mut h = mix(seed ^ domain);
    for &k in keys {
        h = mix(h ^ k.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    }
    // 53 mantissa bits -> [0, 1).
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const DOMAIN_STRAGGLER_PICK: u64 = 0x5354_5241_4747_4c31;
const DOMAIN_STRAGGLER_DELAY: u64 = 0x5354_5241_4747_4c32;
const DOMAIN_LINK_LATENCY: u64 = 0x4c49_4e4b_4c41_5431;
const DOMAIN_LINK_OCCUPANCY: u64 = 0x4c49_4e4b_4f43_4331;
const DOMAIN_DROP: u64 = 0x4452_4f50_4452_4f50;

/// Per-rank straggler injection: a subset of ranks starts late and/or
/// computes slower.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerSpec {
    /// Fraction of ranks afflicted, drawn per rank from the seed.
    /// `1.0` afflicts every rank (the node-symmetric case); `0.0` none.
    pub fraction: f64,
    /// Fixed start delay added to every afflicted rank, in ns.
    pub start_delay: Nanos,
    /// Upper bound of an extra per-rank uniformly drawn start delay, in ns.
    pub start_delay_jitter: Nanos,
    /// Stretch factor (>= 1.0) applied to every [`crate::trace::TraceOp::Compute`]
    /// interval of an afflicted rank.  Values below 1.0 are treated as 1.0.
    pub compute_slowdown: f64,
}

impl StragglerSpec {
    /// No stragglers.
    pub const NONE: Self = Self {
        fraction: 0.0,
        start_delay: 0.0,
        start_delay_jitter: 0.0,
        compute_slowdown: 1.0,
    };

    /// True when the spec cannot change any timestamp.
    pub fn is_inert(&self) -> bool {
        self.fraction <= 0.0
            || (self.start_delay <= 0.0
                && self.start_delay_jitter <= 0.0
                && self.compute_slowdown <= 1.0)
    }

    /// True when every node experiences identical straggling: either inert,
    /// or every rank afflicted with a deterministic (jitter-free) delay.
    pub fn is_node_symmetric(&self) -> bool {
        self.is_inert() || (self.fraction >= 1.0 && self.start_delay_jitter <= 0.0)
    }
}

/// Per-link latency and bandwidth degradation, keyed by the directed
/// `(source node, destination node)` pair.  Intra-node traffic bypasses the
/// NIC and is never affected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Fixed extra wire latency on every internode link, in ns.
    pub latency_pad: Nanos,
    /// Upper bound of a per-link latency offset drawn per directed node
    /// pair, in ns.
    pub latency_jitter: Nanos,
    /// Uniform bandwidth derating: NIC occupancy of every internode message
    /// is multiplied by this factor (>= 1.0; below 1.0 is treated as 1.0).
    pub occupancy_factor: f64,
    /// Upper bound of an extra per-link occupancy multiplier: a link's
    /// total factor is `occupancy_factor * (1 + u * occupancy_jitter)` with
    /// `u` drawn uniformly from `[0, 1)` per directed node pair.
    pub occupancy_jitter: f64,
}

impl LinkSpec {
    /// Healthy links.
    pub const NONE: Self = Self {
        latency_pad: 0.0,
        latency_jitter: 0.0,
        occupancy_factor: 1.0,
        occupancy_jitter: 0.0,
    };

    /// True when the spec cannot change any timestamp.
    pub fn is_inert(&self) -> bool {
        self.latency_pad <= 0.0
            && self.latency_jitter <= 0.0
            && self.occupancy_factor <= 1.0
            && self.occupancy_jitter <= 0.0
    }

    /// True when every link degrades identically (no per-link draws).
    pub fn is_node_symmetric(&self) -> bool {
        self.latency_jitter <= 0.0 && self.occupancy_jitter <= 0.0
    }
}

/// Probabilistic per-message transmission loss with sender-side retry,
/// timeout and exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropSpec {
    /// Probability that one transmission attempt of an internode message is
    /// lost, drawn independently per attempt.
    pub rate: f64,
    /// Retry budget: retransmissions attempted after the first loss.  Once
    /// `max_retries + 1` attempts have all been lost the message is
    /// undeliverable and the run reports a structured
    /// [`crate::engine::SimFailure`].
    pub max_retries: u32,
    /// Sender-side timeout before the first retransmission, in ns.
    pub timeout: Nanos,
    /// Multiplier applied to the timeout after every further loss
    /// (>= 1.0; below 1.0 is treated as 1.0).
    pub backoff: f64,
}

impl DropSpec {
    /// Lossless links.
    pub const NONE: Self = Self {
        rate: 0.0,
        max_retries: 0,
        timeout: 0.0,
        backoff: 1.0,
    };

    /// True when no message can ever be lost.
    pub fn is_inert(&self) -> bool {
        self.rate <= 0.0
    }

    /// Drops are per-message draws, so any active drop spec breaks node
    /// symmetry.
    pub fn is_node_symmetric(&self) -> bool {
        self.is_inert()
    }
}

/// A seeded, deterministic description of a degraded fabric.
///
/// Attach one to a run via
/// [`RunOptions::with_perturbation`](crate::engine::RunOptions::with_perturbation).
/// The same config and seed reproduce the same simulation bit for bit on
/// every engine path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Perturbation {
    /// Seed for every random draw.  Two runs with the same seed are
    /// identical; different seeds redraw every straggler, link and drop.
    pub seed: u64,
    /// Straggling ranks.
    pub straggler: StragglerSpec,
    /// Degraded links.
    pub link: LinkSpec,
    /// Lossy links.
    pub drop: DropSpec,
}

/// The fate of one internode message under the drop model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendFate {
    /// Whether any attempt within the retry budget succeeded.
    pub delivered: bool,
    /// Retransmissions performed (0 when the first attempt succeeded; the
    /// full `max_retries` when the message was never delivered).
    pub retries: u32,
}

impl Perturbation {
    /// A perturbation that changes nothing (useful as a baseline config).
    pub const NONE: Self = Self {
        seed: 0,
        straggler: StragglerSpec::NONE,
        link: LinkSpec::NONE,
        drop: DropSpec::NONE,
    };

    /// True when the config cannot change any timestamp or drop any
    /// message — a zero-magnitude config reproduces the unperturbed run
    /// exactly.
    pub fn is_identity(&self) -> bool {
        self.straggler.is_inert() && self.link.is_inert() && self.drop.is_inert()
    }

    /// True when every node experiences an identical fabric, which is the
    /// condition for folded replay to stay exact: uniform stragglers,
    /// uniform link derating, and no drops.
    pub fn is_node_symmetric(&self) -> bool {
        self.straggler.is_node_symmetric()
            && self.link.is_node_symmetric()
            && self.drop.is_node_symmetric()
    }

    /// Whether `rank` is afflicted by the straggler spec.
    pub fn rank_is_straggler(&self, rank: usize) -> bool {
        if self.straggler.fraction >= 1.0 {
            true
        } else if self.straggler.fraction <= 0.0 {
            false
        } else {
            draw(self.seed, DOMAIN_STRAGGLER_PICK, &[rank as u64]) < self.straggler.fraction
        }
    }

    /// Start delay injected before `rank`'s first operation, in ns.
    pub fn rank_start_delay(&self, rank: usize) -> Nanos {
        if !self.rank_is_straggler(rank) {
            return 0.0;
        }
        let base = self.straggler.start_delay.max(0.0);
        if self.straggler.start_delay_jitter > 0.0 {
            base + draw(self.seed, DOMAIN_STRAGGLER_DELAY, &[rank as u64])
                * self.straggler.start_delay_jitter
        } else {
            base
        }
    }

    /// Compute-stretch factor for `rank` (1.0 when unafflicted).
    pub fn rank_compute_slowdown(&self, rank: usize) -> f64 {
        if self.straggler.compute_slowdown > 1.0 && self.rank_is_straggler(rank) {
            self.straggler.compute_slowdown
        } else {
            1.0
        }
    }

    /// Extra wire latency on the directed link `src_node -> dst_node`, in ns.
    pub fn link_latency_extra(&self, src_node: usize, dst_node: usize) -> Nanos {
        let pad = self.link.latency_pad.max(0.0);
        if self.link.latency_jitter > 0.0 {
            pad + draw(
                self.seed,
                DOMAIN_LINK_LATENCY,
                &[src_node as u64, dst_node as u64],
            ) * self.link.latency_jitter
        } else {
            pad
        }
    }

    /// NIC-occupancy multiplier for the directed link `src_node -> dst_node`.
    pub fn link_occupancy_factor(&self, src_node: usize, dst_node: usize) -> f64 {
        let base = if self.link.occupancy_factor > 1.0 {
            self.link.occupancy_factor
        } else {
            1.0
        };
        if self.link.occupancy_jitter > 0.0 {
            base * (1.0
                + draw(
                    self.seed,
                    DOMAIN_LINK_OCCUPANCY,
                    &[src_node as u64, dst_node as u64],
                ) * self.link.occupancy_jitter)
        } else {
            base
        }
    }

    /// The fate of the internode message the sender `rank` posts at program
    /// counter `pc`: attempts are drawn independently until one succeeds or
    /// the retry budget is exhausted.
    pub fn send_fate(&self, rank: usize, pc: usize) -> SendFate {
        if self.drop.is_inert() {
            return SendFate {
                delivered: true,
                retries: 0,
            };
        }
        for attempt in 0..=self.drop.max_retries {
            let lost = self.rate_covers(rank, pc, attempt);
            if !lost {
                return SendFate {
                    delivered: true,
                    retries: attempt,
                };
            }
        }
        SendFate {
            delivered: false,
            retries: self.drop.max_retries,
        }
    }

    /// Whether attempt number `attempt` of the message `(rank, pc)` is lost.
    fn rate_covers(&self, rank: usize, pc: usize, attempt: u32) -> bool {
        if self.drop.rate >= 1.0 {
            return true;
        }
        draw(
            self.seed,
            DOMAIN_DROP,
            &[rank as u64, pc as u64, attempt as u64],
        ) < self.drop.rate
    }
}

// ---------------------------------------------------------------------------
// Engine-side precomputed state
// ---------------------------------------------------------------------------

/// Per-run perturbation state shared by both engines.
///
/// Precomputes the per-rank straggler draws and caches activity flags so the
/// unperturbed hot path pays a predictable branch and nothing else.  Both
/// engines go through these methods with the same arguments, so the
/// arithmetic — and therefore every timestamp — is identical by
/// construction.
#[derive(Debug)]
pub(crate) struct PerturbState {
    config: Option<Perturbation>,
    /// `(start delay, compute slowdown)` per rank; empty when no straggler
    /// spec is active.
    stragglers: Vec<(Nanos, f64)>,
    link_latency: bool,
    link_occupancy: bool,
    drops: bool,
}

impl PerturbState {
    pub(crate) fn new(config: Option<&Perturbation>, world: usize) -> Self {
        let stragglers = match config {
            Some(p) if !p.straggler.is_inert() => (0..world)
                .map(|rank| (p.rank_start_delay(rank), p.rank_compute_slowdown(rank)))
                .collect(),
            _ => Vec::new(),
        };
        Self {
            config: config.copied(),
            stragglers,
            link_latency: config
                .is_some_and(|p| p.link.latency_pad > 0.0 || p.link.latency_jitter > 0.0),
            link_occupancy: config
                .is_some_and(|p| p.link.occupancy_factor > 1.0 || p.link.occupancy_jitter > 0.0),
            drops: config.is_some_and(|p| !p.drop.is_inert()),
        }
    }

    /// Start delay of `rank`, in ns.
    #[inline]
    pub(crate) fn start_delay(&self, rank: usize) -> Nanos {
        self.stragglers.get(rank).map_or(0.0, |s| s.0)
    }

    /// `(busy, extra)` for a compute interval of `nanos` on `rank`: the
    /// stretched duration and the straggler-induced inflation.
    #[inline]
    pub(crate) fn compute(&self, rank: usize, nanos: Nanos) -> (Nanos, Nanos) {
        let busy = nanos.max(0.0);
        match self.stragglers.get(rank) {
            Some(&(_, factor)) if factor > 1.0 => {
                let slowed = busy * factor;
                (slowed, slowed - busy)
            }
            _ => (busy, 0.0),
        }
    }

    /// NIC occupancy for a message on the directed link
    /// `src_node -> dst_node`, after bandwidth derating.
    #[inline]
    pub(crate) fn occupancy(&self, base: Nanos, src_node: usize, dst_node: usize) -> Nanos {
        if !self.link_occupancy {
            return base;
        }
        let p = self.config.as_ref().expect("flag implies config");
        base * p.link_occupancy_factor(src_node, dst_node)
    }

    /// Extra wire latency on the directed link `src_node -> dst_node`.
    #[inline]
    pub(crate) fn extra_latency(&self, src_node: usize, dst_node: usize) -> Nanos {
        if !self.link_latency {
            return 0.0;
        }
        self.config
            .as_ref()
            .expect("flag implies config")
            .link_latency_extra(src_node, dst_node)
    }

    /// The drop-model fate of the message `(rank, pc)`.
    #[inline]
    pub(crate) fn send_fate(&self, rank: usize, pc: usize) -> SendFate {
        if !self.drops {
            return SendFate {
                delivered: true,
                retries: 0,
            };
        }
        self.config
            .as_ref()
            .expect("flag implies config")
            .send_fate(rank, pc)
    }

    /// Serialize `retries` retransmissions after the first injection ends
    /// at `first_tx_end`: each waits out the (exponentially backed-off)
    /// timeout and then re-occupies the adapter for `occupancy`.  Returns
    /// the injection-complete time of the final attempt.
    #[inline]
    pub(crate) fn retransmit_chain(
        &self,
        first_tx_end: Nanos,
        occupancy: Nanos,
        retries: u32,
    ) -> Nanos {
        if retries == 0 {
            return first_tx_end;
        }
        let p = self.config.as_ref().expect("retries imply config");
        let backoff = p.drop.backoff.max(1.0);
        let mut wait = p.drop.timeout.max(0.0);
        let mut tx_end = first_tx_end;
        for _ in 0..retries {
            tx_end += wait + occupancy;
            wait *= backoff;
        }
        tx_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Perturbation {
        Perturbation {
            seed: 42,
            ..Perturbation::NONE
        }
    }

    #[test]
    fn identity_config_is_identity_and_symmetric() {
        assert!(Perturbation::NONE.is_identity());
        assert!(Perturbation::NONE.is_node_symmetric());
        // Zero magnitudes stay inert even with everything "enabled".
        let zero = Perturbation {
            seed: 7,
            straggler: StragglerSpec {
                fraction: 1.0,
                start_delay: 0.0,
                start_delay_jitter: 0.0,
                compute_slowdown: 1.0,
            },
            link: LinkSpec::NONE,
            drop: DropSpec {
                rate: 0.0,
                max_retries: 5,
                timeout: 1000.0,
                backoff: 2.0,
            },
        };
        assert!(zero.is_identity());
        assert!(zero.is_node_symmetric());
    }

    #[test]
    fn symmetry_classification_matches_the_draw_structure() {
        let mut p = base();
        p.straggler = StragglerSpec {
            fraction: 1.0,
            start_delay: 500.0,
            start_delay_jitter: 0.0,
            compute_slowdown: 1.5,
        };
        assert!(p.is_node_symmetric(), "uniform stragglers are symmetric");
        p.straggler.fraction = 0.5;
        assert!(!p.is_node_symmetric(), "per-rank picks break symmetry");
        p.straggler.fraction = 1.0;
        p.straggler.start_delay_jitter = 100.0;
        assert!(!p.is_node_symmetric(), "per-rank jitter breaks symmetry");

        let mut p = base();
        p.link.latency_pad = 250.0;
        p.link.occupancy_factor = 1.3;
        assert!(p.is_node_symmetric(), "uniform derating is symmetric");
        p.link.latency_jitter = 10.0;
        assert!(!p.is_node_symmetric(), "per-link jitter breaks symmetry");

        let mut p = base();
        p.drop.rate = 0.01;
        assert!(!p.is_node_symmetric(), "drops always break symmetry");
    }

    #[test]
    fn straggler_draws_are_deterministic_and_fraction_bounded() {
        let p = Perturbation {
            seed: 99,
            straggler: StragglerSpec {
                fraction: 0.25,
                start_delay: 1000.0,
                start_delay_jitter: 500.0,
                compute_slowdown: 2.0,
            },
            ..base()
        };
        let afflicted = (0..10_000).filter(|&r| p.rank_is_straggler(r)).count();
        // Uniform draws: expect ~2500, allow a generous band.
        assert!((2000..3000).contains(&afflicted), "got {afflicted}");
        for rank in 0..100 {
            assert_eq!(p.rank_start_delay(rank), p.rank_start_delay(rank));
            if p.rank_is_straggler(rank) {
                let d = p.rank_start_delay(rank);
                assert!((1000.0..1500.0).contains(&d));
                assert_eq!(p.rank_compute_slowdown(rank), 2.0);
            } else {
                assert_eq!(p.rank_start_delay(rank), 0.0);
                assert_eq!(p.rank_compute_slowdown(rank), 1.0);
            }
        }
    }

    #[test]
    fn mean_link_jitter_is_within_tolerance() {
        let p = Perturbation {
            seed: 3,
            link: LinkSpec {
                latency_pad: 100.0,
                latency_jitter: 1000.0,
                occupancy_factor: 1.0,
                occupancy_jitter: 0.2,
            },
            ..base()
        };
        let n = 10_000usize;
        let mean_latency: f64 =
            (0..n).map(|i| p.link_latency_extra(i, i + 1)).sum::<f64>() / n as f64;
        // Uniform over [100, 1100): mean 600 +- a few percent.
        assert!(
            (570.0..630.0).contains(&mean_latency),
            "mean latency {mean_latency}"
        );
        let mean_factor: f64 = (0..n)
            .map(|i| p.link_occupancy_factor(i, i + 1))
            .sum::<f64>()
            / n as f64;
        // Uniform over [1.0, 1.2): mean 1.1 +- a little.
        assert!((1.09..1.11).contains(&mean_factor), "mean {mean_factor}");
    }

    #[test]
    fn drop_rate_matches_first_attempt_loss_frequency() {
        let p = Perturbation {
            seed: 11,
            drop: DropSpec {
                rate: 0.1,
                max_retries: 4,
                timeout: 1000.0,
                backoff: 2.0,
            },
            ..base()
        };
        let n = 50_000usize;
        let retried = (0..n).filter(|&pc| p.send_fate(0, pc).retries > 0).count();
        let observed = retried as f64 / n as f64;
        assert!(
            (0.09..0.11).contains(&observed),
            "observed first-attempt loss rate {observed}"
        );
    }

    #[test]
    fn exhausted_budget_reports_undelivered_with_full_retries() {
        let p = Perturbation {
            seed: 1,
            drop: DropSpec {
                rate: 1.0,
                max_retries: 3,
                timeout: 500.0,
                backoff: 2.0,
            },
            ..base()
        };
        let fate = p.send_fate(4, 9);
        assert!(!fate.delivered);
        assert_eq!(fate.retries, 3);
    }

    #[test]
    fn retransmit_chain_applies_exponential_backoff() {
        let p = Perturbation {
            seed: 1,
            drop: DropSpec {
                rate: 0.5,
                max_retries: 8,
                timeout: 100.0,
                backoff: 2.0,
            },
            ..base()
        };
        let state = PerturbState::new(Some(&p), 1);
        // first_tx_end 1000, occupancy 10: retries wait 100 then 200.
        let t = state.retransmit_chain(1000.0, 10.0, 2);
        assert_eq!(t, 1000.0 + 100.0 + 10.0 + 200.0 + 10.0);
        assert_eq!(state.retransmit_chain(1000.0, 10.0, 0), 1000.0);
    }

    #[test]
    fn inert_state_returns_pass_through_values() {
        let state = PerturbState::new(None, 8);
        assert_eq!(state.start_delay(3), 0.0);
        assert_eq!(state.compute(3, 123.0), (123.0, 0.0));
        assert_eq!(state.occupancy(77.0, 0, 1), 77.0);
        assert_eq!(state.extra_latency(0, 1), 0.0);
        let fate = state.send_fate(0, 0);
        assert!(fate.delivered);
        assert_eq!(fate.retries, 0);
    }
}
