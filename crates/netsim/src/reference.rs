//! The seed discrete-event engine, retained verbatim as a reference.
//!
//! This is the original `BinaryHeap` + hash-map-mailbox replay loop the
//! calendar-queue engine in [`crate::engine`] replaced.  It stays in the
//! tree for two reasons:
//!
//! * **Differential testing** — the calendar engine's makespans are pinned
//!   against this implementation on randomized traces (the two engines share
//!   every cost formula, so any divergence is a scheduling bug, not a model
//!   change).
//! * **Benchmarking** — `bench_netsim` measures the calendar engine's
//!   events/sec improvement against this baseline; keeping the baseline
//!   compiled means the headline ratio is measured, not remembered.
//!
//! The scheduler is untouched from the seed; see [`crate::engine`] for the
//! documented cost model both engines implement.  The perturbation plane
//! ([`crate::perturb`]) was added to both engines simultaneously — every
//! draw is a pure hash of static identifiers, so the two engines stay
//! bit-for-bit comparable under every perturbation config, which is what
//! the chaos-differential suite pins.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use pip_transport::cost::{IntranodeCost, Nanos};

use crate::engine::{
    skew_percentiles, RunOptions, SimError, SimFailure, SimOutcome, SimStats, StarvedRecv,
    INTRA_RECV_FLAG_COST,
};
use crate::params::SimParams;
use crate::perturb::PerturbState;
use crate::trace::{Trace, TraceOp};

/// Totally ordered wrapper for simulation timestamps.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TimeKey(Nanos);

impl Eq for TimeKey {}

impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RankState {
    Runnable,
    BlockedOnRecv,
    BlockedOnBarrier,
    Finished,
}

#[derive(Debug)]
struct RankRuntime {
    pc: usize,
    ready_time: Nanos,
    state: RankState,
    barriers_done: usize,
    finish_time: Nanos,
}

#[derive(Debug, Default)]
struct BarrierEpisode {
    arrived: usize,
    latest_arrival: Nanos,
    waiters: Vec<usize>,
}

/// Replay `trace` with the seed heap-based scheduler.
pub(crate) fn replay(
    params: &SimParams,
    trace: &Trace,
    options: RunOptions,
) -> Result<SimOutcome, SimError> {
    trace.validate().map_err(SimError::InvalidTrace)?;
    let topology = trace.topology;
    let world = topology.world_size();
    let nic = params.nic_model();
    let intranode = params.intranode;

    let mut ranks: Vec<RankRuntime> = (0..world)
        .map(|_| RankRuntime {
            pc: 0,
            ready_time: 0.0,
            state: RankState::Runnable,
            barriers_done: 0,
            finish_time: 0.0,
        })
        .collect();

    // Node-level NIC resources.
    let mut tx_free = vec![0.0f64; topology.nodes()];
    let mut rx_free = vec![0.0f64; topology.nodes()];
    let mut nic_busy = vec![0.0f64; topology.nodes()];

    // In-flight messages: (source, dest, tag) -> arrival times, FIFO.
    let mut mailbox: HashMap<(usize, usize, u64), VecDeque<Nanos>> = HashMap::new();
    // Ranks blocked on a receive, keyed the same way.
    let mut blocked_recv: HashMap<(usize, usize, u64), usize> = HashMap::new();
    // Barrier bookkeeping per node: episode index -> state.
    let mut barriers: Vec<HashMap<usize, BarrierEpisode>> =
        (0..topology.nodes()).map(|_| HashMap::new()).collect();

    let mut stats = SimStats::default();
    let perturb = PerturbState::new(options.perturbation.as_ref(), world);
    let mut starved: Vec<StarvedRecv> = Vec::new();

    // Event queue: (time, seq, rank).
    let mut queue: BinaryHeap<Reverse<(TimeKey, u64, usize)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let push_event = |queue: &mut BinaryHeap<Reverse<(TimeKey, u64, usize)>>,
                      seq: &mut u64,
                      time: Nanos,
                      rank: usize| {
        queue.push(Reverse((TimeKey(time), *seq, rank)));
        *seq += 1;
    };

    for (rank, state) in ranks.iter_mut().enumerate() {
        let delay = perturb.start_delay(rank);
        state.ready_time = delay;
        stats.straggler_idle_total += delay;
        push_event(&mut queue, &mut seq, delay, rank);
    }

    while let Some(Reverse((TimeKey(now), _, rank))) = queue.pop() {
        let state = ranks[rank].state;
        if state == RankState::Finished
            || state == RankState::BlockedOnRecv
            || state == RankState::BlockedOnBarrier
        {
            // Blocked ranks are re-scheduled explicitly when unblocked;
            // stale events are ignored.
            continue;
        }
        let now = now.max(ranks[rank].ready_time);
        let pc = ranks[rank].pc;
        let ops = &trace.ranks[rank].ops;
        if pc >= ops.len() {
            ranks[rank].state = RankState::Finished;
            ranks[rank].finish_time = now;
            continue;
        }
        match ops[pc] {
            TraceOp::Send { dest, bytes, tag } => {
                let src_node = topology.node_of(rank);
                let dst_node = topology.node_of(dest);
                let (sender_done, arrival) = if rank == dest {
                    // Self message: a local copy.
                    let done = now + params.memcpy.copy_cost(bytes);
                    (done, Some(done))
                } else if src_node == dst_node {
                    stats.intranode_messages += 1;
                    let cost = intranode.transfer_cost(bytes, !params.warm_buffers)
                        + params.software_send_overhead;
                    let done = now + cost;
                    (done, Some(done))
                } else {
                    stats.internode_messages += 1;
                    stats.internode_bytes += bytes;
                    let sender_done =
                        now + nic.host_send_overhead(bytes) + params.software_send_overhead;
                    let occupancy = perturb.occupancy(nic.nic_occupancy(bytes), src_node, dst_node);
                    // Same pure-hash fate as the calendar engine: the draw
                    // depends only on (rank, pc), never on event order.
                    let fate = perturb.send_fate(rank, pc);
                    let tx_start = sender_done.max(tx_free[src_node]);
                    let tx_end =
                        perturb.retransmit_chain(tx_start + occupancy, occupancy, fate.retries);
                    tx_free[src_node] = tx_end;
                    nic_busy[src_node] += occupancy * (1 + fate.retries) as f64;
                    stats.retries += fate.retries as usize;
                    stats.retransmitted_bytes += bytes * fate.retries as usize;
                    if fate.delivered {
                        let rx_ready =
                            tx_end + nic.wire_latency() + perturb.extra_latency(src_node, dst_node);
                        let rx_start = rx_ready.max(rx_free[dst_node]);
                        let rx_end = rx_start + occupancy;
                        rx_free[dst_node] = rx_end;
                        nic_busy[dst_node] += occupancy;
                        (sender_done, Some(rx_end))
                    } else {
                        starved.push(StarvedRecv {
                            rank: dest,
                            source: rank,
                            tag,
                            attempts: fate.retries + 1,
                        });
                        (sender_done, None)
                    }
                };
                if let Some(arrival) = arrival {
                    mailbox
                        .entry((rank, dest, tag))
                        .or_default()
                        .push_back(arrival);
                    // Wake a receiver blocked on this message.
                    if let Some(&receiver) = blocked_recv.get(&(rank, dest, tag)) {
                        blocked_recv.remove(&(rank, dest, tag));
                        ranks[receiver].state = RankState::Runnable;
                        let wake = arrival.max(ranks[receiver].ready_time);
                        push_event(&mut queue, &mut seq, wake, receiver);
                    }
                }
                ranks[rank].pc += 1;
                ranks[rank].ready_time = sender_done;
                push_event(&mut queue, &mut seq, sender_done, rank);
            }
            TraceOp::Recv { source, bytes, tag } => {
                let key = (source, rank, tag);
                let available = mailbox.get_mut(&key).and_then(|queue| queue.pop_front());
                match available {
                    Some(arrival) => {
                        let same_node = topology.same_node(source, rank);
                        let recv_cost = if same_node || source == rank {
                            INTRA_RECV_FLAG_COST + params.software_recv_overhead
                        } else {
                            nic.host_recv_overhead(bytes) + params.software_recv_overhead
                        };
                        let done = now.max(arrival) + recv_cost;
                        ranks[rank].pc += 1;
                        ranks[rank].ready_time = done;
                        push_event(&mut queue, &mut seq, done, rank);
                    }
                    None => {
                        ranks[rank].state = RankState::BlockedOnRecv;
                        ranks[rank].ready_time = now;
                        blocked_recv.insert(key, rank);
                    }
                }
            }
            TraceOp::CopyIntra {
                bytes,
                mechanism,
                first_use,
            } => {
                let cost_model = mechanism
                    .map(IntranodeCost::defaults_for)
                    .unwrap_or(intranode);
                let cold = first_use && !params.warm_buffers;
                let done = now + cost_model.transfer_cost(bytes, cold);
                ranks[rank].pc += 1;
                ranks[rank].ready_time = done;
                push_event(&mut queue, &mut seq, done, rank);
            }
            TraceOp::Reduce { bytes } => {
                let done = now + params.memcpy.reduce_cost(bytes);
                ranks[rank].pc += 1;
                ranks[rank].ready_time = done;
                push_event(&mut queue, &mut seq, done, rank);
            }
            TraceOp::Codec { bytes } => {
                let done = now + params.memcpy.copy_cost(bytes);
                ranks[rank].pc += 1;
                ranks[rank].ready_time = done;
                push_event(&mut queue, &mut seq, done, rank);
            }
            TraceOp::Delay { nanos } => {
                let done = now + nanos.max(0.0);
                ranks[rank].pc += 1;
                ranks[rank].ready_time = done;
                push_event(&mut queue, &mut seq, done, rank);
            }
            TraceOp::Compute { nanos } => {
                // Same timeline effect as a delay; accounted separately
                // so overlap efficiency can be derived from the stats.
                let (busy, extra) = perturb.compute(rank, nanos);
                stats.compute_total += busy;
                stats.straggler_idle_total += extra;
                let done = now + busy;
                ranks[rank].pc += 1;
                ranks[rank].ready_time = done;
                push_event(&mut queue, &mut seq, done, rank);
            }
            TraceOp::LocalBarrier => {
                let node = topology.node_of(rank);
                let ppn = topology.ppn();
                let episode_index = ranks[rank].barriers_done;
                let episode = barriers[node].entry(episode_index).or_default();
                episode.arrived += 1;
                episode.latest_arrival = episode.latest_arrival.max(now);
                if episode.arrived == ppn {
                    let release = episode.latest_arrival + params.barrier_cost(ppn);
                    stats.barrier_episodes += 1;
                    let waiters: Vec<usize> = episode
                        .waiters
                        .drain(..)
                        .chain(std::iter::once(rank))
                        .collect();
                    barriers[node].remove(&episode_index);
                    for waiter in waiters {
                        ranks[waiter].state = RankState::Runnable;
                        ranks[waiter].pc += 1;
                        ranks[waiter].barriers_done += 1;
                        ranks[waiter].ready_time = release;
                        push_event(&mut queue, &mut seq, release, waiter);
                    }
                } else {
                    episode.waiters.push(rank);
                    ranks[rank].state = RankState::BlockedOnBarrier;
                    ranks[rank].ready_time = now;
                }
            }
        }
    }

    // Every rank must have drained its program; otherwise the schedule
    // deadlocked (validation catches most causes, but e.g. circular
    // waits are only detectable here) — unless the drop model starved
    // messages, in which case the structured failure names them.
    let stuck: Vec<usize> = ranks
        .iter()
        .enumerate()
        .filter(|(_, r)| r.state != RankState::Finished)
        .map(|(rank, _)| rank)
        .collect();
    if !stuck.is_empty() {
        if starved.is_empty() {
            return Err(SimError::Deadlock { stuck_ranks: stuck });
        }
        starved.sort_unstable_by_key(|s| (s.rank, s.source, s.tag));
        return Err(SimError::Failure(SimFailure {
            starved,
            stuck_ranks: stuck,
        }));
    }

    stats.nic_busy_total = nic_busy.iter().sum();
    stats.nic_busy_max = nic_busy.iter().copied().fold(0.0, Nanos::max);

    let mut sorted_finish: Vec<Nanos> = ranks.iter().map(|r| r.finish_time).collect();
    sorted_finish.sort_unstable_by(|a, b| a.total_cmp(b));
    (stats.finish_skew_p50, stats.finish_skew_p99) = skew_percentiles(&sorted_finish, world, 1);

    let makespan = ranks.iter().map(|r| r.finish_time).fold(0.0, Nanos::max);
    let rank_finish: Vec<Nanos> = if options.record_rank_finish {
        ranks.iter().map(|r| r.finish_time).collect()
    } else {
        Vec::new()
    };
    Ok(SimOutcome {
        makespan,
        rank_finish,
        stats,
    })
}
