//! # pip-netsim
//!
//! A discrete-event simulator for MPI collective communication schedules.
//!
//! The correctness of every algorithm in this workspace is established by
//! running it on the thread-based PiP runtime and comparing against an
//! oracle.  Its *performance at the paper's scale* — 128 nodes × 18
//! processes per node on 100 Gb/s Omni-Path — is produced here: the same
//! algorithm is executed once more against a recording communicator, the
//! resulting per-rank [`trace::Trace`] is handed to the [`engine`], and the
//! engine replays it against the cost models of `pip-transport`:
//!
//! * every rank is a sequential processor that pays host overhead for each
//!   send/receive and the modelled copy cost for each intra-node transfer;
//! * every node has one NIC that serializes injections at the adapter's
//!   message rate and bandwidth (the resource the multi-object design keeps
//!   busy);
//! * the wire adds latency; intra-node messages bypass the NIC and are
//!   charged to the configured intra-node mechanism (PiP, CMA, XPMEM or
//!   POSIX-SHMEM);
//! * node-local barriers synchronize all ranks of a node.
//!
//! The simulator is deterministic: identical traces and parameters produce
//! identical reports.
//!
//! Two scheduler implementations coexist: the calendar-queue engine in
//! [`engine`] (the default) and the seed `BinaryHeap` engine retained as a
//! differential baseline behind [`engine::SimEngine::run_reference`].  For
//! node-symmetric schedules, [`fold`] partitions ranks into equivalence
//! classes and [`engine::SimEngine::run_folded`] replays one representative
//! per class, which is what makes million-rank projections tractable.

pub mod cluster;
pub mod engine;
pub mod fold;
pub mod network;
pub mod params;
pub mod perturb;
mod reference;
pub mod trace;

pub use cluster::ClusterSpec;
pub use engine::{RunOptions, SimEngine, SimError, SimFailure, SimOutcome, SimStats, StarvedRecv};
pub use fold::{FoldGroup, FoldReport, FoldedTrace};
pub use network::{simulate, simulate_degraded, simulate_folded, SimulationReport};
pub use params::SimParams;
pub use perturb::{DropSpec, LinkSpec, Perturbation, SendFate, StragglerSpec};
pub use trace::{OpVec, RankTrace, Trace, TraceOp};
