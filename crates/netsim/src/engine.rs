//! The discrete-event engine that replays a [`Trace`] against the cost
//! models and produces completion times.
//!
//! ## Model
//!
//! * Every rank is a sequential processor: an operation starts when the
//!   previous one has completed.
//! * `Send` charges the sender its host overhead (NIC `o` plus library
//!   software overhead) and then hands the message to the node's adapter,
//!   which serializes injections: a new message may enter the wire only
//!   `max(g_nic, bytes/G)` after the previous one from the same node.  The
//!   receiving node's adapter serializes arrivals the same way.  Intra-node
//!   messages bypass the adapter entirely and are charged to the configured
//!   intra-node mechanism.
//! * `Recv` completes at `max(posted, arrival) + o_recv`.
//! * `LocalBarrier` releases all ranks of the node at the time the last of
//!   them arrives plus the barrier cost.
//!
//! The engine is deterministic: ties in time are broken by a monotonically
//! increasing sequence number.
//!
//! ## Scheduler
//!
//! The seed implementation (preserved in `crate::reference`) kept a
//! `BinaryHeap` of `(time, seq, rank)` events and hash-map mailboxes keyed
//! by `(source, dest, tag)`.  Both show up hard in profiles at paper scale
//! (128 nodes x 18 ranks): every op pays two `O(log n)` heap moves and at
//! least one SipHash lookup.  This engine replaces them with:
//!
//! * a **calendar queue**: a ring of 1024 time buckets whose width is
//!   auto-tuned to the NIC injection gap (the dominant event spacing), with
//!   a spill heap for far-future events (long `Delay`s).  Pushes are O(1);
//!   pops sort one small bucket at a time, preserving the exact global
//!   `(time, seq)` order of the heap version.
//! * **dense match tables**: per-receiver lanes (source, tag, pending
//!   arrival ring) scanned linearly.  Steady-state collectives keep one or
//!   two live lanes per rank, so matching is a couple of compares instead
//!   of a hash.
//! * **generation-tagged events**: each rank carries a generation counter,
//!   bumped whenever it blocks or finishes; events record the generation
//!   they were scheduled under and stale ones are dropped on pop without
//!   touching rank state.
//! * **inline op chaining**: purely rank-local ops (`Delay`, `Compute`,
//!   `Reduce`, `CopyIntra`) touch no shared state and are applied in a
//!   burst without a queue round-trip per op.  The chain breaks before any
//!   op that reads or writes shared state (`Send`, `Recv`, `LocalBarrier`),
//!   which is re-queued at the advanced clock so node-level resources are
//!   still claimed in global time order.
//!
//! ## Folded replay
//!
//! [`SimEngine::run_folded`] exploits schedule symmetry (see
//! [`crate::fold`]): when every node runs the same program modulo a node
//! relabeling, simulating node 0's ranks alone reproduces the full
//! system's timing.  Outgoing internode sends register the mirror-image
//! *incoming* message (from the node the group maps onto node 0) with the
//! same injection-complete time; those pending arrivals are applied to the
//! receive side of node 0's adapter as soon as simulated time advances,
//! in the order the full replay would process them.  Statistics are scaled
//! by the node count and per-rank finish times are broadcast across each
//! equivalence class.  This turns an `O(world)` replay into `O(ppn)`,
//! which is what makes million-rank projection sweeps tractable.
//!
//! ## Perturbation
//!
//! A [`Perturbation`] in [`RunOptions`] degrades the fabric: straggler
//! start delays and compute slowdowns, per-link latency jitter and
//! bandwidth derating, and probabilistic message drops with a
//! retry/timeout/backoff model (see [`crate::perturb`]).  All draws are
//! pure hashes of static identifiers, so the calendar engine, the seed
//! reference engine and (for node-symmetric configs) the folded replay
//! produce bit-identical perturbed timings.  A message whose retry budget
//! is exhausted starves its receive and the run reports a structured
//! [`SimFailure`] naming the starved `(rank, tag)` pairs instead of an
//! undiagnosable deadlock.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pip_transport::cost::{IntranodeCost, IntranodeMechanism, Nanos};

use crate::fold::FoldedTrace;
use crate::params::SimParams;
use crate::perturb::{PerturbState, Perturbation};
use crate::trace::{Trace, TraceError, TraceOp};

/// Fixed cost of completing an intra-node receive (polling the flag the
/// sender set in shared memory).  The payload copy itself is charged to the
/// sender's transfer cost.
pub(crate) const INTRA_RECV_FLAG_COST: Nanos = 40.0;

/// Totally ordered wrapper for simulation timestamps.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TimeKey(Nanos);

impl Eq for TimeKey {}

impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Options controlling what a replay records and how the fabric behaves.
///
/// Build one with [`RunOptions::recorded`] or [`RunOptions::summary`] and
/// refine it per sub-run with the `with_*` builders, so one call site can
/// mix recorded, summary-only, and perturbed replays without ad-hoc struct
/// literals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Record per-rank completion times in [`SimOutcome::rank_finish`].
    ///
    /// Defaults to `true` (the historical behaviour).  Summary-only
    /// callers — sweeps over very large worlds in particular — should turn
    /// this off; the makespan and statistics are unaffected and the
    /// `rank_finish` vector is left empty.
    pub record_rank_finish: bool,
    /// Degraded-fabric injection (see [`Perturbation`]).  `None` — the
    /// default — simulates a healthy fabric and costs nothing on the hot
    /// path.
    pub perturbation: Option<Perturbation>,
}

impl RunOptions {
    /// The historical default: record per-rank finish times, healthy fabric.
    pub const fn recorded() -> Self {
        Self {
            record_rank_finish: true,
            perturbation: None,
        }
    }

    /// Summary-only: skip the per-rank finish vector (makespan and
    /// statistics are unaffected).
    pub const fn summary() -> Self {
        Self {
            record_rank_finish: false,
            perturbation: None,
        }
    }

    /// Enable or disable per-rank finish recording for this sub-run.
    #[must_use]
    pub fn with_rank_finish(mut self, record: bool) -> Self {
        self.record_rank_finish = record;
        self
    }

    /// Attach a degraded-fabric config to this sub-run.
    #[must_use]
    pub fn with_perturbation(mut self, perturbation: Perturbation) -> Self {
        self.perturbation = Some(perturbation);
        self
    }
}

impl Default for RunOptions {
    fn default() -> Self {
        Self::recorded()
    }
}

// ---------------------------------------------------------------------------
// Calendar queue
// ---------------------------------------------------------------------------

/// Number of buckets in the calendar ring.  Power of two so the slot of a
/// bucket index is a mask.
const CALENDAR_BUCKETS: usize = 1024;
const CALENDAR_MASK: u64 = CALENDAR_BUCKETS as u64 - 1;

/// A scheduled wakeup for one rank.
#[derive(Debug, Clone, Copy)]
struct Event {
    time: Nanos,
    seq: u64,
    rank: u32,
    gen: u32,
}

/// Ordering adapter for the overflow heap (min-heap via `Reverse`).
#[derive(Debug)]
struct OverflowEvent(Event);

impl PartialEq for OverflowEvent {
    fn eq(&self, other: &Self) -> bool {
        self.0.seq == other.0.seq && TimeKey(self.0.time) == TimeKey(other.0.time)
    }
}

impl Eq for OverflowEvent {}

impl PartialOrd for OverflowEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OverflowEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        TimeKey(self.0.time)
            .cmp(&TimeKey(other.0.time))
            .then(self.0.seq.cmp(&other.0.seq))
    }
}

/// A calendar queue: O(1) insertion into a ring of fixed-width time
/// buckets, with a spill heap for events beyond the ring's horizon.
///
/// Pop order is exactly ascending `(time, seq)` — identical to the
/// `BinaryHeap` scheduler it replaces — because events are only ever popped
/// out of the single *current* bucket, which is sorted once when the queue
/// advances into it.
#[derive(Debug)]
struct CalendarQueue {
    /// Reciprocal of the bucket width; multiply to find a bucket index.
    inv_width: f64,
    /// Absolute index of the bucket currently being drained.
    base: u64,
    /// The ring.  Slot `b & CALENDAR_MASK` holds bucket `b` for
    /// `base < b < base + CALENDAR_BUCKETS`.
    ring: Vec<Vec<Event>>,
    /// Events currently stored in the ring (not counting `current`).
    ring_len: usize,
    /// Far-future events, min-heap on `(time, seq)`.
    overflow: BinaryHeap<Reverse<OverflowEvent>>,
    /// Events that land in (or before) the bucket being drained — wakeups
    /// and re-queues at the current horizon.  A small min-heap merged with
    /// `current` at pop time; this keeps insertion O(log k) instead of an
    /// O(n) splice into the sorted bucket.
    incoming: BinaryHeap<Reverse<OverflowEvent>>,
    /// The drained current bucket, sorted ascending `(time, seq)`.
    current: Vec<Event>,
    /// Read position within `current`.
    cursor: usize,
    /// Next sequence number (the deterministic tie-break).
    seq: u64,
    /// Total events stored across `current`, `ring`, and `overflow`.
    len: usize,
}

impl CalendarQueue {
    /// `hint` is the expected steady-state event population (one in-flight
    /// event per runnable rank); the merge structures are pre-sized to it so
    /// the first simulated round does not grow them step by step.
    fn new(width: Nanos, hint: usize) -> Self {
        let width = if width.is_finite() && width > 0.0 {
            width
        } else {
            1.0
        };
        Self {
            inv_width: 1.0 / width,
            base: 0,
            ring: (0..CALENDAR_BUCKETS).map(|_| Vec::new()).collect(),
            ring_len: 0,
            overflow: BinaryHeap::new(),
            incoming: BinaryHeap::with_capacity(hint),
            current: Vec::with_capacity(hint),
            cursor: 0,
            seq: 0,
            len: 0,
        }
    }

    #[inline]
    fn bucket_of(&self, time: Nanos) -> u64 {
        // Times are non-negative; enormous times saturate the cast, which
        // simply routes them through the overflow heap.
        (time * self.inv_width) as u64
    }

    /// Schedule a fresh event (assigns the next sequence number).
    #[inline]
    fn push(&mut self, time: Nanos, rank: u32, gen: u32) {
        let seq = self.seq;
        self.seq += 1;
        self.insert(Event {
            time,
            seq,
            rank,
            gen,
        });
    }

    /// Re-insert a popped event, preserving its original sequence number
    /// (and therefore its position in the global tie order).
    #[inline]
    fn reinsert(&mut self, ev: Event) {
        self.insert(ev);
    }

    fn insert(&mut self, ev: Event) {
        self.len += 1;
        let b = self.bucket_of(ev.time);
        if b <= self.base {
            // Belongs to the bucket being drained (or, for folded-replay
            // wakeups, an earlier one): goes to the merge heap.
            self.incoming.push(Reverse(OverflowEvent(ev)));
        } else if b < self.base + CALENDAR_BUCKETS as u64 {
            self.ring[(b & CALENDAR_MASK) as usize].push(ev);
            self.ring_len += 1;
        } else {
            self.overflow.push(Reverse(OverflowEvent(ev)));
        }
    }

    fn pop(&mut self) -> Option<Event> {
        loop {
            match (self.current.get(self.cursor), self.incoming.peek()) {
                (Some(&cur), Some(Reverse(OverflowEvent(inc)))) => {
                    self.len -= 1;
                    let inc_first = inc
                        .time
                        .total_cmp(&cur.time)
                        .then(inc.seq.cmp(&cur.seq))
                        .is_lt();
                    if inc_first {
                        let Some(Reverse(OverflowEvent(ev))) = self.incoming.pop() else {
                            unreachable!()
                        };
                        return Some(ev);
                    }
                    self.cursor += 1;
                    return Some(cur);
                }
                (Some(&cur), None) => {
                    self.cursor += 1;
                    self.len -= 1;
                    return Some(cur);
                }
                (None, Some(_)) => {
                    self.len -= 1;
                    let Some(Reverse(OverflowEvent(ev))) = self.incoming.pop() else {
                        unreachable!()
                    };
                    return Some(ev);
                }
                (None, None) => {
                    if self.len == 0 {
                        self.current.clear();
                        self.cursor = 0;
                        return None;
                    }
                    self.advance();
                }
            }
        }
    }

    /// True when an event pushed *now* at time `t` would be the very next
    /// pop — i.e. every queued event is strictly later than `t` (a fresh
    /// push always receives the largest sequence number, so it loses any
    /// tie at equal times).  This is what lets the replay loop continue a
    /// rank inline instead of a push immediately followed by a pop.
    fn next_is_after(&mut self, t: Nanos) -> bool {
        loop {
            let head = match (self.current.get(self.cursor), self.incoming.peek()) {
                (Some(cur), Some(Reverse(OverflowEvent(inc)))) => cur.time.min(inc.time),
                (Some(cur), None) => cur.time,
                (None, Some(Reverse(OverflowEvent(inc)))) => inc.time,
                (None, None) => {
                    if self.len == 0 {
                        return true;
                    }
                    self.advance();
                    continue;
                }
            };
            return head.total_cmp(&t).is_gt();
        }
    }

    /// Move to the next non-empty bucket and drain it into `current`.
    fn advance(&mut self) {
        self.current.clear();
        self.cursor = 0;
        loop {
            if self.ring_len == 0 {
                // Ring exhausted: jump straight to the overflow's horizon
                // instead of stepping through empty buckets.
                match self.overflow.peek() {
                    Some(Reverse(OverflowEvent(min))) => self.base = self.bucket_of(min.time),
                    None => return,
                }
            } else {
                self.base += 1;
            }
            // Pull overflow events that now fall inside the ring's window.
            while let Some(Reverse(OverflowEvent(ev))) = self.overflow.peek() {
                let b = self.bucket_of(ev.time);
                if b >= self.base + CALENDAR_BUCKETS as u64 {
                    break;
                }
                let Some(Reverse(OverflowEvent(ev))) = self.overflow.pop() else {
                    unreachable!()
                };
                if b <= self.base {
                    self.current.push(ev);
                } else {
                    self.ring[(b & CALENDAR_MASK) as usize].push(ev);
                    self.ring_len += 1;
                }
            }
            let slot = (self.base & CALENDAR_MASK) as usize;
            if !self.ring[slot].is_empty() {
                self.ring_len -= self.ring[slot].len();
                let mut drained = std::mem::take(&mut self.ring[slot]);
                self.current.append(&mut drained);
                // Hand the allocation back so the slot stays warm.
                self.ring[slot] = drained;
            }
            if !self.current.is_empty() {
                self.current
                    .sort_unstable_by(|a, b| a.time.total_cmp(&b.time).then(a.seq.cmp(&b.seq)));
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Message matching
// ---------------------------------------------------------------------------

/// Keep up to this many drained lanes per receiver so their arrival
/// buffers stay allocated across rounds.
const LANE_KEEP: usize = 8;

/// One `(source, tag)` stream of messages into a receiver.
#[derive(Debug)]
struct Lane {
    source: u32,
    tag: u64,
    /// The receiver is blocked waiting on this lane.
    blocked: bool,
    /// Read position in `arrivals` (drain-reset ring).
    head: usize,
    /// FIFO of arrival times.
    arrivals: Vec<Nanos>,
}

/// Dense per-receiver match tables: a short vector of lanes scanned
/// linearly.  Collectives post matching sends and receives round by round,
/// so the live lane count per rank stays tiny and the scan beats hashing.
#[derive(Debug)]
struct MatchTable {
    lanes: Vec<Vec<Lane>>,
}

impl MatchTable {
    fn new(receivers: usize) -> Self {
        Self {
            lanes: (0..receivers).map(|_| Vec::new()).collect(),
        }
    }

    /// Record a message arrival.  Returns `true` when the receiver was
    /// blocked on this lane (the caller must wake it).
    fn deliver(&mut self, source: u32, dest: usize, tag: u64, arrival: Nanos) -> bool {
        let lanes = &mut self.lanes[dest];
        let lane = match lanes
            .iter_mut()
            .position(|l| l.source == source && l.tag == tag)
        {
            Some(i) => &mut lanes[i],
            None => {
                lanes.push(Lane {
                    source,
                    tag,
                    blocked: false,
                    head: 0,
                    arrivals: Vec::new(),
                });
                lanes.last_mut().expect("just pushed")
            }
        };
        lane.arrivals.push(arrival);
        std::mem::replace(&mut lane.blocked, false)
    }

    /// Take the oldest pending arrival for `(source, dest, tag)`.  When no
    /// message is pending the receiver is marked blocked on the lane and
    /// `None` is returned.
    fn consume(&mut self, source: u32, dest: usize, tag: u64) -> Option<Nanos> {
        let lanes = &mut self.lanes[dest];
        match lanes
            .iter()
            .position(|l| l.source == source && l.tag == tag)
        {
            Some(i) => {
                let lane = &mut lanes[i];
                if lane.head < lane.arrivals.len() {
                    let arrival = lane.arrivals[lane.head];
                    lane.head += 1;
                    if lane.head == lane.arrivals.len() {
                        lane.head = 0;
                        lane.arrivals.clear();
                        if lanes.len() > LANE_KEEP {
                            lanes.swap_remove(i);
                        }
                    }
                    Some(arrival)
                } else {
                    lane.blocked = true;
                    None
                }
            }
            None => {
                lanes.push(Lane {
                    source,
                    tag,
                    blocked: true,
                    head: 0,
                    arrivals: Vec::new(),
                });
                None
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rank and barrier state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RankState {
    Runnable,
    BlockedOnRecv,
    BlockedOnBarrier,
    Finished,
}

#[derive(Debug)]
struct RankRuntime {
    pc: usize,
    gen: u32,
    ready_time: Nanos,
    finish_time: Nanos,
    state: RankState,
}

impl RankRuntime {
    fn fresh() -> Self {
        Self {
            pc: 0,
            gen: 0,
            ready_time: 0.0,
            finish_time: 0.0,
            state: RankState::Runnable,
        }
    }
}

/// The single active barrier episode of one node.
///
/// A rank can only reach its next `LocalBarrier` after the previous episode
/// released *all* of the node's ranks, so at most one episode per node is
/// ever in flight and a flat slot replaces the seed's episode-index map.
#[derive(Debug, Default)]
struct BarrierSlot {
    arrived: usize,
    latest: Nanos,
    waiters: Vec<u32>,
}

// ---------------------------------------------------------------------------
// Public outcome types
// ---------------------------------------------------------------------------

/// Per-run simulation statistics beyond the makespan.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Messages that crossed the network.
    pub internode_messages: usize,
    /// Messages whose endpoints shared a node.
    pub intranode_messages: usize,
    /// Payload bytes that crossed the network.
    pub internode_bytes: usize,
    /// Total simulated NIC injection occupancy summed over nodes.
    pub nic_busy_total: Nanos,
    /// Largest single-node NIC injection occupancy.
    pub nic_busy_max: Nanos,
    /// Number of node-local barrier episodes completed.
    pub barrier_episodes: usize,
    /// Total application compute time ([`TraceOp::Compute`]) summed over
    /// ranks, *including* straggler-induced inflation.
    pub compute_total: Nanos,
    /// Retransmissions performed by the drop/retry model (0 on a healthy
    /// fabric).
    pub retries: usize,
    /// Payload bytes retransmitted by the drop/retry model.
    pub retransmitted_bytes: usize,
    /// Time injected into rank timelines by the straggler model: start
    /// delays plus compute-slowdown inflation, summed over ranks.
    pub straggler_idle_total: Nanos,
    /// Median rank-finish skew: the median of `finish - earliest_finish`
    /// over ranks (0 when every rank finishes together).
    pub finish_skew_p50: Nanos,
    /// 99th-percentile rank-finish skew (nearest-rank percentile).
    pub finish_skew_p99: Nanos,
}

/// Rank-finish skew percentiles from class-sorted finish times.
///
/// `sorted` holds one finish time per equivalence class in ascending order
/// and `stride` is the class multiplicity: the full world's sorted finish
/// array has `sorted[i / stride]` at position `i`.  The full replay passes
/// the whole world with `stride == 1`; the folded replay passes node 0's
/// classes with `stride == nodes`, which reproduces the full replay's
/// percentiles bit for bit because class members finish at bitwise-equal
/// times.
pub(crate) fn skew_percentiles(sorted: &[Nanos], world: usize, stride: usize) -> (Nanos, Nanos) {
    if sorted.is_empty() || world == 0 {
        return (0.0, 0.0);
    }
    let lo = sorted[0];
    let pick = |p: f64| {
        let idx = ((world - 1) as f64 * p).round() as usize;
        sorted[(idx / stride).min(sorted.len() - 1)] - lo
    };
    (pick(0.50), pick(0.99))
}

/// The outcome of replaying one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Completion time of the whole schedule (maximum over ranks).
    pub makespan: Nanos,
    /// Per-rank completion times.  Empty when the run was configured with
    /// [`RunOptions::record_rank_finish`] set to `false`.
    pub rank_finish: Vec<Nanos>,
    /// Aggregate statistics.
    pub stats: SimStats,
}

/// A receive that can never complete because the matching message exhausted
/// its retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StarvedRecv {
    /// The receiving rank.
    pub rank: usize,
    /// The sending rank whose message was never delivered.
    pub source: usize,
    /// The message tag.
    pub tag: u64,
    /// Transmission attempts made before giving up (`max_retries + 1`).
    pub attempts: u32,
}

/// Structured description of a run that failed under the drop model: the
/// fabric lost messages beyond their retry budget, so the schedule cannot
/// complete — reported instead of an indistinguishable deadlock (and, in a
/// real system, instead of a hang).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimFailure {
    /// Receives starved by undeliverable messages, sorted by
    /// `(rank, source, tag)`.
    pub starved: Vec<StarvedRecv>,
    /// Every rank that never completed its program (a superset of the
    /// starved receivers: ranks upstream of a starved rank stall too).
    pub stuck_ranks: Vec<usize>,
}

/// Errors the engine can report.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The trace failed structural validation.
    InvalidTrace(TraceError),
    /// The schedule deadlocked: some ranks can never make progress (their
    /// receives or barriers are never satisfied).
    Deadlock {
        /// Ranks that never completed their programs.
        stuck_ranks: Vec<usize>,
    },
    /// The drop model exhausted at least one message's retry budget, so the
    /// schedule cannot complete.  Unlike [`SimError::Deadlock`] this names
    /// the starved `(rank, tag)` pairs, distinguishing fabric loss from a
    /// schedule bug.
    Failure(SimFailure),
    /// A directly-replayed folded trace was given a node-asymmetric
    /// [`Perturbation`]: per-rank or per-link draws make node 0
    /// unrepresentative and the full trace is not available to fall back
    /// to.  Use [`SimEngine::run_with`] (or a symmetric config) instead.
    AsymmetricPerturbation,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidTrace(err) => write!(f, "invalid trace: {err}"),
            SimError::Deadlock { stuck_ranks } => {
                write!(f, "simulation deadlocked; stuck ranks: {stuck_ranks:?}")
            }
            SimError::Failure(failure) => {
                let first = failure.starved.first();
                write!(
                    f,
                    "simulation failed: {} message(s) exhausted the retry budget",
                    failure.starved.len()
                )?;
                if let Some(s) = first {
                    write!(
                        f,
                        " (first starved recv: rank {} from {} tag {} after {} attempts)",
                        s.rank, s.source, s.tag, s.attempts
                    )?;
                }
                write!(f, "; stuck ranks: {:?}", failure.stuck_ranks)
            }
            SimError::AsymmetricPerturbation => write!(
                f,
                "folded replay requires a node-symmetric perturbation; \
                 replay the full trace instead"
            ),
        }
    }
}

impl std::error::Error for SimError {}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// The discrete-event simulator.
#[derive(Debug)]
pub struct SimEngine {
    params: SimParams,
}

impl SimEngine {
    /// Create an engine with the given parameters.
    pub fn new(params: SimParams) -> Self {
        Self { params }
    }

    /// The engine's parameters.
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// Bucket width for the calendar queue: a small multiple of the NIC
    /// injection gap, which is the natural spacing between events in a
    /// message-dominated schedule.
    fn bucket_width(&self) -> Nanos {
        (self.params.nic.nic_message_gap * 8.0).max(1.0)
    }

    /// Replay `trace` and return completion times and statistics.
    pub fn run(&self, trace: &Trace) -> Result<SimOutcome, SimError> {
        self.run_with(trace, RunOptions::default())
    }

    /// Replay `trace` with explicit recording options.
    pub fn run_with(&self, trace: &Trace, options: RunOptions) -> Result<SimOutcome, SimError> {
        self.replay_full(trace, options)
    }

    /// Replay `trace` with the seed heap-based scheduler (see
    /// `crate::reference`).  Kept for differential testing and as the
    /// baseline the calendar engine is benchmarked against.
    pub fn run_reference(&self, trace: &Trace) -> Result<SimOutcome, SimError> {
        crate::reference::replay(&self.params, trace, RunOptions::default())
    }

    /// [`Self::run_reference`] with explicit options, including
    /// perturbation — this is what the chaos-differential suite pins the
    /// calendar engine against.
    pub fn run_reference_with(
        &self,
        trace: &Trace,
        options: RunOptions,
    ) -> Result<SimOutcome, SimError> {
        crate::reference::replay(&self.params, trace, options)
    }

    /// Replay `trace`, folding it by symmetry when possible.
    ///
    /// When [`FoldedTrace::detect`] finds a node-transitive symmetry, only
    /// node 0's ranks are simulated and the result is projected onto the
    /// full world; otherwise (and whenever the folded replay itself
    /// deadlocks, so the stuck-rank list stays authoritative) this falls
    /// back to the full replay.  The outcome is identical to [`Self::run`]
    /// up to float accumulation order in `compute_total`, `nic_busy_total`
    /// and `nic_busy_max`.
    pub fn run_folded(&self, trace: &Trace) -> Result<SimOutcome, SimError> {
        self.run_folded_with(trace, RunOptions::default())
    }

    /// [`Self::run_folded`] with explicit recording options.
    ///
    /// A node-asymmetric [`Perturbation`] (per-rank straggler draws,
    /// per-link jitter, or drops) makes node 0 unrepresentative, so
    /// detection refuses to fold and the full world is replayed; symmetric
    /// configs still fold.
    pub fn run_folded_with(
        &self,
        trace: &Trace,
        options: RunOptions,
    ) -> Result<SimOutcome, SimError> {
        trace.validate().map_err(SimError::InvalidTrace)?;
        match FoldedTrace::detect_with(trace, options.perturbation.as_ref()) {
            Some(folded) => match self.replay_folded(&folded, options) {
                // The folded stuck list only names node-0 ranks; rerun the
                // full world so the caller sees every stuck rank.
                Err(SimError::Deadlock { .. }) => self.replay_full(trace, options),
                other => other,
            },
            None => self.replay_full(trace, options),
        }
    }

    /// Replay an already-folded trace directly.
    ///
    /// This skips detection and full-trace validation, which is the point:
    /// at projection scale (10^5–10^6 ranks) the full trace is never
    /// materialized.  The caller vouches for the symmetry (e.g. via
    /// [`FoldedTrace::detect`] or probe-verified compilation).  A reported
    /// deadlock names node-0 ranks only — one representative per stuck
    /// equivalence class.
    ///
    /// Only node-symmetric perturbations are accepted: the full trace is
    /// not available to fall back to, so a config with per-rank or
    /// per-link draws is rejected with
    /// [`SimError::AsymmetricPerturbation`] rather than silently producing
    /// a node-0-only approximation.
    pub fn run_folded_trace(
        &self,
        folded: &FoldedTrace,
        options: RunOptions,
    ) -> Result<SimOutcome, SimError> {
        if options
            .perturbation
            .as_ref()
            .is_some_and(|p| !p.is_node_symmetric())
        {
            return Err(SimError::AsymmetricPerturbation);
        }
        self.replay_folded(folded, options)
    }

    fn replay_full(&self, trace: &Trace, options: RunOptions) -> Result<SimOutcome, SimError> {
        trace.validate().map_err(SimError::InvalidTrace)?;
        let topology = trace.topology;
        let world = topology.world_size();
        let nic = self.params.nic_model();
        let intranode = self.params.intranode;

        let mut ranks: Vec<RankRuntime> = (0..world).map(|_| RankRuntime::fresh()).collect();

        // Node-level NIC resources.
        let mut tx_free = vec![0.0f64; topology.nodes()];
        let mut rx_free = vec![0.0f64; topology.nodes()];
        let mut nic_busy = vec![0.0f64; topology.nodes()];

        let mut table = MatchTable::new(world);
        let mut barriers: Vec<BarrierSlot> = (0..topology.nodes())
            .map(|_| BarrierSlot::default())
            .collect();
        let mut release_buf: Vec<u32> = Vec::new();

        let mut stats = SimStats::default();
        let mut queue = CalendarQueue::new(self.bucket_width(), world);
        let perturb = PerturbState::new(options.perturbation.as_ref(), world);
        // Receives starved by messages whose retry budget was exhausted.
        let mut starved: Vec<StarvedRecv> = Vec::new();

        // Chunked pipelines repeat one op shape thousands of times; a
        // one-entry memo per local-op kind turns the repeated cost-model
        // evaluation into a compare and an add.
        let mut reduce_memo: (usize, Nanos) = (usize::MAX, 0.0);
        let mut codec_memo: (usize, Nanos) = (usize::MAX, 0.0);
        let mut copy_memo: (usize, Option<IntranodeMechanism>, bool, Nanos) =
            (usize::MAX, None, false, 0.0);

        for (rank, state) in ranks.iter_mut().enumerate() {
            let delay = perturb.start_delay(rank);
            state.ready_time = delay;
            stats.straggler_idle_total += delay;
            queue.push(delay, rank as u32, 0);
        }

        while let Some(ev) = queue.pop() {
            let rank = ev.rank as usize;
            if ev.gen != ranks[rank].gen {
                // Stale wakeup from before the rank last blocked/finished.
                continue;
            }
            let mut now = ev.time.max(ranks[rank].ready_time);
            let ops = &trace.ranks[rank].ops;
            // Chain purely rank-local ops without queue round-trips; break
            // (and re-queue) before anything touching shared state.
            let mut chained = false;
            loop {
                let pc = ranks[rank].pc;
                if pc >= ops.len() {
                    ranks[rank].state = RankState::Finished;
                    ranks[rank].finish_time = now;
                    ranks[rank].gen = ranks[rank].gen.wrapping_add(1);
                    break;
                }
                let op = ops[pc];
                let shared = matches!(
                    op,
                    TraceOp::Send { .. } | TraceOp::Recv { .. } | TraceOp::LocalBarrier
                );
                // A chained rank may only touch shared state (NIC slots,
                // mailboxes, barriers) if nothing else is scheduled before
                // its advanced clock — applying the op right away is then
                // indistinguishable from a re-queue immediately followed by
                // the pop of that same event.  Otherwise resume through the
                // queue so claims happen in global time order.
                if shared && chained && !queue.next_is_after(now) {
                    ranks[rank].ready_time = now;
                    queue.push(now, ev.rank, ranks[rank].gen);
                    break;
                }
                match op {
                    TraceOp::Delay { nanos } => {
                        now += nanos.max(0.0);
                        ranks[rank].pc += 1;
                        chained = true;
                    }
                    TraceOp::Compute { nanos } => {
                        // Same timeline effect as a delay; accounted
                        // separately so overlap efficiency can be derived
                        // from the stats.
                        let (busy, extra) = perturb.compute(rank, nanos);
                        stats.compute_total += busy;
                        stats.straggler_idle_total += extra;
                        now += busy;
                        ranks[rank].pc += 1;
                        chained = true;
                    }
                    TraceOp::Reduce { bytes } => {
                        if reduce_memo.0 != bytes {
                            reduce_memo = (bytes, self.params.memcpy.reduce_cost(bytes));
                        }
                        now += reduce_memo.1;
                        ranks[rank].pc += 1;
                        chained = true;
                    }
                    TraceOp::Codec { bytes } => {
                        // A codec pass streams the raw payload once at copy
                        // speed; no reduction-arithmetic surcharge.
                        if codec_memo.0 != bytes {
                            codec_memo = (bytes, self.params.memcpy.copy_cost(bytes));
                        }
                        now += codec_memo.1;
                        ranks[rank].pc += 1;
                        chained = true;
                    }
                    TraceOp::CopyIntra {
                        bytes,
                        mechanism,
                        first_use,
                    } => {
                        let cold = first_use && !self.params.warm_buffers;
                        if copy_memo.0 != bytes || copy_memo.1 != mechanism || copy_memo.2 != cold {
                            let cost_model = mechanism
                                .map(IntranodeCost::defaults_for)
                                .unwrap_or(intranode);
                            copy_memo = (
                                bytes,
                                mechanism,
                                cold,
                                cost_model.transfer_cost(bytes, cold),
                            );
                        }
                        now += copy_memo.3;
                        ranks[rank].pc += 1;
                        chained = true;
                    }
                    TraceOp::Send { dest, bytes, tag } => {
                        let src_node = topology.node_of(rank);
                        let dst_node = topology.node_of(dest);
                        let (sender_done, arrival) = if rank == dest {
                            // Self message: a local copy.
                            let done = now + self.params.memcpy.copy_cost(bytes);
                            (done, Some(done))
                        } else if src_node == dst_node {
                            stats.intranode_messages += 1;
                            let cost = intranode.transfer_cost(bytes, !self.params.warm_buffers)
                                + self.params.software_send_overhead;
                            let done = now + cost;
                            (done, Some(done))
                        } else {
                            stats.internode_messages += 1;
                            stats.internode_bytes += bytes;
                            let sender_done = now
                                + nic.host_send_overhead(bytes)
                                + self.params.software_send_overhead;
                            let occupancy =
                                perturb.occupancy(nic.nic_occupancy(bytes), src_node, dst_node);
                            // The drop fate is a pure hash of (rank, pc), so
                            // both engines agree on it regardless of event
                            // order.  Retransmissions serialize on the
                            // sender's adapter; the host-side send call
                            // returns as usual (the NIC retries on its own).
                            let fate = perturb.send_fate(rank, pc);
                            let tx_start = sender_done.max(tx_free[src_node]);
                            let tx_end = perturb.retransmit_chain(
                                tx_start + occupancy,
                                occupancy,
                                fate.retries,
                            );
                            tx_free[src_node] = tx_end;
                            nic_busy[src_node] += occupancy * (1 + fate.retries) as f64;
                            stats.retries += fate.retries as usize;
                            stats.retransmitted_bytes += bytes * fate.retries as usize;
                            if fate.delivered {
                                let rx_ready = tx_end
                                    + nic.wire_latency()
                                    + perturb.extra_latency(src_node, dst_node);
                                let rx_start = rx_ready.max(rx_free[dst_node]);
                                let rx_end = rx_start + occupancy;
                                rx_free[dst_node] = rx_end;
                                nic_busy[dst_node] += occupancy;
                                (sender_done, Some(rx_end))
                            } else {
                                starved.push(StarvedRecv {
                                    rank: dest,
                                    source: rank,
                                    tag,
                                    attempts: fate.retries + 1,
                                });
                                (sender_done, None)
                            }
                        };
                        if let Some(arrival) = arrival {
                            if table.deliver(rank as u32, dest, tag, arrival) {
                                // Wake the receiver blocked on this message.
                                ranks[dest].state = RankState::Runnable;
                                let wake = arrival.max(ranks[dest].ready_time);
                                queue.push(wake, dest as u32, ranks[dest].gen);
                            }
                        }
                        ranks[rank].pc += 1;
                        ranks[rank].ready_time = sender_done;
                        // Run-ahead: keep executing this rank if nothing
                        // else is scheduled before its send completes (the
                        // receiver wake above is already queued and counts).
                        if queue.next_is_after(sender_done) {
                            now = sender_done;
                            chained = false;
                            continue;
                        }
                        queue.push(sender_done, ev.rank, ranks[rank].gen);
                        break;
                    }
                    TraceOp::Recv { source, bytes, tag } => {
                        match table.consume(source as u32, rank, tag) {
                            Some(arrival) => {
                                let same_node = topology.same_node(source, rank);
                                let recv_cost = if same_node || source == rank {
                                    INTRA_RECV_FLAG_COST + self.params.software_recv_overhead
                                } else {
                                    nic.host_recv_overhead(bytes)
                                        + self.params.software_recv_overhead
                                };
                                let done = now.max(arrival) + recv_cost;
                                ranks[rank].pc += 1;
                                ranks[rank].ready_time = done;
                                if queue.next_is_after(done) {
                                    now = done;
                                    chained = false;
                                    continue;
                                }
                                queue.push(done, ev.rank, ranks[rank].gen);
                            }
                            None => {
                                ranks[rank].state = RankState::BlockedOnRecv;
                                ranks[rank].ready_time = now;
                                ranks[rank].gen = ranks[rank].gen.wrapping_add(1);
                            }
                        }
                        break;
                    }
                    TraceOp::LocalBarrier => {
                        let node = topology.node_of(rank);
                        let ppn = topology.ppn();
                        let slot = &mut barriers[node];
                        slot.arrived += 1;
                        slot.latest = slot.latest.max(now);
                        if slot.arrived == ppn {
                            let release = slot.latest + self.params.barrier_cost(ppn);
                            stats.barrier_episodes += 1;
                            release_buf.clear();
                            release_buf.append(&mut slot.waiters);
                            release_buf.push(ev.rank);
                            slot.arrived = 0;
                            slot.latest = 0.0;
                            for &waiter in &release_buf {
                                let w = waiter as usize;
                                ranks[w].state = RankState::Runnable;
                                ranks[w].pc += 1;
                                ranks[w].ready_time = release;
                                queue.push(release, waiter, ranks[w].gen);
                            }
                        } else {
                            slot.waiters.push(ev.rank);
                            ranks[rank].state = RankState::BlockedOnBarrier;
                            ranks[rank].ready_time = now;
                            ranks[rank].gen = ranks[rank].gen.wrapping_add(1);
                        }
                        break;
                    }
                }
            }
        }

        // Every rank must have drained its program; otherwise the schedule
        // deadlocked (validation catches most causes, but e.g. circular
        // waits are only detectable here) — unless the drop model starved
        // messages, in which case the structured failure names them.
        let stuck: Vec<usize> = ranks
            .iter()
            .enumerate()
            .filter(|(_, r)| r.state != RankState::Finished)
            .map(|(rank, _)| rank)
            .collect();
        if !stuck.is_empty() {
            if starved.is_empty() {
                return Err(SimError::Deadlock { stuck_ranks: stuck });
            }
            starved.sort_unstable_by_key(|s| (s.rank, s.source, s.tag));
            return Err(SimError::Failure(SimFailure {
                starved,
                stuck_ranks: stuck,
            }));
        }

        stats.nic_busy_total = nic_busy.iter().sum();
        stats.nic_busy_max = nic_busy.iter().copied().fold(0.0, Nanos::max);

        let mut sorted_finish: Vec<Nanos> = ranks.iter().map(|r| r.finish_time).collect();
        sorted_finish.sort_unstable_by(|a, b| a.total_cmp(b));
        (stats.finish_skew_p50, stats.finish_skew_p99) = skew_percentiles(&sorted_finish, world, 1);

        let makespan = ranks.iter().map(|r| r.finish_time).fold(0.0, Nanos::max);
        let rank_finish = if options.record_rank_finish {
            ranks.iter().map(|r| r.finish_time).collect()
        } else {
            Vec::new()
        };
        Ok(SimOutcome {
            makespan,
            rank_finish,
            stats,
        })
    }

    fn replay_folded(
        &self,
        folded: &FoldedTrace,
        options: RunOptions,
    ) -> Result<SimOutcome, SimError> {
        let topology = folded.topology();
        let ppn = topology.ppn();
        let nodes = topology.nodes();
        let nic = self.params.nic_model();
        let intranode = self.params.intranode;
        let reps = folded.representatives();

        let mut ranks: Vec<RankRuntime> = (0..ppn).map(|_| RankRuntime::fresh()).collect();

        // Node 0's adapter; every other node's mirrors it exactly.
        let mut tx_free0 = 0.0f64;
        let mut rx_free0 = 0.0f64;
        let mut nic_busy0 = 0.0f64;

        let mut table = MatchTable::new(ppn);
        let mut barrier = BarrierSlot::default();
        let mut release_buf: Vec<u32> = Vec::new();

        let mut stats = SimStats::default();
        let mut queue = CalendarQueue::new(self.bucket_width(), ppn);
        // Only node-symmetric configs reach this path (asymmetric ones are
        // rejected or fall back to the full replay), so every draw is
        // uniform: node 0's ranks see exactly what every node's ranks see.
        debug_assert!(options
            .perturbation
            .as_ref()
            .is_none_or(Perturbation::is_node_symmetric));
        let perturb = PerturbState::new(options.perturbation.as_ref(), ppn);

        // Mirror-image incoming messages implied by node 0's outgoing
        // sends, all registered at one simulated instant (`pending_time`)
        // and applied to node 0's receive side when time advances.
        struct PendingRx {
            src_node: u32,
            src_local: u32,
            dest_local: u32,
            bytes: usize,
            tag: u64,
            tx_end: Nanos,
        }
        let mut pending: Vec<PendingRx> = Vec::new();
        let mut pending_time = 0.0f64;

        // Same one-entry cost memos as the full replay (see there).
        let mut reduce_memo: (usize, Nanos) = (usize::MAX, 0.0);
        let mut codec_memo: (usize, Nanos) = (usize::MAX, 0.0);
        let mut copy_memo: (usize, Option<IntranodeMechanism>, bool, Nanos) =
            (usize::MAX, None, false, 0.0);

        for (local, state) in ranks.iter_mut().enumerate() {
            let delay = perturb.start_delay(local);
            state.ready_time = delay;
            stats.straggler_idle_total += delay;
            queue.push(delay, local as u32, 0);
        }

        loop {
            let ev = queue.pop();
            let flush = !pending.is_empty()
                && ev
                    .map(|e| e.time.total_cmp(&pending_time).is_gt())
                    .unwrap_or(true);
            if flush {
                // Apply the batch in the order the full replay's scheduler
                // would process the mirror sends.  All of them pop at one
                // tied instant; the global tie order there is node-major
                // (rank order), and within one node the per-rank order
                // matches the order node 0's own sends processed — which is
                // exactly the append order of `pending`.  A stable sort by
                // source node therefore reproduces the full interleaving.
                pending.sort_by_key(|p| p.src_node);
                for p in pending.drain(..) {
                    // Symmetric link perturbations draw the same value for
                    // every node pair, so the mirror link's derating equals
                    // the outgoing link's.
                    let occupancy = perturb.occupancy(nic.nic_occupancy(p.bytes), 0, 0);
                    let rx_ready = p.tx_end + nic.wire_latency() + perturb.extra_latency(0, 0);
                    let rx_start = rx_ready.max(rx_free0);
                    let rx_end = rx_start + occupancy;
                    rx_free0 = rx_end;
                    nic_busy0 += occupancy;
                    let source = topology.rank_of(p.src_node as usize, p.src_local as usize) as u32;
                    let dest = p.dest_local as usize;
                    if table.deliver(source, dest, p.tag, rx_end) {
                        ranks[dest].state = RankState::Runnable;
                        let wake = rx_end.max(ranks[dest].ready_time);
                        queue.push(wake, p.dest_local, ranks[dest].gen);
                    }
                }
                if let Some(ev) = ev {
                    queue.reinsert(ev);
                }
                continue;
            }
            let Some(ev) = ev else { break };
            let local = ev.rank as usize;
            if ev.gen != ranks[local].gen {
                continue;
            }
            let mut now = ev.time.max(ranks[local].ready_time);
            let ops = &reps[local];
            let mut chained = false;
            loop {
                let pc = ranks[local].pc;
                if pc >= ops.len() {
                    ranks[local].state = RankState::Finished;
                    ranks[local].finish_time = now;
                    ranks[local].gen = ranks[local].gen.wrapping_add(1);
                    break;
                }
                let op = ops[pc];
                let is_shared = matches!(
                    op,
                    TraceOp::Send { .. } | TraceOp::Recv { .. } | TraceOp::LocalBarrier
                );
                if is_shared && chained {
                    ranks[local].ready_time = now;
                    queue.push(now, ev.rank, ranks[local].gen);
                    break;
                }
                match op {
                    TraceOp::Delay { nanos } => {
                        now += nanos.max(0.0);
                        ranks[local].pc += 1;
                        chained = true;
                    }
                    TraceOp::Compute { nanos } => {
                        let (busy, extra) = perturb.compute(local, nanos);
                        stats.compute_total += busy;
                        stats.straggler_idle_total += extra;
                        now += busy;
                        ranks[local].pc += 1;
                        chained = true;
                    }
                    TraceOp::Reduce { bytes } => {
                        if reduce_memo.0 != bytes {
                            reduce_memo = (bytes, self.params.memcpy.reduce_cost(bytes));
                        }
                        now += reduce_memo.1;
                        ranks[local].pc += 1;
                        chained = true;
                    }
                    TraceOp::Codec { bytes } => {
                        if codec_memo.0 != bytes {
                            codec_memo = (bytes, self.params.memcpy.copy_cost(bytes));
                        }
                        now += codec_memo.1;
                        ranks[local].pc += 1;
                        chained = true;
                    }
                    TraceOp::CopyIntra {
                        bytes,
                        mechanism,
                        first_use,
                    } => {
                        let cold = first_use && !self.params.warm_buffers;
                        if copy_memo.0 != bytes || copy_memo.1 != mechanism || copy_memo.2 != cold {
                            let cost_model = mechanism
                                .map(IntranodeCost::defaults_for)
                                .unwrap_or(intranode);
                            copy_memo = (
                                bytes,
                                mechanism,
                                cold,
                                cost_model.transfer_cost(bytes, cold),
                            );
                        }
                        now += copy_memo.3;
                        ranks[local].pc += 1;
                        chained = true;
                    }
                    TraceOp::Send { dest, bytes, tag } => {
                        // Node 0's ranks are globally ranks 0..ppn.
                        let dst_node = topology.node_of(dest);
                        let sender_done = if dest == local {
                            let done = now + self.params.memcpy.copy_cost(bytes);
                            if table.deliver(local as u32, local, tag, done) {
                                ranks[local].state = RankState::Runnable;
                            }
                            done
                        } else if dst_node == 0 {
                            stats.intranode_messages += 1;
                            let cost = intranode.transfer_cost(bytes, !self.params.warm_buffers)
                                + self.params.software_send_overhead;
                            let done = now + cost;
                            if table.deliver(local as u32, dest, tag, done) {
                                ranks[dest].state = RankState::Runnable;
                                let wake = done.max(ranks[dest].ready_time);
                                queue.push(wake, dest as u32, ranks[dest].gen);
                            }
                            done
                        } else {
                            stats.internode_messages += 1;
                            stats.internode_bytes += bytes;
                            let sender_done = now
                                + nic.host_send_overhead(bytes)
                                + self.params.software_send_overhead;
                            // Drops cannot be active here (they are never
                            // node-symmetric), so no retransmit chain.
                            let occupancy = perturb.occupancy(nic.nic_occupancy(bytes), 0, 0);
                            let tx_start = sender_done.max(tx_free0);
                            let tx_end = tx_start + occupancy;
                            tx_free0 = tx_end;
                            nic_busy0 += occupancy;
                            // By symmetry a mirror-image message from the
                            // inverse-image node finishes injection at the
                            // same moment and lands on node 0.
                            if pending.is_empty() {
                                pending_time = now;
                            }
                            pending.push(PendingRx {
                                src_node: folded.mirror_source_node(dst_node) as u32,
                                src_local: local as u32,
                                dest_local: topology.local_rank_of(dest) as u32,
                                bytes,
                                tag,
                                tx_end,
                            });
                            sender_done
                        };
                        ranks[local].pc += 1;
                        ranks[local].ready_time = sender_done;
                        queue.push(sender_done, ev.rank, ranks[local].gen);
                        break;
                    }
                    TraceOp::Recv { source, bytes, tag } => {
                        match table.consume(source as u32, local, tag) {
                            Some(arrival) => {
                                let same_node = topology.same_node(source, local);
                                let recv_cost = if same_node || source == local {
                                    INTRA_RECV_FLAG_COST + self.params.software_recv_overhead
                                } else {
                                    nic.host_recv_overhead(bytes)
                                        + self.params.software_recv_overhead
                                };
                                let done = now.max(arrival) + recv_cost;
                                ranks[local].pc += 1;
                                ranks[local].ready_time = done;
                                queue.push(done, ev.rank, ranks[local].gen);
                            }
                            None => {
                                ranks[local].state = RankState::BlockedOnRecv;
                                ranks[local].ready_time = now;
                                ranks[local].gen = ranks[local].gen.wrapping_add(1);
                            }
                        }
                        break;
                    }
                    TraceOp::LocalBarrier => {
                        barrier.arrived += 1;
                        barrier.latest = barrier.latest.max(now);
                        if barrier.arrived == ppn {
                            let release = barrier.latest + self.params.barrier_cost(ppn);
                            stats.barrier_episodes += 1;
                            release_buf.clear();
                            release_buf.append(&mut barrier.waiters);
                            release_buf.push(ev.rank);
                            barrier.arrived = 0;
                            barrier.latest = 0.0;
                            for &waiter in &release_buf {
                                let w = waiter as usize;
                                ranks[w].state = RankState::Runnable;
                                ranks[w].pc += 1;
                                ranks[w].ready_time = release;
                                queue.push(release, waiter, ranks[w].gen);
                            }
                        } else {
                            barrier.waiters.push(ev.rank);
                            ranks[local].state = RankState::BlockedOnBarrier;
                            ranks[local].ready_time = now;
                            ranks[local].gen = ranks[local].gen.wrapping_add(1);
                        }
                        break;
                    }
                }
            }
        }

        let stuck: Vec<usize> = ranks
            .iter()
            .enumerate()
            .filter(|(_, r)| r.state != RankState::Finished)
            .map(|(local, _)| local)
            .collect();
        if !stuck.is_empty() {
            return Err(SimError::Deadlock { stuck_ranks: stuck });
        }

        // Project node 0 onto the world: integer counters scale exactly;
        // the float totals are `N * x` where the full replay sums `N`
        // bitwise-identical per-node values.
        let n = nodes as f64;
        stats.internode_messages *= nodes;
        stats.intranode_messages *= nodes;
        stats.internode_bytes *= nodes;
        stats.barrier_episodes *= nodes;
        stats.compute_total *= n;
        stats.straggler_idle_total *= n;
        stats.nic_busy_total = nic_busy0 * n;
        stats.nic_busy_max = nic_busy0;

        // Each class finish time occurs `nodes` times in the full world's
        // sorted finish array, so the percentile lookup strides by `nodes`
        // and reproduces the full replay's skew bit for bit.
        let mut sorted_finish: Vec<Nanos> = ranks.iter().map(|r| r.finish_time).collect();
        sorted_finish.sort_unstable_by(|a, b| a.total_cmp(b));
        (stats.finish_skew_p50, stats.finish_skew_p99) =
            skew_percentiles(&sorted_finish, topology.world_size(), nodes);

        let makespan = ranks.iter().map(|r| r.finish_time).fold(0.0, Nanos::max);
        let rank_finish = if options.record_rank_finish {
            (0..topology.world_size())
                .map(|rank| ranks[topology.local_rank_of(rank)].finish_time)
                .collect()
        } else {
            Vec::new()
        };
        Ok(SimOutcome {
            makespan,
            rank_finish,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_runtime::Topology;
    use pip_transport::cost::IntranodeMechanism;

    fn engine() -> SimEngine {
        SimEngine::new(SimParams::default())
    }

    fn topo(nodes: usize, ppn: usize) -> Topology {
        Topology::new(nodes, ppn)
    }

    #[test]
    fn empty_trace_completes_at_time_zero() {
        let trace = Trace::empty(topo(2, 2));
        let outcome = engine().run(&trace).unwrap();
        assert_eq!(outcome.makespan, 0.0);
        assert_eq!(outcome.stats.internode_messages, 0);
    }

    #[test]
    fn single_internode_message_latency_matches_model() {
        let mut trace = Trace::empty(topo(2, 1));
        trace.push(
            0,
            TraceOp::Send {
                dest: 1,
                bytes: 64,
                tag: 0,
            },
        );
        trace.push(
            1,
            TraceOp::Recv {
                source: 0,
                bytes: 64,
                tag: 0,
            },
        );
        let engine = engine();
        let outcome = engine.run(&trace).unwrap();
        let nic = engine.params().nic_model();
        let expected = nic.host_send_overhead(64)
            + 2.0 * nic.nic_occupancy(64)
            + nic.wire_latency()
            + nic.host_recv_overhead(64);
        assert!((outcome.makespan - expected).abs() < 1e-6);
        assert_eq!(outcome.stats.internode_messages, 1);
        assert_eq!(outcome.stats.internode_bytes, 64);
    }

    #[test]
    fn intranode_message_bypasses_the_nic() {
        let mut trace = Trace::empty(topo(1, 2));
        trace.push(
            0,
            TraceOp::Send {
                dest: 1,
                bytes: 64,
                tag: 0,
            },
        );
        trace.push(
            1,
            TraceOp::Recv {
                source: 0,
                bytes: 64,
                tag: 0,
            },
        );
        let outcome = engine().run(&trace).unwrap();
        assert_eq!(outcome.stats.internode_messages, 0);
        assert_eq!(outcome.stats.intranode_messages, 1);
        assert_eq!(outcome.stats.nic_busy_total, 0.0);
        // Intra-node through PiP is far cheaper than crossing the wire.
        assert!(outcome.makespan < 1000.0);
    }

    #[test]
    fn recv_posted_before_send_still_completes() {
        // Rank 1 (receiver) is scheduled first but must block and be woken.
        let mut trace = Trace::empty(topo(2, 1));
        trace.push(
            1,
            TraceOp::Recv {
                source: 0,
                bytes: 8,
                tag: 9,
            },
        );
        trace.push(0, TraceOp::Delay { nanos: 5000.0 });
        trace.push(
            0,
            TraceOp::Send {
                dest: 1,
                bytes: 8,
                tag: 9,
            },
        );
        let outcome = engine().run(&trace).unwrap();
        assert!(outcome.makespan > 5000.0);
        assert!(outcome.rank_finish[1] >= outcome.rank_finish[0]);
    }

    #[test]
    fn nic_serializes_messages_from_the_same_node() {
        // Two senders on node 0 each send 8 messages to node 1; the node's
        // adapter must serialize them, so the makespan exceeds a single
        // sender's host overhead chain.
        let messages = 8;
        let mut trace = Trace::empty(topo(2, 2));
        for sender in [0usize, 1] {
            for m in 0..messages {
                trace.push(
                    sender,
                    TraceOp::Send {
                        dest: 2 + sender,
                        bytes: 16,
                        tag: m,
                    },
                );
            }
        }
        for receiver in [2usize, 3] {
            for m in 0..messages {
                trace.push(
                    receiver,
                    TraceOp::Recv {
                        source: receiver - 2,
                        bytes: 16,
                        tag: m,
                    },
                );
            }
        }
        let engine = engine();
        let outcome = engine.run(&trace).unwrap();
        let nic = engine.params().nic_model();
        // Lower bound: the NIC must inject 16 messages back to back.
        let nic_bound = 16.0 * nic.nic_occupancy(16);
        assert!(outcome.stats.nic_busy_max >= nic_bound - 1e-6);
        assert!(outcome.makespan > nic_bound);
    }

    #[test]
    fn multiple_senders_beat_a_single_sender_for_many_small_messages() {
        // The multi-object premise: sending N messages from one process is
        // slower than sending N/k messages from each of k processes on the
        // same node, because host overhead dominates small messages.
        let total_messages = 32;
        let nodes = 2;

        // Single sender.
        let mut single = Trace::empty(topo(nodes, 4));
        for m in 0..total_messages {
            single.push(
                0,
                TraceOp::Send {
                    dest: 4,
                    bytes: 32,
                    tag: m as u64,
                },
            );
            single.push(
                4,
                TraceOp::Recv {
                    source: 0,
                    bytes: 32,
                    tag: m as u64,
                },
            );
        }

        // Four senders, four receivers.
        let mut multi = Trace::empty(topo(nodes, 4));
        for m in 0..total_messages {
            let sender = m % 4;
            let receiver = 4 + m % 4;
            multi.push(
                sender,
                TraceOp::Send {
                    dest: receiver,
                    bytes: 32,
                    tag: m as u64,
                },
            );
            multi.push(
                receiver,
                TraceOp::Recv {
                    source: sender,
                    bytes: 32,
                    tag: m as u64,
                },
            );
        }

        let engine = engine();
        let t_single = engine.run(&single).unwrap().makespan;
        let t_multi = engine.run(&multi).unwrap().makespan;
        assert!(
            t_multi < t_single / 2.0,
            "multi-object ({t_multi:.0} ns) should be well under half of single-object ({t_single:.0} ns)"
        );
    }

    #[test]
    fn barrier_releases_all_ranks_at_the_same_time() {
        let mut trace = Trace::empty(topo(1, 4));
        trace.push(0, TraceOp::Delay { nanos: 1000.0 });
        for rank in 0..4 {
            trace.push(rank, TraceOp::LocalBarrier);
        }
        let outcome = engine().run(&trace).unwrap();
        let finish = &outcome.rank_finish;
        for rank in 1..4 {
            assert!((finish[rank] - finish[0]).abs() < 1e-9);
        }
        assert!(outcome.makespan >= 1000.0);
        assert_eq!(outcome.stats.barrier_episodes, 1);
    }

    #[test]
    fn barriers_only_synchronize_within_a_node() {
        let mut trace = Trace::empty(topo(2, 2));
        // Node 0 ranks barrier quickly; node 1 ranks delay first.
        for rank in [0usize, 1] {
            trace.push(rank, TraceOp::LocalBarrier);
        }
        for rank in [2usize, 3] {
            trace.push(rank, TraceOp::Delay { nanos: 10_000.0 });
            trace.push(rank, TraceOp::LocalBarrier);
        }
        let outcome = engine().run(&trace).unwrap();
        assert!(outcome.rank_finish[0] < 1000.0);
        assert!(outcome.rank_finish[2] >= 10_000.0);
    }

    #[test]
    fn deadlock_is_reported_not_hung() {
        let mut trace = Trace::empty(topo(1, 2));
        // Rank 0 waits for a message that is sent only after rank 1's own
        // receive from rank 0 — a classic circular wait.
        trace.push(
            0,
            TraceOp::Recv {
                source: 1,
                bytes: 8,
                tag: 0,
            },
        );
        trace.push(
            0,
            TraceOp::Send {
                dest: 1,
                bytes: 8,
                tag: 0,
            },
        );
        trace.push(
            1,
            TraceOp::Recv {
                source: 0,
                bytes: 8,
                tag: 0,
            },
        );
        trace.push(
            1,
            TraceOp::Send {
                dest: 0,
                bytes: 8,
                tag: 0,
            },
        );
        let err = SimEngine::new(SimParams::default())
            .run(&trace)
            .unwrap_err();
        match err {
            SimError::Deadlock { stuck_ranks } => {
                assert_eq!(stuck_ranks, vec![0, 1]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn invalid_trace_is_rejected_before_running() {
        let mut trace = Trace::empty(topo(1, 2));
        trace.push(
            0,
            TraceOp::Send {
                dest: 1,
                bytes: 8,
                tag: 0,
            },
        );
        // No matching receive.
        assert!(matches!(
            engine().run(&trace).unwrap_err(),
            SimError::InvalidTrace(_)
        ));
    }

    #[test]
    fn cma_intranode_transport_is_slower_than_pip_for_small_messages() {
        let mut trace = Trace::empty(topo(1, 2));
        for m in 0..16u64 {
            trace.push(
                0,
                TraceOp::Send {
                    dest: 1,
                    bytes: 16,
                    tag: m,
                },
            );
            trace.push(
                1,
                TraceOp::Recv {
                    source: 0,
                    bytes: 16,
                    tag: m,
                },
            );
        }
        let pip = SimEngine::new(SimParams::default()).run(&trace).unwrap();
        let cma = SimEngine::new(SimParams::default().with_intranode(IntranodeMechanism::Cma))
            .run(&trace)
            .unwrap();
        assert!(cma.makespan > pip.makespan * 2.0);
    }

    #[test]
    fn determinism_identical_runs_identical_results() {
        let mut trace = Trace::empty(topo(4, 3));
        for rank in 0..12usize {
            let peer = (rank + 3) % 12;
            trace.push(
                rank,
                TraceOp::Send {
                    dest: peer,
                    bytes: 128,
                    tag: 7,
                },
            );
            let from = (rank + 12 - 3) % 12;
            trace.push(
                rank,
                TraceOp::Recv {
                    source: from,
                    bytes: 128,
                    tag: 7,
                },
            );
            trace.push(rank, TraceOp::LocalBarrier);
        }
        let a = engine().run(&trace).unwrap();
        let b = engine().run(&trace).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn self_send_is_a_local_copy() {
        let mut trace = Trace::empty(topo(1, 1));
        trace.push(
            0,
            TraceOp::Send {
                dest: 0,
                bytes: 1024,
                tag: 0,
            },
        );
        trace.push(
            0,
            TraceOp::Recv {
                source: 0,
                bytes: 1024,
                tag: 0,
            },
        );
        let outcome = engine().run(&trace).unwrap();
        assert_eq!(outcome.stats.internode_messages, 0);
        assert!(outcome.makespan < 5000.0);
    }

    #[test]
    fn software_overhead_increases_every_message_cost() {
        let mut trace = Trace::empty(topo(2, 1));
        for m in 0..4u64 {
            trace.push(
                0,
                TraceOp::Send {
                    dest: 1,
                    bytes: 8,
                    tag: m,
                },
            );
            trace.push(
                1,
                TraceOp::Recv {
                    source: 0,
                    bytes: 8,
                    tag: m,
                },
            );
        }
        let base = SimEngine::new(SimParams::default()).run(&trace).unwrap();
        let taxed = SimEngine::new(SimParams::default().with_software_overhead(500.0, 500.0))
            .run(&trace)
            .unwrap();
        assert!(taxed.makespan > base.makespan + 4.0 * 500.0 - 1.0);
    }

    // --- calendar queue ---------------------------------------------------

    #[test]
    fn calendar_queue_pops_in_time_then_seq_order() {
        let mut queue = CalendarQueue::new(10.0, 0);
        // Deliberately scrambled insertion across buckets, plus exact ties.
        for (time, rank) in [
            (55.0, 0u32),
            (5.0, 1),
            (55.0, 2),
            (5000.0, 3),
            (0.0, 4),
            (55.0, 5),
        ] {
            queue.push(time, rank, 0);
        }
        let order: Vec<(Nanos, u32)> = std::iter::from_fn(|| queue.pop())
            .map(|e| (e.time, e.rank))
            .collect();
        assert_eq!(
            order,
            vec![
                (0.0, 4),
                (5.0, 1),
                (55.0, 0),
                (55.0, 2),
                (55.0, 5),
                (5000.0, 3)
            ]
        );
    }

    #[test]
    fn calendar_queue_routes_far_future_events_through_overflow() {
        let mut queue = CalendarQueue::new(1.0, 0);
        // Window is CALENDAR_BUCKETS ns wide; these are far beyond it.
        let horizon = CALENDAR_BUCKETS as f64;
        queue.push(horizon * 1e6, 0, 0);
        queue.push(3.0, 1, 0);
        queue.push(horizon * 2e6, 2, 0);
        assert_eq!(queue.overflow.len(), 2);
        assert_eq!(queue.pop().map(|e| e.rank), Some(1));
        // Popping past the near event must jump-rebase into the overflow.
        assert_eq!(queue.pop().map(|e| e.rank), Some(0));
        assert_eq!(queue.pop().map(|e| e.rank), Some(2));
        assert_eq!(queue.pop().map(|e| e.rank), None);
    }

    #[test]
    fn calendar_queue_reinsert_preserves_tie_order() {
        let mut queue = CalendarQueue::new(10.0, 0);
        queue.push(7.0, 0, 0);
        queue.push(7.0, 1, 0);
        let first = queue.pop().unwrap();
        assert_eq!(first.rank, 0);
        // Re-inserting the earlier-seq event puts it back ahead of the tie.
        queue.reinsert(first);
        assert_eq!(queue.pop().map(|e| e.rank), Some(0));
        assert_eq!(queue.pop().map(|e| e.rank), Some(1));
    }

    #[test]
    fn far_future_delay_routes_through_overflow_and_matches_reference() {
        // A delay of a full second dwarfs the ~84 us calendar window, so
        // the resumption event must take the overflow path; the reference
        // engine pins the expected timing.
        let mut trace = Trace::empty(topo(2, 1));
        trace.push(0, TraceOp::Delay { nanos: 1e9 });
        trace.push(
            0,
            TraceOp::Send {
                dest: 1,
                bytes: 64,
                tag: 0,
            },
        );
        trace.push(
            1,
            TraceOp::Recv {
                source: 0,
                bytes: 64,
                tag: 0,
            },
        );
        let engine = engine();
        let calendar = engine.run(&trace).unwrap();
        let reference = engine.run_reference(&trace).unwrap();
        assert!(calendar.makespan > 1e9);
        assert_eq!(calendar.makespan, reference.makespan);
        assert_eq!(calendar.rank_finish, reference.rank_finish);
    }

    // --- determinism and generations --------------------------------------

    fn node_ring_trace(nodes: usize, ppn: usize) -> Trace {
        let topology = topo(nodes, ppn);
        let mut trace = Trace::empty(topology);
        for rank in 0..topology.world_size() {
            let node = topology.node_of(rank);
            let local = topology.local_rank_of(rank);
            let next = topology.rank_of((node + 1) % nodes, local);
            let prev = topology.rank_of((node + nodes - 1) % nodes, local);
            trace.push(
                rank,
                TraceOp::Send {
                    dest: next,
                    bytes: 256,
                    tag: 11,
                },
            );
            trace.push(
                rank,
                TraceOp::Recv {
                    source: prev,
                    bytes: 256,
                    tag: 11,
                },
            );
            trace.push(rank, TraceOp::LocalBarrier);
        }
        trace
    }

    #[test]
    fn determinism_holds_at_paper_scale_topology() {
        // 1024 x 18 = 18432 ranks: large enough that the calendar ring
        // wraps and bucket sorting handles thousands of exact time ties.
        let trace = node_ring_trace(1024, 18);
        let a = engine().run(&trace).unwrap();
        let b = engine().run(&trace).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.stats.internode_messages, 18432);
    }

    #[test]
    fn deadlock_after_partial_progress_reports_exact_stuck_set() {
        // Ranks exchange a healthy round first (so generations have been
        // bumped by real blocking) and then deadlock; the stuck list must
        // name exactly the circularly-waiting ranks, same as the seed
        // engine.
        let mut trace = Trace::empty(topo(2, 2));
        for (a, b) in [(0usize, 2usize), (1, 3)] {
            trace.push(
                a,
                TraceOp::Send {
                    dest: b,
                    bytes: 32,
                    tag: 1,
                },
            );
            trace.push(
                b,
                TraceOp::Recv {
                    source: a,
                    bytes: 32,
                    tag: 1,
                },
            );
        }
        // Now ranks 0 and 2 wait on each other in a cycle; 1 and 3 finish.
        trace.push(
            0,
            TraceOp::Recv {
                source: 2,
                bytes: 8,
                tag: 2,
            },
        );
        trace.push(
            0,
            TraceOp::Send {
                dest: 2,
                bytes: 8,
                tag: 2,
            },
        );
        trace.push(
            2,
            TraceOp::Recv {
                source: 0,
                bytes: 8,
                tag: 2,
            },
        );
        trace.push(
            2,
            TraceOp::Send {
                dest: 0,
                bytes: 8,
                tag: 2,
            },
        );
        let engine = engine();
        let calendar = engine.run(&trace).unwrap_err();
        let reference = engine.run_reference(&trace).unwrap_err();
        assert_eq!(calendar, reference);
        assert!(matches!(
            calendar,
            SimError::Deadlock { ref stuck_ranks } if *stuck_ranks == vec![0, 2]
        ));
    }

    #[test]
    fn calendar_engine_matches_reference_on_mixed_trace() {
        // A trace exercising every op kind, asymmetric across ranks so no
        // folding symmetry hides scheduling differences.
        let topology = topo(3, 2);
        let mut trace = Trace::empty(topology);
        for rank in 0..6usize {
            trace.push(
                rank,
                TraceOp::Delay {
                    nanos: 13.25 * (rank as f64 + 1.0),
                },
            );
            trace.push(rank, TraceOp::Compute { nanos: 40.5 });
            trace.push(rank, TraceOp::Reduce { bytes: 512 });
            let peer = (rank + 2) % 6;
            trace.push(
                rank,
                TraceOp::Send {
                    dest: peer,
                    bytes: 100 + 37 * rank,
                    tag: 5,
                },
            );
            let from = (rank + 4) % 6;
            trace.push(
                rank,
                TraceOp::Recv {
                    source: from,
                    bytes: 100 + 37 * from,
                    tag: 5,
                },
            );
            trace.push(
                rank,
                TraceOp::CopyIntra {
                    bytes: 2048,
                    mechanism: None,
                    first_use: true,
                },
            );
            trace.push(rank, TraceOp::LocalBarrier);
        }
        let engine = engine();
        let calendar = engine.run(&trace).unwrap();
        let reference = engine.run_reference(&trace).unwrap();
        assert_eq!(calendar.makespan, reference.makespan);
        assert_eq!(calendar.rank_finish, reference.rank_finish);
        assert_eq!(
            calendar.stats.internode_messages,
            reference.stats.internode_messages
        );
        assert_eq!(
            calendar.stats.intranode_messages,
            reference.stats.intranode_messages
        );
        assert_eq!(
            calendar.stats.barrier_episodes,
            reference.stats.barrier_episodes
        );
    }

    // --- rank-finish recording --------------------------------------------

    #[test]
    fn summary_only_runs_skip_rank_finish_but_keep_the_rest() {
        let trace = node_ring_trace(3, 2);
        let engine = engine();
        let full = engine.run(&trace).unwrap();
        let summary = engine.run_with(&trace, RunOptions::summary()).unwrap();
        assert!(summary.rank_finish.is_empty());
        assert_eq!(full.rank_finish.len(), 6);
        assert_eq!(summary.makespan, full.makespan);
        assert_eq!(summary.stats, full.stats);
    }

    // --- folded replay ----------------------------------------------------

    #[test]
    fn folded_replay_matches_full_replay_on_a_node_ring() {
        for (nodes, ppn) in [(2usize, 1usize), (4, 3), (5, 2), (8, 4)] {
            let trace = node_ring_trace(nodes, ppn);
            let engine = engine();
            let full = engine.run(&trace).unwrap();
            let folded = engine.run_folded(&trace).unwrap();
            assert_eq!(folded.makespan, full.makespan, "{nodes}x{ppn}");
            assert_eq!(folded.rank_finish, full.rank_finish, "{nodes}x{ppn}");
            assert_eq!(
                folded.stats.internode_messages,
                full.stats.internode_messages
            );
            assert_eq!(
                folded.stats.intranode_messages,
                full.stats.intranode_messages
            );
            assert_eq!(folded.stats.internode_bytes, full.stats.internode_bytes);
            assert_eq!(folded.stats.barrier_episodes, full.stats.barrier_episodes);
            assert!((folded.stats.nic_busy_total - full.stats.nic_busy_total).abs() < 1e-6);
            assert!((folded.stats.nic_busy_max - full.stats.nic_busy_max).abs() < 1e-6);
        }
    }

    #[test]
    fn folded_replay_matches_full_replay_under_xor_symmetry() {
        // Recursive doubling over nodes at every local rank.
        let nodes = 8usize;
        let ppn = 2usize;
        let topology = topo(nodes, ppn);
        let mut trace = Trace::empty(topology);
        let mut mask = 1usize;
        while mask < nodes {
            for rank in 0..topology.world_size() {
                let node = topology.node_of(rank);
                let local = topology.local_rank_of(rank);
                let peer = topology.rank_of(node ^ mask, local);
                trace.push(
                    rank,
                    TraceOp::Send {
                        dest: peer,
                        bytes: 96,
                        tag: mask as u64,
                    },
                );
                trace.push(
                    rank,
                    TraceOp::Recv {
                        source: peer,
                        bytes: 96,
                        tag: mask as u64,
                    },
                );
            }
            mask <<= 1;
        }
        let engine = engine();
        let full = engine.run(&trace).unwrap();
        let folded = engine.run_folded(&trace).unwrap();
        assert_eq!(folded.makespan, full.makespan);
        assert_eq!(folded.rank_finish, full.rank_finish);
    }

    #[test]
    fn unfoldable_traces_fall_back_to_full_replay() {
        // Rooted gather: node 0 is special, so no folding; run_folded must
        // agree with run exactly (it runs the same code path).
        let topology = topo(3, 2);
        let mut trace = Trace::empty(topology);
        for rank in 1..topology.world_size() {
            trace.push(
                rank,
                TraceOp::Send {
                    dest: 0,
                    bytes: 64,
                    tag: rank as u64,
                },
            );
            trace.push(
                0,
                TraceOp::Recv {
                    source: rank,
                    bytes: 64,
                    tag: rank as u64,
                },
            );
        }
        let engine = engine();
        assert_eq!(
            engine.run_folded(&trace).unwrap(),
            engine.run(&trace).unwrap()
        );
    }

    #[test]
    fn folded_deadlock_falls_back_to_authoritative_stuck_list() {
        // A symmetric trace that deadlocks: every rank receives before any
        // send is posted.  The folded replay detects the deadlock but only
        // sees node 0, so run_folded must re-run the full world and report
        // every stuck rank.
        let nodes = 3usize;
        let topology = topo(nodes, 1);
        let mut trace = Trace::empty(topology);
        for rank in 0..nodes {
            let prev = (rank + nodes - 1) % nodes;
            let next = (rank + 1) % nodes;
            trace.push(
                rank,
                TraceOp::Recv {
                    source: prev,
                    bytes: 8,
                    tag: 0,
                },
            );
            trace.push(
                rank,
                TraceOp::Send {
                    dest: next,
                    bytes: 8,
                    tag: 0,
                },
            );
        }
        let err = engine().run_folded(&trace).unwrap_err();
        assert!(matches!(
            err,
            SimError::Deadlock { ref stuck_ranks } if *stuck_ranks == vec![0, 1, 2]
        ));
    }

    #[test]
    fn folded_summary_runs_scale_to_large_worlds() {
        // 512 nodes x 18 ranks = 9216 ranks replayed as 18.
        let nodes = 512usize;
        let ppn = 18usize;
        let trace = node_ring_trace(nodes, ppn);
        let folded = FoldedTrace::detect(&trace).expect("ring folds");
        let outcome = engine()
            .run_folded_trace(&folded, RunOptions::summary())
            .unwrap();
        assert!(outcome.rank_finish.is_empty());
        assert_eq!(outcome.stats.internode_messages, nodes * ppn);
        assert!(outcome.makespan > 0.0);
    }
}
