//! The discrete-event engine that replays a [`Trace`] against the cost
//! models and produces completion times.
//!
//! ## Model
//!
//! * Every rank is a sequential processor: an operation starts when the
//!   previous one has completed.
//! * `Send` charges the sender its host overhead (NIC `o` plus library
//!   software overhead) and then hands the message to the node's adapter,
//!   which serializes injections: a new message may enter the wire only
//!   `max(g_nic, bytes/G)` after the previous one from the same node.  The
//!   receiving node's adapter serializes arrivals the same way.  Intra-node
//!   messages bypass the adapter entirely and are charged to the configured
//!   intra-node mechanism.
//! * `Recv` completes at `max(posted, arrival) + o_recv`.
//! * `LocalBarrier` releases all ranks of the node at the time the last of
//!   them arrives plus the barrier cost.
//!
//! The engine is deterministic: the event queue breaks time ties by a
//! monotonically increasing sequence number.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use pip_transport::cost::{IntranodeCost, Nanos};

use crate::params::SimParams;
use crate::trace::{Trace, TraceError, TraceOp};

/// Fixed cost of completing an intra-node receive (polling the flag the
/// sender set in shared memory).  The payload copy itself is charged to the
/// sender's transfer cost.
const INTRA_RECV_FLAG_COST: Nanos = 40.0;

/// Totally ordered wrapper for simulation timestamps.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TimeKey(Nanos);

impl Eq for TimeKey {}

impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RankState {
    Runnable,
    BlockedOnRecv,
    BlockedOnBarrier,
    Finished,
}

#[derive(Debug)]
struct RankRuntime {
    pc: usize,
    ready_time: Nanos,
    state: RankState,
    barriers_done: usize,
    finish_time: Nanos,
}

#[derive(Debug, Default)]
struct BarrierEpisode {
    arrived: usize,
    latest_arrival: Nanos,
    waiters: Vec<usize>,
}

/// Per-run simulation statistics beyond the makespan.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Messages that crossed the network.
    pub internode_messages: usize,
    /// Messages whose endpoints shared a node.
    pub intranode_messages: usize,
    /// Payload bytes that crossed the network.
    pub internode_bytes: usize,
    /// Total simulated NIC injection occupancy summed over nodes.
    pub nic_busy_total: Nanos,
    /// Largest single-node NIC injection occupancy.
    pub nic_busy_max: Nanos,
    /// Number of node-local barrier episodes completed.
    pub barrier_episodes: usize,
    /// Total application compute time ([`TraceOp::Compute`]) summed over
    /// ranks.
    pub compute_total: Nanos,
}

/// The outcome of replaying one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Completion time of the whole schedule (maximum over ranks).
    pub makespan: Nanos,
    /// Per-rank completion times.
    pub rank_finish: Vec<Nanos>,
    /// Aggregate statistics.
    pub stats: SimStats,
}

/// Errors the engine can report.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The trace failed structural validation.
    InvalidTrace(TraceError),
    /// The schedule deadlocked: some ranks can never make progress (their
    /// receives or barriers are never satisfied).
    Deadlock { stuck_ranks: Vec<usize> },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidTrace(err) => write!(f, "invalid trace: {err}"),
            SimError::Deadlock { stuck_ranks } => {
                write!(f, "simulation deadlocked; stuck ranks: {stuck_ranks:?}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The discrete-event simulator.
#[derive(Debug)]
pub struct SimEngine {
    params: SimParams,
}

impl SimEngine {
    /// Create an engine with the given parameters.
    pub fn new(params: SimParams) -> Self {
        Self { params }
    }

    /// The engine's parameters.
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// Replay `trace` and return completion times and statistics.
    pub fn run(&self, trace: &Trace) -> Result<SimOutcome, SimError> {
        trace.validate().map_err(SimError::InvalidTrace)?;
        let topology = trace.topology;
        let world = topology.world_size();
        let nic = self.params.nic_model();
        let intranode = self.params.intranode;

        let mut ranks: Vec<RankRuntime> = (0..world)
            .map(|_| RankRuntime {
                pc: 0,
                ready_time: 0.0,
                state: RankState::Runnable,
                barriers_done: 0,
                finish_time: 0.0,
            })
            .collect();

        // Node-level NIC resources.
        let mut tx_free = vec![0.0f64; topology.nodes()];
        let mut rx_free = vec![0.0f64; topology.nodes()];
        let mut nic_busy = vec![0.0f64; topology.nodes()];

        // In-flight messages: (source, dest, tag) -> arrival times, FIFO.
        let mut mailbox: HashMap<(usize, usize, u64), VecDeque<Nanos>> = HashMap::new();
        // Ranks blocked on a receive, keyed the same way.
        let mut blocked_recv: HashMap<(usize, usize, u64), usize> = HashMap::new();
        // Barrier bookkeeping per node: episode index -> state.
        let mut barriers: Vec<HashMap<usize, BarrierEpisode>> =
            (0..topology.nodes()).map(|_| HashMap::new()).collect();

        let mut stats = SimStats::default();

        // Event queue: (time, seq, rank).
        let mut queue: BinaryHeap<Reverse<(TimeKey, u64, usize)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let push_event = |queue: &mut BinaryHeap<Reverse<(TimeKey, u64, usize)>>,
                          seq: &mut u64,
                          time: Nanos,
                          rank: usize| {
            queue.push(Reverse((TimeKey(time), *seq, rank)));
            *seq += 1;
        };

        for rank in 0..world {
            push_event(&mut queue, &mut seq, 0.0, rank);
        }

        while let Some(Reverse((TimeKey(now), _, rank))) = queue.pop() {
            let state = ranks[rank].state;
            if state == RankState::Finished
                || state == RankState::BlockedOnRecv
                || state == RankState::BlockedOnBarrier
            {
                // Blocked ranks are re-scheduled explicitly when unblocked;
                // stale events are ignored.
                continue;
            }
            let now = now.max(ranks[rank].ready_time);
            let pc = ranks[rank].pc;
            let ops = &trace.ranks[rank].ops;
            if pc >= ops.len() {
                ranks[rank].state = RankState::Finished;
                ranks[rank].finish_time = now;
                continue;
            }
            match ops[pc] {
                TraceOp::Send { dest, bytes, tag } => {
                    let src_node = topology.node_of(rank);
                    let dst_node = topology.node_of(dest);
                    let (sender_done, arrival) = if rank == dest {
                        // Self message: a local copy.
                        let done = now + self.params.memcpy.copy_cost(bytes);
                        (done, done)
                    } else if src_node == dst_node {
                        stats.intranode_messages += 1;
                        let cost = intranode.transfer_cost(bytes, !self.params.warm_buffers)
                            + self.params.software_send_overhead;
                        let done = now + cost;
                        (done, done)
                    } else {
                        stats.internode_messages += 1;
                        stats.internode_bytes += bytes;
                        let sender_done = now
                            + nic.host_send_overhead(bytes)
                            + self.params.software_send_overhead;
                        let occupancy = nic.nic_occupancy(bytes);
                        let tx_start = sender_done.max(tx_free[src_node]);
                        let tx_end = tx_start + occupancy;
                        tx_free[src_node] = tx_end;
                        nic_busy[src_node] += occupancy;
                        let rx_ready = tx_end + nic.wire_latency();
                        let rx_start = rx_ready.max(rx_free[dst_node]);
                        let rx_end = rx_start + occupancy;
                        rx_free[dst_node] = rx_end;
                        nic_busy[dst_node] += occupancy;
                        (sender_done, rx_end)
                    };
                    mailbox
                        .entry((rank, dest, tag))
                        .or_default()
                        .push_back(arrival);
                    // Wake a receiver blocked on this message.
                    if let Some(&receiver) = blocked_recv.get(&(rank, dest, tag)) {
                        blocked_recv.remove(&(rank, dest, tag));
                        ranks[receiver].state = RankState::Runnable;
                        let wake = arrival.max(ranks[receiver].ready_time);
                        push_event(&mut queue, &mut seq, wake, receiver);
                    }
                    ranks[rank].pc += 1;
                    ranks[rank].ready_time = sender_done;
                    push_event(&mut queue, &mut seq, sender_done, rank);
                }
                TraceOp::Recv { source, bytes, tag } => {
                    let key = (source, rank, tag);
                    let available = mailbox.get_mut(&key).and_then(|queue| queue.pop_front());
                    match available {
                        Some(arrival) => {
                            let same_node = topology.same_node(source, rank);
                            let recv_cost = if same_node || source == rank {
                                INTRA_RECV_FLAG_COST + self.params.software_recv_overhead
                            } else {
                                nic.host_recv_overhead(bytes) + self.params.software_recv_overhead
                            };
                            let done = now.max(arrival) + recv_cost;
                            ranks[rank].pc += 1;
                            ranks[rank].ready_time = done;
                            push_event(&mut queue, &mut seq, done, rank);
                        }
                        None => {
                            ranks[rank].state = RankState::BlockedOnRecv;
                            ranks[rank].ready_time = now;
                            blocked_recv.insert(key, rank);
                        }
                    }
                }
                TraceOp::CopyIntra {
                    bytes,
                    mechanism,
                    first_use,
                } => {
                    let cost_model = mechanism
                        .map(IntranodeCost::defaults_for)
                        .unwrap_or(intranode);
                    let cold = first_use && !self.params.warm_buffers;
                    let done = now + cost_model.transfer_cost(bytes, cold);
                    ranks[rank].pc += 1;
                    ranks[rank].ready_time = done;
                    push_event(&mut queue, &mut seq, done, rank);
                }
                TraceOp::Reduce { bytes } => {
                    let done = now + self.params.memcpy.reduce_cost(bytes);
                    ranks[rank].pc += 1;
                    ranks[rank].ready_time = done;
                    push_event(&mut queue, &mut seq, done, rank);
                }
                TraceOp::Delay { nanos } => {
                    let done = now + nanos.max(0.0);
                    ranks[rank].pc += 1;
                    ranks[rank].ready_time = done;
                    push_event(&mut queue, &mut seq, done, rank);
                }
                TraceOp::Compute { nanos } => {
                    // Same timeline effect as a delay; accounted separately
                    // so overlap efficiency can be derived from the stats.
                    let busy = nanos.max(0.0);
                    stats.compute_total += busy;
                    let done = now + busy;
                    ranks[rank].pc += 1;
                    ranks[rank].ready_time = done;
                    push_event(&mut queue, &mut seq, done, rank);
                }
                TraceOp::LocalBarrier => {
                    let node = topology.node_of(rank);
                    let ppn = topology.ppn();
                    let episode_index = ranks[rank].barriers_done;
                    let episode = barriers[node].entry(episode_index).or_default();
                    episode.arrived += 1;
                    episode.latest_arrival = episode.latest_arrival.max(now);
                    if episode.arrived == ppn {
                        let release = episode.latest_arrival + self.params.barrier_cost(ppn);
                        stats.barrier_episodes += 1;
                        let waiters: Vec<usize> = episode
                            .waiters
                            .drain(..)
                            .chain(std::iter::once(rank))
                            .collect();
                        barriers[node].remove(&episode_index);
                        for waiter in waiters {
                            ranks[waiter].state = RankState::Runnable;
                            ranks[waiter].pc += 1;
                            ranks[waiter].barriers_done += 1;
                            ranks[waiter].ready_time = release;
                            push_event(&mut queue, &mut seq, release, waiter);
                        }
                    } else {
                        episode.waiters.push(rank);
                        ranks[rank].state = RankState::BlockedOnBarrier;
                        ranks[rank].ready_time = now;
                    }
                }
            }
        }

        // Every rank must have drained its program; otherwise the schedule
        // deadlocked (validation catches most causes, but e.g. circular
        // waits are only detectable here).
        let stuck: Vec<usize> = ranks
            .iter()
            .enumerate()
            .filter(|(_, r)| r.state != RankState::Finished)
            .map(|(rank, _)| rank)
            .collect();
        if !stuck.is_empty() {
            return Err(SimError::Deadlock { stuck_ranks: stuck });
        }

        stats.nic_busy_total = nic_busy.iter().sum();
        stats.nic_busy_max = nic_busy.iter().copied().fold(0.0, Nanos::max);

        let rank_finish: Vec<Nanos> = ranks.iter().map(|r| r.finish_time).collect();
        let makespan = rank_finish.iter().copied().fold(0.0, Nanos::max);
        Ok(SimOutcome {
            makespan,
            rank_finish,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_runtime::Topology;
    use pip_transport::cost::IntranodeMechanism;

    fn engine() -> SimEngine {
        SimEngine::new(SimParams::default())
    }

    fn topo(nodes: usize, ppn: usize) -> Topology {
        Topology::new(nodes, ppn)
    }

    #[test]
    fn empty_trace_completes_at_time_zero() {
        let trace = Trace::empty(topo(2, 2));
        let outcome = engine().run(&trace).unwrap();
        assert_eq!(outcome.makespan, 0.0);
        assert_eq!(outcome.stats.internode_messages, 0);
    }

    #[test]
    fn single_internode_message_latency_matches_model() {
        let mut trace = Trace::empty(topo(2, 1));
        trace.push(
            0,
            TraceOp::Send {
                dest: 1,
                bytes: 64,
                tag: 0,
            },
        );
        trace.push(
            1,
            TraceOp::Recv {
                source: 0,
                bytes: 64,
                tag: 0,
            },
        );
        let engine = engine();
        let outcome = engine.run(&trace).unwrap();
        let nic = engine.params().nic_model();
        let expected = nic.host_send_overhead(64)
            + 2.0 * nic.nic_occupancy(64)
            + nic.wire_latency()
            + nic.host_recv_overhead(64);
        assert!((outcome.makespan - expected).abs() < 1e-6);
        assert_eq!(outcome.stats.internode_messages, 1);
        assert_eq!(outcome.stats.internode_bytes, 64);
    }

    #[test]
    fn intranode_message_bypasses_the_nic() {
        let mut trace = Trace::empty(topo(1, 2));
        trace.push(
            0,
            TraceOp::Send {
                dest: 1,
                bytes: 64,
                tag: 0,
            },
        );
        trace.push(
            1,
            TraceOp::Recv {
                source: 0,
                bytes: 64,
                tag: 0,
            },
        );
        let outcome = engine().run(&trace).unwrap();
        assert_eq!(outcome.stats.internode_messages, 0);
        assert_eq!(outcome.stats.intranode_messages, 1);
        assert_eq!(outcome.stats.nic_busy_total, 0.0);
        // Intra-node through PiP is far cheaper than crossing the wire.
        assert!(outcome.makespan < 1000.0);
    }

    #[test]
    fn recv_posted_before_send_still_completes() {
        // Rank 1 (receiver) is scheduled first but must block and be woken.
        let mut trace = Trace::empty(topo(2, 1));
        trace.push(
            1,
            TraceOp::Recv {
                source: 0,
                bytes: 8,
                tag: 9,
            },
        );
        trace.push(0, TraceOp::Delay { nanos: 5000.0 });
        trace.push(
            0,
            TraceOp::Send {
                dest: 1,
                bytes: 8,
                tag: 9,
            },
        );
        let outcome = engine().run(&trace).unwrap();
        assert!(outcome.makespan > 5000.0);
        assert!(outcome.rank_finish[1] >= outcome.rank_finish[0]);
    }

    #[test]
    fn nic_serializes_messages_from_the_same_node() {
        // Two senders on node 0 each send 8 messages to node 1; the node's
        // adapter must serialize them, so the makespan exceeds a single
        // sender's host overhead chain.
        let messages = 8;
        let mut trace = Trace::empty(topo(2, 2));
        for sender in [0usize, 1] {
            for m in 0..messages {
                trace.push(
                    sender,
                    TraceOp::Send {
                        dest: 2 + sender,
                        bytes: 16,
                        tag: m,
                    },
                );
            }
        }
        for receiver in [2usize, 3] {
            for m in 0..messages {
                trace.push(
                    receiver,
                    TraceOp::Recv {
                        source: receiver - 2,
                        bytes: 16,
                        tag: m,
                    },
                );
            }
        }
        let engine = engine();
        let outcome = engine.run(&trace).unwrap();
        let nic = engine.params().nic_model();
        // Lower bound: the NIC must inject 16 messages back to back.
        let nic_bound = 16.0 * nic.nic_occupancy(16);
        assert!(outcome.stats.nic_busy_max >= nic_bound - 1e-6);
        assert!(outcome.makespan > nic_bound);
    }

    #[test]
    fn multiple_senders_beat_a_single_sender_for_many_small_messages() {
        // The multi-object premise: sending N messages from one process is
        // slower than sending N/k messages from each of k processes on the
        // same node, because host overhead dominates small messages.
        let total_messages = 32;
        let nodes = 2;

        // Single sender.
        let mut single = Trace::empty(topo(nodes, 4));
        for m in 0..total_messages {
            single.push(
                0,
                TraceOp::Send {
                    dest: 4,
                    bytes: 32,
                    tag: m as u64,
                },
            );
            single.push(
                4,
                TraceOp::Recv {
                    source: 0,
                    bytes: 32,
                    tag: m as u64,
                },
            );
        }

        // Four senders, four receivers.
        let mut multi = Trace::empty(topo(nodes, 4));
        for m in 0..total_messages {
            let sender = m % 4;
            let receiver = 4 + m % 4;
            multi.push(
                sender,
                TraceOp::Send {
                    dest: receiver,
                    bytes: 32,
                    tag: m as u64,
                },
            );
            multi.push(
                receiver,
                TraceOp::Recv {
                    source: sender,
                    bytes: 32,
                    tag: m as u64,
                },
            );
        }

        let engine = engine();
        let t_single = engine.run(&single).unwrap().makespan;
        let t_multi = engine.run(&multi).unwrap().makespan;
        assert!(
            t_multi < t_single / 2.0,
            "multi-object ({t_multi:.0} ns) should be well under half of single-object ({t_single:.0} ns)"
        );
    }

    #[test]
    fn barrier_releases_all_ranks_at_the_same_time() {
        let mut trace = Trace::empty(topo(1, 4));
        trace.push(0, TraceOp::Delay { nanos: 1000.0 });
        for rank in 0..4 {
            trace.push(rank, TraceOp::LocalBarrier);
        }
        let outcome = engine().run(&trace).unwrap();
        let finish = &outcome.rank_finish;
        for rank in 1..4 {
            assert!((finish[rank] - finish[0]).abs() < 1e-9);
        }
        assert!(outcome.makespan >= 1000.0);
        assert_eq!(outcome.stats.barrier_episodes, 1);
    }

    #[test]
    fn barriers_only_synchronize_within_a_node() {
        let mut trace = Trace::empty(topo(2, 2));
        // Node 0 ranks barrier quickly; node 1 ranks delay first.
        for rank in [0usize, 1] {
            trace.push(rank, TraceOp::LocalBarrier);
        }
        for rank in [2usize, 3] {
            trace.push(rank, TraceOp::Delay { nanos: 10_000.0 });
            trace.push(rank, TraceOp::LocalBarrier);
        }
        let outcome = engine().run(&trace).unwrap();
        assert!(outcome.rank_finish[0] < 1000.0);
        assert!(outcome.rank_finish[2] >= 10_000.0);
    }

    #[test]
    fn deadlock_is_reported_not_hung() {
        let mut trace = Trace::empty(topo(1, 2));
        // Rank 0 waits for a message that is sent only after rank 1's own
        // receive from rank 0 — a classic circular wait.
        trace.push(
            0,
            TraceOp::Recv {
                source: 1,
                bytes: 8,
                tag: 0,
            },
        );
        trace.push(
            0,
            TraceOp::Send {
                dest: 1,
                bytes: 8,
                tag: 0,
            },
        );
        trace.push(
            1,
            TraceOp::Recv {
                source: 0,
                bytes: 8,
                tag: 0,
            },
        );
        trace.push(
            1,
            TraceOp::Send {
                dest: 0,
                bytes: 8,
                tag: 0,
            },
        );
        let err = SimEngine::new(SimParams::default())
            .run(&trace)
            .unwrap_err();
        match err {
            SimError::Deadlock { stuck_ranks } => {
                assert_eq!(stuck_ranks, vec![0, 1]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn invalid_trace_is_rejected_before_running() {
        let mut trace = Trace::empty(topo(1, 2));
        trace.push(
            0,
            TraceOp::Send {
                dest: 1,
                bytes: 8,
                tag: 0,
            },
        );
        // No matching receive.
        assert!(matches!(
            engine().run(&trace).unwrap_err(),
            SimError::InvalidTrace(_)
        ));
    }

    #[test]
    fn cma_intranode_transport_is_slower_than_pip_for_small_messages() {
        let mut trace = Trace::empty(topo(1, 2));
        for m in 0..16u64 {
            trace.push(
                0,
                TraceOp::Send {
                    dest: 1,
                    bytes: 16,
                    tag: m,
                },
            );
            trace.push(
                1,
                TraceOp::Recv {
                    source: 0,
                    bytes: 16,
                    tag: m,
                },
            );
        }
        let pip = SimEngine::new(SimParams::default()).run(&trace).unwrap();
        let cma = SimEngine::new(SimParams::default().with_intranode(IntranodeMechanism::Cma))
            .run(&trace)
            .unwrap();
        assert!(cma.makespan > pip.makespan * 2.0);
    }

    #[test]
    fn determinism_identical_runs_identical_results() {
        let mut trace = Trace::empty(topo(4, 3));
        for rank in 0..12usize {
            let peer = (rank + 3) % 12;
            trace.push(
                rank,
                TraceOp::Send {
                    dest: peer,
                    bytes: 128,
                    tag: 7,
                },
            );
            let from = (rank + 12 - 3) % 12;
            trace.push(
                rank,
                TraceOp::Recv {
                    source: from,
                    bytes: 128,
                    tag: 7,
                },
            );
            trace.push(rank, TraceOp::LocalBarrier);
        }
        let a = engine().run(&trace).unwrap();
        let b = engine().run(&trace).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn self_send_is_a_local_copy() {
        let mut trace = Trace::empty(topo(1, 1));
        trace.push(
            0,
            TraceOp::Send {
                dest: 0,
                bytes: 1024,
                tag: 0,
            },
        );
        trace.push(
            0,
            TraceOp::Recv {
                source: 0,
                bytes: 1024,
                tag: 0,
            },
        );
        let outcome = engine().run(&trace).unwrap();
        assert_eq!(outcome.stats.internode_messages, 0);
        assert!(outcome.makespan < 5000.0);
    }

    #[test]
    fn software_overhead_increases_every_message_cost() {
        let mut trace = Trace::empty(topo(2, 1));
        for m in 0..4u64 {
            trace.push(
                0,
                TraceOp::Send {
                    dest: 1,
                    bytes: 8,
                    tag: m,
                },
            );
            trace.push(
                1,
                TraceOp::Recv {
                    source: 0,
                    bytes: 8,
                    tag: m,
                },
            );
        }
        let base = SimEngine::new(SimParams::default()).run(&trace).unwrap();
        let taxed = SimEngine::new(SimParams::default().with_software_overhead(500.0, 500.0))
            .run(&trace)
            .unwrap();
        assert!(taxed.makespan > base.makespan + 4.0 * 500.0 - 1.0);
    }
}
