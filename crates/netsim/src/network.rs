//! High-level simulation entry point and reporting.

use pip_transport::cost::Nanos;
use serde::{Deserialize, Serialize};

use crate::engine::{RunOptions, SimEngine, SimError, SimOutcome};
use crate::params::SimParams;
use crate::perturb::Perturbation;
use crate::trace::Trace;

/// A human- and machine-readable summary of one simulated collective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Label supplied by the caller (e.g. the library preset name).
    pub label: String,
    /// Completion time of the collective in nanoseconds.
    pub makespan_ns: Nanos,
    /// Completion time in microseconds (the unit the paper plots).
    pub makespan_us: f64,
    /// Number of ranks simulated.
    pub world_size: usize,
    /// Messages that crossed the network.
    pub internode_messages: usize,
    /// Messages between tasks of one node.
    pub intranode_messages: usize,
    /// Bytes that crossed the network.
    pub internode_bytes: usize,
    /// Payload bytes retransmitted by the drop/retry model (zero on a
    /// healthy fabric).
    pub retransmitted_bytes: usize,
    /// Total bytes-on-wire: every internode payload byte including
    /// retransmissions (`internode_bytes + retransmitted_bytes`).  The axis
    /// the compression figures report, and the quantity the lossy-fabric
    /// selection dimension minimizes.
    pub wire_bytes: usize,
    /// Largest per-node NIC occupancy, as a fraction of the makespan
    /// (how close the busiest adapter came to saturation).
    pub nic_utilization: f64,
    /// Number of node-local barrier episodes.
    pub barrier_episodes: usize,
    /// Retransmissions forced by the perturbation's drop model (zero on a
    /// healthy fabric).
    pub retries: usize,
    /// p99 spread of rank finish times, in microseconds (zero when all
    /// ranks finish together).
    pub finish_skew_p99_us: f64,
}

impl SimulationReport {
    /// Build a report from a raw engine outcome.
    pub fn from_outcome(label: impl Into<String>, world_size: usize, outcome: &SimOutcome) -> Self {
        let nic_utilization = if outcome.makespan > 0.0 {
            outcome.stats.nic_busy_max / outcome.makespan
        } else {
            0.0
        };
        Self {
            label: label.into(),
            makespan_ns: outcome.makespan,
            makespan_us: outcome.makespan / 1000.0,
            world_size,
            internode_messages: outcome.stats.internode_messages,
            intranode_messages: outcome.stats.intranode_messages,
            internode_bytes: outcome.stats.internode_bytes,
            retransmitted_bytes: outcome.stats.retransmitted_bytes,
            wire_bytes: outcome.stats.internode_bytes + outcome.stats.retransmitted_bytes,
            nic_utilization,
            barrier_episodes: outcome.stats.barrier_episodes,
            retries: outcome.stats.retries,
            finish_skew_p99_us: outcome.stats.finish_skew_p99 / 1000.0,
        }
    }

    /// Execution time scaled to another report (the paper's figures plot
    /// "scaled execution time", normalized to PiP-MColl).
    pub fn scaled_to(&self, reference: &SimulationReport) -> f64 {
        if reference.makespan_ns == 0.0 {
            return f64::INFINITY;
        }
        self.makespan_ns / reference.makespan_ns
    }
}

/// Recording options for summary reports: the report only consumes the
/// makespan and aggregate statistics, so per-rank finish times are skipped.
const SUMMARY_OPTIONS: RunOptions = RunOptions::summary();

/// Simulate `trace` under `params` and label the report.
pub fn simulate(
    label: impl Into<String>,
    trace: &Trace,
    params: &SimParams,
) -> Result<SimulationReport, SimError> {
    let engine = SimEngine::new(*params);
    let outcome = engine.run_with(trace, SUMMARY_OPTIONS)?;
    Ok(SimulationReport::from_outcome(
        label,
        trace.topology.world_size(),
        &outcome,
    ))
}

/// Like [`simulate`], but fold the trace by symmetry when possible —
/// node-symmetric schedules replay one node instead of the whole world.
/// Falls back to the full replay when no symmetry closes, so the report is
/// always produced.
pub fn simulate_folded(
    label: impl Into<String>,
    trace: &Trace,
    params: &SimParams,
) -> Result<SimulationReport, SimError> {
    let engine = SimEngine::new(*params);
    let outcome = engine.run_folded_with(trace, SUMMARY_OPTIONS)?;
    Ok(SimulationReport::from_outcome(
        label,
        trace.topology.world_size(),
        &outcome,
    ))
}

/// Like [`simulate`], but replay under a degraded fabric described by
/// `perturbation`.  Uses folded replay when the schedule is symmetric *and*
/// the perturbation is node-symmetric (the engine falls back to full replay
/// otherwise), so degradation sweeps stay fast where they can be.
pub fn simulate_degraded(
    label: impl Into<String>,
    trace: &Trace,
    params: &SimParams,
    perturbation: Perturbation,
) -> Result<SimulationReport, SimError> {
    let engine = SimEngine::new(*params);
    let options = SUMMARY_OPTIONS.with_perturbation(perturbation);
    let outcome = engine.run_folded_with(trace, options)?;
    Ok(SimulationReport::from_outcome(
        label,
        trace.topology.world_size(),
        &outcome,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perturb::DropSpec;
    use crate::trace::TraceOp;
    use pip_runtime::Topology;

    fn ping_pong_trace() -> Trace {
        let mut trace = Trace::empty(Topology::new(2, 1));
        trace.push(
            0,
            TraceOp::Send {
                dest: 1,
                bytes: 256,
                tag: 0,
            },
        );
        trace.push(
            1,
            TraceOp::Recv {
                source: 0,
                bytes: 256,
                tag: 0,
            },
        );
        trace.push(
            1,
            TraceOp::Send {
                dest: 0,
                bytes: 256,
                tag: 1,
            },
        );
        trace.push(
            0,
            TraceOp::Recv {
                source: 1,
                bytes: 256,
                tag: 1,
            },
        );
        trace
    }

    #[test]
    fn simulate_produces_consistent_units() {
        let report = simulate("ping-pong", &ping_pong_trace(), &SimParams::default()).unwrap();
        assert_eq!(report.label, "ping-pong");
        assert!((report.makespan_us - report.makespan_ns / 1000.0).abs() < 1e-12);
        assert_eq!(report.world_size, 2);
        assert_eq!(report.internode_messages, 2);
        assert_eq!(report.internode_bytes, 512);
        assert_eq!(report.retransmitted_bytes, 0);
        assert_eq!(report.wire_bytes, 512);
    }

    #[test]
    fn scaled_to_self_is_one() {
        let report = simulate("x", &ping_pong_trace(), &SimParams::default()).unwrap();
        assert!((report.scaled_to(&report) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_to_is_ratio_of_makespans() {
        let fast = simulate("fast", &ping_pong_trace(), &SimParams::default()).unwrap();
        let slow = simulate(
            "slow",
            &ping_pong_trace(),
            &SimParams::default().with_software_overhead(10_000.0, 10_000.0),
        )
        .unwrap();
        let ratio = slow.scaled_to(&fast);
        assert!(ratio > 2.0);
        assert!((slow.makespan_ns / fast.makespan_ns - ratio).abs() < 1e-12);
    }

    #[test]
    fn folded_simulation_reports_match_full_simulation() {
        // A node-symmetric ring at 6x2: simulate_folded must produce the
        // same report as simulate.
        let topology = Topology::new(6, 2);
        let mut trace = Trace::empty(topology);
        for rank in 0..topology.world_size() {
            let node = topology.node_of(rank);
            let local = topology.local_rank_of(rank);
            let next = topology.rank_of((node + 1) % 6, local);
            let prev = topology.rank_of((node + 5) % 6, local);
            trace.push(
                rank,
                TraceOp::Send {
                    dest: next,
                    bytes: 512,
                    tag: 0,
                },
            );
            trace.push(
                rank,
                TraceOp::Recv {
                    source: prev,
                    bytes: 512,
                    tag: 0,
                },
            );
        }
        let full = simulate("ring", &trace, &SimParams::default()).unwrap();
        let folded = simulate_folded("ring", &trace, &SimParams::default()).unwrap();
        assert_eq!(folded.makespan_ns, full.makespan_ns);
        assert_eq!(folded.internode_messages, full.internode_messages);
        assert_eq!(folded.internode_bytes, full.internode_bytes);
        assert!((folded.nic_utilization - full.nic_utilization).abs() < 1e-9);
    }

    #[test]
    fn nic_utilization_is_bounded() {
        let report = simulate("x", &ping_pong_trace(), &SimParams::default()).unwrap();
        assert!(report.nic_utilization >= 0.0);
        assert!(report.nic_utilization <= 1.0);
    }

    #[test]
    fn degraded_with_identity_perturbation_matches_baseline() {
        let trace = ping_pong_trace();
        let healthy = simulate("x", &trace, &SimParams::default()).unwrap();
        let degraded =
            simulate_degraded("x", &trace, &SimParams::default(), Perturbation::NONE).unwrap();
        assert_eq!(healthy, degraded);
    }

    #[test]
    fn degraded_run_reports_retries_and_slows_down() {
        let trace = ping_pong_trace();
        let healthy = simulate("x", &trace, &SimParams::default()).unwrap();
        let perturbation = Perturbation {
            seed: 7,
            drop: DropSpec {
                rate: 0.9,
                max_retries: 50,
                timeout: 500.0,
                backoff: 2.0,
            },
            ..Perturbation::NONE
        };
        let degraded = simulate_degraded("x", &trace, &SimParams::default(), perturbation).unwrap();
        assert!(degraded.retries > 0);
        assert!(degraded.makespan_ns > healthy.makespan_ns);
        // Every retry re-sends the 256-byte payload, and the wire total
        // accounts for both the first transmission and every repeat.
        assert_eq!(degraded.retransmitted_bytes, degraded.retries * 256);
        assert_eq!(
            degraded.wire_bytes,
            degraded.internode_bytes + degraded.retransmitted_bytes
        );
        assert_eq!(healthy.wire_bytes, healthy.internode_bytes);
    }
}
