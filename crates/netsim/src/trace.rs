//! Communication traces: the per-rank operation sequences the simulator
//! replays.
//!
//! A trace is produced by running a collective algorithm against the
//! recording communicator (`pip_collectives::comm::TraceComm`), so it
//! contains exactly the sends, receives, intra-node copies, reductions and
//! barriers the algorithm would perform — with payload *sizes* but not
//! payload bytes.

use pip_runtime::Topology;
use pip_transport::cost::{IntranodeMechanism, Nanos};
use serde::{Deserialize, Serialize};

/// One operation executed by one rank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceOp {
    /// Post a message of `bytes` bytes to `dest` with `tag`.  The sender is
    /// busy for its host overhead; delivery is asynchronous.
    Send { dest: usize, bytes: usize, tag: u64 },
    /// Wait for a message of `bytes` bytes from `source` with `tag`.
    Recv {
        source: usize,
        bytes: usize,
        tag: u64,
    },
    /// Move `bytes` bytes between two tasks of the same node through the
    /// intra-node mechanism configured in the simulation parameters (or an
    /// explicit override).
    CopyIntra {
        bytes: usize,
        /// Mechanism override; `None` uses the simulation's configured
        /// intra-node transport.
        mechanism: Option<IntranodeMechanism>,
        /// Whether this is the first use of the peer buffer (charges attach
        /// and page-fault costs where the mechanism has them).
        first_use: bool,
    },
    /// Apply a reduction over `bytes` bytes of local data.
    Reduce { bytes: usize },
    /// Generic local work of a fixed duration (software bookkeeping the
    /// algorithm performs, e.g. PiP-MPICH's size synchronization).
    Delay { nanos: Nanos },
    /// An **application compute interval**: work the caller performs between
    /// posting a non-blocking collective and completing it.  Costs the same
    /// as [`TraceOp::Delay`] on the executing rank's timeline but is
    /// accounted separately, so overlap studies can tell communication time
    /// from compute time — while a rank computes, messages already posted
    /// keep flowing through the NIC and the wire, which is exactly the
    /// communication/computation overlap the async-leader design exposes.
    Compute { nanos: Nanos },
    /// Node-wide barrier: all ranks of the executing rank's node must reach
    /// their matching barrier before any of them proceeds.
    LocalBarrier,
}

impl TraceOp {
    /// Bytes carried by this operation (0 for barriers and delays).
    pub fn bytes(&self) -> usize {
        match self {
            TraceOp::Send { bytes, .. }
            | TraceOp::Recv { bytes, .. }
            | TraceOp::CopyIntra { bytes, .. }
            | TraceOp::Reduce { bytes } => *bytes,
            TraceOp::Delay { .. } | TraceOp::Compute { .. } | TraceOp::LocalBarrier => 0,
        }
    }
}

/// The ordered operations of one rank.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RankTrace {
    /// Operations in program order.
    pub ops: Vec<TraceOp>,
}

impl RankTrace {
    /// Number of sends in the trace.
    pub fn send_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, TraceOp::Send { .. }))
            .count()
    }

    /// Number of receives in the trace.
    pub fn recv_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, TraceOp::Recv { .. }))
            .count()
    }

    /// Total bytes sent by this rank.
    pub fn bytes_sent(&self) -> usize {
        self.ops
            .iter()
            .filter_map(|op| match op {
                TraceOp::Send { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum()
    }

    /// Number of node-local barrier episodes this rank participates in.
    pub fn barrier_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, TraceOp::LocalBarrier))
            .count()
    }
}

/// A whole-cluster trace: one [`RankTrace`] per rank plus the topology it was
/// recorded for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// The cluster the trace describes.
    #[serde(skip, default = "default_topology")]
    pub topology: Topology,
    /// Per-rank operation lists, indexed by rank.
    pub ranks: Vec<RankTrace>,
}

// Referenced by the `#[serde(default = "...")]` field attribute above; the
// offline serde shim keeps the attribute inert, so the function looks unused
// until the real serde is swapped in.
#[allow(dead_code)]
fn default_topology() -> Topology {
    Topology::new(1, 1)
}

/// Problems detected by [`Trace::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The number of rank traces does not match the topology's world size.
    WrongRankCount { expected: usize, actual: usize },
    /// A send or receive references a rank outside the world.
    RankOutOfRange { rank: usize, op_rank: usize },
    /// Sends and receives do not pair up: for some (source, dest, tag) the
    /// message counts differ.
    UnmatchedMessages {
        source: usize,
        dest: usize,
        tag: u64,
        sent: usize,
        received: usize,
    },
    /// Ranks of the same node disagree on how many barrier episodes they
    /// participate in.
    BarrierMismatch {
        node: usize,
        min_count: usize,
        max_count: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::WrongRankCount { expected, actual } => {
                write!(
                    f,
                    "trace has {actual} rank entries, topology expects {expected}"
                )
            }
            TraceError::RankOutOfRange { rank, op_rank } => {
                write!(f, "rank {rank} references out-of-range rank {op_rank}")
            }
            TraceError::UnmatchedMessages {
                source,
                dest,
                tag,
                sent,
                received,
            } => write!(
                f,
                "messages {source}->{dest} tag {tag}: {sent} sent but {received} received"
            ),
            TraceError::BarrierMismatch {
                node,
                min_count,
                max_count,
            } => write!(
                f,
                "node {node}: ranks disagree on barrier count ({min_count}..{max_count})"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

impl Trace {
    /// Create an empty trace (no operations) for `topology`.
    pub fn empty(topology: Topology) -> Self {
        Self {
            topology,
            ranks: vec![RankTrace::default(); topology.world_size()],
        }
    }

    /// Append `op` to `rank`'s program.
    pub fn push(&mut self, rank: usize, op: TraceOp) {
        self.ranks[rank].ops.push(op);
    }

    /// Total messages sent across all ranks.
    pub fn total_messages(&self) -> usize {
        self.ranks.iter().map(RankTrace::send_count).sum()
    }

    /// Total payload bytes sent across all ranks.
    pub fn total_bytes(&self) -> usize {
        self.ranks.iter().map(RankTrace::bytes_sent).sum()
    }

    /// Messages whose source and destination live on different nodes.
    pub fn internode_messages(&self) -> usize {
        let mut count = 0;
        for (rank, trace) in self.ranks.iter().enumerate() {
            for op in &trace.ops {
                if let TraceOp::Send { dest, .. } = op {
                    if !self.topology.same_node(rank, *dest) {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    /// Check the structural invariants the simulator relies on: correct rank
    /// count, in-range peers, matched send/receive multisets, and consistent
    /// barrier counts within each node.
    pub fn validate(&self) -> Result<(), TraceError> {
        let world = self.topology.world_size();
        if self.ranks.len() != world {
            return Err(TraceError::WrongRankCount {
                expected: world,
                actual: self.ranks.len(),
            });
        }
        use std::collections::HashMap;
        let mut sent: HashMap<(usize, usize, u64), usize> = HashMap::new();
        let mut received: HashMap<(usize, usize, u64), usize> = HashMap::new();
        for (rank, trace) in self.ranks.iter().enumerate() {
            for op in &trace.ops {
                match *op {
                    TraceOp::Send { dest, tag, .. } => {
                        if dest >= world {
                            return Err(TraceError::RankOutOfRange {
                                rank,
                                op_rank: dest,
                            });
                        }
                        *sent.entry((rank, dest, tag)).or_default() += 1;
                    }
                    TraceOp::Recv { source, tag, .. } => {
                        if source >= world {
                            return Err(TraceError::RankOutOfRange {
                                rank,
                                op_rank: source,
                            });
                        }
                        *received.entry((source, rank, tag)).or_default() += 1;
                    }
                    _ => {}
                }
            }
        }
        let mut keys: Vec<_> = sent.keys().chain(received.keys()).copied().collect();
        keys.sort_unstable();
        keys.dedup();
        for key in keys {
            let s = sent.get(&key).copied().unwrap_or(0);
            let r = received.get(&key).copied().unwrap_or(0);
            if s != r {
                return Err(TraceError::UnmatchedMessages {
                    source: key.0,
                    dest: key.1,
                    tag: key.2,
                    sent: s,
                    received: r,
                });
            }
        }
        for node in 0..self.topology.nodes() {
            let counts: Vec<usize> = self
                .topology
                .ranks_on_node(node)
                .map(|rank| self.ranks[rank].barrier_count())
                .collect();
            let min = counts.iter().copied().min().unwrap_or(0);
            let max = counts.iter().copied().max().unwrap_or(0);
            if min != max {
                return Err(TraceError::BarrierMismatch {
                    node,
                    min_count: min,
                    max_count: max,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_topology() -> Topology {
        Topology::new(2, 2)
    }

    #[test]
    fn empty_trace_is_valid() {
        let trace = Trace::empty(tiny_topology());
        assert!(trace.validate().is_ok());
        assert_eq!(trace.total_messages(), 0);
        assert_eq!(trace.total_bytes(), 0);
    }

    #[test]
    fn matched_send_recv_is_valid() {
        let mut trace = Trace::empty(tiny_topology());
        trace.push(
            0,
            TraceOp::Send {
                dest: 2,
                bytes: 64,
                tag: 1,
            },
        );
        trace.push(
            2,
            TraceOp::Recv {
                source: 0,
                bytes: 64,
                tag: 1,
            },
        );
        assert!(trace.validate().is_ok());
        assert_eq!(trace.total_messages(), 1);
        assert_eq!(trace.total_bytes(), 64);
        assert_eq!(trace.internode_messages(), 1);
    }

    #[test]
    fn unmatched_send_is_detected() {
        let mut trace = Trace::empty(tiny_topology());
        trace.push(
            0,
            TraceOp::Send {
                dest: 1,
                bytes: 8,
                tag: 0,
            },
        );
        let err = trace.validate().unwrap_err();
        assert!(matches!(
            err,
            TraceError::UnmatchedMessages {
                sent: 1,
                received: 0,
                ..
            }
        ));
    }

    #[test]
    fn out_of_range_peer_is_detected() {
        let mut trace = Trace::empty(tiny_topology());
        trace.push(
            0,
            TraceOp::Send {
                dest: 9,
                bytes: 8,
                tag: 0,
            },
        );
        assert!(matches!(
            trace.validate().unwrap_err(),
            TraceError::RankOutOfRange { op_rank: 9, .. }
        ));
    }

    #[test]
    fn barrier_mismatch_is_detected() {
        let mut trace = Trace::empty(tiny_topology());
        trace.push(0, TraceOp::LocalBarrier);
        // Rank 1 (same node as 0) never reaches a barrier.
        let err = trace.validate().unwrap_err();
        assert!(matches!(err, TraceError::BarrierMismatch { node: 0, .. }));
    }

    #[test]
    fn wrong_rank_count_is_detected() {
        let mut trace = Trace::empty(tiny_topology());
        trace.ranks.pop();
        assert!(matches!(
            trace.validate().unwrap_err(),
            TraceError::WrongRankCount {
                expected: 4,
                actual: 3
            }
        ));
    }

    #[test]
    fn intra_node_messages_not_counted_as_internode() {
        let mut trace = Trace::empty(tiny_topology());
        trace.push(
            0,
            TraceOp::Send {
                dest: 1,
                bytes: 8,
                tag: 0,
            },
        );
        trace.push(
            1,
            TraceOp::Recv {
                source: 0,
                bytes: 8,
                tag: 0,
            },
        );
        assert_eq!(trace.internode_messages(), 0);
        assert!(trace.validate().is_ok());
    }

    #[test]
    fn rank_trace_counters() {
        let mut rt = RankTrace::default();
        rt.ops.push(TraceOp::Send {
            dest: 1,
            bytes: 10,
            tag: 0,
        });
        rt.ops.push(TraceOp::Send {
            dest: 2,
            bytes: 20,
            tag: 0,
        });
        rt.ops.push(TraceOp::Recv {
            source: 1,
            bytes: 5,
            tag: 0,
        });
        rt.ops.push(TraceOp::LocalBarrier);
        assert_eq!(rt.send_count(), 2);
        assert_eq!(rt.recv_count(), 1);
        assert_eq!(rt.bytes_sent(), 30);
        assert_eq!(rt.barrier_count(), 1);
    }

    #[test]
    fn op_bytes_accessor() {
        assert_eq!(
            TraceOp::Send {
                dest: 0,
                bytes: 7,
                tag: 0
            }
            .bytes(),
            7
        );
        assert_eq!(TraceOp::LocalBarrier.bytes(), 0);
        assert_eq!(TraceOp::Delay { nanos: 5.0 }.bytes(), 0);
        assert_eq!(TraceOp::Reduce { bytes: 12 }.bytes(), 12);
    }
}
