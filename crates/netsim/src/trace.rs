//! Communication traces: the per-rank operation sequences the simulator
//! replays.
//!
//! A trace is produced by running a collective algorithm against the
//! recording communicator (`pip_collectives::comm::TraceComm`), so it
//! contains exactly the sends, receives, intra-node copies, reductions and
//! barriers the algorithm would perform — with payload *sizes* but not
//! payload bytes.

use std::sync::{Arc, OnceLock};

use pip_runtime::Topology;
use pip_transport::cost::{IntranodeMechanism, Nanos};
use serde::{Deserialize, Serialize};

/// One operation executed by one rank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceOp {
    /// Post a message of `bytes` bytes to `dest` with `tag`.  The sender is
    /// busy for its host overhead; delivery is asynchronous.
    Send { dest: usize, bytes: usize, tag: u64 },
    /// Wait for a message of `bytes` bytes from `source` with `tag`.
    Recv {
        source: usize,
        bytes: usize,
        tag: u64,
    },
    /// Move `bytes` bytes between two tasks of the same node through the
    /// intra-node mechanism configured in the simulation parameters (or an
    /// explicit override).
    CopyIntra {
        bytes: usize,
        /// Mechanism override; `None` uses the simulation's configured
        /// intra-node transport.
        mechanism: Option<IntranodeMechanism>,
        /// Whether this is the first use of the peer buffer (charges attach
        /// and page-fault costs where the mechanism has them).
        first_use: bool,
    },
    /// Apply a reduction over `bytes` bytes of local data.
    Reduce { bytes: usize },
    /// One codec pass (compress or decompress) over `bytes` bytes of raw
    /// payload.  The error-bounded predictor codec is a single vectorized
    /// sweep — predict, quantize, pack (or the reverse) — with no
    /// reduction arithmetic, so it is priced at streaming-copy speed
    /// rather than [`TraceOp::Reduce`]'s arithmetic rate.
    Codec { bytes: usize },
    /// Generic local work of a fixed duration (software bookkeeping the
    /// algorithm performs, e.g. PiP-MPICH's size synchronization).
    Delay { nanos: Nanos },
    /// An **application compute interval**: work the caller performs between
    /// posting a non-blocking collective and completing it.  Costs the same
    /// as [`TraceOp::Delay`] on the executing rank's timeline but is
    /// accounted separately, so overlap studies can tell communication time
    /// from compute time — while a rank computes, messages already posted
    /// keep flowing through the NIC and the wire, which is exactly the
    /// communication/computation overlap the async-leader design exposes.
    Compute { nanos: Nanos },
    /// Node-wide barrier: all ranks of the executing rank's node must reach
    /// their matching barrier before any of them proceeds.
    LocalBarrier,
}

impl TraceOp {
    /// Bytes carried by this operation (0 for barriers and delays).
    pub fn bytes(&self) -> usize {
        match self {
            TraceOp::Send { bytes, .. }
            | TraceOp::Recv { bytes, .. }
            | TraceOp::CopyIntra { bytes, .. }
            | TraceOp::Reduce { bytes }
            | TraceOp::Codec { bytes } => *bytes,
            TraceOp::Delay { .. } | TraceOp::Compute { .. } | TraceOp::LocalBarrier => 0,
        }
    }
}

/// Copy-on-write storage for one rank's operation list.
///
/// Symmetric schedules lower to *identical* op vectors for whole classes of
/// ranks (every non-leader of a hierarchical collective, for instance), and a
/// 10^5-rank trace must not materialize 10^5 copies of the same vector.
/// `OpVec` therefore holds the ops behind an [`Arc`]: cloning a shared vector
/// is a reference-count bump, and the first mutation of a shared vector
/// transparently un-shares it (`Arc::make_mut`), so the `Vec`-style mutating
/// API (`push`, `insert`) keeps working for trace-building callers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpVec(Arc<Vec<TraceOp>>);

impl OpVec {
    /// An empty op list.  All empty `OpVec`s share one allocation, so
    /// `Trace::empty` at 10^6 ranks performs no per-rank op allocations.
    pub fn new() -> Self {
        static EMPTY: OnceLock<Arc<Vec<TraceOp>>> = OnceLock::new();
        Self(EMPTY.get_or_init(|| Arc::new(Vec::new())).clone())
    }

    /// Append an op, un-sharing the storage first if it is aliased.
    pub fn push(&mut self, op: TraceOp) {
        Arc::make_mut(&mut self.0).push(op);
    }

    /// Insert an op at `index`, un-sharing the storage first if aliased.
    pub fn insert(&mut self, index: usize, op: TraceOp) {
        Arc::make_mut(&mut self.0).insert(index, op);
    }

    /// Whether `self` and `other` alias the same underlying allocation.
    pub fn shares_storage_with(&self, other: &OpVec) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Default for OpVec {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<TraceOp>> for OpVec {
    fn from(ops: Vec<TraceOp>) -> Self {
        Self(Arc::new(ops))
    }
}

impl std::ops::Deref for OpVec {
    type Target = [TraceOp];

    fn deref(&self) -> &[TraceOp] {
        &self.0
    }
}

impl PartialEq for OpVec {
    fn eq(&self, other: &Self) -> bool {
        // Aliased storage is equal without looking at the elements.
        Arc::ptr_eq(&self.0, &other.0) || *self.0 == *other.0
    }
}

impl<'a> IntoIterator for &'a OpVec {
    type Item = &'a TraceOp;
    type IntoIter = std::slice::Iter<'a, TraceOp>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// The ordered operations of one rank.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RankTrace {
    /// Operations in program order.
    pub ops: OpVec,
}

impl RankTrace {
    /// Number of sends in the trace.
    pub fn send_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, TraceOp::Send { .. }))
            .count()
    }

    /// Number of receives in the trace.
    pub fn recv_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, TraceOp::Recv { .. }))
            .count()
    }

    /// Total bytes sent by this rank.
    pub fn bytes_sent(&self) -> usize {
        self.ops
            .iter()
            .filter_map(|op| match op {
                TraceOp::Send { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum()
    }

    /// Number of node-local barrier episodes this rank participates in.
    pub fn barrier_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, TraceOp::LocalBarrier))
            .count()
    }
}

/// A whole-cluster trace: one [`RankTrace`] per rank plus the topology it was
/// recorded for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// The cluster the trace describes.
    #[serde(skip, default = "default_topology")]
    pub topology: Topology,
    /// Per-rank operation lists, indexed by rank.
    pub ranks: Vec<RankTrace>,
}

// Referenced by the `#[serde(default = "...")]` field attribute above; the
// offline serde shim keeps the attribute inert, so the function looks unused
// until the real serde is swapped in.
#[allow(dead_code)]
fn default_topology() -> Topology {
    Topology::new(1, 1)
}

/// Problems detected by [`Trace::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The number of rank traces does not match the topology's world size.
    WrongRankCount { expected: usize, actual: usize },
    /// A send or receive references a rank outside the world.
    RankOutOfRange { rank: usize, op_rank: usize },
    /// Sends and receives do not pair up: for some (source, dest, tag) the
    /// message counts differ.
    UnmatchedMessages {
        source: usize,
        dest: usize,
        tag: u64,
        sent: usize,
        received: usize,
    },
    /// Ranks of the same node disagree on how many barrier episodes they
    /// participate in.
    BarrierMismatch {
        node: usize,
        min_count: usize,
        max_count: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::WrongRankCount { expected, actual } => {
                write!(
                    f,
                    "trace has {actual} rank entries, topology expects {expected}"
                )
            }
            TraceError::RankOutOfRange { rank, op_rank } => {
                write!(f, "rank {rank} references out-of-range rank {op_rank}")
            }
            TraceError::UnmatchedMessages {
                source,
                dest,
                tag,
                sent,
                received,
            } => write!(
                f,
                "messages {source}->{dest} tag {tag}: {sent} sent but {received} received"
            ),
            TraceError::BarrierMismatch {
                node,
                min_count,
                max_count,
            } => write!(
                f,
                "node {node}: ranks disagree on barrier count ({min_count}..{max_count})"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

impl Trace {
    /// Create an empty trace (no operations) for `topology`.
    pub fn empty(topology: Topology) -> Self {
        Self {
            topology,
            ranks: vec![RankTrace::default(); topology.world_size()],
        }
    }

    /// Append `op` to `rank`'s program.
    pub fn push(&mut self, rank: usize, op: TraceOp) {
        self.ranks[rank].ops.push(op);
    }

    /// Replace `rank`'s program wholesale.  Passing a clone of another rank's
    /// [`OpVec`] shares its storage instead of copying it.
    pub fn set_rank_ops(&mut self, rank: usize, ops: OpVec) {
        self.ranks[rank].ops = ops;
    }

    /// Build a trace from per-rank op vectors, sharing storage between ranks
    /// whose vectors are identical.  Lowering a symmetric plan through this
    /// constructor stores each distinct program once, however many ranks
    /// execute it.
    pub fn from_rank_ops(topology: Topology, rank_ops: Vec<Vec<TraceOp>>) -> Self {
        // Bucket by a cheap structural hash, then confirm with full equality
        // before aliasing; collisions degrade to extra comparisons only.
        use std::collections::HashMap;
        let mut trace = Trace::empty(topology);
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        for (rank, ops) in rank_ops.into_iter().enumerate() {
            let hash = hash_ops(&ops);
            let candidates = buckets.entry(hash).or_default();
            let shared = candidates
                .iter()
                .find(|&&prior| *trace.ranks[prior].ops == ops[..])
                .map(|&prior| trace.ranks[prior].ops.clone());
            match shared {
                Some(alias) => trace.ranks[rank].ops = alias,
                None => {
                    trace.ranks[rank].ops = ops.into();
                    candidates.push(rank);
                }
            }
        }
        trace
    }

    /// Number of distinct op-vector allocations behind this trace's ranks.
    /// Equal to `world_size` for a fully asymmetric trace; much smaller for
    /// symmetric schedules built via [`Trace::from_rank_ops`].
    pub fn distinct_rank_programs(&self) -> usize {
        let mut firsts: Vec<&RankTrace> = Vec::new();
        for rt in &self.ranks {
            if !firsts.iter().any(|f| f.ops.shares_storage_with(&rt.ops)) {
                firsts.push(rt);
            }
        }
        firsts.len()
    }

    /// Total messages sent across all ranks.
    pub fn total_messages(&self) -> usize {
        self.ranks.iter().map(RankTrace::send_count).sum()
    }

    /// Total payload bytes sent across all ranks.
    pub fn total_bytes(&self) -> usize {
        self.ranks.iter().map(RankTrace::bytes_sent).sum()
    }

    /// Messages whose source and destination live on different nodes.
    pub fn internode_messages(&self) -> usize {
        let mut count = 0;
        for (rank, trace) in self.ranks.iter().enumerate() {
            for op in &trace.ops {
                if let TraceOp::Send { dest, .. } = op {
                    if !self.topology.same_node(rank, *dest) {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    /// Check the structural invariants the simulator relies on: correct rank
    /// count, in-range peers, matched send/receive multisets, and consistent
    /// barrier counts within each node.
    pub fn validate(&self) -> Result<(), TraceError> {
        let world = self.topology.world_size();
        if self.ranks.len() != world {
            return Err(TraceError::WrongRankCount {
                expected: world,
                actual: self.ranks.len(),
            });
        }
        // Single pass over the ops: bounds-check peers, collect message
        // endpoints, and count barriers.  Matching is checked by sorting the
        // two endpoint lists and walking them in lockstep — no hashing, and
        // the first mismatch reported is the smallest `(source, dest, tag)`
        // key, exactly as before.
        let mut sent: Vec<(usize, usize, u64)> = Vec::new();
        let mut received: Vec<(usize, usize, u64)> = Vec::new();
        let mut barrier_counts: Vec<usize> = vec![0; world];
        for (rank, trace) in self.ranks.iter().enumerate() {
            for op in &trace.ops {
                match *op {
                    TraceOp::Send { dest, tag, .. } => {
                        if dest >= world {
                            return Err(TraceError::RankOutOfRange {
                                rank,
                                op_rank: dest,
                            });
                        }
                        sent.push((rank, dest, tag));
                    }
                    TraceOp::Recv { source, tag, .. } => {
                        if source >= world {
                            return Err(TraceError::RankOutOfRange {
                                rank,
                                op_rank: source,
                            });
                        }
                        received.push((source, rank, tag));
                    }
                    TraceOp::LocalBarrier => barrier_counts[rank] += 1,
                    _ => {}
                }
            }
        }
        sent.sort_unstable();
        received.sort_unstable();
        let (mut i, mut j) = (0, 0);
        while i < sent.len() || j < received.len() {
            let key = match (sent.get(i), received.get(j)) {
                (Some(&s), Some(&r)) => s.min(r),
                (Some(&s), None) => s,
                (None, Some(&r)) => r,
                (None, None) => break,
            };
            let (s0, r0) = (i, j);
            while sent.get(i) == Some(&key) {
                i += 1;
            }
            while received.get(j) == Some(&key) {
                j += 1;
            }
            let (s, r) = (i - s0, j - r0);
            if s != r {
                return Err(TraceError::UnmatchedMessages {
                    source: key.0,
                    dest: key.1,
                    tag: key.2,
                    sent: s,
                    received: r,
                });
            }
        }
        for node in 0..self.topology.nodes() {
            let counts = self.topology.ranks_on_node(node).map(|r| barrier_counts[r]);
            let (min, max) = counts.fold((usize::MAX, 0), |(lo, hi), c| (lo.min(c), hi.max(c)));
            if min != usize::MAX && min != max {
                return Err(TraceError::BarrierMismatch {
                    node,
                    min_count: min,
                    max_count: max,
                });
            }
        }
        Ok(())
    }
}

/// FNV-1a over a structural encoding of the ops.  `TraceOp` holds floats, so
/// it cannot derive `Hash`; hashing the bit patterns is fine here because the
/// hash only pre-filters candidates for an exact `PartialEq` check.
fn hash_ops(ops: &[TraceOp]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |word: u64| {
        hash ^= word;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for op in ops {
        match *op {
            TraceOp::Send { dest, bytes, tag } => {
                mix(1);
                mix(dest as u64);
                mix(bytes as u64);
                mix(tag);
            }
            TraceOp::Recv { source, bytes, tag } => {
                mix(2);
                mix(source as u64);
                mix(bytes as u64);
                mix(tag);
            }
            TraceOp::CopyIntra {
                bytes,
                mechanism,
                first_use,
            } => {
                mix(3);
                mix(bytes as u64);
                mix(mechanism.map(|m| m as u64 + 1).unwrap_or(0));
                mix(first_use as u64);
            }
            TraceOp::Reduce { bytes } => {
                mix(4);
                mix(bytes as u64);
            }
            TraceOp::Delay { nanos } => {
                mix(5);
                mix(nanos.to_bits());
            }
            TraceOp::Compute { nanos } => {
                mix(6);
                mix(nanos.to_bits());
            }
            TraceOp::LocalBarrier => mix(7),
            TraceOp::Codec { bytes } => {
                mix(8);
                mix(bytes as u64);
            }
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_topology() -> Topology {
        Topology::new(2, 2)
    }

    #[test]
    fn empty_trace_is_valid() {
        let trace = Trace::empty(tiny_topology());
        assert!(trace.validate().is_ok());
        assert_eq!(trace.total_messages(), 0);
        assert_eq!(trace.total_bytes(), 0);
    }

    #[test]
    fn matched_send_recv_is_valid() {
        let mut trace = Trace::empty(tiny_topology());
        trace.push(
            0,
            TraceOp::Send {
                dest: 2,
                bytes: 64,
                tag: 1,
            },
        );
        trace.push(
            2,
            TraceOp::Recv {
                source: 0,
                bytes: 64,
                tag: 1,
            },
        );
        assert!(trace.validate().is_ok());
        assert_eq!(trace.total_messages(), 1);
        assert_eq!(trace.total_bytes(), 64);
        assert_eq!(trace.internode_messages(), 1);
    }

    #[test]
    fn unmatched_send_is_detected() {
        let mut trace = Trace::empty(tiny_topology());
        trace.push(
            0,
            TraceOp::Send {
                dest: 1,
                bytes: 8,
                tag: 0,
            },
        );
        let err = trace.validate().unwrap_err();
        assert!(matches!(
            err,
            TraceError::UnmatchedMessages {
                sent: 1,
                received: 0,
                ..
            }
        ));
    }

    #[test]
    fn out_of_range_peer_is_detected() {
        let mut trace = Trace::empty(tiny_topology());
        trace.push(
            0,
            TraceOp::Send {
                dest: 9,
                bytes: 8,
                tag: 0,
            },
        );
        assert!(matches!(
            trace.validate().unwrap_err(),
            TraceError::RankOutOfRange { op_rank: 9, .. }
        ));
    }

    #[test]
    fn barrier_mismatch_is_detected() {
        let mut trace = Trace::empty(tiny_topology());
        trace.push(0, TraceOp::LocalBarrier);
        // Rank 1 (same node as 0) never reaches a barrier.
        let err = trace.validate().unwrap_err();
        assert!(matches!(err, TraceError::BarrierMismatch { node: 0, .. }));
    }

    #[test]
    fn wrong_rank_count_is_detected() {
        let mut trace = Trace::empty(tiny_topology());
        trace.ranks.pop();
        assert!(matches!(
            trace.validate().unwrap_err(),
            TraceError::WrongRankCount {
                expected: 4,
                actual: 3
            }
        ));
    }

    #[test]
    fn intra_node_messages_not_counted_as_internode() {
        let mut trace = Trace::empty(tiny_topology());
        trace.push(
            0,
            TraceOp::Send {
                dest: 1,
                bytes: 8,
                tag: 0,
            },
        );
        trace.push(
            1,
            TraceOp::Recv {
                source: 0,
                bytes: 8,
                tag: 0,
            },
        );
        assert_eq!(trace.internode_messages(), 0);
        assert!(trace.validate().is_ok());
    }

    #[test]
    fn rank_trace_counters() {
        let mut rt = RankTrace::default();
        rt.ops.push(TraceOp::Send {
            dest: 1,
            bytes: 10,
            tag: 0,
        });
        rt.ops.push(TraceOp::Send {
            dest: 2,
            bytes: 20,
            tag: 0,
        });
        rt.ops.push(TraceOp::Recv {
            source: 1,
            bytes: 5,
            tag: 0,
        });
        rt.ops.push(TraceOp::LocalBarrier);
        assert_eq!(rt.send_count(), 2);
        assert_eq!(rt.recv_count(), 1);
        assert_eq!(rt.bytes_sent(), 30);
        assert_eq!(rt.barrier_count(), 1);
    }

    #[test]
    fn from_rank_ops_shares_identical_programs() {
        let topo = Topology::new(4, 2);
        let leader = vec![
            TraceOp::Send {
                dest: 2,
                bytes: 64,
                tag: 0,
            },
            TraceOp::LocalBarrier,
        ];
        let follower = vec![
            TraceOp::CopyIntra {
                bytes: 64,
                mechanism: None,
                first_use: false,
            },
            TraceOp::LocalBarrier,
        ];
        let mut rank_ops: Vec<Vec<TraceOp>> = Vec::new();
        for rank in 0..topo.world_size() {
            if topo.is_node_root(rank) {
                let mut ops = leader.clone();
                // Leaders differ per node (distinct peers): not shareable.
                if let TraceOp::Send { dest, .. } = &mut ops[0] {
                    *dest = (rank + 2) % topo.world_size();
                }
                rank_ops.push(ops);
            } else {
                rank_ops.push(follower.clone());
            }
        }
        let trace = Trace::from_rank_ops(topo, rank_ops);
        // 4 distinct leader programs + 1 shared follower program.
        assert_eq!(trace.distinct_rank_programs(), 5);
        assert!(trace.ranks[1].ops.shares_storage_with(&trace.ranks[3].ops));
        assert!(!trace.ranks[0].ops.shares_storage_with(&trace.ranks[2].ops));
    }

    #[test]
    fn mutating_a_shared_op_vector_unshares_it() {
        let shared: OpVec = vec![TraceOp::Reduce { bytes: 8 }].into();
        let mut a = shared.clone();
        assert!(a.shares_storage_with(&shared));
        a.push(TraceOp::LocalBarrier);
        assert!(!a.shares_storage_with(&shared));
        assert_eq!(shared.len(), 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn empty_op_vectors_share_one_allocation() {
        let a = OpVec::new();
        let b = OpVec::default();
        assert!(a.shares_storage_with(&b));
        assert!(a.is_empty());
    }

    #[test]
    fn op_bytes_accessor() {
        assert_eq!(
            TraceOp::Send {
                dest: 0,
                bytes: 7,
                tag: 0
            }
            .bytes(),
            7
        );
        assert_eq!(TraceOp::LocalBarrier.bytes(), 0);
        assert_eq!(TraceOp::Delay { nanos: 5.0 }.bytes(), 0);
        assert_eq!(TraceOp::Reduce { bytes: 12 }.bytes(), 12);
    }
}
