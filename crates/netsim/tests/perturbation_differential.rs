//! Chaos-differential pin for the perturbation plane.
//!
//! Every random draw in [`pip_netsim::perturb`] is a pure hash of static
//! identifiers — (seed, rank), (seed, src-node, dst-node), (seed, rank, pc,
//! attempt) — so the calendar-queue engine and the seed reference engine
//! must agree *bit-for-bit* on every perturbed run, exactly as they do on
//! healthy ones.  This suite pins that property over random traces × random
//! perturbation configs, plus the surrounding invariants:
//!
//! * **identity** — a zero-magnitude config reproduces the unperturbed run
//!   exactly on every path (full, folded, reference);
//! * **determinism** — same seed, same outcome; different seed, different
//!   timeline; distribution sanity for the draws;
//! * **liveness** — drop rates below the retry budget always complete,
//!   rates above it yield a structured [`SimError::Failure`] naming the
//!   starved `(rank, tag)` pairs — never a hang, never a bare deadlock.

use pip_netsim::{
    DropSpec, LinkSpec, Perturbation, RunOptions, SimEngine, SimError, SimParams, StragglerSpec,
    Trace, TraceOp,
};
use pip_runtime::Topology;
use proptest::prelude::*;

/// Small deterministic generator so a failing case is reproducible from the
/// printed seed alone (same construction as `engine_differential.rs`).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        // splitmix64 step.
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn pick(&mut self, choices: &[f64]) -> f64 {
        choices[self.below(choices.len() as u64) as usize]
    }
}

/// A random valid trace: shifted exchanges with matched receives, local-op
/// preludes, optional barriers.
fn random_trace(nodes: usize, ppn: usize, rounds: usize, seed: u64) -> Trace {
    let topology = Topology::new(nodes, ppn);
    let world = topology.world_size();
    let mut rng = Lcg(seed | 1);
    let mut trace = Trace::empty(topology);
    for round in 0..rounds {
        for rank in 0..world {
            for _ in 0..rng.below(3) {
                let op = match rng.below(4) {
                    0 => TraceOp::Delay {
                        nanos: 0.27 * rng.below(10_000) as f64,
                    },
                    1 => TraceOp::Compute {
                        nanos: 0.31 * rng.below(10_000) as f64,
                    },
                    2 => TraceOp::Reduce {
                        bytes: 1 + rng.below(65_536) as usize,
                    },
                    _ => TraceOp::CopyIntra {
                        bytes: 1 + rng.below(65_536) as usize,
                        mechanism: None,
                        first_use: rng.below(2) == 0,
                    },
                };
                trace.push(rank, op);
            }
        }
        let shift = rng.below(world as u64) as usize;
        let bytes = 1 + rng.below(5_000) as usize;
        let tag = round as u64;
        for rank in 0..world {
            trace.push(
                rank,
                TraceOp::Send {
                    dest: (rank + shift) % world,
                    bytes,
                    tag,
                },
            );
        }
        for rank in 0..world {
            trace.push(
                rank,
                TraceOp::Recv {
                    source: (rank + world - shift) % world,
                    bytes,
                    tag,
                },
            );
        }
        if rng.below(4) == 0 {
            for rank in 0..world {
                trace.push(rank, TraceOp::LocalBarrier);
            }
        }
    }
    trace
}

/// A random perturbation drawn from small discrete sets so every regime —
/// inert, straggler-only, jitter-only, lossy, combined — shows up across
/// the proptest cases.  Retry budgets are deep enough that sub-unity drop
/// rates practically always deliver, keeping most cases on the `Ok` path.
fn random_perturbation(seed: u64) -> Perturbation {
    let mut rng = Lcg(seed.wrapping_mul(0x9e37_79b9) | 1);
    Perturbation {
        seed: rng.next(),
        straggler: StragglerSpec {
            fraction: rng.pick(&[0.0, 0.25, 0.5, 1.0]),
            start_delay: rng.pick(&[0.0, 500.0, 2_000.0]),
            start_delay_jitter: rng.pick(&[0.0, 300.0]),
            compute_slowdown: rng.pick(&[1.0, 1.25, 2.0]),
        },
        link: LinkSpec {
            latency_pad: rng.pick(&[0.0, 100.0]),
            latency_jitter: rng.pick(&[0.0, 250.0]),
            occupancy_factor: rng.pick(&[1.0, 1.5]),
            occupancy_jitter: rng.pick(&[0.0, 0.2]),
        },
        drop: DropSpec {
            rate: rng.pick(&[0.0, 0.02, 0.1]),
            max_retries: 6 + rng.below(4) as u32,
            timeout: 1_000.0 + rng.below(2_000) as f64,
            backoff: 1.0 + rng.below(3) as f64,
        },
    }
}

/// A node-symmetric perturbation: uniform across ranks and links, no drops.
/// These are exactly the configs folded replay accepts.
fn random_symmetric_perturbation(seed: u64) -> Perturbation {
    let mut rng = Lcg(seed.wrapping_mul(0x517c_c1b7) | 1);
    Perturbation {
        seed: rng.next(),
        straggler: StragglerSpec {
            fraction: 1.0,
            start_delay: rng.pick(&[0.0, 500.0, 2_000.0]),
            start_delay_jitter: 0.0,
            compute_slowdown: rng.pick(&[1.0, 1.5, 2.0]),
        },
        link: LinkSpec {
            latency_pad: rng.pick(&[0.0, 100.0, 400.0]),
            latency_jitter: 0.0,
            occupancy_factor: rng.pick(&[1.0, 1.25, 2.0]),
            occupancy_jitter: 0.0,
        },
        drop: DropSpec::NONE,
    }
}

/// A config with every magnitude at its neutral element: active in shape
/// (non-zero fraction, non-zero retry budget) but an arithmetic identity.
fn zero_magnitude_perturbation(seed: u64) -> Perturbation {
    Perturbation {
        seed,
        straggler: StragglerSpec {
            fraction: 1.0,
            start_delay: 0.0,
            start_delay_jitter: 0.0,
            compute_slowdown: 1.0,
        },
        link: LinkSpec::NONE,
        drop: DropSpec {
            rate: 0.0,
            max_retries: 8,
            timeout: 1_000.0,
            backoff: 2.0,
        },
    }
}

/// Bitwise agreement on everything event-ordering cannot touch; tolerance
/// only for float accumulators whose summation order differs by design.
fn assert_outcomes_agree(
    label: &str,
    a: &pip_netsim::engine::SimOutcome,
    b: &pip_netsim::engine::SimOutcome,
) {
    assert_eq!(a.makespan, b.makespan, "{label}: makespan");
    assert_eq!(a.rank_finish, b.rank_finish, "{label}: rank_finish");
    assert_eq!(a.stats.retries, b.stats.retries, "{label}: retries");
    assert_eq!(
        a.stats.retransmitted_bytes, b.stats.retransmitted_bytes,
        "{label}: retransmitted_bytes"
    );
    assert_eq!(
        a.stats.finish_skew_p50, b.stats.finish_skew_p50,
        "{label}: finish_skew_p50"
    );
    assert_eq!(
        a.stats.finish_skew_p99, b.stats.finish_skew_p99,
        "{label}: finish_skew_p99"
    );
    assert_eq!(
        a.stats.internode_messages, b.stats.internode_messages,
        "{label}: internode_messages"
    );
    assert_eq!(
        a.stats.intranode_messages, b.stats.intranode_messages,
        "{label}: intranode_messages"
    );
    assert_eq!(
        a.stats.internode_bytes, b.stats.internode_bytes,
        "{label}: internode_bytes"
    );
    assert_eq!(
        a.stats.barrier_episodes, b.stats.barrier_episodes,
        "{label}: barrier_episodes"
    );
    let close = |x: f64, y: f64| (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0);
    assert!(
        close(a.stats.compute_total, b.stats.compute_total),
        "{label}: compute_total {} vs {}",
        a.stats.compute_total,
        b.stats.compute_total
    );
    assert!(
        close(a.stats.nic_busy_total, b.stats.nic_busy_total),
        "{label}: nic_busy_total {} vs {}",
        a.stats.nic_busy_total,
        b.stats.nic_busy_total
    );
    assert!(
        close(a.stats.nic_busy_max, b.stats.nic_busy_max),
        "{label}: nic_busy_max {} vs {}",
        a.stats.nic_busy_max,
        b.stats.nic_busy_max
    );
    assert!(
        close(a.stats.straggler_idle_total, b.stats.straggler_idle_total),
        "{label}: straggler_idle_total {} vs {}",
        a.stats.straggler_idle_total,
        b.stats.straggler_idle_total
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn calendar_engine_matches_reference_under_random_perturbations(
        nodes in 1usize..6,
        ppn in 1usize..5,
        rounds in 1usize..5,
        seed in any::<u64>(),
    ) {
        let trace = random_trace(nodes, ppn, rounds, seed);
        let perturbation = random_perturbation(seed);
        let options = RunOptions::default().with_perturbation(perturbation);
        let engine = SimEngine::new(SimParams::default());
        let label = format!("{nodes}x{ppn} rounds={rounds} seed={seed}");
        match (
            engine.run_with(&trace, options),
            engine.run_reference_with(&trace, options),
        ) {
            (Ok(calendar), Ok(reference)) => {
                assert_outcomes_agree(&label, &calendar, &reference);
            }
            // A starved message (drop budget exhausted) must be reported
            // identically: same starved list, same stuck set.
            (Err(calendar), Err(reference)) => prop_assert_eq!(calendar, reference),
            (a, b) => panic!("{label}: engines disagree on success: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn zero_magnitude_config_is_invisible_on_every_path(
        nodes in 1usize..6,
        ppn in 1usize..5,
        rounds in 1usize..4,
        seed in any::<u64>(),
    ) {
        let trace = random_trace(nodes, ppn, rounds, seed);
        let identity = zero_magnitude_perturbation(seed);
        prop_assert!(identity.is_identity());
        let options = RunOptions::default().with_perturbation(identity);
        let engine = SimEngine::new(SimParams::default());

        let baseline = engine.run(&trace).expect("baseline");
        prop_assert_eq!(&engine.run_with(&trace, options).expect("full"), &baseline);
        prop_assert_eq!(
            &engine.run_folded_with(&trace, options).expect("folded"),
            &engine.run_folded(&trace).expect("folded baseline")
        );
        prop_assert_eq!(
            &engine.run_reference_with(&trace, options).expect("reference"),
            &engine.run_reference(&trace).expect("reference baseline")
        );
    }

    #[test]
    fn symmetric_perturbations_still_fold(
        nodes in 2usize..6,
        ppn in 1usize..5,
        rounds in 1usize..4,
        seed in any::<u64>(),
    ) {
        let trace = random_trace(nodes, ppn, rounds, seed);
        let perturbation = random_symmetric_perturbation(seed);
        prop_assert!(perturbation.is_node_symmetric());
        let options = RunOptions::default().with_perturbation(perturbation);
        let engine = SimEngine::new(SimParams::default());
        let full = engine.run_with(&trace, options).expect("full replay");
        let folded = engine.run_folded_with(&trace, options).expect("folded replay");
        assert_outcomes_agree(
            &format!("sym {nodes}x{ppn} rounds={rounds} seed={seed}"),
            &folded,
            &full,
        );
    }

    #[test]
    fn asymmetric_perturbations_fall_back_to_full_replay(
        nodes in 2usize..6,
        ppn in 1usize..5,
        seed in any::<u64>(),
    ) {
        // `run_folded_with` must notice the asymmetry and silently replay
        // in full, so its outcome equals `run_with` bit-for-bit.
        let trace = random_trace(nodes, ppn, 2, seed);
        let mut perturbation = random_perturbation(seed);
        perturbation.straggler.fraction = 0.5;
        perturbation.straggler.start_delay = 1_000.0;
        prop_assert!(!perturbation.is_node_symmetric());
        let options = RunOptions::default().with_perturbation(perturbation);
        let engine = SimEngine::new(SimParams::default());
        match (
            engine.run_with(&trace, options),
            engine.run_folded_with(&trace, options),
        ) {
            (Ok(full), Ok(folded)) => prop_assert_eq!(full, folded),
            (Err(full), Err(folded)) => prop_assert_eq!(full, folded),
            (a, b) => panic!("fallback mismatch: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn same_seed_reproduces_the_exact_outcome() {
    let trace = random_trace(4, 3, 3, 42);
    let perturbation = random_perturbation(42);
    let options = RunOptions::default().with_perturbation(perturbation);
    let engine = SimEngine::new(SimParams::default());
    let first = engine.run_with(&trace, options).expect("first run");
    let second = engine.run_with(&trace, options).expect("second run");
    assert_eq!(first, second);
}

#[test]
fn different_seeds_move_the_timeline() {
    let trace = random_trace(4, 3, 3, 42);
    let base = Perturbation {
        straggler: StragglerSpec {
            fraction: 0.5,
            start_delay: 2_000.0,
            start_delay_jitter: 1_000.0,
            compute_slowdown: 1.5,
        },
        link: LinkSpec {
            latency_pad: 0.0,
            latency_jitter: 500.0,
            occupancy_factor: 1.0,
            occupancy_jitter: 0.1,
        },
        drop: DropSpec::NONE,
        seed: 0,
    };
    let engine = SimEngine::new(SimParams::default());
    let makespans: Vec<f64> = (0..4u64)
        .map(|seed| {
            let options = RunOptions::default().with_perturbation(Perturbation { seed, ..base });
            engine.run_with(&trace, options).expect("run").makespan
        })
        .collect();
    assert!(
        makespans.windows(2).any(|w| w[0] != w[1]),
        "four seeds produced identical makespans: {makespans:?}"
    );
}

#[test]
fn perturbed_summary_runs_skip_rank_finish_but_keep_the_stats() {
    let trace = random_trace(3, 3, 3, 7);
    let perturbation = random_perturbation(7);
    let engine = SimEngine::new(SimParams::default());
    let recorded = engine
        .run_with(
            &trace,
            RunOptions::default().with_perturbation(perturbation),
        )
        .expect("recorded");
    let summary = engine
        .run_with(
            &trace,
            RunOptions::summary().with_perturbation(perturbation),
        )
        .expect("summary");
    assert!(!recorded.rank_finish.is_empty());
    assert!(summary.rank_finish.is_empty());
    assert_eq!(summary.makespan, recorded.makespan);
    assert_eq!(summary.stats, recorded.stats);
}

// --- distribution sanity (different seeds, public draw API) -------------

#[test]
fn straggler_fraction_matches_the_configured_probability() {
    let perturbation = Perturbation {
        seed: 99,
        straggler: StragglerSpec {
            fraction: 0.25,
            start_delay: 100.0,
            start_delay_jitter: 0.0,
            compute_slowdown: 1.0,
        },
        ..Perturbation::NONE
    };
    let hits = (0..10_000)
        .filter(|&rank| perturbation.rank_is_straggler(rank))
        .count();
    assert!(
        (2_200..=2_800).contains(&hits),
        "expected ~2500/10000 stragglers, got {hits}"
    );
}

#[test]
fn mean_link_jitter_is_within_tolerance() {
    let perturbation = Perturbation {
        seed: 123,
        link: LinkSpec {
            latency_pad: 100.0,
            latency_jitter: 1_000.0,
            occupancy_factor: 1.0,
            occupancy_jitter: 0.0,
        },
        ..Perturbation::NONE
    };
    let n = 200usize;
    let mut sum = 0.0;
    for src in 0..n {
        for dst in 0..n {
            sum += perturbation.link_latency_extra(src, dst);
        }
    }
    let mean = sum / (n * n) as f64;
    // Uniform on [pad, pad + jitter): mean = pad + jitter / 2 = 600.
    assert!(
        (550.0..=650.0).contains(&mean),
        "mean link latency extra {mean} outside [550, 650]"
    );
}

#[test]
fn drop_rate_matches_first_attempt_frequency() {
    let perturbation = Perturbation {
        seed: 7,
        drop: DropSpec {
            rate: 0.1,
            max_retries: 3,
            timeout: 1_000.0,
            backoff: 2.0,
        },
        ..Perturbation::NONE
    };
    let retried = (0..20_000)
        .filter(|&pc| perturbation.send_fate(0, pc).retries > 0)
        .count();
    let freq = retried as f64 / 20_000.0;
    assert!(
        (0.09..=0.11).contains(&freq),
        "first-attempt drop frequency {freq} outside [0.09, 0.11]"
    );
}

// --- liveness / failure modes -------------------------------------------

/// An inter-node ring exchange (the shape every collective in the repo
/// reduces to at node granularity).
fn internode_ring_trace(nodes: usize, ppn: usize) -> Trace {
    let topology = Topology::new(nodes, ppn);
    let mut trace = Trace::empty(topology);
    for rank in 0..topology.world_size() {
        let node = topology.node_of(rank);
        let local = topology.local_rank_of(rank);
        let next = topology.rank_of((node + 1) % nodes, local);
        let prev = topology.rank_of((node + nodes - 1) % nodes, local);
        trace.push(
            rank,
            TraceOp::Send {
                dest: next,
                bytes: 4_096,
                tag: 5,
            },
        );
        trace.push(
            rank,
            TraceOp::Recv {
                source: prev,
                bytes: 4_096,
                tag: 5,
            },
        );
    }
    trace
}

#[test]
fn sub_budget_drop_rates_always_complete() {
    // With rate 0.05 and a 10-deep retry budget, exhausting the budget
    // needs 11 consecutive losses (p ≈ 5e-15): the deterministic draws
    // never produce one, so every grid point must complete.
    let engine = SimEngine::new(SimParams::default());
    for &(nodes, ppn) in &[(2usize, 2usize), (4, 3), (6, 1)] {
        let trace = internode_ring_trace(nodes, ppn);
        for seed in 0..16u64 {
            let perturbation = Perturbation {
                seed,
                drop: DropSpec {
                    rate: 0.05,
                    max_retries: 10,
                    timeout: 1_000.0,
                    backoff: 2.0,
                },
                ..Perturbation::NONE
            };
            let options = RunOptions::default().with_perturbation(perturbation);
            let outcome = engine
                .run_with(&trace, options)
                .unwrap_or_else(|e| panic!("{nodes}x{ppn} seed={seed}: {e}"));
            let reference = engine
                .run_reference_with(&trace, options)
                .unwrap_or_else(|e| panic!("{nodes}x{ppn} seed={seed} reference: {e}"));
            assert_outcomes_agree(
                &format!("live {nodes}x{ppn} seed={seed}"),
                &outcome,
                &reference,
            );
        }
    }
}

#[test]
fn exhausted_drop_budget_reports_structured_failure_not_deadlock() {
    let trace = internode_ring_trace(4, 2);
    let perturbation = Perturbation {
        seed: 1,
        drop: DropSpec {
            rate: 1.0,
            max_retries: 2,
            timeout: 500.0,
            backoff: 2.0,
        },
        ..Perturbation::NONE
    };
    let options = RunOptions::default().with_perturbation(perturbation);
    let engine = SimEngine::new(SimParams::default());
    let calendar = engine.run_with(&trace, options).unwrap_err();
    let reference = engine.run_reference_with(&trace, options).unwrap_err();
    assert_eq!(calendar, reference);
    match calendar {
        SimError::Failure(failure) => {
            assert!(!failure.starved.is_empty());
            assert!(!failure.stuck_ranks.is_empty());
            // Every starved entry names the receiver, sender, and tag of a
            // message whose drop budget ran out.
            for starved in &failure.starved {
                assert!(starved.rank < trace.topology.world_size());
                assert_eq!(starved.tag, 5);
                assert_eq!(starved.attempts, 3); // 1 try + 2 retries
            }
        }
        other => panic!("expected SimError::Failure, got {other:?}"),
    }
}
