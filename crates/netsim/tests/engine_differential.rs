//! Differential pin between the three replay paths.
//!
//! The calendar-queue engine replaced the seed `BinaryHeap` scheduler; both
//! implement the identical cost model, so on any valid trace their outcomes
//! must agree — the makespan and per-rank finish times bitwise, the float
//! accumulators up to summation order.  The folded replay must in turn
//! agree with the full replay whether or not the trace actually folds
//! (unfoldable traces fall back to the full path).
//!
//! Traces are generated randomly: shifted all-to-one-peer exchange rounds
//! with per-rank local-op preludes (delays, compute, reductions, copies),
//! optional barrier rounds, and self-sends when the shift is zero.

use pip_netsim::{
    DropSpec, Perturbation, RunOptions, SimEngine, SimError, SimParams, StragglerSpec, Trace,
    TraceOp,
};
use pip_runtime::Topology;
use proptest::prelude::*;

/// Small deterministic generator so a failing case is reproducible from the
/// printed seed alone.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        // splitmix64 step.
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// A random valid trace: every send is matched by a receive, barriers are
/// collective per node, and local ops have irregular (non-tying) costs.
fn random_trace(nodes: usize, ppn: usize, rounds: usize, seed: u64) -> Trace {
    let topology = Topology::new(nodes, ppn);
    let world = topology.world_size();
    let mut rng = Lcg(seed | 1);
    let mut trace = Trace::empty(topology);
    for round in 0..rounds {
        // Per-rank local preludes with irregular costs.
        for rank in 0..world {
            for _ in 0..rng.below(3) {
                let op = match rng.below(4) {
                    0 => TraceOp::Delay {
                        nanos: 0.27 * rng.below(10_000) as f64,
                    },
                    1 => TraceOp::Compute {
                        nanos: 0.31 * rng.below(10_000) as f64,
                    },
                    2 => TraceOp::Reduce {
                        bytes: 1 + rng.below(65_536) as usize,
                    },
                    _ => TraceOp::CopyIntra {
                        bytes: 1 + rng.below(65_536) as usize,
                        mechanism: None,
                        first_use: rng.below(2) == 0,
                    },
                };
                trace.push(rank, op);
            }
        }
        // A shifted exchange: rank -> (rank + d) % world, matched receives.
        let shift = rng.below(world as u64) as usize;
        let bytes = 1 + rng.below(5_000) as usize;
        let tag = round as u64;
        for rank in 0..world {
            trace.push(
                rank,
                TraceOp::Send {
                    dest: (rank + shift) % world,
                    bytes,
                    tag,
                },
            );
        }
        for rank in 0..world {
            trace.push(
                rank,
                TraceOp::Recv {
                    source: (rank + world - shift) % world,
                    bytes,
                    tag,
                },
            );
        }
        if rng.below(4) == 0 {
            for rank in 0..world {
                trace.push(rank, TraceOp::LocalBarrier);
            }
        }
    }
    trace
}

fn assert_outcomes_agree(
    label: &str,
    a: &pip_netsim::engine::SimOutcome,
    b: &pip_netsim::engine::SimOutcome,
) {
    assert_eq!(a.makespan, b.makespan, "{label}: makespan");
    assert_eq!(a.rank_finish, b.rank_finish, "{label}: rank_finish");
    assert_eq!(
        a.stats.internode_messages, b.stats.internode_messages,
        "{label}: internode_messages"
    );
    assert_eq!(
        a.stats.intranode_messages, b.stats.intranode_messages,
        "{label}: intranode_messages"
    );
    assert_eq!(
        a.stats.internode_bytes, b.stats.internode_bytes,
        "{label}: internode_bytes"
    );
    assert_eq!(
        a.stats.barrier_episodes, b.stats.barrier_episodes,
        "{label}: barrier_episodes"
    );
    // Float accumulators may differ by summation order only.
    let close = |x: f64, y: f64| (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0);
    assert!(
        close(a.stats.compute_total, b.stats.compute_total),
        "{label}: compute_total {} vs {}",
        a.stats.compute_total,
        b.stats.compute_total
    );
    assert!(
        close(a.stats.nic_busy_total, b.stats.nic_busy_total),
        "{label}: nic_busy_total {} vs {}",
        a.stats.nic_busy_total,
        b.stats.nic_busy_total
    );
    assert!(
        close(a.stats.nic_busy_max, b.stats.nic_busy_max),
        "{label}: nic_busy_max {} vs {}",
        a.stats.nic_busy_max,
        b.stats.nic_busy_max
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn calendar_engine_matches_seed_engine_on_random_traces(
        nodes in 1usize..6,
        ppn in 1usize..5,
        rounds in 1usize..5,
        seed in any::<u64>(),
    ) {
        let trace = random_trace(nodes, ppn, rounds, seed);
        let engine = SimEngine::new(SimParams::default());
        let calendar = engine.run(&trace).expect("calendar replay");
        let reference = engine.run_reference(&trace).expect("reference replay");
        assert_outcomes_agree(
            &format!("{nodes}x{ppn} rounds={rounds} seed={seed}"),
            &calendar,
            &reference,
        );
    }

    #[test]
    fn folded_replay_matches_full_replay_on_random_traces(
        nodes in 1usize..6,
        ppn in 1usize..5,
        rounds in 1usize..5,
        seed in any::<u64>(),
    ) {
        let trace = random_trace(nodes, ppn, rounds, seed);
        let engine = SimEngine::new(SimParams::default());
        let full = engine.run(&trace).expect("full replay");
        let folded = engine.run_folded(&trace).expect("folded replay");
        assert_outcomes_agree(
            &format!("{nodes}x{ppn} rounds={rounds} seed={seed}"),
            &folded,
            &full,
        );
    }

    #[test]
    fn taxed_library_parameters_preserve_the_differential(
        nodes in 1usize..5,
        ppn in 1usize..4,
        seed in any::<u64>(),
    ) {
        // Software overhead and cold buffers move every timestamp; the
        // engines must still agree exactly.
        let trace = random_trace(nodes, ppn, 3, seed);
        let params = SimParams::default()
            .with_software_overhead(137.0, 93.0)
            .with_cold_buffers();
        let engine = SimEngine::new(params);
        let calendar = engine.run(&trace).expect("calendar replay");
        let reference = engine.run_reference(&trace).expect("reference replay");
        assert_outcomes_agree(
            &format!("taxed {nodes}x{ppn} seed={seed}"),
            &calendar,
            &reference,
        );
    }
}

#[test]
fn summary_mode_matches_recorded_mode_on_random_traces() {
    for seed in 0..8u64 {
        let trace = random_trace(3, 3, 3, seed);
        let engine = SimEngine::new(SimParams::default());
        let recorded = engine.run(&trace).unwrap();
        let summary = engine.run_with(&trace, RunOptions::summary()).unwrap();
        assert!(summary.rank_finish.is_empty());
        assert_eq!(summary.makespan, recorded.makespan);
        assert_eq!(summary.stats, recorded.stats);
    }
}

/// A circular wait: every rank posts its receive before its send, so no
/// message is ever produced and no rank can progress.
fn circular_wait_trace() -> Trace {
    let topology = Topology::new(3, 1);
    let mut trace = Trace::empty(topology);
    for rank in 0..3 {
        trace.push(
            rank,
            TraceOp::Recv {
                source: (rank + 2) % 3,
                bytes: 64,
                tag: 9,
            },
        );
        trace.push(
            rank,
            TraceOp::Send {
                dest: (rank + 1) % 3,
                bytes: 64,
                tag: 9,
            },
        );
    }
    trace
}

#[test]
fn deadlock_detection_survives_an_active_perturbation() {
    // A genuine circular wait must still be reported as `Deadlock` — not
    // misclassified as a drop-induced `Failure` — even when the drop model
    // is armed, because no message was ever sent to be dropped.  Both
    // engines must name the same stuck set.
    let trace = circular_wait_trace();
    let perturbation = Perturbation {
        seed: 11,
        drop: DropSpec {
            rate: 0.5,
            max_retries: 2,
            timeout: 100.0,
            backoff: 2.0,
        },
        ..Perturbation::NONE
    };
    let options = RunOptions::default().with_perturbation(perturbation);
    let engine = SimEngine::new(SimParams::default());
    let calendar = engine.run_with(&trace, options).unwrap_err();
    let reference = engine.run_reference_with(&trace, options).unwrap_err();
    assert_eq!(calendar, reference);
    match calendar {
        SimError::Deadlock { stuck_ranks } => assert_eq!(stuck_ranks, vec![0, 1, 2]),
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

#[test]
fn straggler_delays_do_not_mask_a_deadlock() {
    let trace = circular_wait_trace();
    let perturbation = Perturbation {
        seed: 3,
        straggler: StragglerSpec {
            fraction: 1.0,
            start_delay: 5_000.0,
            start_delay_jitter: 1_000.0,
            compute_slowdown: 2.0,
        },
        ..Perturbation::NONE
    };
    let options = RunOptions::default().with_perturbation(perturbation);
    let engine = SimEngine::new(SimParams::default());
    let calendar = engine.run_with(&trace, options).unwrap_err();
    let reference = engine.run_reference_with(&trace, options).unwrap_err();
    assert_eq!(calendar, reference);
    assert!(matches!(calendar, SimError::Deadlock { .. }));
}
