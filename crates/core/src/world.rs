//! Launching a simulated world: topology + library profile + user program.

use pip_mpi_model::{Library, LibraryProfile};
use pip_runtime::{Cluster, Result, Topology};

use crate::comm::Communicator;

/// Entry point for running MPI-like programs on the in-process cluster.
pub struct World;

impl World {
    /// Start building a world description.
    pub fn builder() -> WorldBuilder {
        WorldBuilder::default()
    }

    /// Run `f` on every rank of `topology` with the given library profile
    /// and collect the per-rank results in rank order.
    pub fn run_with_profile<T, F>(
        topology: Topology,
        profile: LibraryProfile,
        f: F,
    ) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&Communicator<'_>) -> T + Sync,
    {
        Cluster::launch(topology, |ctx| {
            let comm = Communicator::new(ctx, profile.clone());
            f(&comm)
        })
    }
}

/// Builder for [`World::run_with_profile`].
#[derive(Debug, Clone)]
pub struct WorldBuilder {
    nodes: usize,
    ppn: usize,
    library: Library,
}

impl Default for WorldBuilder {
    fn default() -> Self {
        Self {
            nodes: 1,
            ppn: 2,
            library: Library::PipMColl,
        }
    }
}

impl WorldBuilder {
    /// Number of simulated nodes (default 1).
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Processes per node (default 2).
    pub fn ppn(mut self, ppn: usize) -> Self {
        self.ppn = ppn;
        self
    }

    /// Which library's algorithms to use (default PiP-MColl).
    pub fn library(mut self, library: Library) -> Self {
        self.library = library;
        self
    }

    /// The topology this builder describes.
    pub fn topology(&self) -> Topology {
        Topology::new(self.nodes, self.ppn)
    }

    /// Launch the world and run `f` on every rank.
    pub fn run<T, F>(self, f: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&Communicator<'_>) -> T + Sync,
    {
        World::run_with_profile(self.topology(), self.library.profile(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_sane() {
        let builder = World::builder();
        assert_eq!(builder.topology().world_size(), 2);
    }

    #[test]
    fn run_collects_results_in_rank_order() {
        let results = World::builder()
            .nodes(2)
            .ppn(2)
            .run(|comm| comm.rank() * 2)
            .unwrap();
        assert_eq!(results, vec![0, 2, 4, 6]);
    }

    #[test]
    fn every_library_can_run_a_program() {
        for library in Library::ALL {
            let results = World::builder()
                .nodes(2)
                .ppn(2)
                .library(library)
                .run(|comm| {
                    let gathered = comm.allgather(&[comm.rank() as u16]);
                    gathered.iter().copied().sum::<u16>()
                })
                .unwrap();
            assert!(results.iter().all(|&s| s == 6), "{}", library.name());
        }
    }

    #[test]
    fn panics_in_user_code_surface_as_errors() {
        let err = World::builder()
            .nodes(1)
            .ppn(2)
            .run(|comm| {
                if comm.rank() == 1 {
                    panic!("boom");
                }
                0
            })
            .unwrap_err();
        assert!(err.to_string().contains("boom"));
    }
}
