//! # pip-mcoll-core
//!
//! The user-facing MPI-like library of the PiP-MColl reproduction: typed
//! datatypes and reduction operators, communicators with point-to-point and
//! collective operations, and a [`world::World`] launcher that spins up a
//! simulated cluster inside the current process.
//!
//! The collective implementations live in `pip-collectives`; which algorithm
//! a call uses is decided by the [`pip_mpi_model::LibraryProfile`] the
//! communicator was created with, exactly as the comparator MPI libraries
//! make that decision from message size and communicator shape.  Running the
//! same program under `Library::PipMColl` and under `Library::Mvapich2`
//! therefore exercises the paper's design and its baseline on identical
//! workloads.
//!
//! ```
//! use pip_mcoll_core::prelude::*;
//!
//! // 2 nodes x 3 processes, PiP-MColl algorithms.
//! let sums = World::builder()
//!     .nodes(2)
//!     .ppn(3)
//!     .library(Library::PipMColl)
//!     .run(|comm| {
//!         let mine = [comm.rank() as u64];
//!         let everyone = comm.allgather(&mine);
//!         everyone.iter().sum::<u64>()
//!     })
//!     .unwrap();
//! assert!(sums.iter().all(|&s| s == 15));
//! ```
//!
//! Beyond the blocking calls, [`comm::Communicator`] offers request-based
//! **non-blocking** collectives (`iallgather`, `iallreduce`, `ireduce`,
//! `ireduce_scatter`, `iscan`, …) returning a [`comm::CollRequest`], and
//! **persistent** handles (`allgather_init`, `allreduce_init`,
//! `reduce_scatter_init`, …) that pin a compiled plan to pre-bound buffers
//! and can be started any number of times ([`comm::PersistentColl`]).
//! The reduction family — `reduce`, `reduce_scatter`, `scan`, `exscan` —
//! shares all three entry styles with the original six collectives.

#![warn(missing_docs)]

pub mod comm;
pub mod datatype;
pub mod world;

/// Convenient re-exports for application code.
pub mod prelude {
    pub use crate::comm::{wait_all, CollRequest, Communicator, PersistentColl};
    pub use crate::datatype::{Datatype, DtypeId, Layout, Op, ReduceKernel, ReduceOp};
    pub use crate::world::{World, WorldBuilder};
    pub use pip_mpi_model::Library;
    pub use pip_runtime::Topology;
}

pub use comm::{wait_all, CollRequest, Communicator, PersistentColl};
pub use datatype::{
    Datatype, DtypeId, Layout, Op, OwnedReduction, ReduceIdent, ReduceKernel, ReduceOp,
};
pub use world::{World, WorldBuilder};
