//! Typed elements and reduction operators.
//!
//! MPI expresses buffers as (pointer, count, datatype); the Rust equivalent
//! used here is a slice of a type implementing [`Datatype`], which knows how
//! to serialize itself to the little-endian byte representation the
//! communication layer moves around, and how the built-in reduction
//! operators combine two values.

/// A fixed-size element that can travel through the communication layer.
pub trait Datatype: Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// Size of one element in bytes.
    const SIZE: usize;

    /// Serialize into exactly [`Datatype::SIZE`] bytes.
    fn write_le(&self, out: &mut [u8]);

    /// Deserialize from exactly [`Datatype::SIZE`] bytes.
    fn read_le(src: &[u8]) -> Self;

    /// `a + b` for the SUM operator.
    fn op_sum(a: Self, b: Self) -> Self;
    /// `a * b` for the PROD operator.
    fn op_prod(a: Self, b: Self) -> Self;
    /// `max(a, b)` for the MAX operator.
    fn op_max(a: Self, b: Self) -> Self;
    /// `min(a, b)` for the MIN operator.
    fn op_min(a: Self, b: Self) -> Self;
}

macro_rules! impl_datatype_int {
    ($($ty:ty),*) => {$(
        impl Datatype for $ty {
            const SIZE: usize = std::mem::size_of::<$ty>();

            fn write_le(&self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }

            fn read_le(src: &[u8]) -> Self {
                <$ty>::from_le_bytes(src.try_into().expect("element size"))
            }

            fn op_sum(a: Self, b: Self) -> Self {
                a.wrapping_add(b)
            }

            fn op_prod(a: Self, b: Self) -> Self {
                a.wrapping_mul(b)
            }

            fn op_max(a: Self, b: Self) -> Self {
                a.max(b)
            }

            fn op_min(a: Self, b: Self) -> Self {
                a.min(b)
            }
        }
    )*};
}

macro_rules! impl_datatype_float {
    ($($ty:ty),*) => {$(
        impl Datatype for $ty {
            const SIZE: usize = std::mem::size_of::<$ty>();

            fn write_le(&self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }

            fn read_le(src: &[u8]) -> Self {
                <$ty>::from_le_bytes(src.try_into().expect("element size"))
            }

            fn op_sum(a: Self, b: Self) -> Self {
                a + b
            }

            fn op_prod(a: Self, b: Self) -> Self {
                a * b
            }

            fn op_max(a: Self, b: Self) -> Self {
                a.max(b)
            }

            fn op_min(a: Self, b: Self) -> Self {
                a.min(b)
            }
        }
    )*};
}

impl_datatype_int!(u8, i8, u16, i16, u32, i32, u64, i64, usize);
impl_datatype_float!(f32, f64);

/// The built-in commutative reduction operators (MPI_SUM, MPI_PROD, MPI_MAX,
/// MPI_MIN).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise product.
    Prod,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    /// Combine two values.
    pub fn combine<T: Datatype>(&self, a: T, b: T) -> T {
        match self {
            ReduceOp::Sum => T::op_sum(a, b),
            ReduceOp::Prod => T::op_prod(a, b),
            ReduceOp::Max => T::op_max(a, b),
            ReduceOp::Min => T::op_min(a, b),
        }
    }

    /// Element-wise combine over serialized buffers (`acc ⊕= other`), the
    /// form the byte-level collective algorithms consume.
    pub fn apply_bytes<T: Datatype>(&self, acc: &mut [u8], other: &[u8]) {
        debug_assert_eq!(acc.len(), other.len());
        debug_assert_eq!(acc.len() % T::SIZE, 0);
        for i in (0..acc.len()).step_by(T::SIZE) {
            let a = T::read_le(&acc[i..i + T::SIZE]);
            let b = T::read_le(&other[i..i + T::SIZE]);
            self.combine(a, b).write_le(&mut acc[i..i + T::SIZE]);
        }
    }
}

/// Serialize a typed slice to its little-endian byte representation.
pub fn to_bytes<T: Datatype>(values: &[T]) -> Vec<u8> {
    let mut out = vec![0u8; values.len() * T::SIZE];
    for (value, chunk) in values.iter().zip(out.chunks_exact_mut(T::SIZE)) {
        value.write_le(chunk);
    }
    out
}

/// Deserialize a little-endian byte buffer into typed elements.
pub fn from_bytes<T: Datatype>(bytes: &[u8]) -> Vec<T> {
    assert_eq!(
        bytes.len() % T::SIZE,
        0,
        "byte length must be a multiple of the element size"
    );
    bytes.chunks_exact(T::SIZE).map(T::read_le).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let values: Vec<i32> = vec![-5, 0, 7, i32::MAX, i32::MIN];
        assert_eq!(from_bytes::<i32>(&to_bytes(&values)), values);
        let values: Vec<u64> = vec![0, 1, u64::MAX];
        assert_eq!(from_bytes::<u64>(&to_bytes(&values)), values);
    }

    #[test]
    fn round_trip_floats() {
        let values: Vec<f64> = vec![0.0, -1.5, std::f64::consts::PI];
        assert_eq!(from_bytes::<f64>(&to_bytes(&values)), values);
    }

    #[test]
    fn reduce_ops_combine_as_expected() {
        assert_eq!(ReduceOp::Sum.combine(3i32, 4), 7);
        assert_eq!(ReduceOp::Prod.combine(3i32, 4), 12);
        assert_eq!(ReduceOp::Max.combine(3i32, 4), 4);
        assert_eq!(ReduceOp::Min.combine(3i32, 4), 3);
        assert_eq!(ReduceOp::Sum.combine(1.5f64, 2.25), 3.75);
    }

    #[test]
    fn apply_bytes_is_elementwise() {
        let mut acc = to_bytes(&[1i32, 10, 100]);
        let other = to_bytes(&[2i32, 20, 200]);
        ReduceOp::Sum.apply_bytes::<i32>(&mut acc, &other);
        assert_eq!(from_bytes::<i32>(&acc), vec![3, 30, 300]);
        ReduceOp::Max.apply_bytes::<i32>(&mut acc, &to_bytes(&[5i32, 40, 1]));
        assert_eq!(from_bytes::<i32>(&acc), vec![5, 40, 300]);
    }

    #[test]
    fn integer_sum_wraps_instead_of_panicking() {
        assert_eq!(ReduceOp::Sum.combine(u8::MAX, 1u8), 0);
    }

    #[test]
    #[should_panic(expected = "multiple of the element size")]
    fn from_bytes_rejects_misaligned_lengths() {
        let _ = from_bytes::<i32>(&[0u8; 6]);
    }
}
