//! Typed elements and reduction operators.
//!
//! The implementation lives in [`pip_collectives::datatype`] so the
//! collective algorithms, the plan cache and this user-facing crate all
//! share one definition of element types, reduction operators and the
//! monomorphized [`ReduceKernel`]s; this module re-exports it under the
//! historical `pip_mcoll_core::datatype` path.
//!
//! See the source module for the wire-format stability rules, the
//! NaN-propagating float semantics and the chunked kernel design.

pub use pip_collectives::datatype::{
    from_bytes, to_bytes, Datatype, DtypeId, Layout, Op, OwnedReduction, ReduceIdent, ReduceKernel,
    ReduceOp, Reduction, LANES,
};

pub use pip_collectives::compress::FloatDatatype;
