//! The [`Communicator`]: the MPI-like handle application code uses for
//! point-to-point and collective communication.
//!
//! A communicator wraps one task of the PiP thread runtime together with the
//! [`LibraryProfile`] that decides which collective algorithms are used.  It
//! hands out monotonically increasing collective sequence numbers so that
//! concurrent and back-to-back collectives never collide on tags or shared
//! buffer names.
//!
//! Every collective call goes through the communicator's **plan cache**: the
//! first invocation of a `(collective, message size, root)` shape compiles
//! the selected algorithm to a `pip_collectives::plan::RankPlan`; every
//! repeat looks the compiled plan up and executes it directly — the
//! persistent-collective fast path for production traffic that issues the
//! same collectives over and over.

use std::cell::{Cell, RefCell};

use pip_collectives::comm::{Comm as _, ThreadComm};
use pip_mpi_model::{dispatch, CollectiveRequest, LibraryProfile, PlanCache};
use pip_runtime::{TaskCtx, Topology};

use crate::datatype::{from_bytes, to_bytes, Datatype, ReduceOp};

/// Tag space reserved for each collective invocation (rounds and phases are
/// encoded in the low bits).
const COLLECTIVE_TAG_STRIDE: u64 = 1 << 16;
/// Tag space where point-to-point tags live, above all collective tags.
const P2P_TAG_BASE: u64 = 1 << 48;

/// An MPI-like communicator bound to one process of the launched world.
pub struct Communicator<'a> {
    inner: ThreadComm<'a>,
    profile: LibraryProfile,
    next_collective: Cell<u64>,
    plans: RefCell<PlanCache>,
}

impl<'a> Communicator<'a> {
    /// Wrap a task context with the given library profile.  Most code uses
    /// [`crate::world::World`] instead of calling this directly.
    pub fn new(ctx: &'a TaskCtx, profile: LibraryProfile) -> Self {
        Self {
            inner: ThreadComm::new(ctx),
            profile,
            next_collective: Cell::new(1),
            plans: RefCell::new(PlanCache::new()),
        }
    }

    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.inner.rank()
    }

    /// Number of processes in the world.
    pub fn size(&self) -> usize {
        self.inner.world_size()
    }

    /// The cluster topology.
    pub fn topology(&self) -> Topology {
        self.inner.topology()
    }

    /// The node hosting this process.
    pub fn node_id(&self) -> usize {
        self.inner.node_id()
    }

    /// This process's rank within its node.
    pub fn local_rank(&self) -> usize {
        self.inner.local_rank()
    }

    /// The library profile driving algorithm selection.
    pub fn profile(&self) -> &LibraryProfile {
        &self.profile
    }

    /// `(hits, misses)` of the per-communicator plan cache.
    pub fn plan_stats(&self) -> (u64, u64) {
        self.plans.borrow().stats()
    }

    fn next_tag(&self) -> u64 {
        let seq = self.next_collective.get();
        self.next_collective.set(seq + 1);
        seq * COLLECTIVE_TAG_STRIDE
    }

    /// Dispatch a collective through the plan cache: lookup-or-compile, then
    /// run the compiled plan.
    fn collective(&self, request: CollectiveRequest<'_>) {
        dispatch::execute_planned(
            &self.profile,
            &self.inner,
            request,
            self.next_tag(),
            &mut self.plans.borrow_mut(),
        );
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Send a typed message to `dest` with a user `tag`.
    pub fn send<T: Datatype>(&self, dest: usize, tag: u64, data: &[T]) {
        self.inner.send(dest, P2P_TAG_BASE + tag, &to_bytes(data));
    }

    /// Receive exactly `count` typed elements from `source` with `tag`.
    pub fn recv<T: Datatype>(&self, source: usize, tag: u64, count: usize) -> Vec<T> {
        from_bytes(&self.inner.recv(source, P2P_TAG_BASE + tag, count * T::SIZE))
    }

    /// Combined send and receive with the same peer count on both sides.
    pub fn sendrecv<T: Datatype>(
        &self,
        dest: usize,
        send_data: &[T],
        source: usize,
        recv_count: usize,
        tag: u64,
    ) -> Vec<T> {
        from_bytes(&self.inner.sendrecv(
            dest,
            P2P_TAG_BASE + tag,
            &to_bytes(send_data),
            source,
            P2P_TAG_BASE + tag,
            recv_count * T::SIZE,
        ))
    }

    // ------------------------------------------------------------------
    // Collectives
    // ------------------------------------------------------------------

    /// MPI_Allgather: every rank contributes `send`; returns the
    /// concatenation of all contributions in rank order.
    pub fn allgather<T: Datatype>(&self, send: &[T]) -> Vec<T> {
        let sendbuf = to_bytes(send);
        let mut recvbuf = vec![0u8; sendbuf.len() * self.size()];
        self.collective(CollectiveRequest::Allgather {
            sendbuf: &sendbuf,
            recvbuf: &mut recvbuf,
        });
        from_bytes(&recvbuf)
    }

    /// MPI_Scatter: the root supplies `send` (one block of `count` elements
    /// per rank); every rank receives its block.
    pub fn scatter<T: Datatype>(&self, send: Option<&[T]>, count: usize, root: usize) -> Vec<T> {
        if let Some(send) = send {
            assert_eq!(
                send.len(),
                count * self.size(),
                "root must supply count * size elements"
            );
        }
        let sendbuf = send.map(to_bytes);
        let mut recvbuf = vec![0u8; count * T::SIZE];
        self.collective(CollectiveRequest::Scatter {
            sendbuf: sendbuf.as_deref(),
            recvbuf: &mut recvbuf,
            root,
        });
        from_bytes(&recvbuf)
    }

    /// MPI_Bcast: `buf` holds the root's data on return at every rank.
    pub fn bcast<T: Datatype>(&self, buf: &mut [T], root: usize) {
        let mut bytes = to_bytes(buf);
        self.collective(CollectiveRequest::Bcast {
            buf: &mut bytes,
            root,
        });
        for (value, chunk) in buf.iter_mut().zip(bytes.chunks_exact(T::SIZE)) {
            *value = T::read_le(chunk);
        }
    }

    /// MPI_Gather: every rank contributes `send`; the root receives all
    /// contributions in rank order (`Some` at root, `None` elsewhere).
    pub fn gather<T: Datatype>(&self, send: &[T], root: usize) -> Option<Vec<T>> {
        let sendbuf = to_bytes(send);
        let mut recvbuf = vec![0u8; sendbuf.len() * self.size()];
        let is_root = self.rank() == root;
        self.collective(CollectiveRequest::Gather {
            sendbuf: &sendbuf,
            recvbuf: is_root.then_some(recvbuf.as_mut_slice()),
            root,
        });
        is_root.then(|| from_bytes(&recvbuf))
    }

    /// MPI_Allreduce with a built-in operator; `buf` holds the reduced
    /// vector on return at every rank.
    pub fn allreduce<T: Datatype>(&self, buf: &mut [T], op: ReduceOp) {
        let mut bytes = to_bytes(buf);
        let combine = move |acc: &mut [u8], other: &[u8]| op.apply_bytes::<T>(acc, other);
        self.collective(CollectiveRequest::Allreduce {
            buf: &mut bytes,
            elem_size: T::SIZE,
            op: &combine,
        });
        for (value, chunk) in buf.iter_mut().zip(bytes.chunks_exact(T::SIZE)) {
            *value = T::read_le(chunk);
        }
    }

    /// MPI_Alltoall: `send` holds one block of `count` elements per
    /// destination rank; returns one block per source rank.
    pub fn alltoall<T: Datatype>(&self, send: &[T], count: usize) -> Vec<T> {
        assert_eq!(send.len(), count * self.size());
        let sendbuf = to_bytes(send);
        let mut recvbuf = vec![0u8; sendbuf.len()];
        self.collective(CollectiveRequest::Alltoall {
            sendbuf: &sendbuf,
            recvbuf: &mut recvbuf,
        });
        from_bytes(&recvbuf)
    }

    /// MPI_Barrier.
    pub fn barrier(&self) {
        self.collective(CollectiveRequest::Barrier);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use pip_mpi_model::Library;

    #[test]
    fn typed_point_to_point_round_trip() {
        let results = World::builder()
            .nodes(1)
            .ppn(2)
            .library(Library::PipMColl)
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 7, &[1.5f64, -2.5]);
                    Vec::new()
                } else {
                    comm.recv::<f64>(0, 7, 2)
                }
            })
            .unwrap();
        assert_eq!(results[1], vec![1.5, -2.5]);
    }

    #[test]
    fn collective_sequence_numbers_keep_back_to_back_collectives_separate() {
        let results = World::builder()
            .nodes(2)
            .ppn(2)
            .library(Library::PipMColl)
            .run(|comm| {
                // Two different collectives back to back on the same
                // communicator must not interfere.
                let first = comm.allgather(&[comm.rank() as u32]);
                let second = comm.allgather(&[(comm.rank() * 10) as u32]);
                comm.barrier();
                (first, second)
            })
            .unwrap();
        for (first, second) in results {
            assert_eq!(first, vec![0, 1, 2, 3]);
            assert_eq!(second, vec![0, 10, 20, 30]);
        }
    }

    #[test]
    fn typed_allreduce_supports_min_and_max() {
        let results = World::builder()
            .nodes(2)
            .ppn(3)
            .library(Library::PipMColl)
            .run(|comm| {
                let mut maxes = [comm.rank() as i64, -(comm.rank() as i64)];
                comm.allreduce(&mut maxes, ReduceOp::Max);
                let mut mins = [comm.rank() as f64];
                comm.allreduce(&mut mins, ReduceOp::Min);
                (maxes, mins)
            })
            .unwrap();
        for (maxes, mins) in results {
            assert_eq!(maxes, [5, 0]);
            assert_eq!(mins, [0.0]);
        }
    }

    #[test]
    fn sendrecv_exchanges_between_neighbours() {
        let results = World::builder()
            .nodes(1)
            .ppn(4)
            .library(Library::OpenMpi)
            .run(|comm| {
                let right = (comm.rank() + 1) % comm.size();
                let left = (comm.rank() + comm.size() - 1) % comm.size();
                let received = comm.sendrecv(right, &[comm.rank() as u32], left, 1, 3);
                received[0]
            })
            .unwrap();
        assert_eq!(results, vec![3, 0, 1, 2]);
    }
}
