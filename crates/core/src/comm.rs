//! The [`Communicator`]: the MPI-like handle application code uses for
//! point-to-point and collective communication.
//!
//! A communicator wraps one task of the PiP thread runtime together with the
//! [`LibraryProfile`] that decides which collective algorithms are used.  It
//! hands out monotonically increasing collective sequence numbers so that
//! concurrent and back-to-back collectives never collide on tags or shared
//! buffer names.
//!
//! Every collective call goes through the communicator's **plan cache**: the
//! first invocation of a `(collective, message size, root)` shape compiles
//! the selected algorithm to a `pip_collectives::plan::RankPlan`; every
//! repeat looks the compiled plan up and executes it directly — the
//! persistent-collective fast path for production traffic that issues the
//! same collectives over and over.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Instant;

use pip_collectives::comm::{Comm as _, NonBlockingComm as _, ThreadComm};
use pip_collectives::plan::{ArenaStats, PlanCursor, RankPlan, SharedArena};
use pip_collectives::request::{ProgressEngine, ReqId, SharedReduceOp};
use pip_mpi_model::{
    dispatch, CollectiveRequest, CompressSpec, LibraryProfile, OwnedCollective, PlanCache,
};
use pip_runtime::{TaskCtx, Topology};

use crate::datatype::{
    from_bytes, to_bytes, Datatype, FloatDatatype, Layout, Op, OwnedReduction, ReduceKernel,
    ReduceOp, Reduction,
};

/// Tag space reserved for each collective invocation (rounds and phases are
/// encoded in the low bits).
const COLLECTIVE_TAG_STRIDE: u64 = 1 << 16;

/// Completion mapping of a one-shot request: consumes the receive buffer
/// (`None` where this rank binds none, e.g. off-root gather).
type RequestFinish<'c, O> = Box<dyn FnOnce(Option<Vec<u8>>) -> O + 'c>;

/// Completion mapping of a persistent handle: borrows the pinned receive
/// buffer, reusable across starts.
type PersistentFinish<'c, O> = Box<dyn Fn(Option<&[u8]>) -> O + 'c>;
/// Tag space where point-to-point tags live, above all collective tags.
const P2P_TAG_BASE: u64 = 1 << 48;

/// An MPI-like communicator bound to one process of the launched world.
pub struct Communicator<'a> {
    inner: ThreadComm<'a>,
    profile: LibraryProfile,
    next_collective: Cell<u64>,
    plans: RefCell<PlanCache>,
    engine: RefCell<ProgressEngine>,
}

impl<'a> Communicator<'a> {
    /// Wrap a task context with the given library profile.  Most code uses
    /// [`crate::world::World`] instead of calling this directly.
    pub fn new(ctx: &'a TaskCtx, profile: LibraryProfile) -> Self {
        Self {
            inner: ThreadComm::new(ctx),
            profile,
            next_collective: Cell::new(1),
            plans: RefCell::new(PlanCache::new()),
            engine: RefCell::new(ProgressEngine::new()),
        }
    }

    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.inner.rank()
    }

    /// Number of processes in the world.
    pub fn size(&self) -> usize {
        self.inner.world_size()
    }

    /// The cluster topology.
    pub fn topology(&self) -> Topology {
        self.inner.topology()
    }

    /// The node hosting this process.
    pub fn node_id(&self) -> usize {
        self.inner.node_id()
    }

    /// This process's rank within its node.
    pub fn local_rank(&self) -> usize {
        self.inner.local_rank()
    }

    /// The library profile driving algorithm selection.
    pub fn profile(&self) -> &LibraryProfile {
        &self.profile
    }

    /// `(hits, misses)` of the per-communicator plan cache.
    pub fn plan_stats(&self) -> (u64, u64) {
        self.plans.borrow().stats()
    }

    /// Number of distinct compiled plans held by the per-communicator cache
    /// (one per [`pip_mpi_model::CollectiveShape`] ever dispatched).
    pub fn plan_entries(&self) -> usize {
        self.plans.borrow().len()
    }

    /// Scratch-buffer arena accounting for every collective this
    /// communicator dispatched (blocking, non-blocking and persistent): in
    /// the persistent steady state (`*_init` → repeated `start()`) the miss
    /// counter stops moving after the first invocation of each shape.
    pub fn arena_stats(&self) -> ArenaStats {
        self.plans.borrow().arena_stats()
    }

    fn next_tag(&self) -> u64 {
        let seq = self.next_collective.get();
        self.next_collective.set(seq + 1);
        seq * COLLECTIVE_TAG_STRIDE
    }

    /// Dispatch a collective through the plan cache: lookup-or-compile, then
    /// run the compiled plan.
    fn collective(&self, request: CollectiveRequest<'_>) {
        dispatch::execute_planned(
            &self.profile,
            &self.inner,
            request,
            self.next_tag(),
            &mut self.plans.borrow_mut(),
        );
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Send a typed message to `dest` with a user `tag`.
    pub fn send<T: Datatype>(&self, dest: usize, tag: u64, data: &[T]) {
        self.inner.send(dest, P2P_TAG_BASE + tag, &to_bytes(data));
    }

    /// Receive exactly `count` typed elements from `source` with `tag`.
    pub fn recv<T: Datatype>(&self, source: usize, tag: u64, count: usize) -> Vec<T> {
        from_bytes(&self.inner.recv(source, P2P_TAG_BASE + tag, count * T::SIZE))
    }

    /// Combined send and receive with the same peer count on both sides.
    pub fn sendrecv<T: Datatype>(
        &self,
        dest: usize,
        send_data: &[T],
        source: usize,
        recv_count: usize,
        tag: u64,
    ) -> Vec<T> {
        from_bytes(&self.inner.sendrecv(
            dest,
            P2P_TAG_BASE + tag,
            &to_bytes(send_data),
            source,
            P2P_TAG_BASE + tag,
            recv_count * T::SIZE,
        ))
    }

    // ------------------------------------------------------------------
    // Strided (derived-datatype) point-to-point
    // ------------------------------------------------------------------
    //
    // The `MPI_Type_vector` analogues: a [`Layout`] names which elements of
    // the caller's buffer travel, the wire always carries the packed form.
    // A strided send matches a contiguous `recv` of `layout.packed_len()`
    // elements and vice versa, exactly as MPI datatypes match by type
    // signature rather than by layout.

    /// Send the `layout`-selected elements of `data` (which spans
    /// `layout.extent()` elements) to `dest`; the wire carries the
    /// `layout.packed_len()` selected elements contiguously.
    pub fn send_strided<T: Datatype>(&self, dest: usize, tag: u64, data: &[T], layout: Layout) {
        assert_eq!(
            data.len(),
            layout.extent(),
            "send buffer must span the layout's extent"
        );
        let bytes = to_bytes(data);
        let mut packed = Vec::new();
        layout.scaled(T::SIZE).pack_bytes(&bytes, &mut packed);
        self.inner.send(dest, P2P_TAG_BASE + tag, &packed);
    }

    /// Receive `layout.packed_len()` elements from `source` and scatter
    /// them into the `layout`-selected positions of `buf` (which spans
    /// `layout.extent()` elements); gap elements are left untouched.
    pub fn recv_strided<T: Datatype>(
        &self,
        source: usize,
        tag: u64,
        layout: Layout,
        buf: &mut [T],
    ) {
        assert_eq!(
            buf.len(),
            layout.extent(),
            "receive buffer must span the layout's extent"
        );
        let byte_layout = layout.scaled(T::SIZE);
        let packed = self
            .inner
            .recv(source, P2P_TAG_BASE + tag, byte_layout.packed_len());
        let mut bytes = to_bytes(buf);
        byte_layout.unpack_bytes(&packed, &mut bytes);
        for (value, chunk) in buf.iter_mut().zip(bytes.chunks_exact(T::SIZE)) {
            *value = T::read_le(chunk);
        }
    }

    /// Combined strided send and receive: ship the `send_layout`-selected
    /// elements of `send_data` to `dest` while scattering the incoming
    /// packed block from `source` into the `recv_layout`-selected positions
    /// of `recv_buf`.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv_strided<T: Datatype>(
        &self,
        dest: usize,
        send_data: &[T],
        send_layout: Layout,
        source: usize,
        recv_layout: Layout,
        recv_buf: &mut [T],
        tag: u64,
    ) {
        assert_eq!(
            send_data.len(),
            send_layout.extent(),
            "send buffer must span the layout's extent"
        );
        assert_eq!(
            recv_buf.len(),
            recv_layout.extent(),
            "receive buffer must span the layout's extent"
        );
        let send_bytes = to_bytes(send_data);
        let mut packed = Vec::new();
        send_layout
            .scaled(T::SIZE)
            .pack_bytes(&send_bytes, &mut packed);
        let recv_byte_layout = recv_layout.scaled(T::SIZE);
        let incoming = self.inner.sendrecv(
            dest,
            P2P_TAG_BASE + tag,
            &packed,
            source,
            P2P_TAG_BASE + tag,
            recv_byte_layout.packed_len(),
        );
        let mut bytes = to_bytes(recv_buf);
        recv_byte_layout.unpack_bytes(&incoming, &mut bytes);
        for (value, chunk) in recv_buf.iter_mut().zip(bytes.chunks_exact(T::SIZE)) {
            *value = T::read_le(chunk);
        }
    }

    // ------------------------------------------------------------------
    // Collectives
    // ------------------------------------------------------------------

    /// MPI_Allgather: every rank contributes `send`; returns the
    /// concatenation of all contributions in rank order.
    pub fn allgather<T: Datatype>(&self, send: &[T]) -> Vec<T> {
        let sendbuf = to_bytes(send);
        let mut recvbuf = vec![0u8; sendbuf.len() * self.size()];
        self.collective(CollectiveRequest::Allgather {
            sendbuf: &sendbuf,
            recvbuf: &mut recvbuf,
        });
        from_bytes(&recvbuf)
    }

    /// MPI_Scatter: the root supplies `send` (one block of `count` elements
    /// per rank); every rank receives its block.
    pub fn scatter<T: Datatype>(&self, send: Option<&[T]>, count: usize, root: usize) -> Vec<T> {
        if let Some(send) = send {
            assert_eq!(
                send.len(),
                count * self.size(),
                "root must supply count * size elements"
            );
        }
        let sendbuf = send.map(to_bytes);
        let mut recvbuf = vec![0u8; count * T::SIZE];
        self.collective(CollectiveRequest::Scatter {
            sendbuf: sendbuf.as_deref(),
            recvbuf: &mut recvbuf,
            root,
        });
        from_bytes(&recvbuf)
    }

    /// MPI_Bcast: `buf` holds the root's data on return at every rank.
    pub fn bcast<T: Datatype>(&self, buf: &mut [T], root: usize) {
        let mut bytes = to_bytes(buf);
        self.collective(CollectiveRequest::Bcast {
            buf: &mut bytes,
            root,
        });
        for (value, chunk) in buf.iter_mut().zip(bytes.chunks_exact(T::SIZE)) {
            *value = T::read_le(chunk);
        }
    }

    /// MPI_Gather: every rank contributes `send`; the root receives all
    /// contributions in rank order (`Some` at root, `None` elsewhere).
    pub fn gather<T: Datatype>(&self, send: &[T], root: usize) -> Option<Vec<T>> {
        let sendbuf = to_bytes(send);
        let mut recvbuf = vec![0u8; sendbuf.len() * self.size()];
        let is_root = self.rank() == root;
        self.collective(CollectiveRequest::Gather {
            sendbuf: &sendbuf,
            recvbuf: is_root.then_some(recvbuf.as_mut_slice()),
            root,
        });
        is_root.then(|| from_bytes(&recvbuf))
    }

    /// MPI_Allreduce with a built-in operator; `buf` holds the reduced
    /// vector on return at every rank.
    pub fn allreduce<T: Datatype>(&self, buf: &mut [T], op: ReduceOp) {
        let mut bytes = to_bytes(buf);
        self.collective(CollectiveRequest::Allreduce {
            buf: &mut bytes,
            op: Reduction::typed::<T>(op),
            layout: None,
            compress: None,
        });
        for (value, chunk) in buf.iter_mut().zip(bytes.chunks_exact(T::SIZE)) {
            *value = T::read_le(chunk);
        }
    }

    /// The compression spec for a caller-requested error bound: the bound
    /// plus this profile's bytes-on-wire threshold
    /// (`selection.compress_min_bytes`).  Normalization against the actual
    /// message size happens at shape time, so a bound of `0.0` (or a
    /// buffer under the threshold) degrades to the exact plan.
    fn compress_spec(&self, bound: f64) -> Option<CompressSpec> {
        assert!(
            bound >= 0.0 && bound.is_finite(),
            "compression error bound must be finite and non-negative, got {bound}"
        );
        Some(CompressSpec::from_bound(
            bound,
            self.profile.selection.compress_min_bytes,
        ))
    }

    /// [`Communicator::allreduce`] over error-bounded lossy-compressed
    /// transfers: every element of the result is within `bound` of the
    /// exact reduction.  Large inter-process transfers of the compiled
    /// schedule travel as predictor-compressed streams (C-Coll style);
    /// messages under the profile's `compress_min_bytes` threshold — and
    /// node-local shared-memory moves — stay exact.  `bound == 0.0` is the
    /// exact [`Communicator::allreduce`].
    ///
    /// Non-blocking and persistent variants:
    /// [`Communicator::iallreduce_compressed`] and
    /// [`Communicator::allreduce_compressed_init`].
    pub fn allreduce_compressed<T: FloatDatatype>(&self, buf: &mut [T], op: ReduceOp, bound: f64) {
        let mut bytes = to_bytes(buf);
        self.collective(CollectiveRequest::Allreduce {
            buf: &mut bytes,
            op: Reduction::typed::<T>(op),
            layout: None,
            compress: self.compress_spec(bound),
        });
        for (value, chunk) in buf.iter_mut().zip(bytes.chunks_exact(T::SIZE)) {
            *value = T::read_le(chunk);
        }
    }

    /// MPI_Reduce with a built-in operator: every rank contributes `send`;
    /// returns `Some` of the element-wise combination at the root, `None`
    /// elsewhere.
    pub fn reduce<T: Datatype>(&self, send: &[T], op: ReduceOp, root: usize) -> Option<Vec<T>> {
        let sendbuf = to_bytes(send);
        let is_root = self.rank() == root;
        let mut recvbuf = is_root.then(|| vec![0u8; sendbuf.len()]);
        self.collective(CollectiveRequest::Reduce {
            sendbuf: &sendbuf,
            recvbuf: recvbuf.as_deref_mut(),
            root,
            op: Reduction::typed::<T>(op),
        });
        recvbuf.map(|bytes| from_bytes(&bytes))
    }

    /// MPI_Reduce_scatter_block with a built-in operator: `send` holds one
    /// block of `count` elements per rank; returns this rank's fully
    /// reduced block.
    pub fn reduce_scatter<T: Datatype>(&self, send: &[T], count: usize, op: ReduceOp) -> Vec<T> {
        assert_eq!(
            send.len(),
            count * self.size(),
            "sendbuf must hold count * size elements"
        );
        let sendbuf = to_bytes(send);
        let mut recvbuf = vec![0u8; count * T::SIZE];
        self.collective(CollectiveRequest::ReduceScatter {
            sendbuf: &sendbuf,
            recvbuf: &mut recvbuf,
            op: Reduction::typed::<T>(op),
        });
        from_bytes(&recvbuf)
    }

    /// MPI_Scan with a built-in operator; `buf` holds the inclusive prefix
    /// (ranks `0..=rank`) on return.
    pub fn scan<T: Datatype>(&self, buf: &mut [T], op: ReduceOp) {
        let mut bytes = to_bytes(buf);
        self.collective(CollectiveRequest::Scan {
            buf: &mut bytes,
            op: Reduction::typed::<T>(op),
        });
        for (value, chunk) in buf.iter_mut().zip(bytes.chunks_exact(T::SIZE)) {
            *value = T::read_le(chunk);
        }
    }

    /// MPI_Exscan with a built-in operator; `buf` holds the exclusive
    /// prefix (ranks `0..rank`) on return.  Rank 0's buffer is left
    /// untouched (MPI leaves it undefined).
    pub fn exscan<T: Datatype>(&self, buf: &mut [T], op: ReduceOp) {
        let mut bytes = to_bytes(buf);
        self.collective(CollectiveRequest::Exscan {
            buf: &mut bytes,
            op: Reduction::typed::<T>(op),
        });
        for (value, chunk) in buf.iter_mut().zip(bytes.chunks_exact(T::SIZE)) {
            *value = T::read_le(chunk);
        }
    }

    // ------------------------------------------------------------------
    // User-defined operators (MPI_Op_create) and derived datatypes
    // ------------------------------------------------------------------
    //
    // A registered [`Op`] carries a process-unique identity minted at
    // [`Op::create`] time, so collectives run with it share plan-cache
    // entries with each other but never with a different operator of the
    // same element width.  The operator must be **associative and
    // commutative** over the serialized little-endian element bytes — the
    // algorithms combine contributions in topology-dependent order.

    /// Check a user operator against the element type it is applied to.
    fn check_op<T: Datatype>(op: &Op) {
        assert_eq!(
            op.elem_size(),
            T::SIZE,
            "operator element size ({}) must match the datatype width ({})",
            op.elem_size(),
            T::SIZE,
        );
    }

    /// [`Communicator::allreduce`] with a registered user operator; `buf`
    /// holds the reduced vector on return at every rank.
    ///
    /// Non-blocking and persistent variants: [`Communicator::iallreduce_op`]
    /// and [`Communicator::allreduce_op_init`].
    pub fn allreduce_op<T: Datatype>(&self, buf: &mut [T], op: &Op) {
        Self::check_op::<T>(op);
        let mut bytes = to_bytes(buf);
        self.collective(CollectiveRequest::Allreduce {
            buf: &mut bytes,
            op: Reduction::User(op),
            layout: None,
            compress: None,
        });
        for (value, chunk) in buf.iter_mut().zip(bytes.chunks_exact(T::SIZE)) {
            *value = T::read_le(chunk);
        }
    }

    /// [`Communicator::reduce`] with a registered user operator.
    pub fn reduce_op<T: Datatype>(&self, send: &[T], op: &Op, root: usize) -> Option<Vec<T>> {
        Self::check_op::<T>(op);
        let sendbuf = to_bytes(send);
        let is_root = self.rank() == root;
        let mut recvbuf = is_root.then(|| vec![0u8; sendbuf.len()]);
        self.collective(CollectiveRequest::Reduce {
            sendbuf: &sendbuf,
            recvbuf: recvbuf.as_deref_mut(),
            root,
            op: Reduction::User(op),
        });
        recvbuf.map(|bytes| from_bytes(&bytes))
    }

    /// [`Communicator::reduce_scatter`] with a registered user operator.
    pub fn reduce_scatter_op<T: Datatype>(&self, send: &[T], count: usize, op: &Op) -> Vec<T> {
        Self::check_op::<T>(op);
        assert_eq!(
            send.len(),
            count * self.size(),
            "sendbuf must hold count * size elements"
        );
        let sendbuf = to_bytes(send);
        let mut recvbuf = vec![0u8; count * T::SIZE];
        self.collective(CollectiveRequest::ReduceScatter {
            sendbuf: &sendbuf,
            recvbuf: &mut recvbuf,
            op: Reduction::User(op),
        });
        from_bytes(&recvbuf)
    }

    /// [`Communicator::scan`] with a registered user operator.
    pub fn scan_op<T: Datatype>(&self, buf: &mut [T], op: &Op) {
        Self::check_op::<T>(op);
        let mut bytes = to_bytes(buf);
        self.collective(CollectiveRequest::Scan {
            buf: &mut bytes,
            op: Reduction::User(op),
        });
        for (value, chunk) in buf.iter_mut().zip(bytes.chunks_exact(T::SIZE)) {
            *value = T::read_le(chunk);
        }
    }

    /// [`Communicator::exscan`] with a registered user operator (rank 0's
    /// buffer is left untouched).
    pub fn exscan_op<T: Datatype>(&self, buf: &mut [T], op: &Op) {
        Self::check_op::<T>(op);
        let mut bytes = to_bytes(buf);
        self.collective(CollectiveRequest::Exscan {
            buf: &mut bytes,
            op: Reduction::User(op),
        });
        for (value, chunk) in buf.iter_mut().zip(bytes.chunks_exact(T::SIZE)) {
            *value = T::read_le(chunk);
        }
    }

    /// [`Communicator::allreduce`] over a strided buffer: only the
    /// `layout`-selected elements of `buf` (which spans `layout.extent()`
    /// elements) participate; gap elements are left untouched at every
    /// rank.  The layout is part of the plan-cache key, so a strided and a
    /// contiguous allreduce of equal packed size never share a plan.
    pub fn allreduce_strided<T: Datatype>(&self, buf: &mut [T], layout: Layout, op: ReduceOp) {
        assert_eq!(
            buf.len(),
            layout.extent(),
            "buffer must span the layout's extent"
        );
        let mut bytes = to_bytes(buf);
        self.collective(CollectiveRequest::Allreduce {
            buf: &mut bytes,
            op: Reduction::typed::<T>(op),
            layout: Some(layout),
            compress: None,
        });
        for (value, chunk) in buf.iter_mut().zip(bytes.chunks_exact(T::SIZE)) {
            *value = T::read_le(chunk);
        }
    }

    /// [`Communicator::allreduce_strided`] with a registered user operator.
    pub fn allreduce_strided_op<T: Datatype>(&self, buf: &mut [T], layout: Layout, op: &Op) {
        Self::check_op::<T>(op);
        assert_eq!(
            buf.len(),
            layout.extent(),
            "buffer must span the layout's extent"
        );
        let mut bytes = to_bytes(buf);
        self.collective(CollectiveRequest::Allreduce {
            buf: &mut bytes,
            op: Reduction::User(op),
            layout: Some(layout),
            compress: None,
        });
        for (value, chunk) in buf.iter_mut().zip(bytes.chunks_exact(T::SIZE)) {
            *value = T::read_le(chunk);
        }
    }

    // ------------------------------------------------------------------
    // Typed by-value reduction entry points
    // ------------------------------------------------------------------
    //
    // MPI's `(buf, count, datatype, op)` signature with the datatype as the
    // type parameter.  `reduce` and `reduce_scatter` already take `&[T]` by
    // value; these complete the family for the in-place calls.  Every entry
    // compiles to a monomorphized `(T, op)` kernel (`ReduceKernel`), and
    // `T = u8` is the trivial byte instantiation.

    /// By-value [`Communicator::allreduce`]: returns the element-wise
    /// combination of every rank's `buf`, leaving the input untouched.
    ///
    /// ```
    /// use pip_mcoll_core::prelude::*;
    ///
    /// let totals = World::builder()
    ///     .nodes(1)
    ///     .ppn(2)
    ///     .library(Library::PipMColl)
    ///     .run(|comm| {
    ///         let gradient = vec![comm.rank() as f32 + 0.25; 4];
    ///         comm.allreduce_t::<f32>(&gradient, ReduceOp::Sum)
    ///     })
    ///     .unwrap();
    /// assert_eq!(totals[0], vec![1.5; 4]);
    /// ```
    ///
    /// Non-blocking and persistent variants: [`Communicator::iallreduce`]
    /// and [`Communicator::allreduce_init`].
    pub fn allreduce_t<T: Datatype>(&self, buf: &[T], op: ReduceOp) -> Vec<T> {
        let mut out = buf.to_vec();
        self.allreduce(&mut out, op);
        out
    }

    /// By-value [`Communicator::scan`]: returns the inclusive prefix
    /// combination over ranks `0..=rank`.
    ///
    /// Non-blocking and persistent variants: [`Communicator::iscan`] and
    /// [`Communicator::scan_init`].
    pub fn scan_t<T: Datatype>(&self, buf: &[T], op: ReduceOp) -> Vec<T> {
        let mut out = buf.to_vec();
        self.scan(&mut out, op);
        out
    }

    /// By-value [`Communicator::exscan`]: returns the exclusive prefix
    /// combination over ranks `0..rank` (rank 0 gets its input back).
    ///
    /// Non-blocking and persistent variants: [`Communicator::iexscan`] and
    /// [`Communicator::exscan_init`].
    pub fn exscan_t<T: Datatype>(&self, buf: &[T], op: ReduceOp) -> Vec<T> {
        let mut out = buf.to_vec();
        self.exscan(&mut out, op);
        out
    }

    /// MPI_Alltoall: `send` holds one block of `count` elements per
    /// destination rank; returns one block per source rank.
    pub fn alltoall<T: Datatype>(&self, send: &[T], count: usize) -> Vec<T> {
        assert_eq!(send.len(), count * self.size());
        let sendbuf = to_bytes(send);
        let mut recvbuf = vec![0u8; sendbuf.len()];
        self.collective(CollectiveRequest::Alltoall {
            sendbuf: &sendbuf,
            recvbuf: &mut recvbuf,
        });
        from_bytes(&recvbuf)
    }

    /// MPI_Barrier.
    pub fn barrier(&self) {
        self.collective(CollectiveRequest::Barrier);
    }

    // ------------------------------------------------------------------
    // Non-blocking collectives (MPI_I*)
    // ------------------------------------------------------------------
    //
    // Every `i*` call compiles (or looks up) the collective's plan, wraps it
    // in a resumable cursor, registers it with the communicator's progress
    // engine and kicks it once (so the leading posts go out at call time,
    // as a real MPI_I* does); the returned request completes it.
    //
    // **Ordering contract.**  Non-blocking collectives are *collective*
    // operations: every rank must issue the matching call, in the same
    // order relative to all other collectives on the communicator.
    // Completion calls may then happen in any order — any `wait`/`test`
    // advances every outstanding request.  One restriction follows from
    // progress living inside completion calls (there is no background
    // progress thread): *blocking* operations do not advance outstanding
    // requests, so all ranks must also order their blocking operations
    // identically relative to their completion calls.  Ranks that disagree
    // — one rank entering a blocking collective while its peer waits on a
    // request whose progress needs that rank — surface as a receive/
    // progress timeout rather than a hang.

    /// Register a cursor for `owned` with the progress engine and kick it
    /// to its first blocking point.
    fn submit_owned(&self, owned: OwnedCollective, op: Option<SharedReduceOp>) -> ReqId {
        let cursor = dispatch::begin_planned(
            &self.profile,
            &self.inner,
            owned,
            self.next_tag(),
            &mut self.plans.borrow_mut(),
        );
        let id = self.engine.borrow_mut().submit(cursor, op);
        self.progress();
        id
    }

    fn submit_request<'s, O>(
        &'s self,
        owned: OwnedCollective,
        op: Option<SharedReduceOp>,
        finish: RequestFinish<'s, O>,
    ) -> CollRequest<'s, O> {
        CollRequest {
            comm: self,
            id: self.submit_owned(owned, op),
            finish,
        }
    }

    /// Step every outstanding request once; returns whether any advanced.
    fn progress(&self) -> bool {
        self.engine.borrow_mut().progress(&self.inner)
    }

    /// Drive the progress engine until request `id` completes, yielding
    /// between fruitless polls.  Panics (surfacing as a launch error) when
    /// no outstanding request advances for the fabric's receive-timeout
    /// grace period — the non-blocking equivalent of a receive timeout.
    fn drive_to_completion(&self, id: ReqId) -> pip_collectives::plan::CursorOutput {
        let timeout = self.inner.progress_timeout();
        let mut last_progress = Instant::now();
        loop {
            let advanced = self.progress();
            if self.engine.borrow().is_complete(id) {
                return self.engine.borrow_mut().take_output(id);
            }
            if advanced {
                last_progress = Instant::now();
            } else {
                assert!(
                    last_progress.elapsed() < timeout,
                    "rank {}: no outstanding collective progressed for {timeout:?} — \
                     peers must issue the matching non-blocking collectives",
                    self.rank()
                );
                std::thread::yield_now();
            }
        }
    }

    /// Requests submitted but not yet completed-and-collected.
    pub fn outstanding_requests(&self) -> usize {
        self.engine.borrow().outstanding()
    }

    /// Non-blocking [`Communicator::allgather`]: returns immediately; the
    /// request's `wait` yields the concatenation of all contributions.
    pub fn iallgather<T: Datatype>(&self, send: &[T]) -> CollRequest<'_, Vec<T>> {
        self.submit_request(
            OwnedCollective::Allgather {
                sendbuf: to_bytes(send),
            },
            None,
            Box::new(|recv| from_bytes(&recv.expect("allgather binds a receive buffer"))),
        )
    }

    /// Non-blocking [`Communicator::scatter`]: the root supplies one block
    /// of `count` elements per rank; `wait` yields this rank's block.
    pub fn iscatter<T: Datatype>(
        &self,
        send: Option<&[T]>,
        count: usize,
        root: usize,
    ) -> CollRequest<'_, Vec<T>> {
        if let Some(send) = send {
            assert_eq!(
                send.len(),
                count * self.size(),
                "root must supply count * size elements"
            );
        }
        self.submit_request(
            OwnedCollective::Scatter {
                sendbuf: send.map(to_bytes),
                block: count * T::SIZE,
                root,
            },
            None,
            Box::new(|recv| from_bytes(&recv.expect("scatter binds a receive buffer"))),
        )
    }

    /// Non-blocking [`Communicator::bcast`]: `buf` supplies the root's data;
    /// `wait` yields the broadcast vector at every rank.
    pub fn ibcast<T: Datatype>(&self, buf: &[T], root: usize) -> CollRequest<'_, Vec<T>> {
        self.submit_request(
            OwnedCollective::Bcast {
                buf: to_bytes(buf),
                root,
            },
            None,
            Box::new(|recv| from_bytes(&recv.expect("bcast binds an in/out buffer"))),
        )
    }

    /// Non-blocking [`Communicator::gather`]: `wait` yields `Some` of the
    /// rank-ordered concatenation at the root, `None` elsewhere.
    pub fn igather<T: Datatype>(&self, send: &[T], root: usize) -> CollRequest<'_, Option<Vec<T>>> {
        self.submit_request(
            OwnedCollective::Gather {
                sendbuf: to_bytes(send),
                root,
            },
            None,
            Box::new(|recv| recv.map(|bytes| from_bytes(&bytes))),
        )
    }

    /// Non-blocking [`Communicator::allreduce`]: `wait` yields the reduced
    /// vector at every rank.
    pub fn iallreduce<T: Datatype>(&self, buf: &[T], op: ReduceOp) -> CollRequest<'_, Vec<T>> {
        let kernel = ReduceKernel::of::<T>(op);
        self.submit_request(
            OwnedCollective::Allreduce {
                buf: to_bytes(buf),
                op: OwnedReduction::Typed(kernel),
                layout: None,
                compress: None,
            },
            Some(kernel.shared()),
            Box::new(|recv| from_bytes(&recv.expect("allreduce binds an in/out buffer"))),
        )
    }

    /// Non-blocking [`Communicator::allreduce_compressed`]: `wait` yields
    /// a vector whose every element is within `bound` of the exact
    /// reduction.
    pub fn iallreduce_compressed<T: FloatDatatype>(
        &self,
        buf: &[T],
        op: ReduceOp,
        bound: f64,
    ) -> CollRequest<'_, Vec<T>> {
        let kernel = ReduceKernel::of::<T>(op);
        let compress = self.compress_spec(bound);
        self.submit_request(
            OwnedCollective::Allreduce {
                buf: to_bytes(buf),
                op: OwnedReduction::Typed(kernel),
                layout: None,
                compress,
            },
            Some(kernel.shared()),
            Box::new(|recv| from_bytes(&recv.expect("allreduce binds an in/out buffer"))),
        )
    }

    /// Non-blocking [`Communicator::reduce`]: `wait` yields `Some` of the
    /// combination at the root, `None` elsewhere.
    pub fn ireduce<T: Datatype>(
        &self,
        send: &[T],
        op: ReduceOp,
        root: usize,
    ) -> CollRequest<'_, Option<Vec<T>>> {
        let kernel = ReduceKernel::of::<T>(op);
        self.submit_request(
            OwnedCollective::Reduce {
                sendbuf: to_bytes(send),
                root,
                op: OwnedReduction::Typed(kernel),
            },
            Some(kernel.shared()),
            Box::new(|recv| recv.map(|bytes| from_bytes(&bytes))),
        )
    }

    /// Non-blocking [`Communicator::reduce_scatter`]: `send` holds one
    /// block of `count` elements per rank; `wait` yields this rank's fully
    /// reduced block.
    pub fn ireduce_scatter<T: Datatype>(
        &self,
        send: &[T],
        count: usize,
        op: ReduceOp,
    ) -> CollRequest<'_, Vec<T>> {
        assert_eq!(
            send.len(),
            count * self.size(),
            "sendbuf must hold count * size elements"
        );
        let kernel = ReduceKernel::of::<T>(op);
        self.submit_request(
            OwnedCollective::ReduceScatter {
                sendbuf: to_bytes(send),
                op: OwnedReduction::Typed(kernel),
            },
            Some(kernel.shared()),
            Box::new(|recv| from_bytes(&recv.expect("reduce_scatter binds a receive buffer"))),
        )
    }

    /// Non-blocking [`Communicator::scan`]: `wait` yields the inclusive
    /// prefix at every rank.
    pub fn iscan<T: Datatype>(&self, buf: &[T], op: ReduceOp) -> CollRequest<'_, Vec<T>> {
        let kernel = ReduceKernel::of::<T>(op);
        self.submit_request(
            OwnedCollective::Scan {
                buf: to_bytes(buf),
                op: OwnedReduction::Typed(kernel),
            },
            Some(kernel.shared()),
            Box::new(|recv| from_bytes(&recv.expect("scan binds an in/out buffer"))),
        )
    }

    /// Non-blocking [`Communicator::exscan`]: `wait` yields the exclusive
    /// prefix (rank 0 gets its input back, see [`Communicator::exscan`]).
    pub fn iexscan<T: Datatype>(&self, buf: &[T], op: ReduceOp) -> CollRequest<'_, Vec<T>> {
        let kernel = ReduceKernel::of::<T>(op);
        self.submit_request(
            OwnedCollective::Exscan {
                buf: to_bytes(buf),
                op: OwnedReduction::Typed(kernel),
            },
            Some(kernel.shared()),
            Box::new(|recv| from_bytes(&recv.expect("exscan binds an in/out buffer"))),
        )
    }

    /// Non-blocking [`Communicator::alltoall`]: `send` holds one block of
    /// `count` elements per destination; `wait` yields one block per source.
    pub fn ialltoall<T: Datatype>(&self, send: &[T], count: usize) -> CollRequest<'_, Vec<T>> {
        assert_eq!(send.len(), count * self.size());
        self.submit_request(
            OwnedCollective::Alltoall {
                sendbuf: to_bytes(send),
            },
            None,
            Box::new(|recv| from_bytes(&recv.expect("alltoall binds a receive buffer"))),
        )
    }

    /// Non-blocking [`Communicator::allreduce_op`]: `wait` yields the
    /// vector reduced with the registered user operator.
    pub fn iallreduce_op<T: Datatype>(&self, buf: &[T], op: &Op) -> CollRequest<'_, Vec<T>> {
        Self::check_op::<T>(op);
        self.submit_request(
            OwnedCollective::Allreduce {
                buf: to_bytes(buf),
                op: OwnedReduction::User(op.clone()),
                layout: None,
                compress: None,
            },
            Some(op.shared()),
            Box::new(|recv| from_bytes(&recv.expect("allreduce binds an in/out buffer"))),
        )
    }

    /// Non-blocking [`Communicator::reduce_op`]: `wait` yields `Some` of
    /// the combination at the root, `None` elsewhere.
    pub fn ireduce_op<T: Datatype>(
        &self,
        send: &[T],
        op: &Op,
        root: usize,
    ) -> CollRequest<'_, Option<Vec<T>>> {
        Self::check_op::<T>(op);
        self.submit_request(
            OwnedCollective::Reduce {
                sendbuf: to_bytes(send),
                root,
                op: OwnedReduction::User(op.clone()),
            },
            Some(op.shared()),
            Box::new(|recv| recv.map(|bytes| from_bytes(&bytes))),
        )
    }

    /// Non-blocking [`Communicator::reduce_scatter_op`].
    pub fn ireduce_scatter_op<T: Datatype>(
        &self,
        send: &[T],
        count: usize,
        op: &Op,
    ) -> CollRequest<'_, Vec<T>> {
        Self::check_op::<T>(op);
        assert_eq!(
            send.len(),
            count * self.size(),
            "sendbuf must hold count * size elements"
        );
        self.submit_request(
            OwnedCollective::ReduceScatter {
                sendbuf: to_bytes(send),
                op: OwnedReduction::User(op.clone()),
            },
            Some(op.shared()),
            Box::new(|recv| from_bytes(&recv.expect("reduce_scatter binds a receive buffer"))),
        )
    }

    /// Non-blocking [`Communicator::scan_op`].
    pub fn iscan_op<T: Datatype>(&self, buf: &[T], op: &Op) -> CollRequest<'_, Vec<T>> {
        Self::check_op::<T>(op);
        self.submit_request(
            OwnedCollective::Scan {
                buf: to_bytes(buf),
                op: OwnedReduction::User(op.clone()),
            },
            Some(op.shared()),
            Box::new(|recv| from_bytes(&recv.expect("scan binds an in/out buffer"))),
        )
    }

    /// Non-blocking [`Communicator::exscan_op`].
    pub fn iexscan_op<T: Datatype>(&self, buf: &[T], op: &Op) -> CollRequest<'_, Vec<T>> {
        Self::check_op::<T>(op);
        self.submit_request(
            OwnedCollective::Exscan {
                buf: to_bytes(buf),
                op: OwnedReduction::User(op.clone()),
            },
            Some(op.shared()),
            Box::new(|recv| from_bytes(&recv.expect("exscan binds an in/out buffer"))),
        )
    }

    /// Non-blocking [`Communicator::allreduce_strided`]: `wait` yields the
    /// full extent-length vector with the gap elements as submitted.
    pub fn iallreduce_strided<T: Datatype>(
        &self,
        buf: &[T],
        layout: Layout,
        op: ReduceOp,
    ) -> CollRequest<'_, Vec<T>> {
        assert_eq!(
            buf.len(),
            layout.extent(),
            "buffer must span the layout's extent"
        );
        let kernel = ReduceKernel::of::<T>(op);
        self.submit_request(
            OwnedCollective::Allreduce {
                buf: to_bytes(buf),
                op: OwnedReduction::Typed(kernel),
                layout: Some(layout),
                compress: None,
            },
            Some(kernel.shared()),
            Box::new(|recv| from_bytes(&recv.expect("allreduce binds an in/out buffer"))),
        )
    }

    // ------------------------------------------------------------------
    // Persistent collectives (MPI_*_init / MPI_Start)
    // ------------------------------------------------------------------

    fn init_persistent<'s, O>(
        &'s self,
        owned: OwnedCollective,
        op: Option<SharedReduceOp>,
        finish: PersistentFinish<'s, O>,
    ) -> PersistentColl<'s, O> {
        // Same shape → lookup-or-compile → buffer-split sequence as the
        // one-shot request path, so both share cache entries.
        let mut plans = self.plans.borrow_mut();
        let (plan, sendbuf, recvbuf) =
            dispatch::plan_owned(&self.profile, &self.inner, owned, &mut plans);
        let arena = plans.arena();
        drop(plans);
        PersistentColl {
            comm: self,
            plan,
            sendbuf,
            recvbuf,
            arena,
            op,
            active: None,
            finish,
        }
    }

    /// Persistent [`Communicator::allgather`]: compile once, then
    /// `start()`/`wait()` any number of times with the pinned buffers.
    pub fn allgather_init<T: Datatype>(&self, send: &[T]) -> PersistentColl<'_, Vec<T>> {
        self.init_persistent(
            OwnedCollective::Allgather {
                sendbuf: to_bytes(send),
            },
            None,
            Box::new(|recv| from_bytes(recv.expect("allgather binds a receive buffer"))),
        )
    }

    /// Persistent [`Communicator::scatter`] from `root` (the root pins one
    /// block of `count` elements per rank).
    pub fn scatter_init<T: Datatype>(
        &self,
        send: Option<&[T]>,
        count: usize,
        root: usize,
    ) -> PersistentColl<'_, Vec<T>> {
        if let Some(send) = send {
            assert_eq!(
                send.len(),
                count * self.size(),
                "root must supply count * size elements"
            );
        }
        self.init_persistent(
            OwnedCollective::Scatter {
                sendbuf: send.map(to_bytes),
                block: count * T::SIZE,
                root,
            },
            None,
            Box::new(|recv| from_bytes(recv.expect("scatter binds a receive buffer"))),
        )
    }

    /// Persistent [`Communicator::bcast`] from `root`; update the root's
    /// payload between starts with [`PersistentColl::write_send`].
    pub fn bcast_init<T: Datatype>(&self, buf: &[T], root: usize) -> PersistentColl<'_, Vec<T>> {
        self.init_persistent(
            OwnedCollective::Bcast {
                buf: to_bytes(buf),
                root,
            },
            None,
            Box::new(|recv| from_bytes(recv.expect("bcast binds an in/out buffer"))),
        )
    }

    /// Persistent [`Communicator::gather`] to `root`; `wait` yields `Some`
    /// at the root, `None` elsewhere.
    pub fn gather_init<T: Datatype>(
        &self,
        send: &[T],
        root: usize,
    ) -> PersistentColl<'_, Option<Vec<T>>> {
        self.init_persistent(
            OwnedCollective::Gather {
                sendbuf: to_bytes(send),
                root,
            },
            None,
            Box::new(|recv| recv.map(from_bytes)),
        )
    }

    /// Persistent [`Communicator::allreduce`] with a built-in operator.
    pub fn allreduce_init<T: Datatype>(
        &self,
        buf: &[T],
        op: ReduceOp,
    ) -> PersistentColl<'_, Vec<T>> {
        let kernel = ReduceKernel::of::<T>(op);
        self.init_persistent(
            OwnedCollective::Allreduce {
                buf: to_bytes(buf),
                op: OwnedReduction::Typed(kernel),
                layout: None,
                compress: None,
            },
            Some(kernel.shared()),
            Box::new(|recv| from_bytes(recv.expect("allreduce binds an in/out buffer"))),
        )
    }

    /// Persistent [`Communicator::allreduce_compressed`]: the compiled
    /// lossy-transfer schedule is reused across starts, so repeat traffic
    /// pays neither re-planning nor re-calibration of the wire model.
    pub fn allreduce_compressed_init<T: FloatDatatype>(
        &self,
        buf: &[T],
        op: ReduceOp,
        bound: f64,
    ) -> PersistentColl<'_, Vec<T>> {
        let kernel = ReduceKernel::of::<T>(op);
        let compress = self.compress_spec(bound);
        self.init_persistent(
            OwnedCollective::Allreduce {
                buf: to_bytes(buf),
                op: OwnedReduction::Typed(kernel),
                layout: None,
                compress,
            },
            Some(kernel.shared()),
            Box::new(|recv| from_bytes(recv.expect("allreduce binds an in/out buffer"))),
        )
    }

    /// Persistent [`Communicator::reduce`] to `root` with a built-in
    /// operator; `wait` yields `Some` at the root, `None` elsewhere.
    pub fn reduce_init<T: Datatype>(
        &self,
        send: &[T],
        op: ReduceOp,
        root: usize,
    ) -> PersistentColl<'_, Option<Vec<T>>> {
        let kernel = ReduceKernel::of::<T>(op);
        self.init_persistent(
            OwnedCollective::Reduce {
                sendbuf: to_bytes(send),
                root,
                op: OwnedReduction::Typed(kernel),
            },
            Some(kernel.shared()),
            Box::new(|recv| recv.map(from_bytes)),
        )
    }

    /// Persistent [`Communicator::reduce_scatter`] with a built-in operator
    /// (one pinned block of `count` elements per rank).
    pub fn reduce_scatter_init<T: Datatype>(
        &self,
        send: &[T],
        count: usize,
        op: ReduceOp,
    ) -> PersistentColl<'_, Vec<T>> {
        assert_eq!(
            send.len(),
            count * self.size(),
            "sendbuf must hold count * size elements"
        );
        let kernel = ReduceKernel::of::<T>(op);
        self.init_persistent(
            OwnedCollective::ReduceScatter {
                sendbuf: to_bytes(send),
                op: OwnedReduction::Typed(kernel),
            },
            Some(kernel.shared()),
            Box::new(|recv| from_bytes(recv.expect("reduce_scatter binds a receive buffer"))),
        )
    }

    /// Persistent [`Communicator::scan`] with a built-in operator.
    pub fn scan_init<T: Datatype>(&self, buf: &[T], op: ReduceOp) -> PersistentColl<'_, Vec<T>> {
        let kernel = ReduceKernel::of::<T>(op);
        self.init_persistent(
            OwnedCollective::Scan {
                buf: to_bytes(buf),
                op: OwnedReduction::Typed(kernel),
            },
            Some(kernel.shared()),
            Box::new(|recv| from_bytes(recv.expect("scan binds an in/out buffer"))),
        )
    }

    /// Persistent [`Communicator::exscan`] with a built-in operator (rank 0
    /// gets its pinned input back on every `wait`).
    pub fn exscan_init<T: Datatype>(&self, buf: &[T], op: ReduceOp) -> PersistentColl<'_, Vec<T>> {
        let kernel = ReduceKernel::of::<T>(op);
        self.init_persistent(
            OwnedCollective::Exscan {
                buf: to_bytes(buf),
                op: OwnedReduction::Typed(kernel),
            },
            Some(kernel.shared()),
            Box::new(|recv| from_bytes(recv.expect("exscan binds an in/out buffer"))),
        )
    }

    /// Persistent [`Communicator::allreduce_op`] with a registered user
    /// operator.
    pub fn allreduce_op_init<T: Datatype>(&self, buf: &[T], op: &Op) -> PersistentColl<'_, Vec<T>> {
        Self::check_op::<T>(op);
        self.init_persistent(
            OwnedCollective::Allreduce {
                buf: to_bytes(buf),
                op: OwnedReduction::User(op.clone()),
                layout: None,
                compress: None,
            },
            Some(op.shared()),
            Box::new(|recv| from_bytes(recv.expect("allreduce binds an in/out buffer"))),
        )
    }

    /// Persistent [`Communicator::reduce_op`] to `root` with a registered
    /// user operator; `wait` yields `Some` at the root, `None` elsewhere.
    pub fn reduce_op_init<T: Datatype>(
        &self,
        send: &[T],
        op: &Op,
        root: usize,
    ) -> PersistentColl<'_, Option<Vec<T>>> {
        Self::check_op::<T>(op);
        self.init_persistent(
            OwnedCollective::Reduce {
                sendbuf: to_bytes(send),
                root,
                op: OwnedReduction::User(op.clone()),
            },
            Some(op.shared()),
            Box::new(|recv| recv.map(from_bytes)),
        )
    }

    /// Persistent [`Communicator::reduce_scatter_op`] with a registered
    /// user operator (one pinned block of `count` elements per rank).
    pub fn reduce_scatter_op_init<T: Datatype>(
        &self,
        send: &[T],
        count: usize,
        op: &Op,
    ) -> PersistentColl<'_, Vec<T>> {
        Self::check_op::<T>(op);
        assert_eq!(
            send.len(),
            count * self.size(),
            "sendbuf must hold count * size elements"
        );
        self.init_persistent(
            OwnedCollective::ReduceScatter {
                sendbuf: to_bytes(send),
                op: OwnedReduction::User(op.clone()),
            },
            Some(op.shared()),
            Box::new(|recv| from_bytes(recv.expect("reduce_scatter binds a receive buffer"))),
        )
    }

    /// Persistent [`Communicator::scan_op`] with a registered user operator.
    pub fn scan_op_init<T: Datatype>(&self, buf: &[T], op: &Op) -> PersistentColl<'_, Vec<T>> {
        Self::check_op::<T>(op);
        self.init_persistent(
            OwnedCollective::Scan {
                buf: to_bytes(buf),
                op: OwnedReduction::User(op.clone()),
            },
            Some(op.shared()),
            Box::new(|recv| from_bytes(recv.expect("scan binds an in/out buffer"))),
        )
    }

    /// Persistent [`Communicator::exscan_op`] with a registered user
    /// operator (rank 0 gets its pinned input back on every `wait`).
    pub fn exscan_op_init<T: Datatype>(&self, buf: &[T], op: &Op) -> PersistentColl<'_, Vec<T>> {
        Self::check_op::<T>(op);
        self.init_persistent(
            OwnedCollective::Exscan {
                buf: to_bytes(buf),
                op: OwnedReduction::User(op.clone()),
            },
            Some(op.shared()),
            Box::new(|recv| from_bytes(recv.expect("exscan binds an in/out buffer"))),
        )
    }

    /// Persistent [`Communicator::allreduce_strided`]: the pinned buffer
    /// spans `layout.extent()` elements, of which only the selected ones
    /// participate; every `wait` yields the full extent-length vector.
    pub fn allreduce_strided_init<T: Datatype>(
        &self,
        buf: &[T],
        layout: Layout,
        op: ReduceOp,
    ) -> PersistentColl<'_, Vec<T>> {
        assert_eq!(
            buf.len(),
            layout.extent(),
            "buffer must span the layout's extent"
        );
        let kernel = ReduceKernel::of::<T>(op);
        self.init_persistent(
            OwnedCollective::Allreduce {
                buf: to_bytes(buf),
                op: OwnedReduction::Typed(kernel),
                layout: Some(layout),
                compress: None,
            },
            Some(kernel.shared()),
            Box::new(|recv| from_bytes(recv.expect("allreduce binds an in/out buffer"))),
        )
    }

    /// Persistent [`Communicator::alltoall`] (one pinned block of `count`
    /// elements per destination rank).
    pub fn alltoall_init<T: Datatype>(
        &self,
        send: &[T],
        count: usize,
    ) -> PersistentColl<'_, Vec<T>> {
        assert_eq!(send.len(), count * self.size());
        self.init_persistent(
            OwnedCollective::Alltoall {
                sendbuf: to_bytes(send),
            },
            None,
            Box::new(|recv| from_bytes(recv.expect("alltoall binds a receive buffer"))),
        )
    }
}

/// Handle to one outstanding non-blocking collective (the MPI request
/// object).  Obtained from the `Communicator::i*` methods; completed with
/// [`CollRequest::wait`] (or polled with [`CollRequest::test`]), in any
/// order relative to other requests.
///
/// Dropping a request without completing it leaves the collective
/// outstanding; peers waiting on it will only complete while *some*
/// completion call on this communicator keeps the progress engine turning.
/// Complete every request, as MPI requires.
pub struct CollRequest<'c, O> {
    comm: &'c Communicator<'c>,
    id: ReqId,
    finish: RequestFinish<'c, O>,
}

impl<O> CollRequest<'_, O> {
    /// Poll for completion without blocking: advances every outstanding
    /// request on the communicator once and reports whether *this* one has
    /// finished (after which [`CollRequest::wait`] returns immediately).
    pub fn test(&mut self) -> bool {
        self.comm.progress();
        self.comm.engine.borrow().is_complete(self.id)
    }

    /// Block until the collective completes and return its result.
    pub fn wait(self) -> O {
        let output = self.comm.drive_to_completion(self.id);
        (self.finish)(output.recvbuf)
    }
}

impl<O> std::fmt::Debug for CollRequest<'_, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollRequest").field("id", &self.id).finish()
    }
}

/// Complete a batch of requests (MPI_Waitall) and return their results in
/// the order the requests were passed — completion itself may happen in any
/// order, since every `wait` advances all outstanding requests.
pub fn wait_all<'c, O>(requests: impl IntoIterator<Item = CollRequest<'c, O>>) -> Vec<O> {
    requests.into_iter().map(CollRequest::wait).collect()
}

/// A persistent collective (MPI_*_init): the compiled plan pinned to a set
/// of caller buffers, startable any number of times.
///
/// The cycle is `write_send` (optional, to refresh the input) → [`start`] →
/// [`wait`], repeated; the plan is compiled at most once (and shared with
/// every other invocation of the same shape through the communicator's plan
/// cache).  As with non-blocking collectives, every rank must `start` its
/// handle in the same order relative to the communicator's other
/// collectives.
///
/// [`start`]: PersistentColl::start
/// [`wait`]: PersistentColl::wait
pub struct PersistentColl<'c, O> {
    comm: &'c Communicator<'c>,
    plan: Rc<RankPlan>,
    sendbuf: Option<Vec<u8>>,
    recvbuf: Option<Vec<u8>>,
    /// The communicator's shared scratch arena: every start after the first
    /// reacquires the buffers the previous execution released.
    arena: SharedArena,
    op: Option<SharedReduceOp>,
    active: Option<ReqId>,
    finish: PersistentFinish<'c, O>,
}

impl<O> PersistentColl<'_, O> {
    /// Begin one execution of the pinned collective.
    ///
    /// # Panics
    ///
    /// Panics when the previous execution has not been completed with
    /// [`PersistentColl::wait`].
    pub fn start(&mut self) {
        assert!(
            self.active.is_none(),
            "persistent collective already started"
        );
        let cursor = PlanCursor::with_arena(
            Rc::clone(&self.plan),
            self.sendbuf.take(),
            self.recvbuf.take(),
            self.comm.next_tag(),
            Rc::clone(&self.arena),
        );
        let id = self
            .comm
            .engine
            .borrow_mut()
            .submit(cursor, self.op.clone());
        self.active = Some(id);
        // Kick to the first blocking point so the leading posts go out at
        // start time, as with the one-shot `i*` calls.
        self.comm.progress();
    }

    /// Whether an execution is in flight (started but not waited).
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }

    /// Poll the in-flight execution; `true` once it can be waited without
    /// blocking.
    pub fn test(&mut self) -> bool {
        let id = self.active.expect("persistent collective not started");
        self.comm.progress();
        self.comm.engine.borrow().is_complete(id)
    }

    /// Complete the in-flight execution and return its result; the pinned
    /// buffers return to the handle for the next [`PersistentColl::start`].
    pub fn wait(&mut self) -> O {
        let id = self
            .active
            .take()
            .expect("persistent collective not started");
        let output = self.comm.drive_to_completion(id);
        self.sendbuf = output.sendbuf;
        self.recvbuf = output.recvbuf;
        (self.finish)(self.recvbuf.as_deref())
    }

    /// Overwrite the pinned input buffer with `data` (the persistent
    /// equivalent of passing a fresh send buffer): the next
    /// [`PersistentColl::start`] transmits the new bytes.  For in/out
    /// collectives (bcast, allreduce) this writes the single pinned buffer.
    ///
    /// # Panics
    ///
    /// Panics while an execution is active, when this rank binds no input
    /// buffer (e.g. a non-root scatter rank), or when `data`'s byte length
    /// differs from the pinned buffer's.
    pub fn write_send<T: Datatype>(&mut self, data: &[T]) {
        assert!(
            self.active.is_none(),
            "cannot rebind input while the collective is active"
        );
        let target = if self.plan.io.inout {
            self.recvbuf.as_mut()
        } else {
            self.sendbuf.as_mut()
        };
        let target = target.expect("this rank binds no input buffer");
        assert_eq!(
            data.len() * T::SIZE,
            target.len(),
            "input length must match the pinned buffer"
        );
        for (value, chunk) in data.iter().zip(target.chunks_exact_mut(T::SIZE)) {
            value.write_le(chunk);
        }
    }
}

impl<O> std::fmt::Debug for PersistentColl<'_, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistentColl")
            .field("active", &self.active)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use pip_mpi_model::Library;

    #[test]
    fn typed_point_to_point_round_trip() {
        let results = World::builder()
            .nodes(1)
            .ppn(2)
            .library(Library::PipMColl)
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 7, &[1.5f64, -2.5]);
                    Vec::new()
                } else {
                    comm.recv::<f64>(0, 7, 2)
                }
            })
            .unwrap();
        assert_eq!(results[1], vec![1.5, -2.5]);
    }

    #[test]
    fn collective_sequence_numbers_keep_back_to_back_collectives_separate() {
        let results = World::builder()
            .nodes(2)
            .ppn(2)
            .library(Library::PipMColl)
            .run(|comm| {
                // Two different collectives back to back on the same
                // communicator must not interfere.
                let first = comm.allgather(&[comm.rank() as u32]);
                let second = comm.allgather(&[(comm.rank() * 10) as u32]);
                comm.barrier();
                (first, second)
            })
            .unwrap();
        for (first, second) in results {
            assert_eq!(first, vec![0, 1, 2, 3]);
            assert_eq!(second, vec![0, 10, 20, 30]);
        }
    }

    #[test]
    fn typed_allreduce_supports_min_and_max() {
        let results = World::builder()
            .nodes(2)
            .ppn(3)
            .library(Library::PipMColl)
            .run(|comm| {
                let mut maxes = [comm.rank() as i64, -(comm.rank() as i64)];
                comm.allreduce(&mut maxes, ReduceOp::Max);
                let mut mins = [comm.rank() as f64];
                comm.allreduce(&mut mins, ReduceOp::Min);
                (maxes, mins)
            })
            .unwrap();
        for (maxes, mins) in results {
            assert_eq!(maxes, [5, 0]);
            assert_eq!(mins, [0.0]);
        }
    }

    /// Regression pin for the plan-cache routing of MPI_Barrier: the first
    /// barrier compiles a `CollectiveShape { kind: Barrier, .. }` entry,
    /// every later barrier is a cache hit — the barrier must never bypass
    /// the plan cache the way oversized payload collectives do.
    #[test]
    fn barrier_is_served_from_the_plan_cache() {
        let results = World::builder()
            .nodes(2)
            .ppn(2)
            .library(Library::PipMColl)
            .run(|comm| {
                comm.barrier();
                let after_first = (comm.plan_stats(), comm.plan_entries());
                comm.barrier();
                comm.barrier();
                let after_third = (comm.plan_stats(), comm.plan_entries());
                (after_first, after_third)
            })
            .unwrap();
        for (after_first, after_third) in results {
            assert_eq!(after_first, ((0, 1), 1), "first barrier must compile");
            assert_eq!(
                after_third,
                ((2, 1), 1),
                "repeated barriers must hit the cached plan"
            );
        }
    }

    #[test]
    fn typed_reduction_family_round_trips() {
        let results = World::builder()
            .nodes(2)
            .ppn(3)
            .library(Library::PipMColl)
            .run(|comm| {
                let world = comm.size();
                let rank = comm.rank() as i64;
                let reduced = comm.reduce(&[rank, 10 * rank], ReduceOp::Sum, 1);
                let scattered = comm.reduce_scatter(
                    &(0..world as i64).map(|i| rank + i).collect::<Vec<_>>(),
                    1,
                    ReduceOp::Sum,
                );
                let mut prefix = [rank];
                comm.scan(&mut prefix, ReduceOp::Sum);
                let mut exclusive = [rank];
                comm.exscan(&mut exclusive, ReduceOp::Sum);
                (reduced, scattered, prefix[0], exclusive[0])
            })
            .unwrap();
        let world = 6i64;
        let rank_sum: i64 = (0..world).sum();
        for (rank, (reduced, scattered, prefix, exclusive)) in results.iter().enumerate() {
            let rank = rank as i64;
            if rank == 1 {
                assert_eq!(reduced.as_ref().unwrap(), &vec![rank_sum, 10 * rank_sum]);
            } else {
                assert!(reduced.is_none());
            }
            // Block r of the reduced vector: sum over ranks of (rank + r).
            assert_eq!(scattered, &vec![rank_sum + world * rank]);
            assert_eq!(*prefix, (0..=rank).sum::<i64>());
            if rank == 0 {
                assert_eq!(*exclusive, 0, "rank 0 exscan keeps its input");
            } else {
                assert_eq!(*exclusive, (0..rank).sum::<i64>());
            }
        }
    }

    #[test]
    fn sendrecv_exchanges_between_neighbours() {
        let results = World::builder()
            .nodes(1)
            .ppn(4)
            .library(Library::OpenMpi)
            .run(|comm| {
                let right = (comm.rank() + 1) % comm.size();
                let left = (comm.rank() + comm.size() - 1) % comm.size();
                let received = comm.sendrecv(right, &[comm.rank() as u32], left, 1, 3);
                received[0]
            })
            .unwrap();
        assert_eq!(results, vec![3, 0, 1, 2]);
    }
}
