//! Acceptance check for the plan cache: cached dispatch must be at least 5×
//! faster than a cold compile for a repeated allgather on the paper's
//! hpdc23 topology (128 nodes × 18 ppn).  In practice the gap is three to
//! five orders of magnitude — the 5× floor only guards against the cache
//! silently degrading into a recompile.

use std::time::Instant;

use pip_collectives::plan::Fidelity;
use pip_collectives::CollectiveKind;
use pip_mpi_model::plan::compile_rank;
use pip_mpi_model::{ClusterPlanCache, CollectiveShape, Library, PlanCache};
use pip_netsim::cluster::ClusterSpec;

fn allgather_shape() -> CollectiveShape {
    CollectiveShape {
        kind: CollectiveKind::Allgather,
        block: 64,
        root: 0,
        elem_size: 1,
        reduce: None,
        layout: None,
        compress: None,
    }
}

#[test]
fn cached_rank_dispatch_is_at_least_5x_faster_than_cold_compile() {
    let topology = ClusterSpec::hpdc23().topology();
    let profile = Library::PipMColl.profile();
    let shape = allgather_shape();

    // Cold: what a communicator pays on its first allgather of this shape.
    let cold_start = Instant::now();
    let plan = compile_rank(&profile, topology, 0, &shape, Fidelity::Exec);
    let cold = cold_start.elapsed();
    assert!(!plan.ops.is_empty());

    // Warm: what every later identical allgather pays before executing.
    let mut cache = PlanCache::new();
    cache.lookup_or_compile(&profile, topology, 0, &shape);
    let reps = 1000u32;
    let warm_start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(cache.lookup_or_compile(&profile, topology, 0, &shape));
    }
    let warm = warm_start.elapsed() / reps;

    let ratio = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
    assert!(
        ratio >= 5.0,
        "plan-cache hit must be >= 5x faster than cold compile \
         (cold {cold:?}, hit {warm:?}, ratio {ratio:.1}x)"
    );
    assert_eq!(cache.stats(), (reps as u64, 1));
}

#[test]
fn cached_figure_cell_is_at_least_5x_faster_than_cold_compile() {
    let topology = ClusterSpec::hpdc23().topology();
    let profile = Library::PipMColl.profile();
    let shape = allgather_shape();

    let mut cache = ClusterPlanCache::new();
    let cold_start = Instant::now();
    cache.lookup_or_compile(&profile, topology, &shape);
    let cold = cold_start.elapsed();

    // A cached figure cell still lowers the plan to a trace; include that
    // cost so the comparison reflects real figure generation.
    let reps = 10u32;
    let warm_start = Instant::now();
    for _ in 0..reps {
        let plan = cache.lookup_or_compile(&profile, topology, &shape);
        std::hint::black_box(plan.to_trace(1));
    }
    let warm = warm_start.elapsed() / reps;

    let ratio = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
    assert!(
        ratio >= 5.0,
        "cached figure cell must be >= 5x faster than cold compile \
         (cold {cold:?}, warm {warm:?}, ratio {ratio:.1}x)"
    );
}
