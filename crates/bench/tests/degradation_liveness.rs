//! Liveness of real collective schedules on a degraded fabric.
//!
//! The perturbation plane's drop model retries each lost inter-node
//! message up to `max_retries` times.  Two properties must hold on the
//! *actual* schedules the libraries record — not just synthetic rings:
//!
//! * a drop rate the retry budget absorbs always completes, on every
//!   collective × library × topology grid point, on both the full and the
//!   folded path (never a hang, never a deadlock);
//! * a drop rate that exhausts the budget yields a structured
//!   [`SimError::Failure`] naming the starved `(rank, tag)` pairs — the
//!   run still terminates and still says *what* starved.
//!
//! The `--ignored` test is the paper-scale headline: Allreduce at 128×18
//! under 1% drops + 500 ns jitter, where PiP-MColl must still beat the
//! single-leader MVAPICH2 baseline in absolute time.

use pip_mpi_model::{
    dispatch, AllreduceAlgo, FabricCondition, Library, LibraryProfile, LOSSY_DROP_CROSSOVER,
};
use pip_netsim::cluster::ClusterSpec;
use pip_netsim::{DropSpec, LinkSpec, Perturbation, RunOptions, SimEngine, SimError, Trace};
use pip_runtime::Topology;

/// A drop rate an 10-deep retry budget absorbs: exhaustion needs 11
/// consecutive losses (p ≈ 5e-15 per message), which the deterministic
/// draws never produce at these trace sizes.
fn sub_budget(seed: u64) -> Perturbation {
    Perturbation {
        seed,
        link: LinkSpec {
            latency_pad: 50.0,
            latency_jitter: 200.0,
            occupancy_factor: 1.1,
            occupancy_jitter: 0.0,
        },
        drop: DropSpec {
            rate: 0.05,
            max_retries: 10,
            timeout: 1_500.0,
            backoff: 2.0,
        },
        ..Perturbation::NONE
    }
}

/// Every message is lost more times than the budget allows.
fn over_budget(seed: u64) -> Perturbation {
    Perturbation {
        seed,
        drop: DropSpec {
            rate: 1.0,
            max_retries: 3,
            timeout: 500.0,
            backoff: 2.0,
        },
        ..Perturbation::NONE
    }
}

type Recorder = fn(&LibraryProfile, Topology, usize) -> Trace;

const COLLECTIVES: &[(&str, Recorder)] = &[
    ("allgather", dispatch::record_allgather),
    ("allreduce", dispatch::record_allreduce),
    ("reduce_scatter", dispatch::record_reduce_scatter),
    ("alltoall", dispatch::record_alltoall),
];

const LIBRARIES: &[Library] = &[Library::PipMColl, Library::Mvapich2, Library::OpenMpi];

const TOPOLOGIES: &[(usize, usize)] = &[(2, 2), (4, 3)];

#[test]
fn sub_budget_drops_complete_on_the_collective_grid() {
    let nic = ClusterSpec::hpdc23().nic;
    for &(name, record) in COLLECTIVES {
        for &library in LIBRARIES {
            let profile = library.profile();
            for &(nodes, ppn) in TOPOLOGIES {
                let topology = Topology::new(nodes, ppn);
                let trace = record(&profile, topology, 2_048);
                let engine = SimEngine::new(profile.sim_params(nic));
                let options =
                    RunOptions::default().with_perturbation(sub_budget(nodes as u64 * 31 + 7));
                let label = format!("{name}/{}/{nodes}x{ppn}", library.name());
                let full = engine
                    .run_with(&trace, options)
                    .unwrap_or_else(|e| panic!("{label} full: {e}"));
                // The folded path must terminate too; asymmetric link jitter
                // forces it through the full-replay fallback, which is
                // exactly the path a degradation sweep takes.
                let folded = engine
                    .run_folded_with(&trace, options)
                    .unwrap_or_else(|e| panic!("{label} folded: {e}"));
                assert_eq!(full.makespan, folded.makespan, "{label}");
                assert_eq!(full.stats.retries, folded.stats.retries, "{label}");
                assert!(full.makespan.is_finite(), "{label}");
            }
        }
    }
}

#[test]
fn over_budget_drops_fail_structurally_on_real_schedules() {
    let nic = ClusterSpec::hpdc23().nic;
    for &library in LIBRARIES {
        let profile = library.profile();
        let topology = Topology::new(4, 3);
        let trace = dispatch::record_allreduce(&profile, topology, 2_048);
        let engine = SimEngine::new(profile.sim_params(nic));
        let options = RunOptions::default().with_perturbation(over_budget(5));
        let err = engine
            .run_with(&trace, options)
            .expect_err("total loss must not complete");
        match err {
            SimError::Failure(failure) => {
                assert!(!failure.starved.is_empty(), "{}", library.name());
                assert!(!failure.stuck_ranks.is_empty(), "{}", library.name());
                for starved in &failure.starved {
                    assert!(
                        starved.rank < topology.world_size(),
                        "{}: starved rank out of range",
                        library.name()
                    );
                    assert_eq!(starved.attempts, 4, "{}", library.name());
                }
            }
            other => panic!("{}: expected Failure, got {other:?}", library.name()),
        }
    }
}

/// The lossy-fabric selection dimension: at the 5% crossover PiP-MColl
/// re-selects its allreduce from the deep multi-object fan-out to the
/// single-leader hierarchy (fewest inter-node messages), and that choice —
/// not just the calibration — is what keeps it ahead once every inter-node
/// message is a retransmission lottery ticket.
#[test]
fn lossy_fabric_reselection_beats_stock_choices_under_drops() {
    const BLOCK: usize = 4_096;

    // Classification pins around the crossover.
    assert_eq!(
        FabricCondition::from_drop_rate(0.01),
        FabricCondition::Healthy
    );
    assert_eq!(
        FabricCondition::from_drop_rate(LOSSY_DROP_CROSSOVER),
        FabricCondition::Lossy
    );

    // Selection flip: the healthy PiP-MColl profile picks the multi-object
    // fan-out, the lossy one trades it for the hierarchy.  The fabric is
    // part of the profile, so the recorded schedule flips with it.
    let healthy = Library::PipMColl.profile();
    let lossy = Library::PipMColl
        .profile()
        .for_fabric(FabricCondition::Lossy);
    assert_eq!(healthy.fabric, FabricCondition::Healthy);
    assert_eq!(lossy.fabric, FabricCondition::Lossy);
    assert_eq!(
        healthy
            .selection
            .allreduce_for_fabric(BLOCK, healthy.fabric),
        AllreduceAlgo::MultiObject
    );
    assert_eq!(
        lossy.selection.allreduce_for_fabric(BLOCK, lossy.fabric),
        AllreduceAlgo::Hierarchical
    );

    // Replay all three schedules under exactly-crossover drops.  The
    // re-selected PiP-MColl must beat both its own healthy schedule (the
    // adaptation helps) and the stock MVAPICH2 hierarchy (the PiP intra-node
    // path still wins once the schedules match shape).
    let nic = ClusterSpec::hpdc23().nic;
    let topology = Topology::new(16, 18);
    let perturbation = Perturbation {
        seed: 0x4852_5043_2023,
        drop: DropSpec {
            rate: LOSSY_DROP_CROSSOVER,
            max_retries: 8,
            timeout: 2_000.0,
            backoff: 2.0,
        },
        ..Perturbation::NONE
    };
    let options = RunOptions::summary().with_perturbation(perturbation);
    let run = |profile: &LibraryProfile, label: &str| {
        let trace = dispatch::record_allreduce(profile, topology, BLOCK);
        let engine = SimEngine::new(profile.sim_params(nic));
        let outcome = engine
            .run_with(&trace, options)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert!(outcome.stats.retries > 0, "{label}: drops must engage");
        outcome.makespan
    };
    let adaptive = run(&lossy, "pip-mcoll/lossy");
    let stubborn = run(&healthy, "pip-mcoll/healthy");
    let stock = run(&Library::Mvapich2.profile(), "mvapich2/stock");
    assert!(
        adaptive < stubborn,
        "lossy re-selection must beat the healthy schedule at {:.0}% drops: {:.1} vs {:.1} us",
        LOSSY_DROP_CROSSOVER * 100.0,
        adaptive / 1e3,
        stubborn / 1e3
    );
    assert!(
        adaptive < stock,
        "lossy-selected PiP-MColl must beat stock MVAPICH2 at {:.0}% drops: {:.1} vs {:.1} us",
        LOSSY_DROP_CROSSOVER * 100.0,
        adaptive / 1e3,
        stock / 1e3
    );
}

/// Paper-scale headline: the multi-object schedule keeps its absolute win
/// under moderate degradation (1% drops, 500 ns jitter) at 128×18.
#[test]
#[ignore = "paper-scale: ~seconds, run with --ignored"]
fn paper_scale_degradation_headline() {
    let nic = ClusterSpec::hpdc23().nic;
    let topology = Topology::new(128, 18);
    let perturbation = Perturbation {
        seed: 0x4852_5043_2023,
        link: LinkSpec {
            latency_pad: 0.0,
            latency_jitter: 500.0,
            occupancy_factor: 1.0,
            occupancy_jitter: 0.0,
        },
        drop: DropSpec {
            rate: 0.01,
            max_retries: 8,
            timeout: 2_000.0,
            backoff: 2.0,
        },
        ..Perturbation::NONE
    };
    let options = RunOptions::summary().with_perturbation(perturbation);
    let mut makespans = Vec::new();
    for &library in &[Library::PipMColl, Library::Mvapich2] {
        let profile = library.profile();
        let trace = dispatch::record_allreduce(&profile, topology, 4_096);
        let engine = SimEngine::new(profile.sim_params(nic));
        let outcome = engine
            .run_with(&trace, options)
            .unwrap_or_else(|e| panic!("{}: {e}", library.name()));
        assert!(outcome.stats.retries > 0, "{}", library.name());
        makespans.push(outcome.makespan);
    }
    assert!(
        makespans[0] < makespans[1],
        "PiP-MColl must beat MVAPICH2 under 1% drops at 128x18: {:.1} vs {:.1} us",
        makespans[0] / 1e3,
        makespans[1] / 1e3
    );
}
