//! Criterion bench of the *real* thread-runtime collectives at laptop scale:
//! multi-object vs. hierarchical vs. flat Bruck allgather and scatter with
//! actual data movement through the PiP runtime.  These numbers are not the
//! paper's (that is what the simulator is for) but they confirm the
//! algorithms run and scale on real threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pip_collectives::comm::ThreadComm;
use pip_collectives::{bruck, hierarchical, multi_object};
use pip_runtime::{Cluster, Topology};

fn bench_allgather_real(c: &mut Criterion) {
    let topo = Topology::new(2, 4);
    let block = 256usize;
    let mut group = c.benchmark_group("thread_allgather_2x4_256B");
    group.sample_size(10);

    group.bench_function(BenchmarkId::from_parameter("multi_object"), |b| {
        b.iter(|| {
            Cluster::launch(topo, |ctx| {
                let comm = ThreadComm::new(ctx);
                let sendbuf = vec![ctx.rank() as u8; block];
                let mut recvbuf = vec![0u8; topo.world_size() * block];
                multi_object::allgather_multi_object(&comm, &sendbuf, &mut recvbuf, 1);
                recvbuf[0]
            })
            .unwrap()
        });
    });

    group.bench_function(BenchmarkId::from_parameter("hierarchical"), |b| {
        b.iter(|| {
            Cluster::launch(topo, |ctx| {
                let comm = ThreadComm::new(ctx);
                let sendbuf = vec![ctx.rank() as u8; block];
                let mut recvbuf = vec![0u8; topo.world_size() * block];
                hierarchical::allgather_hierarchical(&comm, &sendbuf, &mut recvbuf, 1);
                recvbuf[0]
            })
            .unwrap()
        });
    });

    group.bench_function(BenchmarkId::from_parameter("bruck"), |b| {
        b.iter(|| {
            Cluster::launch(topo, |ctx| {
                let comm = ThreadComm::new(ctx);
                let sendbuf = vec![ctx.rank() as u8; block];
                let mut recvbuf = vec![0u8; topo.world_size() * block];
                bruck::allgather_bruck(&comm, &sendbuf, &mut recvbuf, 1);
                recvbuf[0]
            })
            .unwrap()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_allgather_real);
criterion_main!(benches);
