//! Criterion bench for the plan/execute split: cold compile versus
//! plan-cache-hit dispatch latency for a repeated 64 B allgather on the
//! paper's hpdc23 testbed (128 nodes × 18 processes per node).
//!
//! Two granularities are measured:
//!
//! * **rank plan (exec fidelity)** — what a `Communicator` compiles on its
//!   dispatch hot path: 8 fingerprint passes of the algorithm plus payload
//!   resolution for one rank, versus a cache lookup;
//! * **cluster plan (schedule fidelity)** — what figure generation compiles
//!   per data point: one algorithm pass for every one of the 2304 ranks,
//!   versus a cache lookup plus the `Plan → Trace` lowering.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pip_collectives::plan::Fidelity;
use pip_collectives::CollectiveKind;
use pip_mpi_model::plan::{compile_rank, ClusterPlanCache, PlanCache};
use pip_mpi_model::{CollectiveShape, Library};
use pip_netsim::cluster::ClusterSpec;

fn allgather_shape() -> CollectiveShape {
    CollectiveShape {
        kind: CollectiveKind::Allgather,
        block: 64,
        root: 0,
        elem_size: 1,
        reduce: None,
        layout: None,
        compress: None,
    }
}

fn bench_rank_plan_dispatch(c: &mut Criterion) {
    let topology = ClusterSpec::hpdc23().topology();
    let profile = Library::PipMColl.profile();
    let shape = allgather_shape();

    let mut group = c.benchmark_group("rank_plan_dispatch_128x18_allgather_64B");
    group.sample_size(10);
    group.bench_function("cold_compile", |b| {
        b.iter(|| {
            let mut cache = PlanCache::new();
            black_box(cache.lookup_or_compile(&profile, topology, 0, &shape));
        });
    });
    let mut warm = PlanCache::new();
    warm.lookup_or_compile(&profile, topology, 0, &shape);
    group.bench_function("cache_hit", |b| {
        b.iter(|| {
            black_box(warm.lookup_or_compile(&profile, topology, 0, &shape));
        });
    });
    group.finish();
}

fn bench_cluster_plan_figures(c: &mut Criterion) {
    let topology = ClusterSpec::hpdc23().topology();
    let profile = Library::PipMColl.profile();
    let shape = allgather_shape();

    let mut group = c.benchmark_group("cluster_plan_figures_128x18_allgather_64B");
    group.sample_size(10);
    group.bench_function("cold_compile", |b| {
        b.iter(|| {
            let mut cache = ClusterPlanCache::new();
            black_box(cache.lookup_or_compile(&profile, topology, &shape));
        });
    });
    let mut warm = ClusterPlanCache::new();
    warm.lookup_or_compile(&profile, topology, &shape);
    group.bench_function("cache_hit_plus_lowering", |b| {
        b.iter(|| {
            let plan = warm.lookup_or_compile(&profile, topology, &shape);
            black_box(plan.to_trace(1));
        });
    });
    group.finish();

    // Print the ratio the acceptance criterion cares about: a cold
    // exec-fidelity rank compile versus a hit on the same dispatch-path
    // PlanCache (including its profile-memo and Rc-clone cost).
    let t0 = std::time::Instant::now();
    let fresh = compile_rank(&profile, topology, 0, &shape, Fidelity::Exec);
    let cold = t0.elapsed();
    let mut dispatch_cache = PlanCache::new();
    dispatch_cache.lookup_or_compile(&profile, topology, 0, &shape);
    let t1 = std::time::Instant::now();
    for _ in 0..1000 {
        black_box(dispatch_cache.lookup_or_compile(&profile, topology, 0, &shape));
    }
    let hit = t1.elapsed() / 1000;
    println!(
        "\n[plan_cache] cold exec-fidelity rank compile: {cold:?} ({} ops); \
         dispatch cache hit: {hit:?}; ratio ~{:.0}x",
        fresh.ops.len(),
        cold.as_secs_f64() / hit.as_secs_f64().max(1e-9)
    );
}

criterion_group!(
    benches,
    bench_rank_plan_dispatch,
    bench_cluster_plan_figures
);
criterion_main!(benches);
