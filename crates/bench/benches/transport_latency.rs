//! Criterion bench for ABL-TRANSPORT: the functional copy engines moving
//! real bytes (PiP single copy, POSIX-SHMEM double copy, CMA, XPMEM), which
//! is the measured counterpart of the analytic intra-node cost model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pip_transport::cost::IntranodeMechanism;
use pip_transport::engine_for;

fn bench_copy_engines(c: &mut Criterion) {
    for &bytes in &[64usize, 4096, 262144] {
        let mut group = c.benchmark_group(format!("abl_transport_copy_{bytes}B"));
        group.throughput(Throughput::Bytes(bytes as u64));
        group.sample_size(30);
        let src = vec![0xabu8; bytes];
        for mechanism in IntranodeMechanism::ALL {
            group.bench_function(BenchmarkId::from_parameter(mechanism.name()), |b| {
                let mut engine = engine_for(mechanism);
                let mut dst = vec![0u8; bytes];
                b.iter(|| {
                    let stats = engine.copy(&src, &mut dst);
                    stats.bytes_moved
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_copy_engines);
criterion_main!(benches);
