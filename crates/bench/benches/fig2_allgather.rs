//! Criterion bench for Figure 2 (MPI_Allgather, small messages): measures
//! recording + simulation per library on a reduced cluster and prints the
//! paper-scale series once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pip_collectives::CollectiveKind;
use pip_mcoll_bench::figures::collective_comparison;
use pip_mpi_model::{dispatch, Library};
use pip_netsim::cluster::ClusterSpec;
use pip_netsim::network::simulate;

fn bench_allgather_pipeline(c: &mut Criterion) {
    let cluster = ClusterSpec::new(16, 4);
    let topology = cluster.topology();
    let mut group = c.benchmark_group("fig2_allgather_pipeline_16x4");
    group.sample_size(10);
    for library in Library::ALL {
        let profile = library.profile();
        let params = profile.sim_params(cluster.nic);
        group.bench_function(BenchmarkId::from_parameter(library.name()), |b| {
            b.iter(|| {
                let trace = dispatch::record_allgather(&profile, topology, 64);
                simulate(library.name(), &trace, &params)
                    .unwrap()
                    .makespan_ns
            });
        });
    }
    group.finish();

    let table = collective_comparison(CollectiveKind::Allgather, ClusterSpec::hpdc23(), &[64]);
    println!(
        "\n[fig2] 64 B allgather on 128x18, simulated microseconds: {:?}",
        table
            .series
            .iter()
            .map(|s| (s.library.name(), s.time_us[0]))
            .collect::<Vec<_>>()
    );
}

criterion_group!(benches, bench_allgather_pipeline);
criterion_main!(benches);
