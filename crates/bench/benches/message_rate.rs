//! Criterion bench for ABL-MSGRATE: cost of simulating small-message bursts
//! with a varying number of concurrent sender objects per node, plus the
//! analytic message-rate model itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pip_netsim::params::SimParams;
use pip_netsim::trace::{Trace, TraceOp};
use pip_netsim::SimEngine;
use pip_runtime::Topology;
use pip_transport::netcard::NicModel;

fn burst_trace(senders: usize, messages_per_sender: usize, bytes: usize) -> Trace {
    let topo = Topology::new(2, senders);
    let mut trace = Trace::empty(topo);
    for s in 0..senders {
        for m in 0..messages_per_sender {
            let dest = topo.rank_of(1, s);
            trace.push(
                s,
                TraceOp::Send {
                    dest,
                    bytes,
                    tag: m as u64,
                },
            );
            trace.push(
                dest,
                TraceOp::Recv {
                    source: s,
                    bytes,
                    tag: m as u64,
                },
            );
        }
    }
    trace
}

fn bench_message_rate(c: &mut Criterion) {
    let engine = SimEngine::new(SimParams::default());
    let mut group = c.benchmark_group("abl_message_rate_burst");
    group.sample_size(20);
    for senders in [1usize, 4, 18] {
        let trace = burst_trace(senders, 100, 64);
        group.bench_function(BenchmarkId::from_parameter(senders), |b| {
            b.iter(|| engine.run(&trace).unwrap().makespan);
        });
    }
    group.finish();

    let nic = NicModel::default();
    c.bench_function("abl_message_rate_model", |b| {
        b.iter(|| {
            (1..=36usize)
                .map(|s| nic.node_message_rate(s, 64))
                .sum::<f64>()
        });
    });
}

criterion_group!(benches, bench_message_rate);
criterion_main!(benches);
