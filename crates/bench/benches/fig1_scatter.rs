//! Criterion bench for Figure 1 (MPI_Scatter, small messages): measures the
//! end-to-end pipeline (schedule recording + discrete-event simulation) per
//! library on a reduced cluster so `cargo bench` stays fast, and reports the
//! simulated execution times for the paper-scale cluster once per run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pip_collectives::CollectiveKind;
use pip_mcoll_bench::figures::collective_comparison;
use pip_mpi_model::{dispatch, Library};
use pip_netsim::cluster::ClusterSpec;
use pip_netsim::network::simulate;

fn bench_scatter_pipeline(c: &mut Criterion) {
    let cluster = ClusterSpec::new(16, 4);
    let topology = cluster.topology();
    let mut group = c.benchmark_group("fig1_scatter_pipeline_16x4");
    group.sample_size(10);
    for library in Library::ALL {
        let profile = library.profile();
        let params = profile.sim_params(cluster.nic);
        group.bench_function(BenchmarkId::from_parameter(library.name()), |b| {
            b.iter(|| {
                let trace = dispatch::record_scatter(&profile, topology, 256, 0);
                simulate(library.name(), &trace, &params)
                    .unwrap()
                    .makespan_ns
            });
        });
    }
    group.finish();

    // Print the paper-scale figure once so `cargo bench` output contains the
    // reproduced series.
    let table = collective_comparison(CollectiveKind::Scatter, ClusterSpec::hpdc23(), &[256]);
    println!(
        "\n[fig1] 256 B scatter on 128x18, simulated microseconds: {:?}",
        table
            .series
            .iter()
            .map(|s| (s.library.name(), s.time_us[0]))
            .collect::<Vec<_>>()
    );
}

criterion_group!(benches, bench_scatter_pipeline);
criterion_main!(benches);
