//! Modeling communication/computation overlap for non-blocking collectives.
//!
//! The request-based API lets an application post a collective, compute, and
//! only then wait — while it computes, messages that were already posted
//! keep flowing through the NIC and across the wire.  This module quantifies
//! how much of a compute interval a library's schedule can hide, using the
//! same compiled plans and discrete-event simulator as the figures:
//!
//! * the **blocking** baseline places a [`TraceOp::Compute`] interval
//!   *before* each rank's collective program — compute then communicate,
//!   nothing hidden (`t_blocking ≈ compute + t_collective`);
//! * the **overlapped** variant places the compute interval after each
//!   rank's leading run of wait-free operations — everything up to its
//!   first receive or node barrier.  This models `iallreduce` + one
//!   progress kick + compute + `wait` on a runtime whose progress engine
//!   runs *inside completion calls* (no background progress thread): the
//!   kick drives the cursor until it first blocks, so exactly the leading
//!   posts are in flight while the application computes.
//!
//! Overlap efficiency is the fraction of the hideable time actually hidden:
//! `(t_blocking - t_overlapped) / min(compute, t_collective)`.  The numbers
//! are deliberately honest about the kick-once model: schedules that
//! front-load network injections (flat recursive doubling — round-one
//! messages fly during the compute) recover a few percent, while schedules
//! that synchronize intra-node before injecting (the multi-object design)
//! recover nothing — their entire pitch is that the leader stages are cheap
//! enough that the *blocking* makespan already beats everyone else's
//! overlapped one at small sizes, so there is little left to hide.  Full
//! overlap of the leader stages would need a dedicated progress object (a
//! natural next step for the runtime; the trace op and this harness are the
//! measurement surface for it).

use pip_collectives::plan::Fidelity;
use pip_collectives::CollectiveKind;
use pip_mpi_model::plan::compile_cluster;
use pip_mpi_model::{CollectiveShape, Library};
use pip_netsim::cluster::ClusterSpec;
use pip_netsim::network::simulate;
use pip_netsim::trace::{Trace, TraceOp};

/// Slack allowed when asserting "overlapped is never slower than blocking":
/// moving the compute interval shifts *when* each rank's messages hit its
/// node's NIC adapter, and the adapter serializes injections in arrival
/// order, so the overlapped schedule can queue a later round marginally
/// worse than the blocking one.  The effect is a fraction of a percent;
/// anything beyond this factor is a real regression.
pub const OVERLAP_MODEL_SLACK: f64 = 1.02;

/// One measured point of an overlap sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapPoint {
    /// The library whose schedule was simulated.
    pub library: Library,
    /// Per-process message size in bytes.
    pub bytes: usize,
    /// Length of the compute interval each rank overlaps, in nanoseconds.
    pub compute_ns: f64,
    /// Makespan of the collective alone, in nanoseconds.
    pub collective_ns: f64,
    /// Makespan of compute-then-collective (no overlap), in nanoseconds.
    pub blocking_ns: f64,
    /// Makespan with the compute interval placed after the posting prefix.
    pub overlapped_ns: f64,
    /// `(blocking - overlapped) / min(compute, collective)`, clamped to
    /// `[0, 1]`.
    pub efficiency: f64,
}

impl OverlapPoint {
    /// Render as a JSON object (hand-rolled; the vendored serde shim does
    /// not serialize).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"library\":\"{}\",\"bytes\":{},\"compute_ns\":{:.1},\"collective_ns\":{:.1},\
             \"blocking_ns\":{:.1},\"overlapped_ns\":{:.1},\"overlap_efficiency\":{:.4}}}",
            self.library.name(),
            self.bytes,
            self.compute_ns,
            self.collective_ns,
            self.blocking_ns,
            self.overlapped_ns,
            self.efficiency
        )
    }
}

/// Insert a compute interval of `nanos` into every rank of `trace`.
///
/// With `overlap` false the interval goes first (compute, then the whole
/// collective).  With `overlap` true it goes after the rank's longest
/// prefix of wait-free operations (before its first receive or node
/// barrier) — the point a single progress kick after submission reaches, so
/// everything already posted proceeds concurrently with the compute.
/// Placing it at the first *wait* on every rank (rather than, say, each
/// rank's first internode receive) keeps the insertion structurally
/// homogeneous across ranks; heterogeneous placements let compute intervals
/// stack along cross-rank dependency chains and overstate the cost.  Both
/// transformations preserve trace validity: message matching and per-node
/// barrier counts are untouched, and no operation is reordered (compute
/// only delays what follows it).
pub fn with_compute(trace: &Trace, nanos: f64, overlap: bool) -> Trace {
    let mut out = trace.clone();
    for rank_trace in &mut out.ranks {
        let pos = if overlap {
            rank_trace
                .ops
                .iter()
                .position(|op| matches!(op, TraceOp::Recv { .. } | TraceOp::LocalBarrier))
                .unwrap_or(rank_trace.ops.len())
        } else {
            0
        };
        rank_trace.ops.insert(pos, TraceOp::Compute { nanos });
    }
    out
}

/// Shared core of the overlap measurements: compile once, simulate the
/// bare collective, derive the compute interval from its makespan via
/// `compute_of`, then simulate the blocking and overlapped placements.
fn overlap_point(
    library: Library,
    cluster: ClusterSpec,
    bytes: usize,
    compute_of: impl FnOnce(f64) -> f64,
) -> OverlapPoint {
    let profile = library.profile();
    let params = profile.sim_params(cluster.nic);
    let shape = CollectiveShape {
        kind: CollectiveKind::Allreduce,
        block: bytes,
        root: 0,
        elem_size: 1,
        reduce: None,
        layout: None,
        compress: None,
    };
    let plan = compile_cluster(&profile, cluster.topology(), &shape, Fidelity::Schedule);
    let trace = plan.to_trace(1);
    let run = |t: &Trace, label: &str| {
        simulate(label, t, &params)
            .unwrap_or_else(|e| panic!("{} overlap {bytes} B: {e}", library.name()))
            .makespan_us
            * 1000.0
    };
    let collective_ns = run(&trace, "collective");
    let compute_ns = compute_of(collective_ns);
    let blocking_ns = run(&with_compute(&trace, compute_ns, false), "blocking");
    let overlapped_ns = run(&with_compute(&trace, compute_ns, true), "overlapped");
    let hideable = compute_ns.min(collective_ns);
    let efficiency = if hideable > 0.0 {
        ((blocking_ns - overlapped_ns) / hideable).clamp(0.0, 1.0)
    } else {
        0.0
    };
    OverlapPoint {
        library,
        bytes,
        compute_ns,
        collective_ns,
        blocking_ns,
        overlapped_ns,
        efficiency,
    }
}

/// Simulate the overlap behaviour of one library's allreduce of `bytes`
/// bytes on `cluster`, with a compute interval of `compute_ns` per rank.
pub fn allreduce_overlap(
    library: Library,
    cluster: ClusterSpec,
    bytes: usize,
    compute_ns: f64,
) -> OverlapPoint {
    overlap_point(library, cluster, bytes, |_| compute_ns)
}

/// Sweep every library across `sizes`, with the compute interval set to
/// `compute_factor ×` that library's own collective makespan (so every
/// library is probed at a comparable "fully hideable" operating point).
pub fn allreduce_overlap_sweep(
    cluster: ClusterSpec,
    sizes: &[usize],
    compute_factor: f64,
) -> Vec<OverlapPoint> {
    let mut points = Vec::new();
    for library in Library::ALL {
        for &bytes in sizes {
            points.push(overlap_point(library, cluster, bytes, |collective_ns| {
                collective_ns * compute_factor
            }));
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_never_slower_than_blocking_and_efficiency_in_range() {
        let cluster = ClusterSpec::new(4, 4);
        for library in Library::ALL {
            for bytes in [64usize, 1024] {
                let point = allreduce_overlap(library, cluster, bytes, 20_000.0);
                assert!(
                    point.overlapped_ns <= point.blocking_ns * OVERLAP_MODEL_SLACK,
                    "{}: overlapped {} > blocking {}",
                    library.name(),
                    point.overlapped_ns,
                    point.blocking_ns
                );
                assert!(
                    point.blocking_ns >= point.collective_ns,
                    "{}: compute must not shrink the makespan",
                    library.name()
                );
                assert!((0.0..=1.0).contains(&point.efficiency));
            }
        }
    }

    #[test]
    fn compute_insertion_preserves_trace_validity() {
        let cluster = ClusterSpec::new(3, 3);
        let profile = Library::PipMColl.profile();
        let shape = CollectiveShape {
            kind: CollectiveKind::Allreduce,
            block: 128,
            root: 0,
            elem_size: 1,
            reduce: None,
            layout: None,
            compress: None,
        };
        let plan = compile_cluster(&profile, cluster.topology(), &shape, Fidelity::Schedule);
        let trace = plan.to_trace(1);
        with_compute(&trace, 5_000.0, false).validate().unwrap();
        with_compute(&trace, 5_000.0, true).validate().unwrap();
    }

    #[test]
    fn point_renders_as_json() {
        let point = OverlapPoint {
            library: Library::PipMColl,
            bytes: 64,
            compute_ns: 1000.0,
            collective_ns: 2000.0,
            blocking_ns: 3000.0,
            overlapped_ns: 2200.0,
            efficiency: 0.8,
        };
        let json = point.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"library\":\"PiP-MColl\""));
        assert!(json.contains("\"overlap_efficiency\":0.8000"));
    }
}
