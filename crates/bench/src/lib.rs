//! # pip-mcoll-bench
//!
//! The benchmark harness: everything needed to regenerate the paper's
//! figures and the additional ablations listed in `DESIGN.md`.
//!
//! * [`figures`] builds library-vs-library comparison tables by recording
//!   each library's collective schedule and replaying it through the
//!   discrete-event simulator on the paper's cluster (128 nodes × 18
//!   processes per node, Omni-Path).
//! * [`report`] renders those tables in the paper's format — *scaled
//!   execution time*, normalized to PiP-MColl, with values above the
//!   clipping threshold marked the way Figure 1 annotates them.
//!
//! The `src/bin/*` binaries print one figure or claim each; the Criterion
//! benches under `benches/` measure the same workloads (plus the real
//! thread-runtime collectives at laptop scale) so `cargo bench` exercises
//! every experiment end to end.

pub mod fabric_bench;
pub mod figures;
pub mod overlap;
pub mod report;

pub use fabric_bench::{run_mailbox_workload, MailboxPoint};
pub use figures::{collective_comparison, ComparisonTable, LibrarySeries};
pub use overlap::{allreduce_overlap, allreduce_overlap_sweep, OverlapPoint};
pub use report::render_scaled_table;
