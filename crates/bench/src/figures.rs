//! Building the per-figure comparison data: one simulated execution time per
//! (library, message size) pair for a chosen collective on a chosen cluster.
//!
//! Traces come from the plan cache rather than from replaying algorithms:
//! each `(library, collective, topology, size)` cell compiles a
//! schedule-fidelity plan once — process-wide — and every later request for
//! the same cell (repeated tables, other figures, ablations) lowers the
//! cached plan to a trace without running the algorithm again.

use std::sync::{Arc, Mutex, OnceLock};

use pip_collectives::plan::Fidelity;
use pip_collectives::CollectiveKind;
use pip_mpi_model::plan::compile_cluster;
use pip_mpi_model::{ClusterPlanCache, CollectiveShape, Library};
use pip_netsim::cluster::ClusterSpec;
use pip_netsim::network::simulate;
use pip_netsim::trace::Trace;
use pip_runtime::Topology;

/// The simulated execution times of one library across the message sizes of
/// a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct LibrarySeries {
    /// Which library this series describes.
    pub library: Library,
    /// Execution time in microseconds, one entry per message size.
    pub time_us: Vec<f64>,
}

/// One figure's worth of data: every library's execution time at every
/// message size, for one collective on one cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonTable {
    /// The collective being measured.
    pub collective: CollectiveKind,
    /// The simulated cluster.
    pub cluster: ClusterSpec,
    /// Per-process message sizes in bytes (the figures' x axis).
    pub sizes: Vec<usize>,
    /// One series per library, in [`Library::ALL`] order.
    pub series: Vec<LibrarySeries>,
}

impl ComparisonTable {
    /// The series for `library`.
    pub fn series_for(&self, library: Library) -> &LibrarySeries {
        self.series
            .iter()
            .find(|s| s.library == library)
            .expect("every library has a series")
    }

    /// Execution time of `library` at `size` bytes.
    pub fn time_us(&self, library: Library, size: usize) -> f64 {
        let idx = self
            .sizes
            .iter()
            .position(|&s| s == size)
            .expect("size present in table");
        self.series_for(library).time_us[idx]
    }

    /// Scaled execution time (normalized to PiP-MColl) of `library` at index
    /// `size_idx` — the quantity the paper's figures plot.
    pub fn scaled(&self, library: Library, size_idx: usize) -> f64 {
        let reference = self.series_for(Library::PipMColl).time_us[size_idx];
        self.series_for(library).time_us[size_idx] / reference
    }

    /// Whether PiP-MColl is the fastest implementation at every message size
    /// (the paper's headline qualitative claim for both figures).
    pub fn pip_mcoll_fastest_everywhere(&self) -> bool {
        (0..self.sizes.len()).all(|idx| {
            let reference = self.series_for(Library::PipMColl).time_us[idx];
            self.series
                .iter()
                .filter(|s| s.library != Library::PipMColl)
                .all(|s| s.time_us[idx] >= reference)
        })
    }

    /// The speedup of PiP-MColl over the *fastest competitor* at each size;
    /// returns `(size, speedup)` of the maximum — the number the paper
    /// quotes (65 % for scatter at 256 B, 4.6× for allgather at 64 B).
    pub fn best_speedup_vs_fastest_competitor(&self) -> (usize, f64) {
        let mut best = (self.sizes[0], 0.0f64);
        for (idx, &size) in self.sizes.iter().enumerate() {
            let reference = self.series_for(Library::PipMColl).time_us[idx];
            let fastest_other = self
                .series
                .iter()
                .filter(|s| s.library != Library::PipMColl)
                .map(|s| s.time_us[idx])
                .fold(f64::INFINITY, f64::min);
            let speedup = fastest_other / reference;
            if speedup > best.1 {
                best = (size, speedup);
            }
        }
        best
    }

    /// Number of message sizes at which PiP-MPICH is the slowest
    /// implementation (the paper observes it "sometimes has the worst
    /// performance").
    pub fn pip_mpich_worst_count(&self) -> usize {
        (0..self.sizes.len())
            .filter(|&idx| {
                let pip_mpich = self.series_for(Library::PipMpich).time_us[idx];
                self.series
                    .iter()
                    .filter(|s| s.library != Library::PipMpich)
                    .all(|s| s.time_us[idx] <= pip_mpich)
            })
            .count()
    }
}

/// Record and simulate `collective` for every library in [`Library::ALL`]
/// across `sizes` (bytes per process) on `cluster`.  Rooted collectives use
/// rank 0 as the root, as the paper's benchmarks do.
pub fn collective_comparison(
    collective: CollectiveKind,
    cluster: ClusterSpec,
    sizes: &[usize],
) -> ComparisonTable {
    let topology = cluster.topology();
    let mut series = Vec::with_capacity(Library::ALL.len());
    for library in Library::ALL {
        let profile = library.profile();
        let params = profile.sim_params(cluster.nic);
        let mut time_us = Vec::with_capacity(sizes.len());
        for &bytes in sizes {
            let trace = record_for(collective, &profile, topology, bytes);
            let report = simulate(library.name(), &trace, &params)
                .unwrap_or_else(|e| panic!("{} {collective:?} {bytes} B: {e}", library.name()));
            time_us.push(report.makespan_us);
        }
        series.push(LibrarySeries { library, time_us });
    }
    ComparisonTable {
        collective,
        cluster,
        sizes: sizes.to_vec(),
        series,
    }
}

/// The process-wide plan cache behind [`collective_comparison`].
///
/// Growth is bounded by the number of distinct `(library, collective,
/// topology, size)` cells the process ever simulates — a few hundred plans
/// for a full figure sweep — and the lock is only held for map access, never
/// across a compile.
fn figure_plans() -> &'static Mutex<ClusterPlanCache> {
    static PLANS: OnceLock<Mutex<ClusterPlanCache>> = OnceLock::new();
    PLANS.get_or_init(|| Mutex::new(ClusterPlanCache::new()))
}

/// `(hits, misses)` of the process-wide figure plan cache.
pub fn figure_plan_stats() -> (u64, u64) {
    figure_plans().lock().unwrap().stats()
}

fn record_for(
    collective: CollectiveKind,
    profile: &pip_mpi_model::LibraryProfile,
    topology: Topology,
    bytes: usize,
) -> Trace {
    let shape = CollectiveShape {
        kind: collective,
        block: if collective == CollectiveKind::Barrier {
            0
        } else {
            bytes
        },
        root: 0,
        elem_size: 1,
        reduce: None,
        layout: None,
        compress: None,
    };
    // Compile outside the lock so concurrent figure builders never block
    // behind another cell's whole-cluster compile; first inserter wins.
    let cached = figure_plans()
        .lock()
        .unwrap()
        .lookup(profile, topology, &shape);
    let plan = match cached {
        Some(plan) => plan,
        None => {
            let compiled = Arc::new(compile_cluster(
                profile,
                topology,
                &shape,
                Fidelity::Schedule,
            ));
            figure_plans()
                .lock()
                .unwrap()
                .insert(profile, topology, &shape, compiled)
        }
    };
    // Tag base 1 matches the legacy `record_*` helpers, so traces are
    // byte-identical to the pre-plan pipeline.
    plan.to_trace(1)
}

/// The per-process message sizes of the paper's small-message figures.
pub const PAPER_SMALL_SIZES: [usize; 6] = [16, 32, 64, 128, 256, 512];

/// The larger message sizes used by the "larger messages" ablation.  The
/// upper end is capped at 64 KiB so that recording the (world × size)
/// buffers of 500+ ranks stays within a few seconds.
pub const LARGE_SIZES: [usize; 4] = [1024, 4096, 16384, 65536];

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster_table(kind: CollectiveKind) -> ComparisonTable {
        collective_comparison(kind, ClusterSpec::new(8, 4), &[16, 64, 256])
    }

    #[test]
    fn allgather_table_has_all_libraries_and_sizes() {
        let table = small_cluster_table(CollectiveKind::Allgather);
        assert_eq!(table.series.len(), 5);
        assert!(table
            .series
            .iter()
            .all(|s| s.time_us.len() == 3 && s.time_us.iter().all(|&t| t > 0.0)));
    }

    #[test]
    fn pip_mcoll_wins_small_message_allgather_even_on_a_small_cluster() {
        let table = small_cluster_table(CollectiveKind::Allgather);
        assert!(table.pip_mcoll_fastest_everywhere(), "{table:?}");
    }

    #[test]
    fn pip_mcoll_wins_small_message_scatter_even_on_a_small_cluster() {
        let table = small_cluster_table(CollectiveKind::Scatter);
        assert!(table.pip_mcoll_fastest_everywhere(), "{table:?}");
    }

    #[test]
    fn scaled_time_of_reference_is_one() {
        let table = small_cluster_table(CollectiveKind::Allgather);
        for idx in 0..table.sizes.len() {
            assert!((table.scaled(Library::PipMColl, idx) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn execution_time_grows_with_message_size() {
        let table = small_cluster_table(CollectiveKind::Allgather);
        for series in &table.series {
            assert!(
                series.time_us[0] <= series.time_us[2],
                "{:?} not monotone: {:?}",
                series.library,
                series.time_us
            );
        }
    }

    #[test]
    fn reduce_scatter_table_covers_every_library() {
        let table = small_cluster_table(CollectiveKind::ReduceScatter);
        assert_eq!(table.series.len(), 5);
        assert!(table
            .series
            .iter()
            .all(|s| s.time_us.len() == 3 && s.time_us.iter().all(|&t| t > 0.0)));
    }

    #[test]
    fn reduce_table_uses_the_real_reduce_schedule() {
        // Regression: MPI_Reduce used to lower to the barrier workload as a
        // stand-in.  The barrier moves zero payload bytes, so its time is
        // flat across the size axis; a real reduce moves the vector and must
        // get more expensive as it grows.
        let reduce = small_cluster_table(CollectiveKind::Reduce);
        let barrier = small_cluster_table(CollectiveKind::Barrier);
        for library in Library::ALL {
            let r = reduce.series_for(library);
            let b = barrier.series_for(library);
            assert_eq!(
                b.time_us[0], b.time_us[2],
                "{library:?}: the barrier is size-independent"
            );
            assert!(
                r.time_us[2] > r.time_us[0],
                "{library:?}: reduce must scale with the message size"
            );
        }
    }

    #[test]
    fn time_lookup_by_size_matches_series() {
        let table = small_cluster_table(CollectiveKind::Scatter);
        let direct = table.time_us(Library::OpenMpi, 64);
        assert_eq!(direct, table.series_for(Library::OpenMpi).time_us[1]);
    }

    /// Rebuilding the same figure cells must be served from the plan cache —
    /// the point of the plan/execute split for figure generation.  The cache
    /// (and the stats) are process-wide, so only *deltas* around two
    /// identical builds are meaningful under parallel test execution.
    #[test]
    fn repeated_tables_hit_the_figure_plan_cache() {
        let build = || collective_comparison(CollectiveKind::Bcast, ClusterSpec::new(6, 3), &[32]);
        let first = build();
        let (hits_before, misses_before) = figure_plan_stats();
        let second = build();
        let (hits_after, misses_after) = figure_plan_stats();
        assert_eq!(first, second, "cached traces must reproduce the table");
        assert_eq!(
            misses_after, misses_before,
            "a repeated table must not recompile any cell"
        );
        assert_eq!(
            hits_after - hits_before,
            Library::ALL.len() as u64,
            "every (library, size) cell of the repeat must hit the cache"
        );
    }
}
