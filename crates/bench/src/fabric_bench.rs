//! Measuring the multi-object mailbox win on the real thread runtime.
//!
//! The paper's §3 argument is that one shared communication object per node
//! serializes all senders on a single lock and forces receivers to scan
//! every in-flight message; sharding into multiple objects removes both.
//! Our fabric keeps the single-object layout alive as
//! [`MailboxLayout::SingleQueue`], so the claim is measurable in-repo: the
//! same workload runs against both layouts and the throughput ratio *is*
//! the multi-object speedup (`bench_fabric` emits it as
//! `BENCH_fabric.json`; `abl_mailbox_contention` sweeps the shard count at
//! the paper's 18-processes-per-node scale).
//!
//! The workload is a mixed-tag exchange chosen to reproduce the access
//! pattern collectives put on the fabric: every rank posts a burst of
//! distinctly tagged messages to every peer (many concurrent senders per
//! inbox — the lock-contention axis), then drains its own inbox in *reverse*
//! tag order (receives that arrive "late" relative to matching order — the
//! unexpected-message-queue scan axis).  Sends are buffered and never
//! block, so post-then-drain cannot deadlock.

use std::time::{Duration, Instant};

use pip_runtime::fabric::MatchSpec;
use pip_runtime::{Fabric, MailboxLayout};

/// Payload size used by the mailbox workloads: small enough that matching
/// and locking — not memcpy — dominate, as in the paper's small-message
/// regime.
pub const MAILBOX_PAYLOAD_BYTES: usize = 8;

/// One measured grid point of a mailbox sweep.
#[derive(Debug, Clone)]
pub struct MailboxPoint {
    /// Mailbox layout the fabric ran with.
    pub layout: MailboxLayout,
    /// Number of ranks (each a live thread sending and receiving).
    pub ranks: usize,
    /// Messages each rank posts to each peer before draining (the
    /// in-flight backlog a receive has to match against).
    pub outstanding: usize,
    /// Total messages moved through the fabric.
    pub messages: usize,
    /// Wall-clock time for the whole exchange.
    pub seconds: f64,
    /// Throughput in messages per second.
    pub msgs_per_sec: f64,
    /// Mailbox lock acquisitions that found the lock held.
    pub lock_contentions: usize,
    /// Queue entries examined while matching receives.
    pub messages_scanned: usize,
}

/// The layout axis both mailbox binaries sweep: the single-queue baseline
/// followed by 1/2/4/8 shards (8 = the fabric's default).
pub fn sweep_layouts() -> Vec<MailboxLayout> {
    let mut layouts = vec![MailboxLayout::SingleQueue];
    layouts.extend([1usize, 2, 4, 8].map(|shards| MailboxLayout::Sharded { shards }));
    layouts
}

/// Human-readable layout label (also the JSON `layout` field).
pub fn layout_name(layout: MailboxLayout) -> String {
    match layout {
        MailboxLayout::SingleQueue => "single_queue".to_string(),
        MailboxLayout::Sharded { shards } => format!("sharded_{shards}"),
    }
}

/// Number of shards a layout provides (0 for the single-queue baseline, so
/// the JSON stays numeric).
pub fn layout_shards(layout: MailboxLayout) -> usize {
    match layout {
        MailboxLayout::SingleQueue => 0,
        MailboxLayout::Sharded { shards } => shards,
    }
}

impl MailboxPoint {
    /// Render as a JSON object (hand-rolled; the vendored serde shim does
    /// not serialize).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"layout\":\"{}\",\"shards\":{},\"ranks\":{},\"outstanding\":{},\
             \"messages\":{},\"seconds\":{:.6},\"msgs_per_sec\":{:.0},\
             \"lock_contentions\":{},\"messages_scanned\":{}}}",
            layout_name(self.layout),
            layout_shards(self.layout),
            self.ranks,
            self.outstanding,
            self.messages,
            self.seconds,
            self.msgs_per_sec,
            self.lock_contentions,
            self.messages_scanned
        )
    }
}

/// Run the mixed-tag exchange on `ranks` live threads for `rounds` rounds
/// with `outstanding` messages per (sender, peer) pair per round.
///
/// Every rank r, per round: post `outstanding` messages to every other rank
/// (tags unique per round), then receive its own `(ranks - 1) ×
/// outstanding` messages in reverse tag order.  Total messages =
/// `ranks × (ranks - 1) × outstanding × rounds`.
pub fn run_mailbox_workload(
    ranks: usize,
    outstanding: usize,
    rounds: usize,
    layout: MailboxLayout,
) -> MailboxPoint {
    assert!(ranks >= 2, "the exchange needs at least two ranks");
    let fabric = Fabric::with_layout(ranks, layout, Duration::from_secs(120));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for rank in 0..ranks {
            let fabric = fabric.clone();
            scope.spawn(move || {
                for round in 0..rounds {
                    let tag_base = (round * outstanding) as u64;
                    for m in 0..outstanding as u64 {
                        for peer in 0..ranks {
                            if peer == rank {
                                continue;
                            }
                            fabric
                                .send(
                                    rank,
                                    peer,
                                    tag_base + m,
                                    vec![rank as u8; MAILBOX_PAYLOAD_BYTES],
                                )
                                .expect("send");
                        }
                    }
                    // Reverse order: under the single-queue layout every
                    // receive scans past the not-yet-wanted earlier tags.
                    for m in (0..outstanding as u64).rev() {
                        for peer in 0..ranks {
                            if peer == rank {
                                continue;
                            }
                            let msg = fabric
                                .recv(rank, MatchSpec::exact(peer, tag_base + m))
                                .expect("recv");
                            assert_eq!(
                                msg.payload.as_slice(),
                                &[peer as u8; MAILBOX_PAYLOAD_BYTES]
                            );
                        }
                    }
                }
            });
        }
    });
    let seconds = start.elapsed().as_secs_f64();
    let messages = ranks * (ranks - 1) * outstanding * rounds;
    let stats = fabric.stats();
    MailboxPoint {
        layout,
        ranks,
        outstanding,
        messages,
        seconds,
        msgs_per_sec: messages as f64 / seconds.max(1e-9),
        lock_contentions: stats.lock_contentions,
        messages_scanned: stats.messages_scanned,
    }
}

/// Pick a round count that moves roughly `message_budget` messages for the
/// given grid cell, so every point runs long enough to time and short
/// enough for a CI smoke run.
pub fn rounds_for_budget(ranks: usize, outstanding: usize, message_budget: usize) -> usize {
    (message_budget / (ranks * (ranks - 1) * outstanding)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_completes_and_counts_messages_for_every_layout() {
        for layout in [
            MailboxLayout::SingleQueue,
            MailboxLayout::Sharded { shards: 4 },
        ] {
            let point = run_mailbox_workload(4, 8, 2, layout);
            assert_eq!(point.messages, 4 * 3 * 8 * 2);
            assert!(point.seconds > 0.0);
            assert!(point.msgs_per_sec > 0.0);
            let json = point.to_json();
            assert!(json.starts_with('{') && json.ends_with('}'));
            assert!(json.contains(&format!("\"layout\":\"{}\"", layout_name(layout))));
        }
    }

    /// The structural claim behind the headline speedup, asserted on counts
    /// rather than wall-clock so it is immune to scheduler noise: the
    /// sharded layout matches in O(1) while the single queue wades through
    /// the reverse-order backlog.
    #[test]
    fn sharded_layout_scans_orders_of_magnitude_less() {
        let single = run_mailbox_workload(8, 32, 1, MailboxLayout::SingleQueue);
        let sharded = run_mailbox_workload(8, 32, 1, MailboxLayout::Sharded { shards: 8 });
        assert_eq!(
            sharded.messages_scanned, sharded.messages,
            "sharded exact receives pop exactly one lane head each"
        );
        assert!(
            single.messages_scanned > 10 * single.messages,
            "single queue must scan the backlog (scanned {} for {} messages)",
            single.messages_scanned,
            single.messages
        );
    }

    #[test]
    fn rounds_for_budget_is_at_least_one() {
        assert_eq!(rounds_for_budget(16, 64, 100), 1);
        assert!(rounds_for_budget(2, 4, 8000) >= 100);
    }
}
