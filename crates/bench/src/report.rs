//! Rendering comparison tables the way the paper presents them: scaled
//! execution time (normalized to PiP-MColl), with values beyond the clipping
//! threshold annotated instead of plotted, plus the headline claims.

use pip_mpi_model::Library;

use crate::figures::ComparisonTable;

/// The paper clips competitors whose scaled time exceeds 4× PiP-MColl and
/// prints the value next to the clipped bar (Figure 1 shows "7.05" and
/// "4.38" that way).
pub const CLIP_THRESHOLD: f64 = 4.0;

/// Render a table of *scaled execution time* (the figures' y axis) as
/// GitHub-flavoured markdown.  Values above [`CLIP_THRESHOLD`] are marked
/// with a trailing `*`, mirroring the paper's clipping annotation.
pub fn render_scaled_table(table: &ComparisonTable) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} on {} nodes x {} ppn ({} ranks), scaled execution time (PiP-MColl = 1.0)\n\n",
        table.collective.name(),
        table.cluster.nodes,
        table.cluster.ppn,
        table.cluster.world_size()
    ));
    out.push_str("| Library |");
    for size in &table.sizes {
        out.push_str(&format!(" {size} B |"));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in &table.sizes {
        out.push_str("---|");
    }
    out.push('\n');
    for library in Library::ALL {
        out.push_str(&format!("| {} |", library.name()));
        for idx in 0..table.sizes.len() {
            let scaled = table.scaled(library, idx);
            if scaled > CLIP_THRESHOLD {
                out.push_str(&format!(" {scaled:.2}* |"));
            } else {
                out.push_str(&format!(" {scaled:.2} |"));
            }
        }
        out.push('\n');
    }
    out.push('\n');
    out.push_str("Absolute times (microseconds)\n\n| Library |");
    for size in &table.sizes {
        out.push_str(&format!(" {size} B |"));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in &table.sizes {
        out.push_str("---|");
    }
    out.push('\n');
    for library in Library::ALL {
        out.push_str(&format!("| {} |", library.name()));
        for idx in 0..table.sizes.len() {
            out.push_str(&format!(" {:.1} |", table.series_for(library).time_us[idx]));
        }
        out.push('\n');
    }
    out.push('\n');

    let (size, speedup) = table.best_speedup_vs_fastest_competitor();
    out.push_str(&format!(
        "Best PiP-MColl speedup over the fastest competitor: {speedup:.2}x at {size} B\n"
    ));
    out.push_str(&format!(
        "PiP-MColl fastest at every size: {}\n",
        table.pip_mcoll_fastest_everywhere()
    ));
    out.push_str(&format!(
        "Sizes at which PiP-MPICH is the slowest implementation: {} of {}\n",
        table.pip_mpich_worst_count(),
        table.sizes.len()
    ));
    out
}

/// Render a CSV version of the absolute times (one row per library).
pub fn render_csv(table: &ComparisonTable) -> String {
    let mut out = String::from("library");
    for size in &table.sizes {
        out.push_str(&format!(",{size}"));
    }
    out.push('\n');
    for library in Library::ALL {
        out.push_str(library.name());
        for idx in 0..table.sizes.len() {
            out.push_str(&format!(",{:.3}", table.series_for(library).time_us[idx]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::collective_comparison;
    use pip_collectives::CollectiveKind;
    use pip_netsim::cluster::ClusterSpec;

    #[test]
    fn markdown_table_contains_every_library_and_size() {
        let table =
            collective_comparison(CollectiveKind::Scatter, ClusterSpec::new(4, 3), &[16, 64]);
        let rendered = render_scaled_table(&table);
        for library in Library::ALL {
            assert!(rendered.contains(library.name()));
        }
        assert!(rendered.contains("16 B"));
        assert!(rendered.contains("64 B"));
        assert!(rendered.contains("MPI_Scatter"));
        assert!(rendered.contains("Best PiP-MColl speedup"));
    }

    #[test]
    fn csv_has_header_plus_one_row_per_library() {
        let table = collective_comparison(CollectiveKind::Allgather, ClusterSpec::new(4, 2), &[32]);
        let csv = render_csv(&table);
        assert_eq!(csv.lines().count(), 1 + Library::ALL.len());
        assert!(csv.starts_with("library,32"));
    }
}
