//! Communication/computation overlap of a non-blocking allreduce, per
//! library, on the paper's cluster — emitted as JSON (one object per line
//! inside a top-level array) for downstream figure tooling.
//!
//! For every library × message size the compute interval is set to that
//! library's own collective makespan (the fully-hideable operating point),
//! so `overlap_efficiency` answers: *if the application has exactly enough
//! compute to hide the collective, what fraction does this schedule
//! actually hide?*  The paper's async-leader argument predicts multi-object
//! schedules — where every local rank posts its own network work up front —
//! hide more than designs that must synchronize before injecting.

use pip_mcoll_bench::overlap::{allreduce_overlap_sweep, OVERLAP_MODEL_SLACK};
use pip_netsim::cluster::ClusterSpec;

fn main() {
    let cluster = ClusterSpec::hpdc23();
    let sizes = [16usize, 64, 256, 1024, 4096];
    let points = allreduce_overlap_sweep(cluster, &sizes, 1.0);
    println!("[");
    for (idx, point) in points.iter().enumerate() {
        let comma = if idx + 1 == points.len() { "" } else { "," };
        println!("  {}{}", point.to_json(), comma);
        assert!(
            point.overlapped_ns <= point.blocking_ns * OVERLAP_MODEL_SLACK,
            "overlap must never be (meaningfully) slower than blocking"
        );
    }
    println!("]");
}
