//! **Degradation figure**: MPI_Allreduce (4 KiB per process) on a degraded
//! fabric — drop-rate × latency-jitter sweep across the three libraries.
//!
//! The healthy-fabric figures show PiP-MColl winning on per-node software
//! overhead.  This figure asks what happens when the fabric misbehaves:
//! every inter-node message is exposed to a seeded drop model (retry after
//! a timeout with exponential backoff) and per-link latency jitter.  The
//! measured answer is two-sided — PiP-MColl keeps its absolute win through
//! moderate degradation (<= 1% drops, any swept jitter), but its
//! multi-leader fan-out exposes *more concurrent* inter-node messages than
//! a single-leader schedule, so at extreme drop rates (5%) the
//! lower-message-count MVAPICH2 schedule overtakes it in absolute time and
//! every library's relative inflation inverts with its healthy baseline
//! (a fixed retry timeout is a larger fraction of a faster collective).
//!
//! Reported per (drop rate, jitter) grid point and library: simulated
//! makespan, inflation over that library's own healthy baseline, retry
//! count, and retransmitted bytes.  The sweep is deterministic — one seed,
//! pure-hash draws — so the artifact is reproducible bit-for-bit.
//!
//! ```text
//! cargo run --release -p pip-mcoll-bench --bin fig_degradation            # hpdc23 scale
//! cargo run --release -p pip-mcoll-bench --bin fig_degradation -- --small # CI smoke grid
//! ```

use pip_mpi_model::{dispatch, Library};
use pip_netsim::cluster::ClusterSpec;
use pip_netsim::{DropSpec, LinkSpec, Perturbation, RunOptions, SimEngine, Trace};
use pip_runtime::Topology;

/// Per-process block size: the paper's medium-message Allreduce point.
const BLOCK: usize = 4096;

/// One seed for the whole figure; the artifact is a pure function of it.
const SEED: u64 = 0x4852_5043_2023;

struct Point {
    library: &'static str,
    drop_rate: f64,
    jitter_ns: f64,
    makespan_us: f64,
    inflation: f64,
    retries: usize,
    retransmitted_bytes: usize,
}

fn perturbation(drop_rate: f64, jitter_ns: f64) -> Perturbation {
    Perturbation {
        seed: SEED,
        link: LinkSpec {
            latency_pad: 0.0,
            latency_jitter: jitter_ns,
            occupancy_factor: 1.0,
            occupancy_jitter: 0.0,
        },
        drop: DropSpec {
            rate: drop_rate,
            max_retries: 8,
            timeout: 2_000.0,
            backoff: 2.0,
        },
        ..Perturbation::NONE
    }
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let (topology, rates, jitters): (Topology, &[f64], &[f64]) = if small {
        (Topology::new(16, 8), &[0.0, 0.01, 0.05], &[0.0, 1_000.0])
    } else {
        (
            Topology::new(128, 18),
            &[0.0, 0.001, 0.01, 0.05],
            &[0.0, 500.0, 2_000.0],
        )
    };
    let nic = ClusterSpec::hpdc23().nic;

    println!(
        "=== Degradation: MPI_Allreduce {BLOCK} B/process on {}x{}, drop-rate x jitter ===\n",
        topology.nodes(),
        topology.ppn()
    );

    // Record each library's schedule once; the same trace is replayed at
    // every grid point so the sweep isolates the fabric, not the recorder.
    let traces: Vec<(Library, Trace, SimEngine)> = Library::ALL
        .iter()
        .map(|&library| {
            let profile = library.profile();
            let trace = dispatch::record_allreduce(&profile, topology, BLOCK);
            let engine = SimEngine::new(profile.sim_params(nic));
            (library, trace, engine)
        })
        .collect();

    let mut header = String::from("| drop rate | jitter (ns) |");
    let mut rule = String::from("|---:|---:|");
    for library in Library::ALL {
        header.push_str(&format!(" {} (us, x) |", library.name()));
        rule.push_str("---:|");
    }
    println!("{header}");
    println!("{rule}");

    let mut points: Vec<Point> = Vec::new();
    let mut baselines = vec![0.0f64; Library::ALL.len()];
    for &rate in rates {
        for &jitter in jitters {
            let mut row = format!("| {rate} | {jitter} |");
            for (idx, (library, trace, engine)) in traces.iter().enumerate() {
                let config = perturbation(rate, jitter);
                let options = RunOptions::summary().with_perturbation(config);
                let outcome = engine.run_with(trace, options).unwrap_or_else(|e| {
                    panic!(
                        "{} at rate={rate} jitter={jitter}: {e} — the 8-deep \
                         retry budget must absorb every swept drop rate",
                        library.name()
                    )
                });
                let makespan_us = outcome.makespan / 1_000.0;
                if rate == 0.0 && jitter == 0.0 {
                    // The identity point doubles as the healthy baseline;
                    // pin that the zero-magnitude config really is one.
                    let healthy = engine
                        .run_with(trace, RunOptions::summary())
                        .expect("healthy replay");
                    assert_eq!(
                        outcome,
                        healthy,
                        "{}: zero-magnitude grid point must equal the \
                         unperturbed run exactly",
                        library.name()
                    );
                    baselines[idx] = makespan_us;
                }
                if rate >= 0.01 {
                    assert!(
                        outcome.stats.retries > 0,
                        "{} at rate={rate}: expected retransmissions",
                        library.name()
                    );
                }
                let inflation = makespan_us / baselines[idx];
                row.push_str(&format!(" {makespan_us:.1} ({inflation:.2}x) |"));
                points.push(Point {
                    library: library.name(),
                    drop_rate: rate,
                    jitter_ns: jitter,
                    makespan_us,
                    inflation,
                    retries: outcome.stats.retries,
                    retransmitted_bytes: outcome.stats.retransmitted_bytes,
                });
            }
            println!("{row}");
        }
    }

    // Headline: relative inflation at the harshest grid point (worst fabric
    // vs each library's own healthy run), plus the absolute winner there —
    // the two can disagree, and that disagreement is the figure's finding.
    println!("\nInflation at the harshest point (lower inflates less):");
    let (&worst_rate, &worst_jitter) = (
        rates.last().expect("rates"),
        jitters.last().expect("jitters"),
    );
    let mut harshest: Vec<(&'static str, f64, f64)> = points
        .iter()
        .filter(|p| p.drop_rate == worst_rate && p.jitter_ns == worst_jitter)
        .map(|p| (p.library, p.inflation, p.makespan_us))
        .collect();
    harshest.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (library, inflation, makespan_us) in &harshest {
        println!("  {library}: {inflation:.3}x ({makespan_us:.1} us absolute)");
    }
    let fastest = harshest
        .iter()
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .expect("harshest point has entries");
    println!(
        "Absolute winner at the harshest point: {} at {:.1} us.",
        fastest.0, fastest.2
    );

    let mut json = String::from("{\n  \"bench\": \"degradation\",\n  \"schema\": 1,\n");
    json.push_str(&format!(
        "  \"topology\": \"{}x{}\",\n  \"block\": {BLOCK},\n  \"seed\": {SEED},\n",
        topology.nodes(),
        topology.ppn()
    ));
    json.push_str("  \"points\": [\n");
    for (idx, p) in points.iter().enumerate() {
        let comma = if idx + 1 == points.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"library\":\"{}\",\"drop_rate\":{},\"jitter_ns\":{},\
             \"makespan_us\":{:.3},\"inflation\":{:.4},\"retries\":{},\
             \"retransmitted_bytes\":{}}}{comma}\n",
            p.library,
            p.drop_rate,
            p.jitter_ns,
            p.makespan_us,
            p.inflation,
            p.retries,
            p.retransmitted_bytes
        ));
    }
    json.push_str("  ],\n  \"harshest\": [\n");
    for (idx, (library, inflation, makespan_us)) in harshest.iter().enumerate() {
        let comma = if idx + 1 == harshest.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"library\":\"{library}\",\"inflation\":{inflation:.4},\
             \"makespan_us\":{makespan_us:.3}}}{comma}\n"
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"absolute_winner_at_harshest\": \"{}\"\n}}\n",
        fastest.0
    ));
    std::fs::write("BENCH_degradation.json", &json).expect("write BENCH_degradation.json");
    println!(
        "\nWrote BENCH_degradation.json ({} points, harshest = rate {worst_rate} x jitter {worst_jitter} ns).",
        points.len()
    );
}
