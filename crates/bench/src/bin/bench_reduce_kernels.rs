//! **BENCH-REDUCE-KERNELS**: the typed reduction kernels, measured.
//!
//! Sweeps datatype × operator × buffer size and times the two byte-level
//! reduction paths against each other on identical buffers:
//!
//! - **scalar** — `ReduceOp::apply_bytes_scalar`, the per-element
//!   decode/combine/encode reference loop;
//! - **chunked** — `ReduceOp::apply_bytes`, the production kernel that
//!   reduces `LANES`-element groups as typed slices (auto-vectorizable,
//!   with an explicitly unrolled f32/f64 Sum path).
//!
//! The headline assertion pins the point of the optimisation: the chunked
//! f32 Sum kernel must be at least 2x the scalar path at 64 KiB and above.
//! Everything lands in `BENCH_reduce_kernels.json` (schema 1), uploaded as
//! a CI artifact next to the fabric numbers.
//!
//! ```text
//! cargo run --release -p pip-mcoll-bench --bin bench_reduce_kernels
//! ```

use std::time::Instant;

use pip_mcoll_core::datatype::{Datatype, ReduceOp};

/// Buffer sizes under test, in bytes: cache-resident, the 64 KiB headline
/// point, and a memory-bound megabyte.
const SIZES: [usize; 3] = [4 * 1024, 64 * 1024, 1024 * 1024];

/// Bytes each timing sample chews through (split into repeat applications
/// of the buffer-sized kernel): large enough to time reliably, small enough
/// for a CI smoke run.
const WORK_BYTES: usize = 16 * 1024 * 1024;

/// Timing samples per cell; the median is reported.
const SAMPLES: usize = 3;

/// One measured cell of the type × op × size grid.
struct KernelPoint {
    dtype: &'static str,
    op: ReduceOp,
    bytes: usize,
    scalar_gbs: f64,
    chunked_gbs: f64,
    speedup: f64,
}

impl KernelPoint {
    fn to_json(&self) -> String {
        format!(
            "{{\"dtype\":\"{}\",\"op\":\"{}\",\"bytes\":{},\"scalar_gbs\":{:.3},\
             \"chunked_gbs\":{:.3},\"speedup\":{:.3}}}",
            self.dtype,
            self.op.name(),
            self.bytes,
            self.scalar_gbs,
            self.chunked_gbs,
            self.speedup
        )
    }
}

/// Deterministic non-degenerate inputs: small positive values so Prod stays
/// finite over thousands of repeat applications and floats never hit NaN or
/// infinity (which would put the comparison on a different hardware path).
trait BenchValue: Datatype {
    const NAME: &'static str;
    fn gen(i: usize) -> Self;
}

impl BenchValue for f32 {
    const NAME: &'static str = "f32";
    fn gen(i: usize) -> Self {
        1.0 + ((i % 64) as f32) * (1.0 / 128.0)
    }
}

impl BenchValue for f64 {
    const NAME: &'static str = "f64";
    fn gen(i: usize) -> Self {
        1.0 + ((i % 64) as f64) * (1.0 / 128.0)
    }
}

impl BenchValue for i32 {
    const NAME: &'static str = "i32";
    fn gen(i: usize) -> Self {
        (i % 251) as i32 - 125
    }
}

impl BenchValue for u64 {
    const NAME: &'static str = "u64";
    fn gen(i: usize) -> Self {
        (i % 251) as u64 + 1
    }
}

/// Median of a handful of throughput samples, each timing `iters` repeat
/// applications of `kernel` over the same pair of buffers.
fn median_gbs(
    kernel: impl Fn(&mut [u8], &[u8]),
    acc_proto: &[u8],
    other: &[u8],
    iters: usize,
) -> f64 {
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            // Fresh accumulator per sample so float magnitudes stay bounded
            // across samples (Sum/Prod drift within one sample is fine).
            let mut acc = acc_proto.to_vec();
            let start = Instant::now();
            for _ in 0..iters {
                kernel(&mut acc, other);
            }
            let secs = start.elapsed().as_secs_f64();
            std::hint::black_box(&acc);
            // Each application reads both buffers and writes one.
            (iters * acc.len()) as f64 / secs / 1e9
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[SAMPLES / 2]
}

fn bench_cell<T: BenchValue>(op: ReduceOp, bytes: usize) -> KernelPoint {
    let count = bytes / T::SIZE;
    let mut acc = vec![0u8; count * T::SIZE];
    let mut other = vec![0u8; count * T::SIZE];
    for i in 0..count {
        T::gen(i).write_le(&mut acc[i * T::SIZE..(i + 1) * T::SIZE]);
        T::gen(i + 17).write_le(&mut other[i * T::SIZE..(i + 1) * T::SIZE]);
    }
    let iters = (WORK_BYTES / bytes).max(1);

    // Warm both paths (page in the buffers, settle the branch predictors).
    {
        let mut warm = acc.clone();
        op.apply_bytes_scalar::<T>(&mut warm, &other);
        op.apply_bytes::<T>(&mut warm, &other);
    }

    let scalar_gbs = median_gbs(|a, b| op.apply_bytes_scalar::<T>(a, b), &acc, &other, iters);
    let chunked_gbs = median_gbs(|a, b| op.apply_bytes::<T>(a, b), &acc, &other, iters);

    // Sanity: the two paths must produce identical bytes (the differential
    // tests pin this exhaustively; here it guards the benchmark itself
    // against measuring two different computations).
    let mut via_scalar = acc.clone();
    let mut via_chunked = acc;
    op.apply_bytes_scalar::<T>(&mut via_scalar, &other);
    op.apply_bytes::<T>(&mut via_chunked, &other);
    assert_eq!(
        via_scalar,
        via_chunked,
        "{} {} {} B: scalar and chunked kernels disagree",
        T::NAME,
        op.name(),
        bytes
    );

    KernelPoint {
        dtype: T::NAME,
        op,
        bytes,
        scalar_gbs,
        chunked_gbs,
        speedup: chunked_gbs / scalar_gbs,
    }
}

fn bench_type<T: BenchValue>(grid: &mut Vec<KernelPoint>) {
    for op in ReduceOp::ALL {
        for bytes in SIZES {
            let point = bench_cell::<T>(op, bytes);
            println!(
                "| {} | {} | {} | {:.2} | {:.2} | {:.2}x |",
                point.dtype,
                point.op.name(),
                point.bytes,
                point.scalar_gbs,
                point.chunked_gbs,
                point.speedup
            );
            grid.push(point);
        }
    }
}

fn main() {
    println!("=== BENCH-REDUCE-KERNELS: chunked typed reduction vs per-element scalar ===\n");
    println!(
        "{} samples per cell, ~{} MiB per sample, median reported.\n",
        SAMPLES,
        WORK_BYTES / (1024 * 1024)
    );
    println!("| Type | Op | Bytes | Scalar GB/s | Chunked GB/s | Speedup |");
    println!("|---|---|---|---|---|---|");

    let mut grid: Vec<KernelPoint> = Vec::new();
    bench_type::<f32>(&mut grid);
    bench_type::<f64>(&mut grid);
    bench_type::<i32>(&mut grid);
    bench_type::<u64>(&mut grid);

    // Headline: the optimisation the chunked path exists for — f32 Sum at
    // 64 KiB and above must be at least 2x the scalar reference.
    let headline = grid
        .iter()
        .filter(|p| p.dtype == "f32" && p.op == ReduceOp::Sum && p.bytes >= 64 * 1024)
        .map(|p| p.speedup)
        .fold(f64::INFINITY, f64::min);
    println!("\nHeadline: chunked f32 Sum is >= {headline:.2}x the scalar path at 64 KiB+.");
    assert!(
        headline >= 2.0,
        "chunked f32 Sum kernel regressed below 2x the scalar path ({headline:.2}x)"
    );

    let mut json = String::from("{\n  \"bench\": \"reduce_kernels\",\n  \"schema\": 1,\n");
    json.push_str(&format!(
        "  \"samples\": {SAMPLES},\n  \"work_bytes_per_sample\": {WORK_BYTES},\n"
    ));
    json.push_str("  \"grid\": [\n");
    for (idx, point) in grid.iter().enumerate() {
        let comma = if idx + 1 == grid.len() { "" } else { "," };
        json.push_str(&format!("    {}{comma}\n", point.to_json()));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"headline\": {{\"dtype\": \"f32\", \"op\": \"MPI_SUM\", \
         \"min_bytes\": 65536, \"speedup\": {headline:.3}, \
         \"baseline\": \"apply_bytes_scalar\"}}\n"
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_reduce_kernels.json", &json).expect("write BENCH_reduce_kernels.json");
    println!(
        "\nWrote BENCH_reduce_kernels.json ({} grid points).",
        grid.len()
    );
}
