//! **Compression figure**: error-bounded lossy-compressed MPI_Allreduce —
//! bytes-on-wire and simulated makespan across the error-bound sweep, on
//! two fabrics.
//!
//! The C-Coll line of work compresses large collective payloads with an
//! error-bounded predictor codec so bandwidth-bound schedules move a
//! fraction of the raw bytes.  This figure replays that trade on the model:
//! each library's large-message Allreduce schedule is compiled once exact
//! and once per swept error bound (the plan rewrite pass fuses
//! compress/decompress into every eligible inter-node transfer and prices
//! the wire at the calibrated compressed size), then both are replayed on
//! the paper's 100 Gb/s Omni-Path testbed *and* on a 25 Gb/s commodity
//! fabric.  Reported per (fabric, library, block, bound): bytes-on-wire,
//! the reduction ratio against the exact schedule, and the makespan
//! speedup.
//!
//! Three structural findings, the first two pinned by assertions:
//!
//! * On the commodity fabric the ring-selecting Open MPI schedule cuts
//!   bytes-on-wire by >= 4x at the loose bound **and finishes faster** —
//!   at 0.32 ns/B of wire, shedding three quarters of the bytes buys more
//!   than the codec's compute costs.
//! * Tightening the bound shrinks the byte savings monotonically: each
//!   100x of bound costs quantization-code bits on every element.
//! * On the 100 Gb/s testbed the same rewrite is byte-effective but not
//!   always time-effective — the wire is fast enough that codec compute
//!   can outweigh the transfer savings.  Compression is a fabric-dependent
//!   trade, which is exactly why it is a per-call policy and not a
//!   default.
//!
//! The sweep is deterministic: the wire model compresses a fixed
//! calibration stream, so the artifact is reproducible bit-for-bit.
//!
//! ```text
//! cargo run --release -p pip-mcoll-bench --bin fig_compression            # hpdc23 scale
//! cargo run --release -p pip-mcoll-bench --bin fig_compression -- --small # CI smoke grid
//! ```

use pip_collectives::plan::Fidelity;
use pip_collectives::CollectiveKind;
use pip_mpi_model::plan::compile_cluster;
use pip_mpi_model::{compile_folded, CollectiveShape, CompressSpec, Library};
use pip_netsim::{RunOptions, SimEngine};
use pip_runtime::Topology;
use pip_transport::netcard::NicParams;

/// Bytes-on-wire threshold for this figure.  Deliberately below the
/// dispatch default (`compress_min_bytes`): the ring splits the buffer into
/// `world` chunks, and the figure wants the per-chunk transfers of the
/// swept blocks eligible so the bound sweep — not the threshold — is the
/// story.
const MIN_WIRE: usize = 256;

/// Swept end-to-end error bounds, loosest first.  `f64` payloads; the
/// per-hop codec bound is the end-to-end bound divided by the schedule's
/// worst-case hop count (`2 * (world - 1)` for the ring).
const BOUNDS: [f64; 3] = [1e-2, 1e-4, 1e-6];

struct Point {
    fabric: &'static str,
    library: &'static str,
    block: usize,
    bound: f64,
    makespan_us: f64,
    wire_bytes: usize,
    bytes_ratio: f64,
    speedup: f64,
}

/// Compile `shape` and replay it, folded when the schedule's node symmetry
/// closes (the ring does), full otherwise.  Returns (makespan_us,
/// bytes-on-wire).
fn replay(
    library: Library,
    topology: Topology,
    shape: &CollectiveShape,
    nic: NicParams,
) -> (f64, usize) {
    let profile = library.profile();
    let engine = SimEngine::new(profile.sim_params(nic));
    let outcome = if let Some(folded) = compile_folded(&profile, topology, shape, 1) {
        engine.run_folded_trace(&folded, RunOptions::summary())
    } else {
        let plan = compile_cluster(&profile, topology, shape, Fidelity::Schedule);
        engine.run_with(&plan.to_trace(1), RunOptions::summary())
    }
    .unwrap_or_else(|e| panic!("{} block {}: {e}", library.name(), shape.block));
    let wire = outcome.stats.internode_bytes + outcome.stats.retransmitted_bytes;
    (outcome.makespan / 1_000.0, wire)
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let topology = if small {
        Topology::new(16, 8)
    } else {
        Topology::new(128, 18)
    };
    let world = topology.world_size();
    // Blocks sized so the ring's `world` chunks stay 8-byte aligned and
    // big enough for NIC occupancy — not per-message latency — to dominate
    // the inter-node hop: block = world * 8 bytes * elements-per-chunk,
    // giving 8 KiB and 32 KiB ring chunks at either scale.
    let blocks: Vec<usize> = [1024usize, 4096].iter().map(|&e| world * 8 * e).collect();
    let fabrics: [(&'static str, NicParams); 2] = [
        ("omni-path-100g", NicParams::omni_path_hpdc23()),
        ("commodity-25g", NicParams::commodity_25g()),
    ];

    println!(
        "=== Compression: MPI_Allreduce f64 on {}x{}, error-bound sweep (min wire {MIN_WIRE} B) ===\n",
        topology.nodes(),
        topology.ppn()
    );

    let shape_for = |block: usize, bound: Option<f64>| CollectiveShape {
        kind: CollectiveKind::Allreduce,
        block,
        root: 0,
        elem_size: 8,
        reduce: None,
        layout: None,
        compress: bound.and_then(|b| CompressSpec::from_bound(b, MIN_WIRE).normalized_for(block)),
    };

    println!(
        "| fabric | library | block (B) | bound | wire (B) | bytes ratio | time (us) | speedup |"
    );
    println!("|---|---|---:|---:|---:|---:|---:|---:|");

    let mut points: Vec<Point> = Vec::new();
    for (fabric, nic) in fabrics {
        for library in Library::ALL {
            for &block in &blocks {
                let (exact_us, exact_wire) =
                    replay(library, topology, &shape_for(block, None), nic);
                println!(
                    "| {fabric} | {} | {block} | exact | {exact_wire} | 1.00x | {exact_us:.1} | 1.00x |",
                    library.name()
                );
                points.push(Point {
                    fabric,
                    library: library.name(),
                    block,
                    bound: 0.0,
                    makespan_us: exact_us,
                    wire_bytes: exact_wire,
                    bytes_ratio: 1.0,
                    speedup: 1.0,
                });
                for &bound in &BOUNDS {
                    let (us, wire) = replay(library, topology, &shape_for(block, Some(bound)), nic);
                    let bytes_ratio = exact_wire as f64 / wire as f64;
                    let speedup = exact_us / us;
                    println!(
                        "| {fabric} | {} | {block} | {bound:.0e} | {wire} | {bytes_ratio:.2}x | {us:.1} | {speedup:.2}x |",
                        library.name()
                    );
                    points.push(Point {
                        fabric,
                        library: library.name(),
                        block,
                        bound,
                        makespan_us: us,
                        wire_bytes: wire,
                        bytes_ratio,
                        speedup,
                    });
                }
            }
        }
    }

    // Headline + acceptance pins, on the Ring-selecting Open MPI schedule
    // (plain send/recv transfers end to end, so every inter-node ring chunk
    // is eligible) at the largest block and loosest bound, on the fabric
    // slow enough for bytes to be the bottleneck.
    let headline_block = *blocks.last().expect("blocks");
    let ring = |fabric: &str, bound: f64| {
        points
            .iter()
            .find(|p| {
                p.fabric == fabric
                    && p.library == "Open MPI"
                    && p.block == headline_block
                    && p.bound == bound
            })
            .expect("swept point")
    };
    let loose = ring("commodity-25g", BOUNDS[0]);
    assert!(
        loose.bytes_ratio >= 4.0,
        "compressed ring allreduce must cut bytes-on-wire >= 4x at bound {:.0e}, got {:.2}x",
        BOUNDS[0],
        loose.bytes_ratio
    );
    assert!(
        loose.speedup > 1.0,
        "compressed ring allreduce must beat the exact schedule on the \
         commodity fabric, got {:.2}x",
        loose.speedup
    );
    for (fabric, _) in fabrics {
        let mut last_ratio = f64::INFINITY;
        for &bound in &BOUNDS {
            let p = ring(fabric, bound);
            assert!(
                p.bytes_ratio <= last_ratio,
                "tightening the bound to {bound:.0e} must not improve the bytes ratio"
            );
            last_ratio = p.bytes_ratio;
        }
    }
    println!(
        "\nHeadline: Open MPI ring allreduce at {headline_block} B/process, bound {:.0e}, \
         commodity 25G fabric: {:.2}x fewer bytes-on-wire, {:.2}x faster than the exact \
         schedule.",
        BOUNDS[0], loose.bytes_ratio, loose.speedup
    );

    let mut json = String::from("{\n  \"bench\": \"compression\",\n  \"schema\": 1,\n");
    json.push_str(&format!(
        "  \"topology\": \"{}x{}\",\n  \"min_wire_bytes\": {MIN_WIRE},\n  \"elem\": \"f64\",\n",
        topology.nodes(),
        topology.ppn()
    ));
    json.push_str("  \"points\": [\n");
    for (idx, p) in points.iter().enumerate() {
        let comma = if idx + 1 == points.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"fabric\":\"{}\",\"library\":\"{}\",\"block\":{},\"bound\":{:e},\
             \"makespan_us\":{:.3},\"wire_bytes\":{},\"bytes_ratio\":{:.4},\
             \"speedup\":{:.4}}}{comma}\n",
            p.fabric,
            p.library,
            p.block,
            p.bound,
            p.makespan_us,
            p.wire_bytes,
            p.bytes_ratio,
            p.speedup
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"headline\": {{\"fabric\":\"commodity-25g\",\"library\":\"Open MPI\",\
         \"block\":{headline_block},\"bound\":{:e},\"bytes_ratio\":{:.4},\
         \"speedup\":{:.4}}}\n}}\n",
        BOUNDS[0], loose.bytes_ratio, loose.speedup
    ));
    std::fs::write("BENCH_compression.json", &json).expect("write BENCH_compression.json");
    println!(
        "\nWrote BENCH_compression.json ({} points across {} fabrics x {} libraries x {} blocks x {} bounds).",
        points.len(),
        fabrics.len(),
        Library::ALL.len(),
        blocks.len(),
        BOUNDS.len() + 1
    );
}
