//! **Projection figure**: MPI_Allreduce (4 KiB per process) extrapolated far
//! beyond the paper's 128-node testbed, to 10^5–10^6 ranks.
//!
//! The paper measures PiP-MColl on 2304 ranks and argues the multi-object
//! design scales because the leader fan-out keeps per-node software overhead
//! flat.  This figure runs that argument forward: each library's schedule is
//! compiled *folded* (one node's ranks plus symmetry probes — O(ppn) work,
//! independent of the node count) and replayed with
//! [`SimEngine::run_folded_trace`], so a 1,048,576-rank Allreduce simulates
//! in milliseconds without ever materializing the million-rank trace.
//!
//! Reported per scale point:
//! - predicted makespan per library (µs),
//! - multi-object speedup: PiP-MColl vs MVAPICH2, the node-aware
//!   *single-leader* baseline — the gap the multi-object design is built
//!   to hold as the node count grows,
//! - projected event count and the wall time the folded replay took, to
//!   show the sweep is CI-feasible.
//!
//! ```text
//! cargo run --release -p pip-mcoll-bench --bin fig_projection
//! ```

use std::time::Instant;

use pip_collectives::CollectiveKind;
use pip_mpi_model::{compile_folded, CollectiveShape, Library};
use pip_netsim::cluster::ClusterSpec;
use pip_netsim::{RunOptions, SimEngine};
use pip_runtime::Topology;

/// Per-process block size: the paper's medium-message Allreduce point.
const BLOCK: usize = 4096;

/// Processes per node.  Power-of-two so the Xor (recursive-doubling) fold
/// applies across the whole library grid; 16 is the nearest such count to
/// the testbed's 18.
const PPN: usize = 16;

/// Node counts to sweep.  Powers of two from the paper's testbed scale up
/// to 65536 nodes = 1,048,576 ranks.
const NODES: [usize; 6] = [128, 1024, 4096, 16384, 32768, 65536];

fn main() {
    let nic = ClusterSpec::hpdc23().nic;
    let shape = CollectiveShape {
        kind: CollectiveKind::Allreduce,
        block: BLOCK,
        root: 0,
        elem_size: 1,
        reduce: None,
        layout: None,
        compress: None,
    };

    println!("=== Projection: MPI_Allreduce {BLOCK} B/process, ppn {PPN}, folded replay ===\n");

    let mut header = String::from("| nodes | ranks |");
    let mut rule = String::from("|---:|---:|");
    for library in Library::ALL {
        header.push_str(&format!(" {} (us) |", library.name()));
        rule.push_str("---:|");
    }
    header.push_str(" MColl vs MVAPICH2 | events | wall (ms) |");
    rule.push_str("---:|---:|---:|");
    println!("{header}");
    println!("{rule}");

    let mut headline: Option<(usize, f64)> = None;
    for nodes in NODES {
        let topology = Topology::new(nodes, PPN);
        let world = topology.world_size();
        let started = Instant::now();
        let mut times: Vec<Option<f64>> = Vec::with_capacity(Library::ALL.len());
        let mut events = 0usize;
        for library in Library::ALL {
            let profile = library.profile();
            let Some(folded) = compile_folded(&profile, topology, &shape, 1) else {
                times.push(None);
                continue;
            };
            events += folded.projected_events();
            let engine = SimEngine::new(profile.sim_params(nic));
            let outcome = engine
                .run_folded_trace(&folded, RunOptions::summary())
                .unwrap_or_else(|e| {
                    panic!("{} on {nodes}x{PPN}: {e}", library.name());
                });
            times.push(Some(outcome.makespan / 1_000.0));
        }
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;

        let mut row = format!("| {nodes} | {world} |");
        for t in &times {
            match t {
                Some(us) => row.push_str(&format!(" {us:.1} |")),
                None => row.push_str(" - |"),
            }
        }
        let mcoll = times[lib_index(Library::PipMColl)];
        let single_leader = times[lib_index(Library::Mvapich2)];
        let speedup = match (mcoll, single_leader) {
            (Some(m), Some(s)) if m > 0.0 => {
                let x = s / m;
                if world >= 100_000 {
                    headline = Some((world, x));
                }
                format!("{x:.2}x")
            }
            _ => "-".to_string(),
        };
        row.push_str(&format!(" {speedup} | {events} | {wall_ms:.1} |"));
        println!("{row}");
    }

    println!();
    match headline {
        Some((world, x)) => println!(
            "Paper reference: multi-object leaders keep scaling past the testbed; \
             projected: PiP-MColl {x:.2}x vs single-leader MVAPICH2 at {world} ranks"
        ),
        None => println!(
            "Paper reference: multi-object leaders keep scaling past the testbed; \
             projected: no >=10^5-rank point folded (unexpected)"
        ),
    }
}

fn lib_index(library: Library) -> usize {
    Library::ALL
        .iter()
        .position(|&l| l == library)
        .expect("library in ALL")
}
