//! Ablation **ABL-MSGRATE** (§2 motivation): achievable per-node message
//! rate and throughput as a function of the number of concurrent sender
//! objects per node.
//!
//! This is the effect the multi-object design exploits: a single process
//! cannot saturate the Omni-Path adapter's ~97 M msg/s, but many concurrent
//! senders can.  The table prints both the analytic model and a simulated
//! burst of small messages.
//!
//! ```text
//! cargo run --release -p pip-mcoll-bench --bin abl_message_rate
//! ```

use pip_netsim::params::SimParams;
use pip_netsim::trace::{Trace, TraceOp};
use pip_netsim::SimEngine;
use pip_runtime::Topology;
use pip_transport::netcard::NicModel;

fn simulated_rate(senders: usize, messages_per_sender: usize, bytes: usize) -> f64 {
    // Two nodes; `senders` processes on node 0 each blast messages at their
    // counterpart on node 1.
    let topo = Topology::new(2, senders.max(1));
    let mut trace = Trace::empty(topo);
    for s in 0..senders {
        for m in 0..messages_per_sender {
            let dest = topo.rank_of(1, s);
            trace.push(
                s,
                TraceOp::Send {
                    dest,
                    bytes,
                    tag: m as u64,
                },
            );
            trace.push(
                dest,
                TraceOp::Recv {
                    source: s,
                    bytes,
                    tag: m as u64,
                },
            );
        }
    }
    let outcome = SimEngine::new(SimParams::default()).run(&trace).unwrap();
    let total_messages = senders * messages_per_sender;
    total_messages as f64 / (outcome.makespan / 1e9)
}

fn main() {
    let nic = NicModel::default();
    let bytes = 64;
    let messages_per_sender = 200;
    println!("=== ABL-MSGRATE: node message rate vs. concurrent sender objects (64 B) ===\n");
    println!(
        "| Senders | Model rate (M msg/s) | Simulated rate (M msg/s) | Model throughput (Gb/s) |"
    );
    println!("|---|---|---|---|");
    for senders in [1, 2, 4, 8, 12, 18, 24, 36] {
        let model_rate = nic.node_message_rate(senders, bytes) / 1e6;
        let sim_rate = simulated_rate(senders, messages_per_sender, bytes) / 1e6;
        let throughput = nic.node_throughput(senders, bytes) * 8.0 / 1e9;
        println!("| {senders} | {model_rate:.2} | {sim_rate:.2} | {throughput:.2} |");
    }
    println!();
    let single = nic.node_message_rate(1, bytes);
    let full = nic.node_message_rate(18, bytes);
    println!(
        "18 sender objects achieve {:.1}x the message rate of a single sender (adapter cap: {:.0} M msg/s).",
        full / single,
        1e9 / nic.nic_occupancy(bytes) / 1e6
    );
}
