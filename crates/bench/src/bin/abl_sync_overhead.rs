//! Ablation **ABL-SYNC**: how much of PiP-MPICH's poor showing is explained
//! by its message-size synchronization (the overhead the paper blames in
//! §3).  The binary simulates the small-message allgather with the
//! synchronization cost swept from 0 to 2 µs per message.
//!
//! ```text
//! cargo run --release -p pip-mcoll-bench --bin abl_sync_overhead
//! ```

use pip_collectives::CollectiveKind;
use pip_mcoll_bench::figures::collective_comparison;
use pip_mpi_model::{dispatch, Library};
use pip_netsim::cluster::ClusterSpec;
use pip_netsim::network::simulate;

fn main() {
    let cluster = ClusterSpec::new(32, 18);
    let topology = cluster.topology();
    let sizes = [16usize, 64, 256];
    println!(
        "=== ABL-SYNC: PiP-MPICH message-size synchronization sweep (32 nodes x 18 ppn) ===\n"
    );
    println!("| Sync per message (ns) | 16 B (us) | 64 B (us) | 256 B (us) |");
    println!("|---|---|---|---|");
    for sync in [0.0f64, 200.0, 650.0, 1000.0, 2000.0] {
        let mut profile = Library::PipMpich.profile();
        profile.per_message_sync = sync;
        let params = profile.sim_params(cluster.nic);
        let mut row = format!("| {sync:.0} |");
        for &bytes in &sizes {
            let trace = dispatch::record_allgather(&profile, topology, bytes);
            let report = simulate("pip-mpich", &trace, &params).unwrap();
            row.push_str(&format!(" {:.1} |", report.makespan_us));
        }
        println!("{row}");
    }

    // Context: the other libraries at the same sizes.
    println!("\nReference points (default profiles):\n");
    let table = collective_comparison(CollectiveKind::Allgather, cluster, &sizes);
    println!("| Library | 16 B (us) | 64 B (us) | 256 B (us) |");
    println!("|---|---|---|---|");
    for library in Library::ALL {
        let series = table.series_for(library);
        println!(
            "| {} | {:.1} | {:.1} | {:.1} |",
            library.name(),
            series.time_us[0],
            series.time_us[1],
            series.time_us[2]
        );
    }
    println!("\nWith the synchronization removed, PiP-MPICH tracks the other flat-algorithm");
    println!("libraries; with it, it falls to the back of the field — matching the paper's");
    println!("observation that the baseline is sometimes the slowest implementation.");
}
