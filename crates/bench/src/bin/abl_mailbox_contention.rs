//! Ablation **ABL-MAILBOX** (§3–4): mailbox shard count vs. message
//! throughput at the paper's intra-node scale (18 processes per node on the
//! hpdc23 testbed).
//!
//! `abl_message_rate` shows the *analytic* effect — many sender objects
//! saturate the NIC where one cannot.  This ablation shows the same effect
//! on the functional runtime: 18 live ranks hammer each other's mailboxes
//! with mixed tags, and the shard-count axis (1 → 2 → 4 → 8) turns the
//! single shared object's lock-and-scan bottleneck into independent O(1)
//! lanes.  The single-queue fabric (the pre-multi-object layout) anchors
//! the curve.
//!
//! ```text
//! cargo run --release -p pip-mcoll-bench --bin abl_mailbox_contention
//! ```

use pip_mcoll_bench::fabric_bench::{
    layout_name, rounds_for_budget, run_mailbox_workload, sweep_layouts, MAILBOX_PAYLOAD_BYTES,
};
use pip_runtime::MailboxLayout;

/// The hpdc23 testbed runs 18 processes per node; the fabric of one node is
/// what the shard count shards.
const HPDC23_PPN: usize = 18;

/// Deep enough that the single queue's unexpected-message scan dominates —
/// the regime the multi-object design targets (cf. the shallow/deep
/// crossover `bench_fabric` maps).
const OUTSTANDING: usize = 512;
const MESSAGE_BUDGET: usize = 60_000;

fn main() {
    let rounds = rounds_for_budget(HPDC23_PPN, OUTSTANDING, MESSAGE_BUDGET);
    println!(
        "=== ABL-MAILBOX: shard count vs. throughput ({HPDC23_PPN} ranks, {OUTSTANDING} outstanding, {MAILBOX_PAYLOAD_BYTES} B) ===\n"
    );
    println!("| Layout | M msg/s | Speedup vs single queue | Lock contentions | Scanned/msg |");
    println!("|---|---|---|---|---|");

    let mut json_lines = Vec::new();
    let mut single_rate = None;
    for layout in sweep_layouts() {
        let point = run_mailbox_workload(HPDC23_PPN, OUTSTANDING, rounds, layout);
        if matches!(layout, MailboxLayout::SingleQueue) {
            single_rate = Some(point.msgs_per_sec);
        }
        let speedup = point.msgs_per_sec / single_rate.expect("baseline runs first");
        println!(
            "| {} | {:.2} | {:.2}x | {} | {:.1} |",
            layout_name(layout),
            point.msgs_per_sec / 1e6,
            speedup,
            point.lock_contentions,
            point.messages_scanned as f64 / point.messages as f64
        );
        json_lines.push(format!(
            "{{\"bench\":\"abl_mailbox_contention\",\"point\":{},\"speedup_vs_single\":{:.3}}}",
            point.to_json(),
            speedup
        ));
    }

    println!("\nJSON report:");
    for line in &json_lines {
        println!("{line}");
    }
    println!(
        "\nSharding the mailbox removes both the shared lock and the unexpected-message scan — \
         the multi-object technique applied to the simulated substrate."
    );
}
