//! Regenerates **Figure 1** of the paper: MPI_Scatter with small messages
//! (16–512 B per process) on 128 nodes × 18 processes per node, comparing
//! Open MPI, Intel MPI, MVAPICH2, PiP-MPICH and PiP-MColl.
//!
//! The paper reports scaled execution time normalized to PiP-MColl, clips
//! competitors above 4×, and highlights a best speedup of 65 % over the
//! fastest competitor at 256 B.
//!
//! ```text
//! cargo run --release -p pip-mcoll-bench --bin fig1_scatter
//! ```

use pip_collectives::CollectiveKind;
use pip_mcoll_bench::figures::{collective_comparison, PAPER_SMALL_SIZES};
use pip_mcoll_bench::report::render_scaled_table;
use pip_netsim::cluster::ClusterSpec;

fn main() {
    let cluster = ClusterSpec::hpdc23();
    let table = collective_comparison(CollectiveKind::Scatter, cluster, &PAPER_SMALL_SIZES);
    println!("=== Figure 1: MPI_Scatter, small messages, 128 nodes x 18 ppn ===\n");
    println!("{}", render_scaled_table(&table));
    let (size, speedup) = table.best_speedup_vs_fastest_competitor();
    println!(
        "Paper reference: best speedup 1.65x (65%) at 256 B; reproduced: {:.2}x at {} B",
        speedup, size
    );
}
