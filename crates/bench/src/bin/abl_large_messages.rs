//! Ablation **ABL-LARGE**: the paper claims the design "also boosts
//! performance for larger messages, resulting in comprehensive improvement
//! for various message sizes."  This binary repeats the Figure 1/2
//! comparison for 1 KiB – 256 KiB per-process messages.
//!
//! ```text
//! cargo run --release -p pip-mcoll-bench --bin abl_large_messages
//! ```

use pip_collectives::CollectiveKind;
use pip_mcoll_bench::figures::{collective_comparison, LARGE_SIZES};
use pip_mcoll_bench::report::render_scaled_table;
use pip_netsim::cluster::ClusterSpec;

fn main() {
    // A fraction of the paper's node count keeps the largest traces (64 KiB
    // per process x 288 ranks) within a few seconds while preserving the
    // wide-node regime (18 processes per node).
    let cluster = ClusterSpec::new(16, 18);
    println!("=== ABL-LARGE: larger messages (16 nodes x 18 ppn) ===\n");
    for kind in [CollectiveKind::Allgather, CollectiveKind::Scatter] {
        let table = collective_comparison(kind, cluster, &LARGE_SIZES);
        println!("{}", render_scaled_table(&table));
        println!();
    }
}
