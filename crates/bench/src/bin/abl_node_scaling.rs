//! Ablation **ABL-SCALE**: scalability of the 64 B allgather as the node
//! count grows from 4 to 256 (18 processes per node throughout), comparing
//! PiP-MColl against the strongest competitor configuration at each scale.
//!
//! ```text
//! cargo run --release -p pip-mcoll-bench --bin abl_node_scaling
//! ```

use pip_collectives::CollectiveKind;
use pip_mcoll_bench::figures::collective_comparison;
use pip_mpi_model::Library;
use pip_netsim::cluster::ClusterSpec;

fn main() {
    let bytes = 64usize;
    println!("=== ABL-SCALE: MPI_Allgather, 64 B per process, 18 ppn, varying node count ===\n");
    println!("| Nodes | Ranks | PiP-MColl (us) | Best competitor (us) | Competitor | Speedup |");
    println!("|---|---|---|---|---|---|");
    for nodes in [4usize, 8, 16, 32, 64, 128, 256] {
        let cluster = ClusterSpec::new(nodes, 18);
        let table = collective_comparison(CollectiveKind::Allgather, cluster, &[bytes]);
        let mcoll = table.series_for(Library::PipMColl).time_us[0];
        let (best_lib, best_time) = Library::ALL
            .iter()
            .filter(|&&l| l != Library::PipMColl)
            .map(|&l| (l, table.series_for(l).time_us[0]))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        println!(
            "| {nodes} | {} | {mcoll:.1} | {best_time:.1} | {} | {:.2}x |",
            cluster.world_size(),
            best_lib.name(),
            best_time / mcoll
        );
    }
    println!("\nThe multi-object advantage grows with scale: more nodes mean more inter-node");
    println!("messages per collective, which a single leader cannot inject fast enough.");
}
