//! Ablation **ABL-TRANSPORT** (§1 motivation): intra-node transfer latency
//! of the four data-movement mechanisms (PiP, CMA, XPMEM, POSIX-SHMEM)
//! across message sizes, showing the system-call, page-fault and
//! double-copy overheads the paper's introduction discusses.
//!
//! ```text
//! cargo run --release -p pip-mcoll-bench --bin abl_transport_latency
//! ```

use pip_transport::cost::{IntranodeCost, IntranodeMechanism};

fn main() {
    let sizes = [16usize, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576];
    println!("=== ABL-TRANSPORT: intra-node transfer latency (warm buffers, ns) ===\n");
    print!("| Bytes |");
    for mechanism in IntranodeMechanism::ALL {
        print!(" {} |", mechanism.name());
    }
    println!();
    print!("|---|");
    for _ in IntranodeMechanism::ALL {
        print!("---|");
    }
    println!();
    for &bytes in &sizes {
        print!("| {bytes} |");
        for mechanism in IntranodeMechanism::ALL {
            let cost = IntranodeCost::defaults_for(mechanism).transfer_cost(bytes, false);
            print!(" {cost:.0} |");
        }
        println!();
    }

    println!("\nCold-buffer latency (first use: attach + page faults, ns)\n");
    print!("| Bytes |");
    for mechanism in IntranodeMechanism::ALL {
        print!(" {} |", mechanism.name());
    }
    println!();
    print!("|---|");
    for _ in IntranodeMechanism::ALL {
        print!("---|");
    }
    println!();
    for &bytes in &[64usize, 4096, 65536] {
        print!("| {bytes} |");
        for mechanism in IntranodeMechanism::ALL {
            let cost = IntranodeCost::defaults_for(mechanism).transfer_cost(bytes, true);
            print!(" {cost:.0} |");
        }
        println!();
    }

    let pip = IntranodeCost::defaults_for(IntranodeMechanism::Pip);
    let cma = IntranodeCost::defaults_for(IntranodeMechanism::Cma);
    let shm = IntranodeCost::defaults_for(IntranodeMechanism::PosixShmem);
    println!(
        "\nAt 64 B, CMA pays {:.1}x PiP's latency (system call); at 1 MiB, POSIX-SHMEM pays {:.1}x (double copy).",
        cma.transfer_cost(64, false) / pip.transfer_cost(64, false),
        shm.transfer_cost(1 << 20, false) / pip.transfer_cost(1 << 20, false)
    );
}
