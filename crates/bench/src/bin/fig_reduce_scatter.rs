//! Reduce_scatter sweep on the paper's testbed: MPI_Reduce_scatter_block
//! with small per-process blocks (16–512 B) on 128 nodes × 18 processes per
//! node, comparing Open MPI, Intel MPI, MVAPICH2, PiP-MPICH and PiP-MColl.
//!
//! The paper's chunked-ownership allreduce (§2) is exactly reduce_scatter
//! followed by allgather, so this sweep isolates the first half: the
//! multi-object chunk-ownership exchange against the classic recursive-
//! halving and ring schedules of the comparators.
//!
//! ```text
//! cargo run --release -p pip-mcoll-bench --bin fig_reduce_scatter
//! ```

use pip_collectives::CollectiveKind;
use pip_mcoll_bench::figures::{collective_comparison, PAPER_SMALL_SIZES};
use pip_mcoll_bench::report::render_scaled_table;
use pip_netsim::cluster::ClusterSpec;

fn main() {
    let cluster = ClusterSpec::hpdc23();
    let table = collective_comparison(CollectiveKind::ReduceScatter, cluster, &PAPER_SMALL_SIZES);
    println!("=== Reduce_scatter, small messages, 128 nodes x 18 ppn ===\n");
    println!("{}", render_scaled_table(&table));
    let (size, speedup) = table.best_speedup_vs_fastest_competitor();
    println!(
        "Best PiP-MColl speedup over the fastest competitor: {:.2}x at {} B",
        speedup, size
    );
}
