//! Regenerates **Figure 2** of the paper: MPI_Allgather with small messages
//! (16–512 B per process) on 128 nodes × 18 processes per node.
//!
//! The paper's headline: PiP-MColl is the fastest implementation at every
//! size and is over 4.6× as fast as the fastest competitor at 64 B, while
//! PiP-MPICH (the non-multi-object PiP baseline) is sometimes the slowest
//! implementation because of its message-size synchronization overhead.
//!
//! ```text
//! cargo run --release -p pip-mcoll-bench --bin fig2_allgather
//! ```

use pip_collectives::CollectiveKind;
use pip_mcoll_bench::figures::{collective_comparison, PAPER_SMALL_SIZES};
use pip_mcoll_bench::report::render_scaled_table;
use pip_mpi_model::Library;
use pip_netsim::cluster::ClusterSpec;

fn main() {
    let cluster = ClusterSpec::hpdc23();
    let table = collective_comparison(CollectiveKind::Allgather, cluster, &PAPER_SMALL_SIZES);
    println!("=== Figure 2: MPI_Allgather, small messages, 128 nodes x 18 ppn ===\n");
    println!("{}", render_scaled_table(&table));

    let idx_64 = table.sizes.iter().position(|&s| s == 64).unwrap();
    let fastest_other = Library::ALL
        .iter()
        .filter(|&&l| l != Library::PipMColl)
        .map(|&l| table.series_for(l).time_us[idx_64])
        .fold(f64::INFINITY, f64::min);
    let speedup_64 = fastest_other / table.series_for(Library::PipMColl).time_us[idx_64];
    println!(
        "Paper reference: over 4.6x vs the fastest competitor at 64 B; reproduced: {speedup_64:.2}x"
    );
    println!(
        "Paper reference: PiP-MPICH sometimes slowest; reproduced: slowest at {} of {} sizes",
        table.pip_mpich_worst_count(),
        table.sizes.len()
    );
}
