//! **BENCH-FABRIC**: the multi-object mailbox and zero-allocation execute
//! plane, measured (§3–4 of the paper, applied to our simulated substrate).
//!
//! Two measurements, one JSON artifact (`BENCH_fabric.json`):
//!
//! 1. **Mailbox grid** — the mixed-tag exchange of
//!    `pip_mcoll_bench::fabric_bench` swept over ranks × outstanding
//!    messages × mailbox layout (single-queue baseline and 1/2/4/8 shards).
//!    The headline number is the throughput ratio of the sharded layout
//!    over the single-queue baseline at ≥ 8 ranks — the paper's
//!    multi-object win reproduced as a wall-clock curve, not an assertion.
//! 2. **Persistent starts** — a PiP-MColl world runs `allreduce_init` /
//!    `reduce_scatter_init` and starts them repeatedly; the communicator's
//!    buffer-arena counters must show **zero further misses after the first
//!    invocation** (asserted here and pinned again in
//!    `tests/arena_steady_state.rs`): the steady state of the execute plane
//!    is allocation-free.
//!
//! ```text
//! cargo run --release -p pip-mcoll-bench --bin bench_fabric
//! ```

use pip_mcoll_bench::fabric_bench::{
    layout_name, rounds_for_budget, run_mailbox_workload, sweep_layouts, MailboxPoint,
    MAILBOX_PAYLOAD_BYTES,
};
use pip_mcoll_core::datatype::ReduceOp;
use pip_mcoll_core::world::World;
use pip_mpi_model::Library;
use pip_runtime::MailboxLayout;

/// Messages per grid point (split into rounds as needed): long enough to
/// time, short enough for a CI smoke run.
const MESSAGE_BUDGET: usize = 30_000;

const RANK_AXIS: [usize; 4] = [2, 4, 8, 16];
const OUTSTANDING_AXIS: [usize; 2] = [128, 1024];

/// The persistent-start arena measurement: start each handle once (filling
/// the pool), snapshot, start `extra_starts` more times, snapshot again.
/// Returns per-rank `(misses_after_first, misses_after_last,
/// hits_after_last)` — the first two must be equal on every rank.
fn persistent_start_counts(extra_starts: usize) -> Vec<(u64, u64, u64)> {
    World::builder()
        .nodes(2)
        .ppn(4)
        .library(Library::PipMColl)
        .run(|comm| {
            let world = comm.size();
            let mut allreduce = comm.allreduce_init(&vec![1.0f64; 128], ReduceOp::Sum);
            let rs_input: Vec<i64> = (0..(world * 16) as i64).collect();
            let mut reduce_scatter = comm.reduce_scatter_init(&rs_input, 16, ReduceOp::Sum);
            allreduce.start();
            let _ = allreduce.wait();
            reduce_scatter.start();
            let _ = reduce_scatter.wait();
            let first = comm.arena_stats();
            for _ in 0..extra_starts {
                allreduce.start();
                let _ = allreduce.wait();
                reduce_scatter.start();
                let _ = reduce_scatter.wait();
            }
            let last = comm.arena_stats();
            (first.misses, last.misses, last.hits)
        })
        .expect("persistent-start world")
}

fn main() {
    println!("=== BENCH-FABRIC: multi-object mailboxes + zero-allocation execute plane ===\n");
    println!(
        "Mixed-tag exchange, {MAILBOX_PAYLOAD_BYTES} B payloads, ~{MESSAGE_BUDGET} messages per point.\n"
    );
    println!("| Ranks | Outstanding | Layout | M msg/s | Lock contentions | Scanned/msg |");
    println!("|---|---|---|---|---|---|");

    let mut grid: Vec<MailboxPoint> = Vec::new();
    let mut speedups: Vec<(usize, usize, f64)> = Vec::new();
    for ranks in RANK_AXIS {
        for outstanding in OUTSTANDING_AXIS {
            let rounds = rounds_for_budget(ranks, outstanding, MESSAGE_BUDGET);
            let mut single_rate = None;
            let mut default_sharded_rate = None;
            for layout in sweep_layouts() {
                let point = run_mailbox_workload(ranks, outstanding, rounds, layout);
                println!(
                    "| {} | {} | {} | {:.2} | {} | {:.1} |",
                    point.ranks,
                    point.outstanding,
                    layout_name(point.layout),
                    point.msgs_per_sec / 1e6,
                    point.lock_contentions,
                    point.messages_scanned as f64 / point.messages as f64
                );
                match point.layout {
                    MailboxLayout::SingleQueue => single_rate = Some(point.msgs_per_sec),
                    MailboxLayout::Sharded { shards: 8 } => {
                        default_sharded_rate = Some(point.msgs_per_sec)
                    }
                    MailboxLayout::Sharded { .. } => {}
                }
                grid.push(point);
            }
            let speedup = default_sharded_rate.unwrap() / single_rate.unwrap();
            speedups.push((ranks, outstanding, speedup));
        }
    }

    println!("\nSharded (8) over single-queue throughput:");
    for (ranks, outstanding, speedup) in &speedups {
        println!("  {ranks} ranks x {outstanding} outstanding: {speedup:.2}x");
    }
    // The headline is the contended operating point the multi-object
    // argument is about: many ranks, deep mixed-tag backlog.  At shallow
    // backlogs matching is cheap under any layout and the two layouts tie —
    // the per-cell speedups above keep that crossover visible.
    let deep = *OUTSTANDING_AXIS.last().expect("axis non-empty");
    let headline = speedups
        .iter()
        .filter(|(ranks, outstanding, _)| *ranks >= 8 && *outstanding == deep)
        .map(|&(_, _, s)| s)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nHeadline: sharded mailboxes are >= {headline:.2}x the single-queue baseline at \
         8+ ranks with {deep} outstanding mixed-tag messages per peer."
    );

    let extra_starts = 9;
    let counts = persistent_start_counts(extra_starts);
    let (first_misses, last_misses, last_hits) = counts[0];
    for (rank, &(first, last, _)) in counts.iter().enumerate() {
        assert_eq!(
            first, last,
            "rank {rank}: persistent starts allocated after the first invocation"
        );
    }
    println!(
        "\nPersistent starts: {} extra allreduce_init + reduce_scatter_init starts performed \
         {} arena misses (all {} misses happened on the first invocation; {} steady-state hits).",
        extra_starts,
        last_misses - first_misses,
        first_misses,
        last_hits
    );

    let mut json = String::from("{\n  \"bench\": \"fabric_mailboxes\",\n  \"schema\": 1,\n");
    json.push_str(&format!(
        "  \"payload_bytes\": {MAILBOX_PAYLOAD_BYTES},\n  \"message_budget\": {MESSAGE_BUDGET},\n"
    ));
    json.push_str("  \"grid\": [\n");
    for (idx, point) in grid.iter().enumerate() {
        let comma = if idx + 1 == grid.len() { "" } else { "," };
        json.push_str(&format!("    {}{comma}\n", point.to_json()));
    }
    json.push_str("  ],\n  \"speedups_sharded8_vs_single\": [\n");
    for (idx, (ranks, outstanding, speedup)) in speedups.iter().enumerate() {
        let comma = if idx + 1 == speedups.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"ranks\":{ranks},\"outstanding\":{outstanding},\"speedup\":{speedup:.3}}}{comma}\n"
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"headline\": {{\"speedup\": {headline:.3}, \"ranks\": \"8+\", \
         \"outstanding\": {deep}, \"baseline\": \"single_queue\"}},\n"
    ));
    json.push_str(&format!(
        "  \"persistent_start\": {{\"collectives\": \"allreduce_init+reduce_scatter_init\", \
         \"extra_starts\": {extra_starts}, \"misses_after_first\": {first_misses}, \
         \"misses_after_last\": {last_misses}, \"steady_state_hits\": {last_hits}, \
         \"steady_state_allocation_free\": {}}}\n",
        first_misses == last_misses
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_fabric.json", &json).expect("write BENCH_fabric.json");
    println!("\nWrote BENCH_fabric.json ({} grid points).", grid.len());
}
