//! **BENCH-NETSIM**: throughput of the simulation plane.
//!
//! Three measurements, one JSON artifact (`BENCH_netsim.json`):
//!
//! 1. **Engine differential** — a dense multi-round chunked-pipeline
//!    exchange (each rank reduces and stages a message as a chain of chunk
//!    ops before a shifted send/recv, the shape a multi-object 4 MiB
//!    schedule lowers to) replayed by the calendar-queue engine and by the
//!    seed `BinaryHeap` engine (`run_reference`) across topology sizes up
//!    to the paper's 128×18.  The headline is events/sec; the run
//!    **asserts a ≥5× calendar-over-seed win on the hpdc23 topology** (the
//!    acceptance bar of the engine rewrite).  The seed engine pays one
//!    heap round-trip per op; the calendar engine applies chunk chains
//!    inline between scheduling points, which is where the win comes from.
//! 2. **Collective data points** — the real figure pipeline (record an
//!    allgather/allreduce schedule, simulate it) timed end to end on
//!    hpdc23, so a regression in per-data-point wall time is visible even
//!    if raw event throughput stays flat.
//! 3. **Folded replay** — a node-symmetric exchange replayed via
//!    `run_folded_trace` at paper scale and at a 16384-node projection
//!    scale, reporting *projected* events/sec (events a full replay would
//!    have processed per wall-clock second) — the quantity that makes
//!    million-rank sweeps tractable.
//!
//! ```text
//! cargo run --release -p pip-mcoll-bench --bin bench_netsim
//! ```

use std::time::Instant;

use pip_mpi_model::{dispatch, Library};
use pip_netsim::cluster::ClusterSpec;
use pip_netsim::fold::{FoldGroup, FoldedTrace};
use pip_netsim::trace::{Trace, TraceOp};
use pip_netsim::{RunOptions, SimEngine, SimParams};
use pip_runtime::Topology;

/// Replays per timed measurement; the best (fastest) replay is reported so
/// one scheduling hiccup cannot fail the assertion.
const REPLAYS: usize = 3;

/// Exchange rounds of the synthetic workload: enough events to time
/// reliably, small enough for a CI smoke run.
const ROUNDS: usize = 10;

/// Chunk ops per round.  A 4 MiB payload staged as ~43 KiB chunks — the
/// shape the multi-object reduction pipeline lowers to — alternates a
/// per-chunk reduce with a per-chunk staging copy before the send.
const CHUNKS: usize = 96;

const SUMMARY: RunOptions = RunOptions::summary();

/// A dense, valid, deterministic workload: every round each rank works
/// through a chunk pipeline (alternating reduce and staging-copy ops, the
/// per-chunk chain a multi-object schedule records), then runs a shifted
/// exchange `rank -> (rank + d) % world` with round-specific tags, with a
/// node barrier every fourth round.  The shift varies per round so messages
/// cross both the NIC and the intra-node path.
fn exchange_trace(nodes: usize, ppn: usize, rounds: usize) -> Trace {
    let topology = Topology::new(nodes, ppn);
    let world = topology.world_size();
    let mut trace = Trace::empty(topology);
    for round in 0..rounds {
        let shift = (round * ppn + 1) % world;
        let tag = round as u64;
        for rank in 0..world {
            trace.push(
                rank,
                TraceOp::Delay {
                    nanos: 40.0 + (rank % 7) as f64,
                },
            );
            for chunk in 0..CHUNKS {
                if chunk % 2 == 0 {
                    trace.push(rank, TraceOp::Reduce { bytes: 4096 });
                } else {
                    trace.push(
                        rank,
                        TraceOp::CopyIntra {
                            bytes: 4096,
                            mechanism: None,
                            first_use: false,
                        },
                    );
                }
            }
            trace.push(
                rank,
                TraceOp::Send {
                    dest: (rank + shift) % world,
                    bytes: 65536,
                    tag,
                },
            );
            trace.push(
                rank,
                TraceOp::Recv {
                    source: (rank + world - shift) % world,
                    bytes: 65536,
                    tag,
                },
            );
        }
        if round % 4 == 3 {
            for rank in 0..world {
                trace.push(rank, TraceOp::LocalBarrier);
            }
        }
    }
    trace
}

/// Best-of-N wall time of `f`, in seconds.
fn best_seconds(mut f: impl FnMut()) -> f64 {
    (0..REPLAYS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

struct GridPoint {
    nodes: usize,
    ppn: usize,
    events: usize,
    calendar_eps: f64,
    reference_eps: f64,
    speedup: f64,
}

struct CollectivePoint {
    collective: &'static str,
    record_ms: f64,
    calendar_ms: f64,
    reference_ms: f64,
}

struct FoldedPoint {
    nodes: usize,
    ppn: usize,
    projected_events: usize,
    wall_ms: f64,
    projected_eps: f64,
}

/// A rotation-symmetric node ring at every local rank, built directly as a
/// folded trace (the full per-rank trace never exists).
fn folded_ring(nodes: usize, ppn: usize, rounds: usize) -> FoldedTrace {
    let topology = Topology::new(nodes, ppn);
    let reps = (0..ppn)
        .map(|local| {
            let mut ops = Vec::with_capacity(rounds * 2);
            for round in 0..rounds {
                let next = topology.rank_of(1, local);
                let prev = topology.rank_of(nodes - 1, local);
                ops.push(TraceOp::Send {
                    dest: next,
                    bytes: 256,
                    tag: round as u64,
                });
                ops.push(TraceOp::Recv {
                    source: prev,
                    bytes: 256,
                    tag: round as u64,
                });
            }
            ops.into()
        })
        .collect();
    FoldedTrace::from_representatives(topology, FoldGroup::Rotation, reps)
        .expect("ring representatives are structurally valid")
}

fn main() {
    println!("=== BENCH-NETSIM: calendar-queue engine vs seed heap engine ===\n");
    let params = SimParams::default();
    let engine = SimEngine::new(params);

    // 1. Engine differential across topology sizes.
    println!("| Topology | Events | Calendar Mev/s | Seed Mev/s | Speedup |");
    println!("|---|---|---|---|---|");
    let mut grid: Vec<GridPoint> = Vec::new();
    for (nodes, ppn) in [(16, 8), (64, 18), (128, 18)] {
        let trace = exchange_trace(nodes, ppn, ROUNDS);
        let events: usize = trace.ranks.iter().map(|r| r.ops.len()).sum();
        let calendar = best_seconds(|| {
            engine.run_with(&trace, SUMMARY).expect("calendar replay");
        });
        let reference = best_seconds(|| {
            engine.run_reference(&trace).expect("reference replay");
        });
        let point = GridPoint {
            nodes,
            ppn,
            events,
            calendar_eps: events as f64 / calendar,
            reference_eps: events as f64 / reference,
            speedup: reference / calendar,
        };
        println!(
            "| {}x{} | {} | {:.2} | {:.2} | {:.2}x |",
            nodes,
            ppn,
            events,
            point.calendar_eps / 1e6,
            point.reference_eps / 1e6,
            point.speedup
        );
        grid.push(point);
    }
    let hpdc23 = grid.last().expect("grid has the hpdc23 point");
    assert_eq!((hpdc23.nodes, hpdc23.ppn), (128, 18));
    println!(
        "\nHeadline: {:.2}x events/sec over the seed engine on hpdc23 (128x18).",
        hpdc23.speedup
    );
    assert!(
        hpdc23.speedup >= 5.0,
        "calendar engine must be >=5x the seed engine on hpdc23, got {:.2}x",
        hpdc23.speedup
    );

    // 2. Real figure data points on hpdc23: record + simulate wall time.
    let cluster = ClusterSpec::hpdc23();
    let profile = Library::PipMColl.profile();
    let sim_params = profile.sim_params(cluster.nic);
    let sim_engine = SimEngine::new(sim_params);
    let mut collective_points: Vec<CollectivePoint> = Vec::new();
    println!("\n| Collective (hpdc23) | Record ms | Calendar ms | Seed ms |");
    println!("|---|---|---|---|");
    type Recorder<'a> = Box<dyn Fn() -> Trace + 'a>;
    let recorders: Vec<(&'static str, Recorder<'_>)> = vec![
        (
            "allgather_64B",
            Box::new(|| dispatch::record_allgather(&profile, cluster.topology(), 64)),
        ),
        (
            "allreduce_4096B",
            Box::new(|| dispatch::record_allreduce(&profile, cluster.topology(), 4096)),
        ),
    ];
    for (name, record) in recorders {
        let t0 = Instant::now();
        let trace = record();
        let record_ms = t0.elapsed().as_secs_f64() * 1e3;
        let calendar_ms = best_seconds(|| {
            sim_engine.run_with(&trace, SUMMARY).expect("calendar");
        }) * 1e3;
        let reference_ms = best_seconds(|| {
            sim_engine.run_reference(&trace).expect("reference");
        }) * 1e3;
        println!("| {name} | {record_ms:.1} | {calendar_ms:.2} | {reference_ms:.2} |");
        collective_points.push(CollectivePoint {
            collective: name,
            record_ms,
            calendar_ms,
            reference_ms,
        });
    }

    // 3. Folded replay: projected events/sec at paper and projection scale.
    let mut folded_points: Vec<FoldedPoint> = Vec::new();
    println!("\n| Folded ring | Projected events | Wall ms | Projected Mev/s |");
    println!("|---|---|---|---|");
    for (nodes, ppn) in [(128, 18), (16384, 18)] {
        let folded = folded_ring(nodes, ppn, ROUNDS * 4);
        let projected_events = folded.projected_events();
        let wall = best_seconds(|| {
            engine
                .run_folded_trace(&folded, SUMMARY)
                .expect("folded replay");
        });
        let point = FoldedPoint {
            nodes,
            ppn,
            projected_events,
            wall_ms: wall * 1e3,
            projected_eps: projected_events as f64 / wall,
        };
        println!(
            "| {}x{} | {} | {:.3} | {:.1} |",
            nodes,
            ppn,
            projected_events,
            point.wall_ms,
            point.projected_eps / 1e6
        );
        folded_points.push(point);
    }

    let mut json = String::from("{\n  \"bench\": \"netsim_engine\",\n  \"schema\": 1,\n");
    json.push_str(&format!(
        "  \"rounds\": {ROUNDS},\n  \"chunks\": {CHUNKS},\n  \"replays\": {REPLAYS},\n"
    ));
    json.push_str("  \"grid\": [\n");
    for (idx, p) in grid.iter().enumerate() {
        let comma = if idx + 1 == grid.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"nodes\":{},\"ppn\":{},\"events\":{},\"calendar_events_per_sec\":{:.0},\
             \"reference_events_per_sec\":{:.0},\"speedup\":{:.3}}}{comma}\n",
            p.nodes, p.ppn, p.events, p.calendar_eps, p.reference_eps, p.speedup
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"headline\": {{\"topology\": \"128x18\", \"speedup\": {:.3}, \
         \"events_per_sec\": {:.0}, \"required\": 5.0}},\n",
        hpdc23.speedup, hpdc23.calendar_eps
    ));
    json.push_str("  \"collective_points\": [\n");
    for (idx, p) in collective_points.iter().enumerate() {
        let comma = if idx + 1 == collective_points.len() {
            ""
        } else {
            ","
        };
        json.push_str(&format!(
            "    {{\"collective\":\"{}\",\"record_ms\":{:.2},\"calendar_ms\":{:.3},\
             \"reference_ms\":{:.3}}}{comma}\n",
            p.collective, p.record_ms, p.calendar_ms, p.reference_ms
        ));
    }
    json.push_str("  ],\n  \"folded\": [\n");
    for (idx, p) in folded_points.iter().enumerate() {
        let comma = if idx + 1 == folded_points.len() {
            ""
        } else {
            ","
        };
        json.push_str(&format!(
            "    {{\"nodes\":{},\"ppn\":{},\"projected_events\":{},\"wall_ms\":{:.3},\
             \"projected_events_per_sec\":{:.0}}}{comma}\n",
            p.nodes, p.ppn, p.projected_events, p.wall_ms, p.projected_eps
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_netsim.json", &json).expect("write BENCH_netsim.json");
    println!(
        "\nWrote BENCH_netsim.json ({} grid points, {} collective points, {} folded points).",
        grid.len(),
        collective_points.len(),
        folded_points.len()
    );
}
