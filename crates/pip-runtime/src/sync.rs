//! Intra-node synchronization primitives used by the collectives' shared
//! memory phases: a reusable sense-reversing barrier, a broadcast cell, an
//! atomic arrival counter, and a contention-accounting mutex.
//!
//! These are the userspace primitives a PiP-based MPI implementation would
//! use inside a node (no futex round-trips on the fast path, no kernel
//! objects shared across process boundaries — everything lives in the shared
//! address space).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, MutexGuard};

/// A mutex that counts how often an acquisition found the lock already held.
///
/// The paper's multi-object argument is fundamentally about lock contention
/// on a single shared communication object (§3); this wrapper is the
/// measurement surface for it.  [`ContendedMutex::lock`] first attempts an
/// uncontended `try_lock`; only when that fails does it record one
/// contention event and fall back to a blocking acquire.  Re-acquisitions
/// performed internally by a condition variable after a wait are not
/// counted — the counter reports *arrival* contention, which is what the
/// mailbox sharding is meant to eliminate.
#[derive(Debug, Default)]
pub struct ContendedMutex<T> {
    inner: Mutex<T>,
    contended: AtomicUsize,
}

impl<T> ContendedMutex<T> {
    /// Wrap `value` with a zeroed contention counter.
    pub fn new(value: T) -> Self {
        Self {
            inner: Mutex::new(value),
            contended: AtomicUsize::new(0),
        }
    }

    /// Acquire the lock, counting one contention event if it was held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let Some(guard) = self.inner.try_lock() {
            return guard;
        }
        self.contended.fetch_add(1, Ordering::Relaxed);
        self.inner.lock()
    }

    /// Number of acquisitions that found the lock held.
    pub fn contended(&self) -> usize {
        self.contended.load(Ordering::Relaxed)
    }
}

/// A reusable barrier for a fixed set of participants.
///
/// Unlike `std::sync::Barrier`, this barrier hands back the *generation*
/// number, which the collectives use to tag epoch-synchronized accesses to
/// exposed regions, and it can be cloned and stored inside per-task contexts.
#[derive(Debug, Clone)]
pub struct SenseBarrier {
    inner: Arc<BarrierInner>,
}

#[derive(Debug)]
struct BarrierInner {
    parties: usize,
    state: Mutex<BarrierState>,
    condvar: Condvar,
}

#[derive(Debug)]
struct BarrierState {
    arrived: usize,
    generation: u64,
}

impl SenseBarrier {
    /// Create a barrier for `parties` participants.
    ///
    /// # Panics
    /// Panics if `parties == 0`.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one participant");
        Self {
            inner: Arc::new(BarrierInner {
                parties,
                state: Mutex::new(BarrierState {
                    arrived: 0,
                    generation: 0,
                }),
                condvar: Condvar::new(),
            }),
        }
    }

    /// Number of participants.
    pub fn parties(&self) -> usize {
        self.inner.parties
    }

    /// Block until all participants have arrived.  Returns the generation
    /// that was completed (starting at 0 for the first barrier episode).
    pub fn wait(&self) -> u64 {
        let mut state = self.inner.state.lock();
        let generation = state.generation;
        state.arrived += 1;
        if state.arrived == self.inner.parties {
            state.arrived = 0;
            state.generation += 1;
            self.inner.condvar.notify_all();
            return generation;
        }
        while state.generation == generation {
            self.inner.condvar.wait(&mut state);
        }
        generation
    }

    /// The number of completed barrier episodes so far.
    pub fn completed_generations(&self) -> u64 {
        self.inner.state.lock().generation
    }
}

/// A single-producer broadcast cell: the root stores a value, every consumer
/// blocks until the value for the requested epoch is available.
///
/// Used by the intra-node broadcast step of the hierarchical collectives and
/// by PiP-MPICH's "message size synchronization" (the overhead the paper
/// calls out in §3).
#[derive(Debug, Clone)]
pub struct BroadcastCell<T: Clone> {
    inner: Arc<BroadcastInner<T>>,
}

#[derive(Debug)]
struct BroadcastInner<T> {
    state: Mutex<BroadcastState<T>>,
    condvar: Condvar,
}

#[derive(Debug)]
struct BroadcastState<T> {
    epoch: u64,
    value: Option<T>,
}

impl<T: Clone> Default for BroadcastCell<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> BroadcastCell<T> {
    /// Create an empty cell at epoch 0.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(BroadcastInner {
                state: Mutex::new(BroadcastState {
                    epoch: 0,
                    value: None,
                }),
                condvar: Condvar::new(),
            }),
        }
    }

    /// Publish `value` for epoch `epoch`.  Epochs must be published in
    /// increasing order by a single producer.
    pub fn publish(&self, epoch: u64, value: T) {
        let mut state = self.inner.state.lock();
        debug_assert!(
            epoch >= state.epoch,
            "epochs must be published in increasing order"
        );
        state.epoch = epoch;
        state.value = Some(value);
        self.inner.condvar.notify_all();
    }

    /// Block until a value for an epoch `>= epoch` has been published and
    /// return a clone of it.
    pub fn wait_for(&self, epoch: u64) -> T {
        let mut state = self.inner.state.lock();
        while state.value.is_none() || state.epoch < epoch {
            self.inner.condvar.wait(&mut state);
        }
        state.value.clone().expect("value present after wait")
    }
}

/// A shared monotonically increasing counter, used to count arrivals in the
/// multi-sender phases and to generate unique identifiers for exposed
/// regions created on the fly.
#[derive(Debug, Clone, Default)]
pub struct ArrivalCounter {
    inner: Arc<AtomicUsize>,
}

impl ArrivalCounter {
    /// Create a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment and return the *previous* value.
    pub fn arrive(&self) -> usize {
        self.inner.fetch_add(1, Ordering::AcqRel)
    }

    /// Current value.
    pub fn value(&self) -> usize {
        self.inner.load(Ordering::Acquire)
    }

    /// Reset to zero (only safe between synchronized phases).
    pub fn reset(&self) {
        self.inner.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn contended_mutex_counts_only_contended_acquisitions() {
        let lock = ContendedMutex::new(0u64);
        for _ in 0..10 {
            *lock.lock() += 1;
        }
        assert_eq!(lock.contended(), 0, "uncontended locking must not count");
        assert_eq!(*lock.lock(), 10);

        let lock = Arc::new(ContendedMutex::new(0u64));
        thread::scope(|scope| {
            let held = lock.lock();
            let contender = Arc::clone(&lock);
            scope.spawn(move || {
                *contender.lock() += 1;
            });
            // Give the contender time to hit the held lock.
            thread::sleep(std::time::Duration::from_millis(20));
            drop(held);
        });
        assert_eq!(lock.contended(), 1, "the blocked acquire must be counted");
    }

    #[test]
    fn barrier_synchronizes_all_threads() {
        let parties = 8;
        let barrier = SenseBarrier::new(parties);
        let counter = ArrivalCounter::new();
        thread::scope(|scope| {
            for _ in 0..parties {
                let barrier = barrier.clone();
                let counter = counter.clone();
                scope.spawn(move || {
                    counter.arrive();
                    barrier.wait();
                    // After the barrier every arrival must be visible.
                    assert_eq!(counter.value(), parties);
                });
            }
        });
        assert_eq!(barrier.completed_generations(), 1);
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let parties = 4;
        let rounds = 25;
        let barrier = SenseBarrier::new(parties);
        thread::scope(|scope| {
            for _ in 0..parties {
                let barrier = barrier.clone();
                scope.spawn(move || {
                    for round in 0..rounds {
                        let generation = barrier.wait();
                        assert_eq!(generation, round);
                    }
                });
            }
        });
        assert_eq!(barrier.completed_generations(), rounds);
    }

    #[test]
    fn single_party_barrier_never_blocks() {
        let barrier = SenseBarrier::new(1);
        for round in 0..10 {
            assert_eq!(barrier.wait(), round);
        }
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_party_barrier_panics() {
        let _ = SenseBarrier::new(0);
    }

    #[test]
    fn broadcast_cell_delivers_to_all_waiters() {
        let cell: BroadcastCell<Vec<u8>> = BroadcastCell::new();
        let consumers = 6;
        thread::scope(|scope| {
            for _ in 0..consumers {
                let cell = cell.clone();
                scope.spawn(move || {
                    let value = cell.wait_for(1);
                    assert_eq!(value, vec![7, 7, 7]);
                });
            }
            let producer = cell.clone();
            scope.spawn(move || {
                producer.publish(1, vec![7, 7, 7]);
            });
        });
    }

    #[test]
    fn broadcast_cell_epoch_ordering() {
        let cell: BroadcastCell<u32> = BroadcastCell::new();
        cell.publish(1, 10);
        cell.publish(2, 20);
        // A waiter that only needs epoch 1 sees the latest value.
        assert_eq!(cell.wait_for(1), 20);
        assert_eq!(cell.wait_for(2), 20);
    }

    #[test]
    fn arrival_counter_counts_concurrent_arrivals() {
        let counter = ArrivalCounter::new();
        thread::scope(|scope| {
            for _ in 0..16 {
                let counter = counter.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        counter.arrive();
                    }
                });
            }
        });
        assert_eq!(counter.value(), 1600);
        counter.reset();
        assert_eq!(counter.value(), 0);
    }
}
