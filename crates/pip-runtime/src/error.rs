//! Error types for the PiP runtime.

use std::fmt;

/// Convenience alias used throughout the runtime.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// Errors surfaced by the PiP runtime.
///
/// The runtime is deliberately strict: misuse that a real PiP/MPI program
/// would turn into a hang or a segfault (attaching a region that was never
/// exposed, reading past the end of an exposed buffer, a task panicking) is
/// reported as a structured error instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A topology parameter was zero or inconsistent.
    InvalidTopology(String),
    /// A rank outside `0..world_size` was referenced.
    RankOutOfRange { rank: usize, world_size: usize },
    /// A local rank outside `0..ppn` was referenced.
    LocalRankOutOfRange { local_rank: usize, ppn: usize },
    /// `attach` referenced a region name the peer never exposed (after the
    /// attach timeout expired).
    RegionNotExposed {
        owner_local_rank: usize,
        name: String,
    },
    /// A region access was out of bounds.
    RegionOutOfBounds {
        name: String,
        offset: usize,
        len: usize,
        capacity: usize,
    },
    /// A region was exposed twice with different sizes.
    RegionSizeMismatch {
        name: String,
        exposed: usize,
        requested: usize,
    },
    /// A task panicked; the payload is its panic message when available.
    TaskPanicked { rank: usize, message: String },
    /// A receive waited longer than the fabric's configured timeout.
    RecvTimeout {
        receiver: usize,
        source: usize,
        tag: u64,
    },
    /// The fabric was asked to send to/receive from a rank that has already
    /// terminated and drained its mailbox.
    PeerGone { rank: usize },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
            RuntimeError::RankOutOfRange { rank, world_size } => {
                write!(f, "rank {rank} out of range (world size {world_size})")
            }
            RuntimeError::LocalRankOutOfRange { local_rank, ppn } => {
                write!(f, "local rank {local_rank} out of range (ppn {ppn})")
            }
            RuntimeError::RegionNotExposed {
                owner_local_rank,
                name,
            } => write!(
                f,
                "region '{name}' was never exposed by local rank {owner_local_rank}"
            ),
            RuntimeError::RegionOutOfBounds {
                name,
                offset,
                len,
                capacity,
            } => write!(
                f,
                "access [{offset}, {}) out of bounds for region '{name}' of {capacity} bytes",
                offset + len
            ),
            RuntimeError::RegionSizeMismatch {
                name,
                exposed,
                requested,
            } => write!(
                f,
                "region '{name}' already exposed with {exposed} bytes, re-exposed with {requested}"
            ),
            RuntimeError::TaskPanicked { rank, message } => {
                write!(f, "task with rank {rank} panicked: {message}")
            }
            RuntimeError::RecvTimeout {
                receiver,
                source,
                tag,
            } => write!(
                f,
                "rank {receiver} timed out receiving from {source} with tag {tag}"
            ),
            RuntimeError::PeerGone { rank } => write!(f, "peer rank {rank} has terminated"),
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = RuntimeError::RegionOutOfBounds {
            name: "dest".into(),
            offset: 16,
            len: 32,
            capacity: 24,
        };
        let msg = err.to_string();
        assert!(msg.contains("dest"));
        assert!(msg.contains("24"));
        assert!(msg.contains("[16, 48)"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            RuntimeError::PeerGone { rank: 3 },
            RuntimeError::PeerGone { rank: 3 }
        );
        assert_ne!(
            RuntimeError::PeerGone { rank: 3 },
            RuntimeError::PeerGone { rank: 4 }
        );
    }

    #[test]
    fn rank_out_of_range_mentions_both_numbers() {
        let err = RuntimeError::RankOutOfRange {
            rank: 9,
            world_size: 8,
        };
        let msg = err.to_string();
        assert!(msg.contains('9') && msg.contains('8'));
    }
}
