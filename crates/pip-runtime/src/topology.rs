//! Cluster topology: the mapping between global ranks and (node, local rank).
//!
//! PiP-MColl is a *hierarchical* design, so every algorithm in the workspace
//! reasons in terms of a node id `N_id`, a local rank `R_l`, and the number of
//! processes per node `P` (the paper's notation).  [`Topology`] is the single
//! source of truth for that mapping and is shared verbatim between the thread
//! runtime, the trace recorder, and the discrete-event simulator so that the
//! correctness runs and the timed runs describe the same machine.
//!
//! Ranks are laid out node-major and block-wise, which is the layout the
//! paper assumes (the paired process of local rank `R_l` on node `N` is
//! `N * P + R_l`).

use crate::error::{Result, RuntimeError};

/// A rectangular cluster: `nodes` nodes, each running `ppn` processes.
///
/// The global rank of local rank `l` on node `n` is `n * ppn + l`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    nodes: usize,
    ppn: usize,
}

impl Topology {
    /// Create a topology of `nodes` nodes with `ppn` processes per node.
    ///
    /// # Panics
    /// Panics if either dimension is zero; use [`Topology::try_new`] for a
    /// fallible constructor.
    pub fn new(nodes: usize, ppn: usize) -> Self {
        Self::try_new(nodes, ppn).expect("topology dimensions must be non-zero")
    }

    /// Fallible constructor.
    pub fn try_new(nodes: usize, ppn: usize) -> Result<Self> {
        if nodes == 0 || ppn == 0 {
            return Err(RuntimeError::InvalidTopology(format!(
                "nodes={nodes}, ppn={ppn}: both must be >= 1"
            )));
        }
        Ok(Self { nodes, ppn })
    }

    /// A single-node topology (pure intra-node runs).
    pub fn single_node(ppn: usize) -> Self {
        Self::new(1, ppn)
    }

    /// Number of nodes in the cluster.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Processes per node (the paper's `P`).
    #[inline]
    pub fn ppn(&self) -> usize {
        self.ppn
    }

    /// Total number of ranks (`nodes * ppn`).
    #[inline]
    pub fn world_size(&self) -> usize {
        self.nodes * self.ppn
    }

    /// The node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        debug_assert!(rank < self.world_size());
        rank / self.ppn
    }

    /// The local rank of `rank` on its node (the paper's `R_l`).
    #[inline]
    pub fn local_rank_of(&self, rank: usize) -> usize {
        debug_assert!(rank < self.world_size());
        rank % self.ppn
    }

    /// The global rank of local rank `local` on node `node`.
    #[inline]
    pub fn rank_of(&self, node: usize, local: usize) -> usize {
        debug_assert!(node < self.nodes && local < self.ppn);
        node * self.ppn + local
    }

    /// The node-leader rank (local rank 0) of `node`.
    #[inline]
    pub fn node_root(&self, node: usize) -> usize {
        self.rank_of(node, 0)
    }

    /// Whether `rank` is a node leader.
    #[inline]
    pub fn is_node_root(&self, rank: usize) -> bool {
        self.local_rank_of(rank) == 0
    }

    /// Whether `a` and `b` are hosted by the same node (i.e. PiP direct
    /// memory access between them is possible).
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// All global ranks hosted by `node`, in local-rank order.
    pub fn ranks_on_node(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        let base = node * self.ppn;
        (0..self.ppn).map(move |l| base + l)
    }

    /// Validate that `rank` is inside the world.
    pub fn check_rank(&self, rank: usize) -> Result<()> {
        if rank < self.world_size() {
            Ok(())
        } else {
            Err(RuntimeError::RankOutOfRange {
                rank,
                world_size: self.world_size(),
            })
        }
    }

    /// Validate that `local` is inside a node.
    pub fn check_local_rank(&self, local: usize) -> Result<()> {
        if local < self.ppn {
            Ok(())
        } else {
            Err(RuntimeError::LocalRankOutOfRange {
                local_rank: local,
                ppn: self.ppn,
            })
        }
    }

    /// The paper's testbed: 128 nodes x 18 processes per node = 2304 ranks.
    pub fn hpdc23() -> Self {
        Self::new(128, 18)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_small() {
        let t = Topology::new(4, 3);
        assert_eq!(t.world_size(), 12);
        for rank in 0..t.world_size() {
            let n = t.node_of(rank);
            let l = t.local_rank_of(rank);
            assert_eq!(t.rank_of(n, l), rank);
        }
    }

    #[test]
    fn node_roots_are_multiples_of_ppn() {
        let t = Topology::new(5, 7);
        for node in 0..5 {
            assert_eq!(t.node_root(node), node * 7);
            assert!(t.is_node_root(t.node_root(node)));
        }
    }

    #[test]
    fn ranks_on_node_enumerates_block() {
        let t = Topology::new(3, 4);
        let ranks: Vec<_> = t.ranks_on_node(1).collect();
        assert_eq!(ranks, vec![4, 5, 6, 7]);
    }

    #[test]
    fn same_node_is_block_wise() {
        let t = Topology::new(2, 3);
        assert!(t.same_node(0, 2));
        assert!(!t.same_node(2, 3));
    }

    #[test]
    fn zero_dimensions_rejected() {
        assert!(Topology::try_new(0, 4).is_err());
        assert!(Topology::try_new(4, 0).is_err());
    }

    #[test]
    fn rank_range_checks() {
        let t = Topology::new(2, 2);
        assert!(t.check_rank(3).is_ok());
        assert!(t.check_rank(4).is_err());
        assert!(t.check_local_rank(1).is_ok());
        assert!(t.check_local_rank(2).is_err());
    }

    #[test]
    fn hpdc23_matches_paper() {
        let t = Topology::hpdc23();
        assert_eq!(t.nodes(), 128);
        assert_eq!(t.ppn(), 18);
        assert_eq!(t.world_size(), 2304);
    }

    proptest! {
        #[test]
        fn prop_round_trip(nodes in 1usize..64, ppn in 1usize..32, seed in 0usize..4096) {
            let t = Topology::new(nodes, ppn);
            let rank = seed % t.world_size();
            let n = t.node_of(rank);
            let l = t.local_rank_of(rank);
            prop_assert!(n < nodes);
            prop_assert!(l < ppn);
            prop_assert_eq!(t.rank_of(n, l), rank);
        }

        #[test]
        fn prop_node_partition_is_exact(nodes in 1usize..32, ppn in 1usize..16) {
            let t = Topology::new(nodes, ppn);
            let mut seen = vec![false; t.world_size()];
            for node in 0..nodes {
                for rank in t.ranks_on_node(node) {
                    prop_assert!(!seen[rank], "rank {} assigned to two nodes", rank);
                    seen[rank] = true;
                    prop_assert_eq!(t.node_of(rank), node);
                }
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }
}
