//! The inter-node fabric: a tag-matching mailbox standing in for the
//! interconnect (Intel Omni-Path in the paper's testbed).
//!
//! Within the correctness runtime every simulated node lives in one Rust
//! process, so the "network" is a set of per-rank inboxes with MPI-style
//! `(source, tag)` matching, an unexpected-message queue, and a configurable
//! receive timeout that turns deadlocks in a broken schedule into test
//! failures instead of hangs.
//!
//! The fabric carries *payload bytes only*; timing at scale is produced by
//! the `pip-netsim` crate from traces, not by measuring this mailbox.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::error::{Result, RuntimeError};

/// Message tag, mirroring MPI's integer tags (wide enough to encode
/// collective round numbers without collision).
pub type Tag = u64;

/// Matching specification for a receive: either an exact source or any
/// source, and either an exact tag or any tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchSpec {
    /// Required source rank, or `None` for `MPI_ANY_SOURCE`.
    pub source: Option<usize>,
    /// Required tag, or `None` for `MPI_ANY_TAG`.
    pub tag: Option<Tag>,
}

impl MatchSpec {
    /// Match a specific `(source, tag)` pair.
    pub fn exact(source: usize, tag: Tag) -> Self {
        Self {
            source: Some(source),
            tag: Some(tag),
        }
    }

    /// Match any message.
    pub fn any() -> Self {
        Self {
            source: None,
            tag: None,
        }
    }

    fn matches(&self, message: &Message) -> bool {
        self.source.is_none_or(|s| s == message.source) && self.tag.is_none_or(|t| t == message.tag)
    }
}

/// Reference-counted message payload.
///
/// A payload built from an owned `Vec<u8>` is a pointer move — the sender's
/// allocation travels through the fabric and arrives at the receiver
/// untouched, so an owned send is zero-copy end to end and a borrowed send
/// ([`Fabric::send_bytes`]) is exactly one copy.  Cloning shares the
/// allocation, which lets a single buffer back multiple in-flight messages.
#[derive(Debug, Clone)]
pub struct Payload(Arc<Vec<u8>>);

impl Payload {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Recover the owned byte vector.  Free when this handle is the only
    /// one referencing the allocation (the common case: one sender, one
    /// receiver); clones otherwise.
    pub fn into_vec(self) -> Vec<u8> {
        Arc::try_unwrap(self.0).unwrap_or_else(|shared| shared.as_ref().clone())
    }
}

impl From<Vec<u8>> for Payload {
    fn from(bytes: Vec<u8>) -> Self {
        Payload(Arc::new(bytes))
    }
}

impl std::ops::Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Payload {}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// A delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Rank of the sender.
    pub source: usize,
    /// Tag attached by the sender.
    pub tag: Tag,
    /// Payload bytes.
    pub payload: Payload,
}

/// Copy accounting for one fabric (see `tests/transport_copy_stats.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FabricStats {
    /// Messages that entered the fabric.
    pub sends: usize,
    /// Payload copies the fabric performed to take ownership of borrowed
    /// bytes ([`Fabric::send_bytes`]).  Owned sends contribute zero.
    pub payload_copies: usize,
    /// Bytes those copies moved.
    pub bytes_copied: usize,
}

#[derive(Debug, Default)]
struct Inbox {
    queue: Mutex<VecDeque<Message>>,
    condvar: Condvar,
}

/// The fabric connecting all ranks of a launched cluster.
///
/// Cloning the handle is cheap; all clones refer to the same mailboxes.
#[derive(Debug, Clone)]
pub struct Fabric {
    inner: Arc<FabricInner>,
}

#[derive(Debug)]
struct FabricInner {
    inboxes: Vec<Inbox>,
    recv_timeout: Duration,
    sends: AtomicUsize,
    payload_copies: AtomicUsize,
    bytes_copied: AtomicUsize,
}

/// Default receive timeout.  Collective schedules complete in milliseconds at
/// the scales the correctness runtime is used for, so thirty seconds only
/// triggers on genuinely broken schedules (mismatched send/recv pairs).
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(30);

impl Fabric {
    /// Create a fabric for `world_size` ranks with the default timeout.
    pub fn new(world_size: usize) -> Self {
        Self::with_timeout(world_size, DEFAULT_RECV_TIMEOUT)
    }

    /// Create a fabric with a custom receive timeout (useful in tests that
    /// deliberately provoke mismatched schedules).
    pub fn with_timeout(world_size: usize, recv_timeout: Duration) -> Self {
        let inboxes = (0..world_size).map(|_| Inbox::default()).collect();
        Self {
            inner: Arc::new(FabricInner {
                inboxes,
                recv_timeout,
                sends: AtomicUsize::new(0),
                payload_copies: AtomicUsize::new(0),
                bytes_copied: AtomicUsize::new(0),
            }),
        }
    }

    /// The receive timeout this fabric was configured with.  Pollers (the
    /// non-blocking progress engine) use it as their no-progress deadline so
    /// a broken schedule fails after the same grace period whether it is
    /// driven by blocking receives or by completion polling.
    pub fn recv_timeout(&self) -> Duration {
        self.inner.recv_timeout
    }

    /// Copy accounting since the fabric was created.
    pub fn stats(&self) -> FabricStats {
        FabricStats {
            sends: self.inner.sends.load(Ordering::Relaxed),
            payload_copies: self.inner.payload_copies.load(Ordering::Relaxed),
            bytes_copied: self.inner.bytes_copied.load(Ordering::Relaxed),
        }
    }

    /// Number of ranks attached to the fabric.
    pub fn world_size(&self) -> usize {
        self.inner.inboxes.len()
    }

    fn inbox(&self, rank: usize) -> Result<&Inbox> {
        self.inner
            .inboxes
            .get(rank)
            .ok_or(RuntimeError::RankOutOfRange {
                rank,
                world_size: self.world_size(),
            })
    }

    /// Deliver `payload` from `source` to `dest` with `tag`.
    ///
    /// Taking any `Into<Payload>` means an owned `Vec<u8>` moves through the
    /// fabric without being copied; use [`Fabric::send_bytes`] for borrowed
    /// data (one accounted copy).
    pub fn send(
        &self,
        source: usize,
        dest: usize,
        tag: Tag,
        payload: impl Into<Payload>,
    ) -> Result<()> {
        // Validate the source too so a typo'd rank id fails loudly.
        self.inbox(source)?;
        let inbox = self.inbox(dest)?;
        self.inner.sends.fetch_add(1, Ordering::Relaxed);
        let mut queue = inbox.queue.lock();
        queue.push_back(Message {
            source,
            tag,
            payload: payload.into(),
        });
        inbox.condvar.notify_all();
        Ok(())
    }

    /// As [`Fabric::send`] for borrowed bytes: performs (and accounts) the
    /// single copy needed to take ownership.
    pub fn send_bytes(&self, source: usize, dest: usize, tag: Tag, data: &[u8]) -> Result<()> {
        self.inner.payload_copies.fetch_add(1, Ordering::Relaxed);
        self.inner
            .bytes_copied
            .fetch_add(data.len(), Ordering::Relaxed);
        self.send(source, dest, tag, data.to_vec())
    }

    /// Blocking matched receive for rank `receiver`.
    ///
    /// Messages that arrived earlier but do not match stay queued (the
    /// unexpected-message queue), preserving per-(source, tag) FIFO order as
    /// MPI requires.
    pub fn recv(&self, receiver: usize, spec: MatchSpec) -> Result<Message> {
        let inbox = self.inbox(receiver)?;
        let deadline = Instant::now() + self.inner.recv_timeout;
        let mut queue = inbox.queue.lock();
        loop {
            if let Some(pos) = queue.iter().position(|m| spec.matches(m)) {
                return Ok(queue.remove(pos).expect("position is valid"));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RuntimeError::RecvTimeout {
                    receiver,
                    source: spec.source.unwrap_or(usize::MAX),
                    tag: spec.tag.unwrap_or(u64::MAX),
                });
            }
            let wait = deadline - now;
            inbox.condvar.wait_for(&mut queue, wait);
        }
    }

    /// Non-blocking matched receive: returns `Ok(None)` when nothing matches.
    pub fn try_recv(&self, receiver: usize, spec: MatchSpec) -> Result<Option<Message>> {
        let inbox = self.inbox(receiver)?;
        let mut queue = inbox.queue.lock();
        if let Some(pos) = queue.iter().position(|m| spec.matches(m)) {
            Ok(Some(queue.remove(pos).expect("position is valid")))
        } else {
            Ok(None)
        }
    }

    /// Number of messages currently queued for `rank` (matched or not).
    pub fn pending(&self, rank: usize) -> Result<usize> {
        Ok(self.inbox(rank)?.queue.lock().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_then_recv_delivers_payload() {
        let fabric = Fabric::new(4);
        fabric.send(1, 2, 7, vec![1, 2, 3]).unwrap();
        let msg = fabric.recv(2, MatchSpec::exact(1, 7)).unwrap();
        assert_eq!(msg.source, 1);
        assert_eq!(msg.tag, 7);
        assert_eq!(msg.payload, vec![1, 2, 3]);
    }

    #[test]
    fn matching_skips_unexpected_messages() {
        let fabric = Fabric::new(2);
        fabric.send(0, 1, 5, vec![5]).unwrap();
        fabric.send(0, 1, 6, vec![6]).unwrap();
        // Receive tag 6 first even though tag 5 arrived earlier.
        let msg = fabric.recv(1, MatchSpec::exact(0, 6)).unwrap();
        assert_eq!(msg.payload, vec![6]);
        // Tag 5 is still there.
        let msg = fabric.recv(1, MatchSpec::exact(0, 5)).unwrap();
        assert_eq!(msg.payload, vec![5]);
        assert_eq!(fabric.pending(1).unwrap(), 0);
    }

    #[test]
    fn fifo_order_preserved_per_source_and_tag() {
        let fabric = Fabric::new(2);
        for i in 0..10u8 {
            fabric.send(0, 1, 3, vec![i]).unwrap();
        }
        for i in 0..10u8 {
            let msg = fabric.recv(1, MatchSpec::exact(0, 3)).unwrap();
            assert_eq!(msg.payload, vec![i]);
        }
    }

    #[test]
    fn any_source_and_any_tag_match_first_message() {
        let fabric = Fabric::new(3);
        fabric.send(2, 0, 9, vec![42]).unwrap();
        let msg = fabric.recv(0, MatchSpec::any()).unwrap();
        assert_eq!(msg.source, 2);
        assert_eq!(msg.payload, vec![42]);
    }

    #[test]
    fn recv_blocks_until_message_arrives() {
        let fabric = Fabric::new(2);
        let receiver = fabric.clone();
        let handle = thread::spawn(move || receiver.recv(1, MatchSpec::exact(0, 1)).unwrap());
        thread::sleep(Duration::from_millis(20));
        fabric.send(0, 1, 1, vec![99]).unwrap();
        assert_eq!(handle.join().unwrap().payload, vec![99]);
    }

    #[test]
    fn recv_times_out_on_missing_message() {
        let fabric = Fabric::with_timeout(2, Duration::from_millis(30));
        let err = fabric.recv(0, MatchSpec::exact(1, 0)).unwrap_err();
        assert!(matches!(err, RuntimeError::RecvTimeout { receiver: 0, .. }));
    }

    #[test]
    fn try_recv_does_not_block() {
        let fabric = Fabric::new(2);
        assert!(fabric.try_recv(0, MatchSpec::any()).unwrap().is_none());
        fabric.send(1, 0, 2, vec![1]).unwrap();
        assert!(fabric.try_recv(0, MatchSpec::any()).unwrap().is_some());
    }

    #[test]
    fn owned_sends_move_without_copy_and_are_accounted() {
        let fabric = Fabric::new(2);
        let payload = vec![1u8, 2, 3];
        let ptr = payload.as_ptr();
        fabric.send(0, 1, 9, payload).unwrap();
        let msg = fabric.recv(1, MatchSpec::exact(0, 9)).unwrap();
        assert_eq!(
            msg.payload.as_ptr(),
            ptr,
            "owned payload must not be copied"
        );
        let recovered = msg.payload.into_vec();
        assert_eq!(recovered.as_ptr(), ptr, "unique payload unwraps in place");
        assert_eq!(fabric.stats().payload_copies, 0);
        fabric.send_bytes(1, 0, 3, &[7, 8]).unwrap();
        let stats = fabric.stats();
        assert_eq!(stats.sends, 2);
        assert_eq!(stats.payload_copies, 1);
        assert_eq!(stats.bytes_copied, 2);
    }

    #[test]
    fn out_of_range_ranks_are_rejected() {
        let fabric = Fabric::new(2);
        assert!(fabric.send(0, 5, 0, vec![]).is_err());
        assert!(fabric.send(5, 0, 0, vec![]).is_err());
        assert!(fabric.recv(5, MatchSpec::any()).is_err());
        assert!(fabric.pending(9).is_err());
    }

    #[test]
    fn many_concurrent_senders_one_receiver() {
        let fabric = Fabric::new(17);
        thread::scope(|scope| {
            for sender in 1..17 {
                let fabric = fabric.clone();
                scope.spawn(move || {
                    for round in 0..8u64 {
                        fabric.send(sender, 0, round, vec![sender as u8]).unwrap();
                    }
                });
            }
            let mut total = 0usize;
            for _ in 0..16 * 8 {
                let msg = fabric.recv(0, MatchSpec::any()).unwrap();
                total += msg.payload[0] as usize;
            }
            assert_eq!(total, (1..17).sum::<usize>() * 8);
        });
    }
}
