//! The inter-node fabric: a tag-matching mailbox standing in for the
//! interconnect (Intel Omni-Path in the paper's testbed).
//!
//! Within the correctness runtime every simulated node lives in one Rust
//! process, so the "network" is a set of per-rank inboxes with MPI-style
//! `(source, tag)` matching, an unexpected-message queue, and a configurable
//! receive timeout that turns deadlocks in a broken schedule into test
//! failures instead of hangs.
//!
//! ## Multi-object mailboxes
//!
//! The paper's central observation (§3–4) is that a *single* shared
//! communication object serializes every sender and receiver of a node on
//! one lock and forces receives to scan all in-flight traffic.  The fabric
//! used to be exactly that anti-pattern: one `Mutex<VecDeque>` per
//! destination rank, with O(in-flight) linear-scan matching.  The default
//! layout is now [`MailboxLayout::Sharded`]: each destination rank owns a
//! set of independently locked shards, messages are routed to a shard by
//! their `(source, tag)` pair, and within a shard each `(source, tag)` pair
//! has its own FIFO *lane*.  An exact-spec receive therefore locks only its
//! own shard and pops the head of its lane — O(1) instead of a scan — and
//! senders targeting different shards never contend.  Wildcard receives
//! (`MPI_ANY_SOURCE` / `MPI_ANY_TAG`) take a slow path that inspects every
//! lane head and picks the globally earliest arrival (messages carry an
//! arrival sequence number), preserving the single-queue fabric's
//! observable semantics exactly.
//!
//! The pre-multi-object layout is kept as [`MailboxLayout::SingleQueue`] so
//! the win is a measured curve (`bench_fabric`, `abl_mailbox_contention`)
//! and a differential-testing baseline, not an assertion.
//!
//! The fabric carries *payload bytes only*; timing at scale is produced by
//! the `pip-netsim` crate from traces, not by measuring this mailbox.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::error::{Result, RuntimeError};
use crate::sync::ContendedMutex;

/// Message tag, mirroring MPI's integer tags (wide enough to encode
/// collective round numbers without collision).
pub type Tag = u64;

/// Matching specification for a receive: either an exact source or any
/// source, and either an exact tag or any tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchSpec {
    /// Required source rank, or `None` for `MPI_ANY_SOURCE`.
    pub source: Option<usize>,
    /// Required tag, or `None` for `MPI_ANY_TAG`.
    pub tag: Option<Tag>,
}

impl MatchSpec {
    /// Match a specific `(source, tag)` pair.
    pub fn exact(source: usize, tag: Tag) -> Self {
        Self {
            source: Some(source),
            tag: Some(tag),
        }
    }

    /// Match any message.
    pub fn any() -> Self {
        Self {
            source: None,
            tag: None,
        }
    }

    fn matches(&self, message: &Message) -> bool {
        self.source.is_none_or(|s| s == message.source) && self.tag.is_none_or(|t| t == message.tag)
    }

    fn matches_key(&self, key: LaneKey) -> bool {
        self.source.is_none_or(|s| s == key.0) && self.tag.is_none_or(|t| t == key.1)
    }

    /// Whether both source and tag are pinned (the O(1) fast path).
    fn is_exact(&self) -> bool {
        self.source.is_some() && self.tag.is_some()
    }
}

/// Reference-counted message payload.
///
/// A payload built from an owned `Vec<u8>` is a pointer move — the sender's
/// allocation travels through the fabric and arrives at the receiver
/// untouched, so an owned send is zero-copy end to end and a borrowed send
/// ([`Fabric::send_bytes`]) is exactly one copy.  Cloning shares the
/// allocation, which lets a single buffer back multiple in-flight messages
/// ([`Fabric::send_payload`] forwards a received payload without any copy at
/// all).
#[derive(Debug, Clone)]
pub struct Payload(Arc<Vec<u8>>);

impl Payload {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Recover the owned byte vector.  Free when this handle is the only
    /// one referencing the allocation (the common case: one sender, one
    /// receiver); clones otherwise.
    pub fn into_vec(self) -> Vec<u8> {
        Arc::try_unwrap(self.0).unwrap_or_else(|shared| shared.as_ref().clone())
    }
}

impl From<Vec<u8>> for Payload {
    fn from(bytes: Vec<u8>) -> Self {
        Payload(Arc::new(bytes))
    }
}

impl std::ops::Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Payload {}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// A delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Rank of the sender.
    pub source: usize,
    /// Tag attached by the sender.
    pub tag: Tag,
    /// Payload bytes.
    pub payload: Payload,
}

/// How a rank's inbox is organized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MailboxLayout {
    /// One FIFO queue per destination rank under a single lock, with
    /// linear-scan `(source, tag)` matching — the shared-single-object
    /// anti-pattern the paper argues against, kept as the benchmark and
    /// differential-test baseline.
    SingleQueue,
    /// The multi-object layout: `shards` independently locked mailboxes per
    /// destination rank, each holding per-`(source, tag)` FIFO lanes.
    Sharded {
        /// Number of mailbox shards per destination rank (must be ≥ 1).
        shards: usize,
    },
}

/// Default shard count for [`MailboxLayout::Sharded`]: enough that the
/// senders of a paper-scale node (18 processes) rarely collide on a shard
/// lock, small enough that wildcard scans stay cheap.
pub const DEFAULT_MAILBOX_SHARDS: usize = 8;

impl Default for MailboxLayout {
    fn default() -> Self {
        MailboxLayout::Sharded {
            shards: DEFAULT_MAILBOX_SHARDS,
        }
    }
}

/// Copy, matching and contention accounting for one fabric (see
/// `tests/transport_copy_stats.rs` and `bench_fabric`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FabricStats {
    /// Messages that entered the fabric.
    pub sends: usize,
    /// Payload copies the fabric performed to take ownership of borrowed
    /// bytes ([`Fabric::send_bytes`]).  Owned and forwarded sends contribute
    /// zero.
    pub payload_copies: usize,
    /// Bytes those copies moved.
    pub bytes_copied: usize,
    /// Completed receives whose spec pinned both source and tag (the O(1)
    /// lane-pop path under the sharded layout).
    pub exact_recvs: usize,
    /// Completed receives with a source or tag wildcard (the scan path).
    pub wildcard_recvs: usize,
    /// Queue entries (single-queue layout) or lane heads (sharded layout)
    /// examined while matching receives — the measure of how much in-flight
    /// traffic receivers had to wade through.
    pub messages_scanned: usize,
    /// Mailbox lock acquisitions that found the lock already held, summed
    /// over every inbox (and every shard of every inbox).  The quantity the
    /// multi-object sharding drives toward zero.
    pub lock_contentions: usize,
}

/// A queued message plus its fabric-wide arrival sequence number (used to
/// restore global arrival order across shards for wildcard receives).
#[derive(Debug)]
struct QueueEntry {
    seq: u64,
    message: Message,
}

type LaneKey = (usize, Tag);

/// Empty lane queues a shard keeps around for reuse.  Collective tags are
/// unique per invocation, so lanes come and go constantly; recycling their
/// backing allocations keeps the per-message cost flat.
const SPARE_LANES_PER_SHARD: usize = 64;

/// Per-(source, tag) FIFO lanes of one mailbox shard, plus the recycling
/// pool for emptied lanes.
#[derive(Debug, Default)]
struct ShardState {
    lanes: HashMap<LaneKey, VecDeque<QueueEntry>>,
    spare: Vec<VecDeque<QueueEntry>>,
}

impl ShardState {
    fn push(&mut self, key: LaneKey, entry: QueueEntry) {
        let spare = &mut self.spare;
        self.lanes
            .entry(key)
            .or_insert_with(|| spare.pop().unwrap_or_default())
            .push_back(entry);
    }

    /// Pop the head of lane `key`, retiring the lane once empty so the map
    /// does not grow with the (unbounded) set of tags ever used.
    fn pop_lane(&mut self, key: LaneKey) -> Option<QueueEntry> {
        let lane = self.lanes.get_mut(&key)?;
        let entry = lane.pop_front();
        if lane.is_empty() {
            let lane = self.lanes.remove(&key).expect("lane exists");
            if self.spare.len() < SPARE_LANES_PER_SHARD {
                self.spare.push(lane);
            }
        }
        entry
    }
}

/// One independently locked mailbox shard.
#[derive(Debug, Default)]
struct Shard {
    state: ContendedMutex<ShardState>,
    condvar: Condvar,
}

/// The multi-object inbox of one destination rank.
#[derive(Debug)]
struct ShardedInbox {
    shards: Box<[Shard]>,
    /// Fabric-wide arrival stamper for this inbox.
    next_seq: AtomicU64,
    /// Number of receivers currently blocked on a wildcard spec; senders
    /// only touch the (shared) epoch lock when this is non-zero, so the
    /// exact-match fast path never serializes on it.
    wildcard_waiters: AtomicUsize,
    /// Arrival epoch for wildcard waiters (bumped per send while waiters
    /// exist).
    epoch: Mutex<u64>,
    epoch_condvar: Condvar,
}

impl ShardedInbox {
    fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            next_seq: AtomicU64::new(0),
            wildcard_waiters: AtomicUsize::new(0),
            epoch: Mutex::new(0),
            epoch_condvar: Condvar::new(),
        }
    }

    /// The shard a `(source, tag)` lane lives in.  Any deterministic
    /// function works for correctness (a lane never spans shards); mixing
    /// both components spreads a collective's per-round tags and its
    /// many sources across the shard set.
    fn shard_for(&self, source: usize, tag: Tag) -> &Shard {
        let mut h = (source as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= tag.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        h ^= h >> 29;
        &self.shards[(h % self.shards.len() as u64) as usize]
    }
}

/// Layout-specific inbox state.
#[derive(Debug)]
enum Inbox {
    Single {
        queue: ContendedMutex<VecDeque<QueueEntry>>,
        condvar: Condvar,
    },
    Sharded(ShardedInbox),
}

impl Inbox {
    fn new(layout: MailboxLayout) -> Self {
        match layout {
            MailboxLayout::SingleQueue => Inbox::Single {
                queue: ContendedMutex::new(VecDeque::new()),
                condvar: Condvar::new(),
            },
            MailboxLayout::Sharded { shards } => Inbox::Sharded(ShardedInbox::new(shards)),
        }
    }

    fn lock_contentions(&self) -> usize {
        match self {
            Inbox::Single { queue, .. } => queue.contended(),
            Inbox::Sharded(inbox) => inbox
                .shards
                .iter()
                .map(|shard| shard.state.contended())
                .sum(),
        }
    }

    fn pending(&self) -> usize {
        match self {
            Inbox::Single { queue, .. } => queue.lock().len(),
            Inbox::Sharded(inbox) => inbox
                .shards
                .iter()
                .map(|shard| {
                    shard
                        .state
                        .lock()
                        .lanes
                        .values()
                        .map(VecDeque::len)
                        .sum::<usize>()
                })
                .sum(),
        }
    }
}

/// The fabric connecting all ranks of a launched cluster.
///
/// Cloning the handle is cheap; all clones refer to the same mailboxes.
#[derive(Debug, Clone)]
pub struct Fabric {
    inner: Arc<FabricInner>,
}

#[derive(Debug)]
struct FabricInner {
    inboxes: Vec<Inbox>,
    layout: MailboxLayout,
    recv_timeout: Duration,
    sends: AtomicUsize,
    payload_copies: AtomicUsize,
    bytes_copied: AtomicUsize,
    exact_recvs: AtomicUsize,
    wildcard_recvs: AtomicUsize,
    messages_scanned: AtomicUsize,
}

/// Default receive timeout.  Collective schedules complete in milliseconds at
/// the scales the correctness runtime is used for, so thirty seconds only
/// triggers on genuinely broken schedules (mismatched send/recv pairs).
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(30);

impl Fabric {
    /// Create a fabric for `world_size` ranks with the default (sharded)
    /// mailbox layout and timeout.
    pub fn new(world_size: usize) -> Self {
        Self::with_layout(world_size, MailboxLayout::default(), DEFAULT_RECV_TIMEOUT)
    }

    /// Create a fabric with a custom receive timeout (useful in tests that
    /// deliberately provoke mismatched schedules).
    pub fn with_timeout(world_size: usize, recv_timeout: Duration) -> Self {
        Self::with_layout(world_size, MailboxLayout::default(), recv_timeout)
    }

    /// Create a fabric with an explicit mailbox layout — the knob the
    /// multi-object benchmarks sweep.
    ///
    /// # Panics
    ///
    /// Panics when a sharded layout declares zero shards.
    pub fn with_layout(world_size: usize, layout: MailboxLayout, recv_timeout: Duration) -> Self {
        if let MailboxLayout::Sharded { shards } = layout {
            assert!(shards > 0, "a sharded mailbox needs at least one shard");
        }
        let inboxes = (0..world_size).map(|_| Inbox::new(layout)).collect();
        Self {
            inner: Arc::new(FabricInner {
                inboxes,
                layout,
                recv_timeout,
                sends: AtomicUsize::new(0),
                payload_copies: AtomicUsize::new(0),
                bytes_copied: AtomicUsize::new(0),
                exact_recvs: AtomicUsize::new(0),
                wildcard_recvs: AtomicUsize::new(0),
                messages_scanned: AtomicUsize::new(0),
            }),
        }
    }

    /// The mailbox layout this fabric was created with.
    pub fn layout(&self) -> MailboxLayout {
        self.inner.layout
    }

    /// The receive timeout this fabric was configured with.  Pollers (the
    /// non-blocking progress engine) use it as their no-progress deadline so
    /// a broken schedule fails after the same grace period whether it is
    /// driven by blocking receives or by completion polling.
    pub fn recv_timeout(&self) -> Duration {
        self.inner.recv_timeout
    }

    /// Copy, matching and contention accounting since the fabric was
    /// created.
    pub fn stats(&self) -> FabricStats {
        FabricStats {
            sends: self.inner.sends.load(Ordering::Relaxed),
            payload_copies: self.inner.payload_copies.load(Ordering::Relaxed),
            bytes_copied: self.inner.bytes_copied.load(Ordering::Relaxed),
            exact_recvs: self.inner.exact_recvs.load(Ordering::Relaxed),
            wildcard_recvs: self.inner.wildcard_recvs.load(Ordering::Relaxed),
            messages_scanned: self.inner.messages_scanned.load(Ordering::Relaxed),
            lock_contentions: self.inner.inboxes.iter().map(Inbox::lock_contentions).sum(),
        }
    }

    /// Number of ranks attached to the fabric.
    pub fn world_size(&self) -> usize {
        self.inner.inboxes.len()
    }

    fn inbox(&self, rank: usize) -> Result<&Inbox> {
        self.inner
            .inboxes
            .get(rank)
            .ok_or(RuntimeError::RankOutOfRange {
                rank,
                world_size: self.world_size(),
            })
    }

    /// Deliver `payload` from `source` to `dest` with `tag`.
    ///
    /// Taking any `Into<Payload>` means an owned `Vec<u8>` (or an existing
    /// [`Payload`]) moves through the fabric without being copied; use
    /// [`Fabric::send_bytes`] for borrowed data (one accounted copy).
    pub fn send(
        &self,
        source: usize,
        dest: usize,
        tag: Tag,
        payload: impl Into<Payload>,
    ) -> Result<()> {
        // Validate the source too so a typo'd rank id fails loudly.
        self.inbox(source)?;
        let inbox = self.inbox(dest)?;
        self.inner.sends.fetch_add(1, Ordering::Relaxed);
        let message = Message {
            source,
            tag,
            payload: payload.into(),
        };
        match inbox {
            Inbox::Single { queue, condvar } => {
                let mut queue = queue.lock();
                // The single queue needs no arrival stamp (its order *is*
                // arrival order), but the entry type is shared.
                queue.push_back(QueueEntry { seq: 0, message });
                condvar.notify_all();
            }
            Inbox::Sharded(sharded) => {
                let seq = sharded.next_seq.fetch_add(1, Ordering::Relaxed);
                let shard = sharded.shard_for(source, tag);
                {
                    let mut state = shard.state.lock();
                    state.push((source, tag), QueueEntry { seq, message });
                }
                shard.condvar.notify_all();
                // Only wake the (rare) wildcard path when someone is on it;
                // the common exact-match traffic never touches this lock.
                if sharded.wildcard_waiters.load(Ordering::SeqCst) > 0 {
                    let mut epoch = sharded.epoch.lock();
                    *epoch += 1;
                    sharded.epoch_condvar.notify_all();
                }
            }
        }
        Ok(())
    }

    /// As [`Fabric::send`] for borrowed bytes: performs (and accounts) the
    /// single copy needed to take ownership.
    pub fn send_bytes(&self, source: usize, dest: usize, tag: Tag, data: &[u8]) -> Result<()> {
        self.inner.payload_copies.fetch_add(1, Ordering::Relaxed);
        self.inner
            .bytes_copied
            .fetch_add(data.len(), Ordering::Relaxed);
        self.send(source, dest, tag, data.to_vec())
    }

    /// Forward an existing [`Payload`] from `source` to `dest` with `tag`
    /// without copying: the receiver shares the sender's allocation.
    ///
    /// This is the API for relaying a received message (clone its payload
    /// handle and pass it here) or fanning one buffer out to several
    /// destinations — zero accounted copies either way, the PiP "pass a
    /// pointer, not the bytes" property applied to the fabric.
    pub fn send_payload(
        &self,
        source: usize,
        dest: usize,
        tag: Tag,
        payload: Payload,
    ) -> Result<()> {
        self.send(source, dest, tag, payload)
    }

    fn timeout_error(&self, receiver: usize, spec: MatchSpec) -> RuntimeError {
        RuntimeError::RecvTimeout {
            receiver,
            source: spec.source.unwrap_or(usize::MAX),
            tag: spec.tag.unwrap_or(u64::MAX),
        }
    }

    /// Blocking matched receive for rank `receiver`.
    ///
    /// Messages that arrived earlier but do not match stay queued (the
    /// unexpected-message queue), preserving per-(source, tag) FIFO order as
    /// MPI requires.  Wildcard specs match the earliest arrival across all
    /// mailbox shards, exactly as the single-queue layout would.
    pub fn recv(&self, receiver: usize, spec: MatchSpec) -> Result<Message> {
        let inbox = self.inbox(receiver)?;
        let deadline = Instant::now() + self.inner.recv_timeout;
        match inbox {
            Inbox::Single { queue, condvar } => {
                let mut queue = queue.lock();
                loop {
                    if let Some(message) = self.match_single(&mut queue, spec) {
                        return Ok(message);
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(self.timeout_error(receiver, spec));
                    }
                    condvar.wait_for(&mut queue, deadline - now);
                }
            }
            Inbox::Sharded(sharded) => {
                if spec.is_exact() {
                    self.recv_exact(sharded, receiver, spec, deadline)
                } else {
                    self.recv_wildcard(sharded, receiver, spec, deadline)
                }
            }
        }
    }

    /// Non-blocking matched receive: returns `Ok(None)` when nothing matches.
    pub fn try_recv(&self, receiver: usize, spec: MatchSpec) -> Result<Option<Message>> {
        let inbox = self.inbox(receiver)?;
        match inbox {
            Inbox::Single { queue, .. } => Ok(self.match_single(&mut queue.lock(), spec)),
            Inbox::Sharded(sharded) => {
                if spec.is_exact() {
                    let source = spec.source.expect("exact spec");
                    let tag = spec.tag.expect("exact spec");
                    let shard = sharded.shard_for(source, tag);
                    let mut state = shard.state.lock();
                    Ok(self.take_exact(&mut state, source, tag))
                } else {
                    Ok(self.scan_shards(sharded, spec))
                }
            }
        }
    }

    /// Number of messages currently queued for `rank` (matched or not).
    pub fn pending(&self, rank: usize) -> Result<usize> {
        Ok(self.inbox(rank)?.pending())
    }

    /// Linear-scan match against the single-queue layout (also the
    /// scanned-messages accounting for the baseline).
    fn match_single(&self, queue: &mut VecDeque<QueueEntry>, spec: MatchSpec) -> Option<Message> {
        let pos = queue.iter().position(|entry| spec.matches(&entry.message));
        let scanned = pos.map_or(queue.len(), |p| p + 1);
        self.inner
            .messages_scanned
            .fetch_add(scanned, Ordering::Relaxed);
        let message = queue.remove(pos?).expect("position is valid").message;
        self.note_recv(spec);
        Some(message)
    }

    fn note_recv(&self, spec: MatchSpec) {
        let counter = if spec.is_exact() {
            &self.inner.exact_recvs
        } else {
            &self.inner.wildcard_recvs
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// O(1) lane pop for a fully pinned spec (caller holds the shard lock).
    fn take_exact(&self, state: &mut ShardState, source: usize, tag: Tag) -> Option<Message> {
        let entry = state.pop_lane((source, tag))?;
        self.inner.messages_scanned.fetch_add(1, Ordering::Relaxed);
        self.note_recv(MatchSpec::exact(source, tag));
        Some(entry.message)
    }

    /// Blocking exact-spec receive: waits on its own shard only.
    fn recv_exact(
        &self,
        inbox: &ShardedInbox,
        receiver: usize,
        spec: MatchSpec,
        deadline: Instant,
    ) -> Result<Message> {
        let source = spec.source.expect("exact spec");
        let tag = spec.tag.expect("exact spec");
        let shard = inbox.shard_for(source, tag);
        let mut state = shard.state.lock();
        loop {
            if let Some(message) = self.take_exact(&mut state, source, tag) {
                return Ok(message);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(self.timeout_error(receiver, spec));
            }
            shard.condvar.wait_for(&mut state, deadline - now);
        }
    }

    /// Blocking wildcard receive: scan all shards, sleep on the arrival
    /// epoch between fruitless scans.
    fn recv_wildcard(
        &self,
        inbox: &ShardedInbox,
        receiver: usize,
        spec: MatchSpec,
        deadline: Instant,
    ) -> Result<Message> {
        // Registering *before* the first scan closes the race with senders:
        // a sender either observes the registration (and bumps the epoch) or
        // finished its push before our scan takes the shard locks.
        inbox.wildcard_waiters.fetch_add(1, Ordering::SeqCst);
        let result = loop {
            let seen = *inbox.epoch.lock();
            if let Some(message) = self.scan_shards(inbox, spec) {
                break Ok(message);
            }
            let now = Instant::now();
            if now >= deadline {
                break Err(self.timeout_error(receiver, spec));
            }
            let mut epoch = inbox.epoch.lock();
            if *epoch == seen {
                inbox.epoch_condvar.wait_for(&mut epoch, deadline - now);
            }
        };
        inbox.wildcard_waiters.fetch_sub(1, Ordering::SeqCst);
        result
    }

    /// Inspect every lane head across all shards and pop the matching
    /// message with the earliest arrival stamp.  Shard locks are taken in
    /// index order and held together so the pop is atomic with the scan.
    fn scan_shards(&self, inbox: &ShardedInbox, spec: MatchSpec) -> Option<Message> {
        let mut guards: Vec<_> = inbox
            .shards
            .iter()
            .map(|shard| shard.state.lock())
            .collect();
        let mut scanned = 0usize;
        let mut best: Option<(u64, usize, LaneKey)> = None;
        for (idx, state) in guards.iter().enumerate() {
            for (&key, lane) in state.lanes.iter() {
                if !spec.matches_key(key) {
                    continue;
                }
                scanned += 1;
                // Lane heads suffice: deeper entries of a matching lane are
                // strictly later arrivals of the same (source, tag).
                let head = lane.front().expect("lanes are retired when empty");
                if best.is_none_or(|(seq, _, _)| head.seq < seq) {
                    best = Some((head.seq, idx, key));
                }
            }
        }
        self.inner
            .messages_scanned
            .fetch_add(scanned, Ordering::Relaxed);
        let (_, idx, key) = best?;
        let entry = guards[idx].pop_lane(key).expect("winning lane has a head");
        self.note_recv(spec);
        Some(entry.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    /// The layouts every semantics test must hold under.
    fn layouts() -> [MailboxLayout; 3] {
        [
            MailboxLayout::SingleQueue,
            MailboxLayout::Sharded { shards: 1 },
            MailboxLayout::Sharded { shards: 8 },
        ]
    }

    fn fabric_with(layout: MailboxLayout, world: usize) -> Fabric {
        Fabric::with_layout(world, layout, DEFAULT_RECV_TIMEOUT)
    }

    #[test]
    fn send_then_recv_delivers_payload() {
        for layout in layouts() {
            let fabric = fabric_with(layout, 4);
            fabric.send(1, 2, 7, vec![1, 2, 3]).unwrap();
            let msg = fabric.recv(2, MatchSpec::exact(1, 7)).unwrap();
            assert_eq!(msg.source, 1);
            assert_eq!(msg.tag, 7);
            assert_eq!(msg.payload, vec![1, 2, 3]);
        }
    }

    #[test]
    fn matching_skips_unexpected_messages() {
        for layout in layouts() {
            let fabric = fabric_with(layout, 2);
            fabric.send(0, 1, 5, vec![5]).unwrap();
            fabric.send(0, 1, 6, vec![6]).unwrap();
            // Receive tag 6 first even though tag 5 arrived earlier.
            let msg = fabric.recv(1, MatchSpec::exact(0, 6)).unwrap();
            assert_eq!(msg.payload, vec![6]);
            // Tag 5 is still there.
            let msg = fabric.recv(1, MatchSpec::exact(0, 5)).unwrap();
            assert_eq!(msg.payload, vec![5]);
            assert_eq!(fabric.pending(1).unwrap(), 0);
        }
    }

    #[test]
    fn fifo_order_preserved_per_source_and_tag() {
        for layout in layouts() {
            let fabric = fabric_with(layout, 2);
            for i in 0..10u8 {
                fabric.send(0, 1, 3, vec![i]).unwrap();
            }
            for i in 0..10u8 {
                let msg = fabric.recv(1, MatchSpec::exact(0, 3)).unwrap();
                assert_eq!(msg.payload, vec![i]);
            }
        }
    }

    #[test]
    fn any_source_and_any_tag_match_first_message() {
        for layout in layouts() {
            let fabric = fabric_with(layout, 3);
            fabric.send(2, 0, 9, vec![42]).unwrap();
            let msg = fabric.recv(0, MatchSpec::any()).unwrap();
            assert_eq!(msg.source, 2);
            assert_eq!(msg.payload, vec![42]);
        }
    }

    /// Wildcard receives observe global arrival order even when the lanes
    /// involved hash to different shards — the arrival stamp restores the
    /// single-queue fabric's semantics across the shard set.
    #[test]
    fn wildcard_receives_follow_arrival_order_across_shards() {
        for layout in layouts() {
            let fabric = fabric_with(layout, 3);
            // Distinct (source, tag) pairs so every message sits in its own
            // lane, interleaved so lane order and arrival order differ.
            fabric.send(1, 0, 10, vec![0]).unwrap();
            fabric.send(2, 0, 3, vec![1]).unwrap();
            fabric.send(1, 0, 77, vec![2]).unwrap();
            fabric.send(2, 0, 51, vec![3]).unwrap();
            for expected in 0..4u8 {
                let msg = fabric.recv(0, MatchSpec::any()).unwrap();
                assert_eq!(
                    msg.payload,
                    vec![expected],
                    "{layout:?} broke arrival order"
                );
            }
        }
    }

    /// A source-only wildcard picks that source's earliest message across
    /// all tag lanes, and a tag-only wildcard that tag's earliest across all
    /// sources.
    #[test]
    fn partial_wildcards_match_earliest_across_lanes() {
        for layout in layouts() {
            let fabric = fabric_with(layout, 3);
            fabric.send(1, 0, 8, vec![10]).unwrap();
            fabric.send(2, 0, 8, vec![20]).unwrap();
            fabric.send(1, 0, 9, vec![11]).unwrap();
            let from_1 = MatchSpec {
                source: Some(1),
                tag: None,
            };
            assert_eq!(fabric.recv(0, from_1).unwrap().payload, vec![10]);
            let tag_8 = MatchSpec {
                source: None,
                tag: Some(8),
            };
            assert_eq!(fabric.recv(0, tag_8).unwrap().payload, vec![20]);
            assert_eq!(fabric.recv(0, from_1).unwrap().payload, vec![11]);
            assert_eq!(fabric.pending(0).unwrap(), 0);
        }
    }

    #[test]
    fn recv_blocks_until_message_arrives() {
        for layout in layouts() {
            let fabric = fabric_with(layout, 2);
            let receiver = fabric.clone();
            let handle = thread::spawn(move || receiver.recv(1, MatchSpec::exact(0, 1)).unwrap());
            thread::sleep(Duration::from_millis(20));
            fabric.send(0, 1, 1, vec![99]).unwrap();
            assert_eq!(handle.join().unwrap().payload, vec![99]);
        }
    }

    #[test]
    fn wildcard_recv_blocks_until_message_arrives() {
        for layout in layouts() {
            let fabric = fabric_with(layout, 2);
            let receiver = fabric.clone();
            let handle = thread::spawn(move || receiver.recv(1, MatchSpec::any()).unwrap());
            thread::sleep(Duration::from_millis(20));
            fabric.send(0, 1, 1, vec![98]).unwrap();
            assert_eq!(handle.join().unwrap().payload, vec![98]);
        }
    }

    #[test]
    fn recv_times_out_on_missing_message() {
        for layout in layouts() {
            let fabric = Fabric::with_layout(2, layout, Duration::from_millis(30));
            let err = fabric.recv(0, MatchSpec::exact(1, 0)).unwrap_err();
            assert!(matches!(err, RuntimeError::RecvTimeout { receiver: 0, .. }));
            let err = fabric.recv(0, MatchSpec::any()).unwrap_err();
            assert!(matches!(err, RuntimeError::RecvTimeout { receiver: 0, .. }));
        }
    }

    #[test]
    fn try_recv_does_not_block() {
        for layout in layouts() {
            let fabric = fabric_with(layout, 2);
            assert!(fabric.try_recv(0, MatchSpec::any()).unwrap().is_none());
            fabric.send(1, 0, 2, vec![1]).unwrap();
            assert!(fabric
                .try_recv(0, MatchSpec::exact(1, 2))
                .unwrap()
                .is_some());
            fabric.send(1, 0, 2, vec![2]).unwrap();
            assert!(fabric.try_recv(0, MatchSpec::any()).unwrap().is_some());
        }
    }

    #[test]
    fn owned_sends_move_without_copy_and_are_accounted() {
        let fabric = Fabric::new(2);
        let payload = vec![1u8, 2, 3];
        let ptr = payload.as_ptr();
        fabric.send(0, 1, 9, payload).unwrap();
        let msg = fabric.recv(1, MatchSpec::exact(0, 9)).unwrap();
        assert_eq!(
            msg.payload.as_ptr(),
            ptr,
            "owned payload must not be copied"
        );
        let recovered = msg.payload.into_vec();
        assert_eq!(recovered.as_ptr(), ptr, "unique payload unwraps in place");
        assert_eq!(fabric.stats().payload_copies, 0);
        fabric.send_bytes(1, 0, 3, &[7, 8]).unwrap();
        let stats = fabric.stats();
        assert_eq!(stats.sends, 2);
        assert_eq!(stats.payload_copies, 1);
        assert_eq!(stats.bytes_copied, 2);
    }

    /// Forwarding a received payload to another rank shares the original
    /// allocation: no accounted copy, and with a single remaining reference
    /// the final receiver recovers the sender's allocation in place.
    #[test]
    fn forwarded_payloads_share_the_allocation() {
        let fabric = Fabric::new(3);
        let payload = vec![5u8; 64];
        let ptr = payload.as_ptr();
        fabric.send(0, 1, 4, payload).unwrap();
        let msg = fabric.recv(1, MatchSpec::exact(0, 4)).unwrap();
        fabric.send_payload(1, 2, 4, msg.payload).unwrap();
        let relayed = fabric.recv(2, MatchSpec::exact(1, 4)).unwrap();
        assert_eq!(relayed.payload.as_ptr(), ptr, "forwarding must not copy");
        assert_eq!(fabric.stats().payload_copies, 0);
        assert_eq!(fabric.stats().sends, 2);
    }

    #[test]
    fn out_of_range_ranks_are_rejected() {
        let fabric = Fabric::new(2);
        assert!(fabric.send(0, 5, 0, vec![]).is_err());
        assert!(fabric.send(5, 0, 0, vec![]).is_err());
        assert!(fabric.recv(5, MatchSpec::any()).is_err());
        assert!(fabric.pending(9).is_err());
    }

    #[test]
    fn zero_shard_layout_is_rejected() {
        let result = std::panic::catch_unwind(|| {
            Fabric::with_layout(
                2,
                MailboxLayout::Sharded { shards: 0 },
                DEFAULT_RECV_TIMEOUT,
            )
        });
        assert!(result.is_err());
    }

    #[test]
    fn many_concurrent_senders_one_receiver() {
        for layout in layouts() {
            let fabric = fabric_with(layout, 17);
            thread::scope(|scope| {
                for sender in 1..17 {
                    let fabric = fabric.clone();
                    scope.spawn(move || {
                        for round in 0..8u64 {
                            fabric.send(sender, 0, round, vec![sender as u8]).unwrap();
                        }
                    });
                }
                let mut total = 0usize;
                for _ in 0..16 * 8 {
                    let msg = fabric.recv(0, MatchSpec::any()).unwrap();
                    total += msg.payload[0] as usize;
                }
                assert_eq!(total, (1..17).sum::<usize>() * 8);
            });
        }
    }

    /// The exact-match fast path is O(1): draining mixed-tag traffic in
    /// reverse order scans exactly one lane head per receive under the
    /// sharded layout, while the single queue wades through the backlog.
    #[test]
    fn sharded_matching_scans_one_entry_per_exact_recv() {
        let messages = 64u64;
        let sharded = fabric_with(MailboxLayout::Sharded { shards: 8 }, 2);
        let single = fabric_with(MailboxLayout::SingleQueue, 2);
        for fabric in [&sharded, &single] {
            for tag in 0..messages {
                fabric.send(0, 1, tag, vec![tag as u8]).unwrap();
            }
            for tag in (0..messages).rev() {
                let msg = fabric.recv(1, MatchSpec::exact(0, tag)).unwrap();
                assert_eq!(msg.payload, vec![tag as u8]);
            }
        }
        assert_eq!(
            sharded.stats().messages_scanned,
            messages as usize,
            "sharded exact receives must pop lane heads directly"
        );
        assert!(
            single.stats().messages_scanned > 10 * messages as usize,
            "the single queue must have scanned the backlog (got {})",
            single.stats().messages_scanned
        );
        assert_eq!(sharded.stats().exact_recvs, messages as usize);
        assert_eq!(sharded.stats().wildcard_recvs, 0);
    }
}
