//! # pip-runtime
//!
//! A Process-in-Process (PiP) substrate in safe Rust.
//!
//! The PiP programming environment (Hori et al., HPDC '18) loads every MPI
//! process of a node into a *single virtual address space*, so processes can
//! read and write each other's memory with plain loads and stores — no
//! system call, no page-fault storm, and no intermediate copy.  The PiP-MColl
//! collectives (Huang et al., HPDC '23) rely on exactly that property for
//! their intra-node phases.
//!
//! This crate reproduces the property with *tasks as threads*: a simulated
//! cluster is launched inside one Rust process, every simulated node is a
//! [`NodeSpace`] (one shared address space), and every MPI process is a
//! [`task::TaskCtx`] running on its own thread.  Tasks on the same node
//! exchange data through [`memory::ExposedRegion`]s — buffers a task exposes
//! so that its local peers may read or write them directly.  Tasks on
//! different nodes exchange data through the [`fabric::Fabric`], a
//! tag-matching mailbox that stands in for the interconnect.
//!
//! The runtime moves real bytes and is used for correctness: every collective
//! algorithm in the workspace is executed here against a sequential oracle.
//! Timing at the paper's scale (128 nodes × 18 processes) is produced by the
//! `pip-netsim` discrete-event simulator from traces of the same algorithms.
//!
//! ## Quick example
//!
//! ```
//! use pip_runtime::{Cluster, Topology};
//!
//! // 2 nodes x 3 tasks per node = 6 ranks, all inside this process.
//! let topo = Topology::new(2, 3);
//! let results = Cluster::launch(topo, |ctx| {
//!     // Every task contributes its rank; rank 0 of each node sums its node.
//!     let region = ctx.expose("slot", 8);
//!     region.write(0, &(ctx.rank() as u64).to_le_bytes());
//!     ctx.node_barrier();
//!     let mut sum = 0u64;
//!     if ctx.local_rank() == 0 {
//!         for lr in 0..ctx.ppn() {
//!             let peer = ctx.attach(lr, "slot");
//!             let mut buf = [0u8; 8];
//!             peer.read(0, &mut buf);
//!             sum += u64::from_le_bytes(buf);
//!         }
//!     }
//!     ctx.node_barrier();
//!     sum
//! })
//! .unwrap();
//! assert_eq!(results[0], 0 + 1 + 2);
//! assert_eq!(results[3], 3 + 4 + 5);
//! ```

pub mod error;
pub mod fabric;
pub mod memory;
pub mod node;
pub mod sync;
pub mod task;
pub mod topology;

pub use error::{Result, RuntimeError};
pub use fabric::{
    Fabric, FabricStats, MailboxLayout, Message, Payload, Tag, DEFAULT_MAILBOX_SHARDS,
};
pub use memory::{ExposedRegion, RegionKey};
pub use node::NodeSpace;
pub use task::{Cluster, TaskCtx};
pub use topology::Topology;
