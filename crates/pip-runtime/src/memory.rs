//! Exposed memory regions: the PiP "peer memory is directly addressable"
//! property.
//!
//! Under PiP every task of a node lives in one virtual address space, so a
//! task can hand a plain pointer to a peer and the peer dereferences it.
//! The safe-Rust equivalent used here is an [`ExposedRegion`]: a named,
//! fixed-size byte buffer owned by one local rank and registered in the
//! node's [`crate::NodeSpace`].  Peers obtain a handle with
//! [`crate::TaskCtx::attach`] and then read or write the bytes directly —
//! exactly one copy, no kernel involvement, which is the behaviour the
//! PiP-MColl cost model assigns to the `Pip` transport.
//!
//! Synchronization between the writer and its readers is the algorithm's
//! responsibility (as it is in the real system); the collectives in this
//! workspace use node barriers between the produce and consume phases.  The
//! region itself is protected by a reader-writer lock so that data races are
//! impossible even if an algorithm gets its synchronization wrong — a buggy
//! schedule produces wrong bytes, never undefined behaviour.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{Result, RuntimeError};

/// Identifies a region inside one node: the owning local rank plus a name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RegionKey {
    /// Local rank of the task that exposed the region.
    pub owner_local_rank: usize,
    /// Region name, unique per owner.
    pub name: String,
}

impl RegionKey {
    /// Build a key from its parts.
    pub fn new(owner_local_rank: usize, name: impl Into<String>) -> Self {
        Self {
            owner_local_rank,
            name: name.into(),
        }
    }
}

#[derive(Debug)]
struct RegionInner {
    name: String,
    data: RwLock<Box<[u8]>>,
}

/// A byte buffer exposed by one task and directly accessible to every task on
/// the same node.
///
/// Handles are cheaply cloneable (`Arc` internally); all clones refer to the
/// same storage.
#[derive(Debug, Clone)]
pub struct ExposedRegion {
    inner: Arc<RegionInner>,
}

impl ExposedRegion {
    /// Allocate a zero-initialized region of `len` bytes.
    pub(crate) fn allocate(name: impl Into<String>, len: usize) -> Self {
        Self {
            inner: Arc::new(RegionInner {
                name: name.into(),
                data: RwLock::new(vec![0u8; len].into_boxed_slice()),
            }),
        }
    }

    /// The region's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The region's capacity in bytes.
    pub fn len(&self) -> usize {
        self.inner.data.read().len()
    }

    /// Whether the region has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn check_bounds(&self, offset: usize, len: usize) -> Result<()> {
        let capacity = self.len();
        if offset.checked_add(len).is_none_or(|end| end > capacity) {
            return Err(RuntimeError::RegionOutOfBounds {
                name: self.inner.name.clone(),
                offset,
                len,
                capacity,
            });
        }
        Ok(())
    }

    /// Write `src` into the region starting at `offset`.
    pub fn try_write(&self, offset: usize, src: &[u8]) -> Result<()> {
        self.check_bounds(offset, src.len())?;
        let mut guard = self.inner.data.write();
        guard[offset..offset + src.len()].copy_from_slice(src);
        Ok(())
    }

    /// Write `src` into the region starting at `offset`, panicking on
    /// out-of-bounds access (convenience for algorithm code whose offsets are
    /// computed from validated sizes).
    pub fn write(&self, offset: usize, src: &[u8]) {
        self.try_write(offset, src)
            .expect("exposed-region write out of bounds");
    }

    /// Read `dst.len()` bytes starting at `offset` into `dst`.
    pub fn try_read(&self, offset: usize, dst: &mut [u8]) -> Result<()> {
        self.check_bounds(offset, dst.len())?;
        let guard = self.inner.data.read();
        dst.copy_from_slice(&guard[offset..offset + dst.len()]);
        Ok(())
    }

    /// Read `dst.len()` bytes starting at `offset`, panicking on
    /// out-of-bounds access.
    pub fn read(&self, offset: usize, dst: &mut [u8]) {
        self.try_read(offset, dst)
            .expect("exposed-region read out of bounds");
    }

    /// Copy out a sub-range as a fresh `Vec`.
    pub fn read_vec(&self, offset: usize, len: usize) -> Result<Vec<u8>> {
        self.check_bounds(offset, len)?;
        let guard = self.inner.data.read();
        Ok(guard[offset..offset + len].to_vec())
    }

    /// Copy a sub-range into `out` (cleared first), reusing its allocation —
    /// the single copy, with no zero-fill and no allocation when `out` has
    /// capacity (the plan executor's arena-backed shared reads).
    pub fn try_read_into_vec(&self, offset: usize, len: usize, out: &mut Vec<u8>) -> Result<()> {
        self.check_bounds(offset, len)?;
        let guard = self.inner.data.read();
        out.clear();
        out.extend_from_slice(&guard[offset..offset + len]);
        Ok(())
    }

    /// As [`ExposedRegion::try_read_into_vec`], panicking on out-of-bounds
    /// access.
    pub fn read_into_vec(&self, offset: usize, len: usize, out: &mut Vec<u8>) {
        self.try_read_into_vec(offset, len, out)
            .expect("exposed-region read out of bounds");
    }

    /// Snapshot the full contents.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.data.read().to_vec()
    }

    /// Overwrite the whole region with zeroes.
    pub fn clear(&self) {
        let mut guard = self.inner.data.write();
        guard.fill(0);
    }

    /// Direct region-to-region copy (`len` bytes from `self[src_offset]` to
    /// `dst[dst_offset]`), the PiP analogue of a peer-to-peer `memcpy`.
    pub fn copy_to(
        &self,
        src_offset: usize,
        dst: &ExposedRegion,
        dst_offset: usize,
        len: usize,
    ) -> Result<()> {
        self.check_bounds(src_offset, len)?;
        dst.check_bounds(dst_offset, len)?;
        if Arc::ptr_eq(&self.inner, &dst.inner) {
            // Same region: copy within one buffer (ranges may not overlap in
            // any schedule we generate, but copy_within handles it anyway).
            let mut guard = self.inner.data.write();
            guard.copy_within(src_offset..src_offset + len, dst_offset);
            return Ok(());
        }
        let src_guard = self.inner.data.read();
        let mut dst_guard = dst.inner.data.write();
        dst_guard[dst_offset..dst_offset + len]
            .copy_from_slice(&src_guard[src_offset..src_offset + len]);
        Ok(())
    }

    /// Run `f` with a read-only view of the full region, avoiding a copy.
    pub fn with_slice<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        let guard = self.inner.data.read();
        f(&guard)
    }

    /// Run `f` with a mutable view of the full region, avoiding a copy.
    pub fn with_slice_mut<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let mut guard = self.inner.data.write();
        f(&mut guard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn write_then_read_round_trips() {
        let region = ExposedRegion::allocate("buf", 16);
        region.write(4, &[1, 2, 3, 4]);
        let mut out = [0u8; 4];
        region.read(4, &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
        // Unwritten bytes stay zero.
        assert_eq!(region.read_vec(0, 4).unwrap(), vec![0; 4]);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let region = ExposedRegion::allocate("buf", 8);
        let err = region.try_write(6, &[0; 4]).unwrap_err();
        match err {
            RuntimeError::RegionOutOfBounds { capacity, .. } => assert_eq!(capacity, 8),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(region.try_read(8, &mut [0; 1]).is_err());
        // Boundary case: zero-length access at the end is fine.
        assert!(region.try_read(8, &mut []).is_ok());
    }

    #[test]
    fn copy_to_between_regions() {
        let a = ExposedRegion::allocate("a", 8);
        let b = ExposedRegion::allocate("b", 8);
        a.write(0, &[9, 8, 7, 6]);
        a.copy_to(1, &b, 4, 3).unwrap();
        assert_eq!(b.read_vec(4, 3).unwrap(), vec![8, 7, 6]);
    }

    #[test]
    fn copy_to_same_region() {
        let a = ExposedRegion::allocate("a", 8);
        a.write(0, &[1, 2, 3, 4]);
        a.copy_to(0, &a.clone(), 4, 4).unwrap();
        assert_eq!(a.to_vec(), vec![1, 2, 3, 4, 1, 2, 3, 4]);
    }

    #[test]
    fn clones_share_storage() {
        let a = ExposedRegion::allocate("a", 4);
        let b = a.clone();
        a.write(0, &[42; 4]);
        assert_eq!(b.to_vec(), vec![42; 4]);
    }

    #[test]
    fn clear_zeroes_everything() {
        let a = ExposedRegion::allocate("a", 4);
        a.write(0, &[1, 2, 3, 4]);
        a.clear();
        assert_eq!(a.to_vec(), vec![0; 4]);
    }

    #[test]
    fn with_slice_mut_allows_in_place_reduction() {
        let a = ExposedRegion::allocate("a", 4);
        a.write(0, &[1, 2, 3, 4]);
        a.with_slice_mut(|s| s.iter_mut().for_each(|b| *b *= 2));
        assert_eq!(a.to_vec(), vec![2, 4, 6, 8]);
    }

    proptest! {
        #[test]
        fn prop_round_trip(len in 1usize..256, offset in 0usize..256, payload in proptest::collection::vec(any::<u8>(), 0..128)) {
            let region = ExposedRegion::allocate("buf", len);
            let fits = offset + payload.len() <= len;
            let res = region.try_write(offset, &payload);
            prop_assert_eq!(res.is_ok(), fits);
            if fits {
                let back = region.read_vec(offset, payload.len()).unwrap();
                prop_assert_eq!(back, payload);
            }
        }
    }
}
