//! A [`NodeSpace`] is the in-process stand-in for one compute node whose
//! tasks were spawned under PiP: a single shared "virtual address space"
//! holding the node's exposed regions, plus the node-wide synchronization
//! objects the intra-node collective phases need.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::error::{Result, RuntimeError};
use crate::memory::{ExposedRegion, RegionKey};
use crate::sync::SenseBarrier;

/// How long [`NodeSpace::attach`] waits for a peer to expose a region before
/// reporting [`RuntimeError::RegionNotExposed`].
pub const ATTACH_TIMEOUT: Duration = Duration::from_secs(30);

/// One simulated node: `ppn` tasks sharing an address space.
#[derive(Debug)]
pub struct NodeSpace {
    node_id: usize,
    ppn: usize,
    regions: Mutex<HashMap<RegionKey, ExposedRegion>>,
    region_published: Condvar,
    barrier: SenseBarrier,
}

impl NodeSpace {
    /// Create a node with `ppn` tasks.
    pub fn new(node_id: usize, ppn: usize) -> Arc<Self> {
        assert!(ppn > 0, "a node hosts at least one task");
        Arc::new(Self {
            node_id,
            ppn,
            regions: Mutex::new(HashMap::new()),
            region_published: Condvar::new(),
            barrier: SenseBarrier::new(ppn),
        })
    }

    /// The node's id within the cluster.
    pub fn node_id(&self) -> usize {
        self.node_id
    }

    /// Tasks hosted by this node.
    pub fn ppn(&self) -> usize {
        self.ppn
    }

    /// Expose (or re-open) a region named `name` owned by `owner_local_rank`.
    ///
    /// Exposing the same name twice with the same length returns the existing
    /// region, which lets algorithms call `expose` unconditionally at the top
    /// of every invocation; a conflicting length is an error.
    pub fn expose(
        &self,
        owner_local_rank: usize,
        name: impl Into<String>,
        len: usize,
    ) -> Result<ExposedRegion> {
        if owner_local_rank >= self.ppn {
            return Err(RuntimeError::LocalRankOutOfRange {
                local_rank: owner_local_rank,
                ppn: self.ppn,
            });
        }
        let name = name.into();
        let key = RegionKey::new(owner_local_rank, name.clone());
        let mut regions = self.regions.lock();
        if let Some(existing) = regions.get(&key) {
            if existing.len() != len {
                return Err(RuntimeError::RegionSizeMismatch {
                    name,
                    exposed: existing.len(),
                    requested: len,
                });
            }
            return Ok(existing.clone());
        }
        let region = ExposedRegion::allocate(name, len);
        regions.insert(key, region.clone());
        self.region_published.notify_all();
        Ok(region)
    }

    /// Attach to a region exposed by `owner_local_rank`, blocking until it is
    /// published (bounded by [`ATTACH_TIMEOUT`]).
    pub fn attach(&self, owner_local_rank: usize, name: &str) -> Result<ExposedRegion> {
        if owner_local_rank >= self.ppn {
            return Err(RuntimeError::LocalRankOutOfRange {
                local_rank: owner_local_rank,
                ppn: self.ppn,
            });
        }
        let key = RegionKey::new(owner_local_rank, name);
        let deadline = Instant::now() + ATTACH_TIMEOUT;
        let mut regions = self.regions.lock();
        loop {
            if let Some(region) = regions.get(&key) {
                return Ok(region.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RuntimeError::RegionNotExposed {
                    owner_local_rank,
                    name: name.to_string(),
                });
            }
            self.region_published.wait_for(&mut regions, deadline - now);
        }
    }

    /// Attach without blocking; `None` when the region is not yet exposed.
    pub fn try_attach(&self, owner_local_rank: usize, name: &str) -> Option<ExposedRegion> {
        let key = RegionKey::new(owner_local_rank, name);
        self.regions.lock().get(&key).cloned()
    }

    /// Drop a region from the registry (e.g. at the end of a communicator's
    /// lifetime).  Outstanding handles keep the storage alive.
    pub fn unexpose(&self, owner_local_rank: usize, name: &str) -> bool {
        let key = RegionKey::new(owner_local_rank, name);
        self.regions.lock().remove(&key).is_some()
    }

    /// Number of regions currently exposed on the node.
    pub fn exposed_count(&self) -> usize {
        self.regions.lock().len()
    }

    /// The node-wide barrier shared by all tasks of this node.
    pub fn barrier(&self) -> &SenseBarrier {
        &self.barrier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn expose_then_attach_shares_storage() {
        let node = NodeSpace::new(0, 2);
        let region = node.expose(0, "dest", 16).unwrap();
        region.write(0, &[1, 2, 3, 4]);
        let attached = node.attach(0, "dest").unwrap();
        assert_eq!(attached.read_vec(0, 4).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn expose_is_idempotent_with_same_len() {
        let node = NodeSpace::new(0, 1);
        let a = node.expose(0, "buf", 8).unwrap();
        a.write(0, &[9]);
        let b = node.expose(0, "buf", 8).unwrap();
        assert_eq!(b.read_vec(0, 1).unwrap(), vec![9]);
        assert_eq!(node.exposed_count(), 1);
    }

    #[test]
    fn expose_size_conflict_is_error() {
        let node = NodeSpace::new(0, 1);
        node.expose(0, "buf", 8).unwrap();
        let err = node.expose(0, "buf", 16).unwrap_err();
        assert!(matches!(err, RuntimeError::RegionSizeMismatch { .. }));
    }

    #[test]
    fn attach_blocks_until_exposed() {
        let node = NodeSpace::new(0, 2);
        let waiter = Arc::clone(&node);
        let handle = thread::spawn(move || waiter.attach(1, "late").unwrap());
        thread::sleep(Duration::from_millis(20));
        let region = node.expose(1, "late", 4).unwrap();
        region.write(0, &[5]);
        let attached = handle.join().unwrap();
        assert_eq!(attached.read_vec(0, 1).unwrap(), vec![5]);
    }

    #[test]
    fn try_attach_returns_none_before_expose() {
        let node = NodeSpace::new(0, 2);
        assert!(node.try_attach(0, "missing").is_none());
        node.expose(0, "missing", 1).unwrap();
        assert!(node.try_attach(0, "missing").is_some());
    }

    #[test]
    fn unexpose_removes_registry_entry_but_keeps_handles_alive() {
        let node = NodeSpace::new(0, 1);
        let region = node.expose(0, "tmp", 4).unwrap();
        assert!(node.unexpose(0, "tmp"));
        assert!(!node.unexpose(0, "tmp"));
        region.write(0, &[3]);
        assert_eq!(region.read_vec(0, 1).unwrap(), vec![3]);
    }

    #[test]
    fn invalid_local_rank_rejected() {
        let node = NodeSpace::new(0, 2);
        assert!(node.expose(2, "x", 4).is_err());
        assert!(node.attach(7, "x").is_err());
    }

    #[test]
    fn different_owners_can_use_the_same_name() {
        let node = NodeSpace::new(0, 2);
        let a = node.expose(0, "slot", 4).unwrap();
        let b = node.expose(1, "slot", 8).unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 8);
        assert_eq!(node.exposed_count(), 2);
    }
}
