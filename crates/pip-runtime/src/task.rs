//! Launching a simulated cluster and the per-task context handed to user
//! code.
//!
//! [`Cluster::launch`] spawns one thread per rank (the PiP task), builds the
//! per-node [`NodeSpace`]s and the global [`Fabric`], runs the user closure
//! on every task, joins everything, and propagates panics as structured
//! errors.  [`TaskCtx`] is what the closure receives: the task's coordinates
//! plus handles to its node's shared address space and the fabric.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use crate::error::{Result, RuntimeError};
use crate::fabric::{Fabric, MatchSpec, Message, Payload, Tag};
use crate::memory::ExposedRegion;
use crate::node::NodeSpace;
use crate::topology::Topology;

/// Per-task context: everything a PiP task can see.
#[derive(Debug, Clone)]
pub struct TaskCtx {
    rank: usize,
    topology: Topology,
    node: Arc<NodeSpace>,
    fabric: Fabric,
}

impl TaskCtx {
    /// Construct a context directly (exposed so tests and single-task tools
    /// can build a context without going through [`Cluster::launch`]).
    pub fn new(rank: usize, topology: Topology, node: Arc<NodeSpace>, fabric: Fabric) -> Self {
        Self {
            rank,
            topology,
            node,
            fabric,
        }
    }

    /// This task's global rank.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    #[inline]
    pub fn world_size(&self) -> usize {
        self.topology.world_size()
    }

    /// The cluster topology.
    #[inline]
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The node hosting this task.
    #[inline]
    pub fn node_id(&self) -> usize {
        self.topology.node_of(self.rank)
    }

    /// This task's local rank within its node (the paper's `R_l`).
    #[inline]
    pub fn local_rank(&self) -> usize {
        self.topology.local_rank_of(self.rank)
    }

    /// Processes per node (the paper's `P`).
    #[inline]
    pub fn ppn(&self) -> usize {
        self.topology.ppn()
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.topology.nodes()
    }

    /// Whether this task is its node's leader (local rank 0).
    #[inline]
    pub fn is_node_root(&self) -> bool {
        self.local_rank() == 0
    }

    /// Handle to this task's node space.
    pub fn node(&self) -> &Arc<NodeSpace> {
        &self.node
    }

    /// Handle to the inter-node fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    // ------------------------------------------------------------------
    // PiP shared-address-space operations (intra-node).
    // ------------------------------------------------------------------

    /// Expose a region of `len` bytes under `name`, owned by this task.
    pub fn expose(&self, name: &str, len: usize) -> ExposedRegion {
        self.node
            .expose(self.local_rank(), name, len)
            .expect("expose failed")
    }

    /// Fallible variant of [`TaskCtx::expose`].
    pub fn try_expose(&self, name: &str, len: usize) -> Result<ExposedRegion> {
        self.node.expose(self.local_rank(), name, len)
    }

    /// Attach to a region exposed by local rank `owner_local_rank`.
    pub fn attach(&self, owner_local_rank: usize, name: &str) -> ExposedRegion {
        self.node
            .attach(owner_local_rank, name)
            .expect("attach failed")
    }

    /// Fallible variant of [`TaskCtx::attach`].
    pub fn try_attach(&self, owner_local_rank: usize, name: &str) -> Result<ExposedRegion> {
        self.node.attach(owner_local_rank, name)
    }

    /// Node-wide barrier across this node's tasks; returns the completed
    /// barrier generation.
    pub fn node_barrier(&self) -> u64 {
        self.node.barrier().wait()
    }

    // ------------------------------------------------------------------
    // Fabric operations (inter-node, also usable intra-node).
    // ------------------------------------------------------------------

    /// Send `payload` to `dest` with `tag`.  An owned `Vec<u8>` (or an
    /// existing [`Payload`]) moves into the fabric without being copied.
    pub fn send(&self, dest: usize, tag: Tag, payload: impl Into<Payload>) -> Result<()> {
        self.fabric.send(self.rank, dest, tag, payload)
    }

    /// Send borrowed bytes to `dest` with `tag`: exactly one copy, accounted
    /// in [`Fabric::stats`].
    pub fn send_bytes(&self, dest: usize, tag: Tag, data: &[u8]) -> Result<()> {
        self.fabric.send_bytes(self.rank, dest, tag, data)
    }

    /// Forward an existing [`Payload`] to `dest` with `tag` without copying:
    /// the receiver shares the allocation (see [`Fabric::send_payload`]).
    /// Clone a received message's payload handle to relay or fan it out.
    pub fn send_payload(&self, dest: usize, tag: Tag, payload: Payload) -> Result<()> {
        self.fabric.send_payload(self.rank, dest, tag, payload)
    }

    /// Blocking receive from `source` with `tag`.
    pub fn recv(&self, source: usize, tag: Tag) -> Result<Message> {
        self.fabric.recv(self.rank, MatchSpec::exact(source, tag))
    }

    /// Blocking receive matching `spec`.
    pub fn recv_matching(&self, spec: MatchSpec) -> Result<Message> {
        self.fabric.recv(self.rank, spec)
    }

    /// Non-blocking receive from `source` with `tag`: returns `Ok(None)`
    /// when no matching message has arrived yet.  This is the completion
    /// primitive the request-based collectives poll on.
    pub fn try_recv(&self, source: usize, tag: Tag) -> Result<Option<Message>> {
        self.fabric
            .try_recv(self.rank, MatchSpec::exact(source, tag))
    }

    /// Combined send + receive (both directions proceed concurrently because
    /// sends never block in the mailbox fabric).
    pub fn sendrecv(
        &self,
        dest: usize,
        send_tag: Tag,
        payload: impl Into<Payload>,
        source: usize,
        recv_tag: Tag,
    ) -> Result<Message> {
        self.send(dest, send_tag, payload)?;
        self.recv(source, recv_tag)
    }
}

/// Launches simulated clusters.
pub struct Cluster;

impl Cluster {
    /// Spawn `topology.world_size()` tasks, run `f` on each, and collect the
    /// per-rank return values in rank order.
    ///
    /// Panics inside any task are caught and reported as
    /// [`RuntimeError::TaskPanicked`] for the lowest-ranked panicking task.
    pub fn launch<T, F>(topology: Topology, f: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&TaskCtx) -> T + Sync,
    {
        Self::launch_with_fabric(topology, Fabric::new(topology.world_size()), f)
    }

    /// As [`Cluster::launch`] but with a caller-provided fabric (e.g. one
    /// with a short receive timeout for negative tests).
    pub fn launch_with_fabric<T, F>(topology: Topology, fabric: Fabric, f: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&TaskCtx) -> T + Sync,
    {
        assert_eq!(
            fabric.world_size(),
            topology.world_size(),
            "fabric and topology disagree on world size"
        );
        let nodes: Vec<Arc<NodeSpace>> = (0..topology.nodes())
            .map(|node_id| NodeSpace::new(node_id, topology.ppn()))
            .collect();

        let world = topology.world_size();
        let mut outcomes: Vec<Option<std::result::Result<T, String>>> =
            (0..world).map(|_| None).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(world);
            for rank in 0..world {
                let ctx = TaskCtx::new(
                    rank,
                    topology,
                    Arc::clone(&nodes[topology.node_of(rank)]),
                    fabric.clone(),
                );
                let f = &f;
                handles.push(scope.spawn(move || {
                    panic::catch_unwind(AssertUnwindSafe(|| f(&ctx))).map_err(|payload| {
                        if let Some(s) = payload.downcast_ref::<&str>() {
                            (*s).to_string()
                        } else if let Some(s) = payload.downcast_ref::<String>() {
                            s.clone()
                        } else {
                            "panic payload of unknown type".to_string()
                        }
                    })
                }));
            }
            for (rank, handle) in handles.into_iter().enumerate() {
                outcomes[rank] = Some(
                    handle
                        .join()
                        .unwrap_or_else(|_| Err("task thread terminated abnormally".to_string())),
                );
            }
        });

        let mut results = Vec::with_capacity(world);
        for (rank, outcome) in outcomes.into_iter().enumerate() {
            match outcome.expect("every rank produced an outcome") {
                Ok(value) => results.push(value),
                Err(message) => return Err(RuntimeError::TaskPanicked { rank, message }),
            }
        }
        Ok(results)
    }

    /// Launch with a fabric whose receive timeout is `timeout` — convenience
    /// for tests that exercise deliberately broken schedules.
    pub fn launch_with_timeout<T, F>(topology: Topology, timeout: Duration, f: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&TaskCtx) -> T + Sync,
    {
        Self::launch_with_fabric(
            topology,
            Fabric::with_timeout(topology.world_size(), timeout),
            f,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_returns_results_in_rank_order() {
        let topo = Topology::new(3, 2);
        let results = Cluster::launch(topo, |ctx| ctx.rank() * 10).unwrap();
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn coordinates_are_consistent() {
        let topo = Topology::new(2, 4);
        let results = Cluster::launch(topo, |ctx| {
            assert_eq!(ctx.rank(), ctx.node_id() * ctx.ppn() + ctx.local_rank());
            assert_eq!(ctx.world_size(), 8);
            assert_eq!(ctx.num_nodes(), 2);
            (ctx.node_id(), ctx.local_rank(), ctx.is_node_root())
        })
        .unwrap();
        assert_eq!(results[0], (0, 0, true));
        assert_eq!(results[5], (1, 1, false));
    }

    #[test]
    fn point_to_point_ring_works() {
        let topo = Topology::new(2, 3);
        let results = Cluster::launch(topo, |ctx| {
            let next = (ctx.rank() + 1) % ctx.world_size();
            let prev = (ctx.rank() + ctx.world_size() - 1) % ctx.world_size();
            ctx.send(next, 0, vec![ctx.rank() as u8]).unwrap();
            let msg = ctx.recv(prev, 0).unwrap();
            msg.payload[0] as usize
        })
        .unwrap();
        for (rank, &received) in results.iter().enumerate() {
            assert_eq!(received, (rank + 6 - 1) % 6);
        }
    }

    #[test]
    fn exposed_memory_intra_node_gather() {
        let topo = Topology::new(2, 4);
        let results = Cluster::launch(topo, |ctx| {
            // Every task writes its rank into the node root's exposed buffer,
            // which is the intra-node gather step of the PiP-MColl allgather.
            let root_buf = if ctx.is_node_root() {
                ctx.expose("gather", ctx.ppn())
            } else {
                ctx.attach(0, "gather")
            };
            root_buf.write(ctx.local_rank(), &[ctx.rank() as u8]);
            ctx.node_barrier();
            root_buf.to_vec()
        })
        .unwrap();
        assert_eq!(results[0], vec![0, 1, 2, 3]);
        assert_eq!(results[7], vec![4, 5, 6, 7]);
    }

    #[test]
    fn sendrecv_pairs_do_not_deadlock() {
        let topo = Topology::new(1, 2);
        let results = Cluster::launch(topo, |ctx| {
            let peer = 1 - ctx.rank();
            let msg = ctx
                .sendrecv(peer, 1, vec![ctx.rank() as u8 + 100], peer, 1)
                .unwrap();
            msg.payload[0]
        })
        .unwrap();
        assert_eq!(results, vec![101, 100]);
    }

    #[test]
    fn panic_in_one_task_is_reported_with_rank() {
        let topo = Topology::new(1, 4);
        let err = Cluster::launch(topo, |ctx| {
            if ctx.rank() == 2 {
                panic!("injected failure");
            }
            ctx.rank()
        })
        .unwrap_err();
        match err {
            RuntimeError::TaskPanicked { rank, message } => {
                assert_eq!(rank, 2);
                assert!(message.contains("injected failure"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn short_timeout_turns_deadlock_into_error() {
        let topo = Topology::new(1, 2);
        let err = Cluster::launch_with_timeout(topo, Duration::from_millis(30), |ctx| {
            if ctx.rank() == 0 {
                // Rank 0 waits for a message nobody sends.
                ctx.recv(1, 42).map(|m| m.payload.len())
            } else {
                Ok(0)
            }
        })
        .unwrap();
        assert!(matches!(err[0], Err(RuntimeError::RecvTimeout { .. })));
        assert!(matches!(err[1], Ok(0)));
    }

    #[test]
    fn single_rank_cluster_works() {
        let topo = Topology::new(1, 1);
        let results = Cluster::launch(topo, |ctx| {
            let region = ctx.expose("self", 4);
            region.write(0, &[1, 2, 3, 4]);
            ctx.node_barrier();
            region.to_vec()
        })
        .unwrap();
        assert_eq!(results, vec![vec![1, 2, 3, 4]]);
    }
}
