//! # pip-transport
//!
//! The data-movement substrates that PiP-MColl and its comparators are built
//! on, reproduced as two complementary artefacts per mechanism:
//!
//! 1. a **functional copy engine** that performs the same number of copies
//!    through the same kind of staging the real mechanism performs (so the
//!    correctness runtime exercises honest data paths), and
//! 2. a **cost model** that charges the latency the mechanism would incur on
//!    the paper's testbed: system calls for CMA, attach + page-fault costs
//!    for XPMEM, the double copy of POSIX shared memory, and the plain
//!    load/store copy of PiP.
//!
//! The crate also hosts the [`netcard`] model — a LogGP-style description of
//! the Omni-Path adapter with separate *per-process* and *per-NIC* message
//! rate limits.  The gap between those two limits is exactly what the
//! paper's multi-object design exploits: a single sender process cannot
//! saturate the adapter's 97 M msg/s, but eighteen concurrent senders can.
//!
//! All costs are expressed in nanoseconds ([`Nanos`]) of simulated time.

pub mod cma;
pub mod cost;
pub mod memcpy;
pub mod netcard;
pub mod pip;
pub mod posix_shmem;
pub mod xpmem;

pub use cost::{CopyStats, IntranodeCost, IntranodeMechanism, Nanos};
pub use netcard::{NicModel, NicParams};

/// A functional intra-node copy engine.
///
/// Engines move real bytes between buffers exactly the way the mechanism
/// they model would (single copy, double copy through a bounded segment, …)
/// and report what they did in a [`CopyStats`], which the tests use to check
/// that each mechanism performs the copy count and system-call count the
/// paper attributes to it.
pub trait CopyEngine {
    /// The mechanism this engine implements.
    fn mechanism(&self) -> IntranodeMechanism;

    /// Copy `src` into `dst` (same length) and report the work performed.
    fn copy(&mut self, src: &[u8], dst: &mut [u8]) -> CopyStats;

    /// The cost model matching this engine's mechanism with default
    /// calibration.
    fn cost_model(&self) -> IntranodeCost {
        IntranodeCost::defaults_for(self.mechanism())
    }
}

/// Build the default copy engine for a mechanism.
pub fn engine_for(mechanism: IntranodeMechanism) -> Box<dyn CopyEngine + Send> {
    match mechanism {
        IntranodeMechanism::Pip => Box::new(pip::PipCopyEngine::new()),
        IntranodeMechanism::PosixShmem => Box::new(posix_shmem::PosixShmemEngine::default()),
        IntranodeMechanism::Cma => Box::new(cma::CmaEngine::new()),
        IntranodeMechanism::Xpmem => Box::new(xpmem::XpmemEngine::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_for_returns_matching_mechanism() {
        for mechanism in IntranodeMechanism::ALL {
            let engine = engine_for(mechanism);
            assert_eq!(engine.mechanism(), mechanism);
        }
    }

    #[test]
    fn all_engines_copy_correctly() {
        let src: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        for mechanism in IntranodeMechanism::ALL {
            let mut engine = engine_for(mechanism);
            let mut dst = vec![0u8; src.len()];
            let stats = engine.copy(&src, &mut dst);
            assert_eq!(dst, src, "{mechanism:?} corrupted data");
            assert!(stats.bytes_moved >= src.len());
        }
    }
}
