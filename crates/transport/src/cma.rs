//! The Cross Memory Attach (CMA) copy engine: `process_vm_readv`-style
//! kernel-assisted single copy.  Every transfer is one system call (more for
//! very large iovec batches), which is cheap for large messages but dominates
//! the latency of small ones — the overhead the paper's introduction calls
//! out for kernel-assisted collectives.

use crate::cost::{CopyStats, IntranodeMechanism};
use crate::CopyEngine;

/// Maximum bytes a single simulated `process_vm_readv` call moves.  The real
/// syscall is bounded by `IOV_MAX` iovecs; MPI implementations typically cap
/// one call at a few megabytes.
pub const MAX_BYTES_PER_SYSCALL: usize = 8 << 20;

/// Functional model of a CMA transfer.
#[derive(Debug, Default, Clone)]
pub struct CmaEngine {
    total: CopyStats,
}

impl CmaEngine {
    /// Create a fresh engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative statistics.
    pub fn totals(&self) -> CopyStats {
        self.total
    }
}

impl CopyEngine for CmaEngine {
    fn mechanism(&self) -> IntranodeMechanism {
        IntranodeMechanism::Cma
    }

    fn copy(&mut self, src: &[u8], dst: &mut [u8]) -> CopyStats {
        assert_eq!(src.len(), dst.len(), "CMA copy requires equal lengths");
        let mut stats = CopyStats::default();
        let mut offset = 0;
        loop {
            let remaining = src.len() - offset;
            let len = remaining.min(MAX_BYTES_PER_SYSCALL);
            // One kernel crossing per batch, even for zero-byte transfers
            // (the call is still made to learn the peer is ready).
            stats.syscalls += 1;
            dst[offset..offset + len].copy_from_slice(&src[offset..offset + len]);
            stats.bytes_moved += len;
            stats.copies += 1;
            offset += len;
            if offset >= src.len() {
                break;
            }
        }
        self.total.merge(&stats);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_syscall_single_copy_for_typical_messages() {
        let mut engine = CmaEngine::new();
        let src = vec![4u8; 4096];
        let mut dst = vec![0u8; 4096];
        let stats = engine.copy(&src, &mut dst);
        assert_eq!(dst, src);
        assert_eq!(stats.syscalls, 1);
        assert_eq!(stats.copies, 1);
        assert_eq!(stats.bytes_moved, 4096);
        assert_eq!(stats.staged_bytes, 0);
    }

    #[test]
    fn zero_byte_transfer_still_costs_a_syscall() {
        let mut engine = CmaEngine::new();
        let stats = engine.copy(&[], &mut []);
        assert_eq!(stats.syscalls, 1);
        assert_eq!(stats.bytes_moved, 0);
    }

    #[test]
    fn giant_transfers_split_across_syscalls() {
        let mut engine = CmaEngine::new();
        let len = MAX_BYTES_PER_SYSCALL + 17;
        let src = vec![8u8; len];
        let mut dst = vec![0u8; len];
        let stats = engine.copy(&src, &mut dst);
        assert_eq!(dst, src);
        assert_eq!(stats.syscalls, 2);
    }

    #[test]
    fn totals_track_all_transfers() {
        let mut engine = CmaEngine::new();
        for _ in 0..3 {
            let src = vec![0u8; 10];
            let mut dst = vec![0u8; 10];
            engine.copy(&src, &mut dst);
        }
        assert_eq!(engine.totals().syscalls, 3);
        assert_eq!(engine.totals().bytes_moved, 30);
    }
}
