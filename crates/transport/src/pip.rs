//! The PiP copy engine: a single direct copy between two buffers that live in
//! the same (shared) address space.  No staging, no system call, no
//! first-touch penalty beyond the ordinary memory system.
//!
//! PiP additionally allows the *zero*-copy hand-off the fabric's
//! payload-forwarding path models (`Fabric::send_payload`): because peers
//! share one address space, a producer can pass a pointer instead of the
//! bytes.  [`PipCopyEngine::forward`] accounts that path — bytes logically
//! transferred with no copy performed.

use crate::cost::{CopyStats, IntranodeMechanism};
use crate::CopyEngine;

/// Functional model of a PiP peer-to-peer transfer.
#[derive(Debug, Default, Clone)]
pub struct PipCopyEngine {
    total: CopyStats,
    forwards: usize,
    bytes_forwarded: usize,
}

impl PipCopyEngine {
    /// Create a fresh engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative statistics over the engine's lifetime.
    pub fn totals(&self) -> CopyStats {
        self.total
    }

    /// Account a pointer hand-off of `len` bytes: the consumer reads the
    /// producer's buffer in place, so no copy, no syscall, no staging —
    /// the transport-level twin of forwarding a reference-counted fabric
    /// payload.
    pub fn forward(&mut self, len: usize) -> CopyStats {
        self.forwards += 1;
        self.bytes_forwarded += len;
        CopyStats::default()
    }

    /// `(transfers, bytes)` moved by pointer hand-off rather than copying.
    pub fn forwarded(&self) -> (usize, usize) {
        (self.forwards, self.bytes_forwarded)
    }
}

impl CopyEngine for PipCopyEngine {
    fn mechanism(&self) -> IntranodeMechanism {
        IntranodeMechanism::Pip
    }

    fn copy(&mut self, src: &[u8], dst: &mut [u8]) -> CopyStats {
        assert_eq!(src.len(), dst.len(), "PiP copy requires equal lengths");
        dst.copy_from_slice(src);
        let stats = CopyStats {
            bytes_moved: src.len(),
            copies: 1,
            syscalls: 0,
            page_faults: 0,
            staged_bytes: 0,
        };
        self.total.merge(&stats);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_copy_no_syscalls() {
        let mut engine = PipCopyEngine::new();
        let src = vec![3u8; 512];
        let mut dst = vec![0u8; 512];
        let stats = engine.copy(&src, &mut dst);
        assert_eq!(dst, src);
        assert_eq!(stats.copies, 1);
        assert_eq!(stats.syscalls, 0);
        assert_eq!(stats.staged_bytes, 0);
        assert_eq!(stats.bytes_moved, 512);
    }

    #[test]
    fn totals_accumulate() {
        let mut engine = PipCopyEngine::new();
        for _ in 0..4 {
            let src = vec![1u8; 100];
            let mut dst = vec![0u8; 100];
            engine.copy(&src, &mut dst);
        }
        assert_eq!(engine.totals().bytes_moved, 400);
        assert_eq!(engine.totals().copies, 4);
    }

    #[test]
    fn forwarding_accounts_no_copies() {
        let mut engine = PipCopyEngine::new();
        let stats = engine.forward(4096);
        assert_eq!(stats, CopyStats::default(), "a hand-off performs no work");
        engine.forward(1024);
        assert_eq!(engine.forwarded(), (2, 5120));
        assert_eq!(engine.totals().copies, 0, "forwards never count as copies");
    }

    #[test]
    fn zero_length_copy_is_free_of_data() {
        let mut engine = PipCopyEngine::new();
        let stats = engine.copy(&[], &mut []);
        assert_eq!(stats.bytes_moved, 0);
        assert_eq!(stats.copies, 1);
    }
}
