//! The PiP copy engine: a single direct copy between two buffers that live in
//! the same (shared) address space.  No staging, no system call, no
//! first-touch penalty beyond the ordinary memory system.

use crate::cost::{CopyStats, IntranodeMechanism};
use crate::CopyEngine;

/// Functional model of a PiP peer-to-peer transfer.
#[derive(Debug, Default, Clone)]
pub struct PipCopyEngine {
    total: CopyStats,
}

impl PipCopyEngine {
    /// Create a fresh engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative statistics over the engine's lifetime.
    pub fn totals(&self) -> CopyStats {
        self.total
    }
}

impl CopyEngine for PipCopyEngine {
    fn mechanism(&self) -> IntranodeMechanism {
        IntranodeMechanism::Pip
    }

    fn copy(&mut self, src: &[u8], dst: &mut [u8]) -> CopyStats {
        assert_eq!(src.len(), dst.len(), "PiP copy requires equal lengths");
        dst.copy_from_slice(src);
        let stats = CopyStats {
            bytes_moved: src.len(),
            copies: 1,
            syscalls: 0,
            page_faults: 0,
            staged_bytes: 0,
        };
        self.total.merge(&stats);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_copy_no_syscalls() {
        let mut engine = PipCopyEngine::new();
        let src = vec![3u8; 512];
        let mut dst = vec![0u8; 512];
        let stats = engine.copy(&src, &mut dst);
        assert_eq!(dst, src);
        assert_eq!(stats.copies, 1);
        assert_eq!(stats.syscalls, 0);
        assert_eq!(stats.staged_bytes, 0);
        assert_eq!(stats.bytes_moved, 512);
    }

    #[test]
    fn totals_accumulate() {
        let mut engine = PipCopyEngine::new();
        for _ in 0..4 {
            let src = vec![1u8; 100];
            let mut dst = vec![0u8; 100];
            engine.copy(&src, &mut dst);
        }
        assert_eq!(engine.totals().bytes_moved, 400);
        assert_eq!(engine.totals().copies, 4);
    }

    #[test]
    fn zero_length_copy_is_free_of_data() {
        let mut engine = PipCopyEngine::new();
        let stats = engine.copy(&[], &mut []);
        assert_eq!(stats.bytes_moved, 0);
        assert_eq!(stats.copies, 1);
    }
}
