//! The POSIX shared-memory copy engine: the sender copies its payload into a
//! bounded shared segment, the receiver copies it back out — the double copy
//! the paper (and Parsons & Pai, IPDPS '14) identifies as the limiting factor
//! of SHMEM-based collectives for medium and large messages.
//!
//! Messages larger than the segment are pipelined through it in chunks,
//! exactly as an MPI implementation pipelines through its fixed-size copy
//! buffers.

use crate::cost::{CopyStats, IntranodeMechanism};
use crate::CopyEngine;

/// Default shared-segment (copy buffer) size: 64 KiB per peer pair, the
/// common default of MPICH/Open MPI shared-memory BTLs.
pub const DEFAULT_SEGMENT_BYTES: usize = 64 * 1024;

/// Functional model of a POSIX-SHMEM transfer.
#[derive(Debug, Clone)]
pub struct PosixShmemEngine {
    segment: Vec<u8>,
    total: CopyStats,
}

impl Default for PosixShmemEngine {
    fn default() -> Self {
        Self::with_segment_size(DEFAULT_SEGMENT_BYTES)
    }
}

impl PosixShmemEngine {
    /// Create an engine whose shared segment holds `segment_bytes` bytes.
    pub fn with_segment_size(segment_bytes: usize) -> Self {
        assert!(segment_bytes > 0, "segment must be non-empty");
        Self {
            segment: vec![0u8; segment_bytes],
            total: CopyStats::default(),
        }
    }

    /// Size of the staging segment.
    pub fn segment_size(&self) -> usize {
        self.segment.len()
    }

    /// Cumulative statistics.
    pub fn totals(&self) -> CopyStats {
        self.total
    }
}

impl CopyEngine for PosixShmemEngine {
    fn mechanism(&self) -> IntranodeMechanism {
        IntranodeMechanism::PosixShmem
    }

    fn copy(&mut self, src: &[u8], dst: &mut [u8]) -> CopyStats {
        assert_eq!(src.len(), dst.len(), "SHMEM copy requires equal lengths");
        let chunk = self.segment.len();
        let mut stats = CopyStats::default();
        let mut offset = 0;
        while offset < src.len() {
            let len = chunk.min(src.len() - offset);
            // Copy-in: sender -> shared segment.
            self.segment[..len].copy_from_slice(&src[offset..offset + len]);
            // Copy-out: shared segment -> receiver.
            dst[offset..offset + len].copy_from_slice(&self.segment[..len]);
            stats.bytes_moved += 2 * len;
            stats.staged_bytes += len;
            stats.copies += 2;
            offset += len;
        }
        if src.is_empty() {
            // A zero-byte message still performs the handshake (no data).
            stats.copies = 2;
        }
        self.total.merge(&stats);
        stats
    }
}

/// A variant used by tests to confirm the chunking helper and the engine
/// agree on chunk counts.
pub fn chunks_required(message_bytes: usize, segment_bytes: usize) -> usize {
    if message_bytes == 0 {
        0
    } else {
        message_bytes.div_ceil(segment_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memcpy::copy_chunked;
    use proptest::prelude::*;

    #[test]
    fn double_copy_reported() {
        let mut engine = PosixShmemEngine::default();
        let src = vec![9u8; 1000];
        let mut dst = vec![0u8; 1000];
        let stats = engine.copy(&src, &mut dst);
        assert_eq!(dst, src);
        assert_eq!(stats.bytes_moved, 2000);
        assert_eq!(stats.staged_bytes, 1000);
        assert_eq!(stats.syscalls, 0);
    }

    #[test]
    fn large_message_is_pipelined_through_segment() {
        let mut engine = PosixShmemEngine::with_segment_size(256);
        let src: Vec<u8> = (0..2000).map(|i| (i % 251) as u8).collect();
        let mut dst = vec![0u8; 2000];
        let stats = engine.copy(&src, &mut dst);
        assert_eq!(dst, src);
        assert_eq!(stats.copies, 2 * chunks_required(2000, 256));
    }

    #[test]
    fn message_smaller_than_segment_uses_one_round_trip() {
        let mut engine = PosixShmemEngine::with_segment_size(4096);
        let src = vec![1u8; 64];
        let mut dst = vec![0u8; 64];
        let stats = engine.copy(&src, &mut dst);
        assert_eq!(stats.copies, 2);
    }

    #[test]
    fn chunks_required_edge_cases() {
        assert_eq!(chunks_required(0, 64), 0);
        assert_eq!(chunks_required(64, 64), 1);
        assert_eq!(chunks_required(65, 64), 2);
    }

    proptest! {
        #[test]
        fn prop_shmem_is_lossless(payload in proptest::collection::vec(any::<u8>(), 0..8192), segment in 1usize..1024) {
            let mut engine = PosixShmemEngine::with_segment_size(segment);
            let mut dst = vec![0u8; payload.len()];
            let stats = engine.copy(&payload, &mut dst);
            prop_assert_eq!(&dst, &payload);
            prop_assert_eq!(stats.bytes_moved, payload.len() * 2);
        }
    }

    #[test]
    fn copy_chunked_helper_matches_engine_chunking() {
        let src = vec![5u8; 700];
        let mut dst = vec![0u8; 700];
        let helper_chunks = copy_chunked(&src, &mut dst, 256, |_| {});
        assert_eq!(helper_chunks, chunks_required(700, 256));
    }
}
