//! The XPMEM copy engine: a peer exposes a segment once, other processes
//! attach it into their own address space (a system call), and subsequent
//! transfers are plain single copies — but the first touch of every page in
//! the attached mapping takes a soft page fault.
//!
//! The engine keeps a registration cache keyed by "segment id" so that, as in
//! real XPMEM-based MPI implementations (Hashmi et al., IPDPS '18), the
//! attach cost is paid once per buffer and the page faults once per page.

use std::collections::HashSet;

use crate::cost::{CopyStats, IntranodeMechanism, PAGE_SIZE};
use crate::CopyEngine;

/// Functional model of XPMEM transfers with a registration cache.
#[derive(Debug, Default, Clone)]
pub struct XpmemEngine {
    /// Segments (by caller-provided id) that have already been attached.
    attached_segments: HashSet<usize>,
    /// (segment, page index) pairs that have already been touched.
    touched_pages: HashSet<(usize, usize)>,
    total: CopyStats,
}

impl XpmemEngine {
    /// Create an engine with an empty registration cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative statistics.
    pub fn totals(&self) -> CopyStats {
        self.total
    }

    /// Number of distinct segments attached so far.
    pub fn attached_count(&self) -> usize {
        self.attached_segments.len()
    }

    /// Copy identifying the peer buffer by `segment_id`, so the registration
    /// cache can amortize attach and page-fault costs across calls that reuse
    /// the same buffer (as collective loops do).
    pub fn copy_segment(&mut self, segment_id: usize, src: &[u8], dst: &mut [u8]) -> CopyStats {
        assert_eq!(src.len(), dst.len(), "XPMEM copy requires equal lengths");
        let mut stats = CopyStats::default();
        if self.attached_segments.insert(segment_id) {
            // xpmem_get + xpmem_attach on first use of this buffer.
            stats.syscalls += 2;
        }
        let pages = src.len().div_ceil(PAGE_SIZE).max(1);
        for page in 0..pages {
            if self.touched_pages.insert((segment_id, page)) {
                stats.page_faults += 1;
            }
        }
        dst.copy_from_slice(src);
        stats.bytes_moved += src.len();
        stats.copies += 1;
        self.total.merge(&stats);
        stats
    }

    /// Drop a segment from the registration cache (buffer freed / window
    /// destroyed); the next use pays attach and fault costs again.
    pub fn evict(&mut self, segment_id: usize) {
        self.attached_segments.remove(&segment_id);
        self.touched_pages.retain(|(seg, _)| *seg != segment_id);
    }
}

impl CopyEngine for XpmemEngine {
    fn mechanism(&self) -> IntranodeMechanism {
        IntranodeMechanism::Xpmem
    }

    fn copy(&mut self, src: &[u8], dst: &mut [u8]) -> CopyStats {
        // Anonymous transfers use the source pointer's address as segment id;
        // buffers reused across iterations therefore hit the cache, which is
        // the steady-state behaviour benchmark loops observe.
        let segment_id = src.as_ptr() as usize;
        self.copy_segment(segment_id, src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_use_pays_attach_and_faults() {
        let mut engine = XpmemEngine::new();
        let src = vec![1u8; 3 * PAGE_SIZE];
        let mut dst = vec![0u8; 3 * PAGE_SIZE];
        let stats = engine.copy_segment(7, &src, &mut dst);
        assert_eq!(dst, src);
        assert_eq!(stats.syscalls, 2);
        assert_eq!(stats.page_faults, 3);
        assert_eq!(stats.copies, 1);
    }

    #[test]
    fn second_use_is_cached() {
        let mut engine = XpmemEngine::new();
        let src = vec![2u8; PAGE_SIZE];
        let mut dst = vec![0u8; PAGE_SIZE];
        engine.copy_segment(1, &src, &mut dst);
        let warm = engine.copy_segment(1, &src, &mut dst);
        assert_eq!(warm.syscalls, 0);
        assert_eq!(warm.page_faults, 0);
        assert_eq!(warm.copies, 1);
    }

    #[test]
    fn different_segments_are_independent() {
        let mut engine = XpmemEngine::new();
        let src = vec![3u8; 16];
        let mut dst = vec![0u8; 16];
        engine.copy_segment(1, &src, &mut dst);
        let other = engine.copy_segment(2, &src, &mut dst);
        assert_eq!(other.syscalls, 2);
        assert_eq!(engine.attached_count(), 2);
    }

    #[test]
    fn evict_forces_reattach() {
        let mut engine = XpmemEngine::new();
        let src = vec![4u8; 16];
        let mut dst = vec![0u8; 16];
        engine.copy_segment(5, &src, &mut dst);
        engine.evict(5);
        let again = engine.copy_segment(5, &src, &mut dst);
        assert_eq!(again.syscalls, 2);
        assert_eq!(again.page_faults, 1);
    }

    #[test]
    fn small_transfer_touches_at_least_one_page() {
        let mut engine = XpmemEngine::new();
        let src = vec![5u8; 8];
        let mut dst = vec![0u8; 8];
        let stats = engine.copy_segment(9, &src, &mut dst);
        assert_eq!(stats.page_faults, 1);
    }

    #[test]
    fn growing_a_buffer_faults_only_new_pages() {
        let mut engine = XpmemEngine::new();
        let small = vec![6u8; PAGE_SIZE];
        let mut dst_small = vec![0u8; PAGE_SIZE];
        engine.copy_segment(3, &small, &mut dst_small);
        let large = vec![6u8; 4 * PAGE_SIZE];
        let mut dst_large = vec![0u8; 4 * PAGE_SIZE];
        let stats = engine.copy_segment(3, &large, &mut dst_large);
        assert_eq!(stats.page_faults, 3);
        assert_eq!(stats.syscalls, 0);
    }

    #[test]
    fn anonymous_copy_uses_pointer_identity_for_caching() {
        let mut engine = XpmemEngine::new();
        let src = vec![7u8; 64];
        let mut dst = vec![0u8; 64];
        let first = engine.copy(&src, &mut dst);
        let second = engine.copy(&src, &mut dst);
        assert!(first.syscalls > 0);
        assert_eq!(second.syscalls, 0);
    }
}
