//! A small memory-system model shared by the copy engines and the simulator:
//! piecewise copy bandwidth (cache-resident vs. DRAM-resident payloads) and
//! the cost of applying a reduction operator while streaming.

use serde::{Deserialize, Serialize};

use crate::cost::Nanos;

/// Copy/streaming cost model for one core of the simulated node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemcpyModel {
    /// Fixed overhead of issuing any copy (function call, loop setup).
    pub base_latency: Nanos,
    /// Per-byte cost while the payload fits in the last-level cache.
    pub per_byte_cached: Nanos,
    /// Per-byte cost once the payload spills to DRAM.
    pub per_byte_dram: Nanos,
    /// Payload size at which the DRAM rate takes over.
    pub llc_bytes: usize,
    /// Extra per-byte cost of applying an arithmetic reduction (e.g. f64 sum)
    /// while streaming, on top of the copy cost.
    pub per_byte_reduce: Nanos,
}

impl Default for MemcpyModel {
    fn default() -> Self {
        // Broadwell-class single core: ~13 GB/s DRAM copy, ~30 GB/s in LLC.
        Self {
            base_latency: 40.0,
            per_byte_cached: 0.033,
            per_byte_dram: 0.077,
            llc_bytes: 32 << 20,
            per_byte_reduce: 0.05,
        }
    }
}

impl MemcpyModel {
    /// Cost of copying `bytes` bytes once.
    pub fn copy_cost(&self, bytes: usize) -> Nanos {
        let per_byte = if bytes <= self.llc_bytes {
            self.per_byte_cached
        } else {
            self.per_byte_dram
        };
        self.base_latency + per_byte * bytes as Nanos
    }

    /// Cost of streaming `bytes` bytes through a reduction operator
    /// (read both operands, combine, write the result).
    pub fn reduce_cost(&self, bytes: usize) -> Nanos {
        self.copy_cost(bytes) + self.per_byte_reduce * bytes as Nanos
    }
}

/// Copy `src` into `dst` through chunks of at most `chunk` bytes, invoking
/// `per_chunk` before each chunk copy.  Returns the number of chunks.
///
/// The POSIX-SHMEM and CMA engines use this helper to reproduce the chunked
/// data paths of the real mechanisms (bounded shared segments, bounded iovec
/// batches).
pub fn copy_chunked(
    src: &[u8],
    dst: &mut [u8],
    chunk: usize,
    mut per_chunk: impl FnMut(usize),
) -> usize {
    assert_eq!(src.len(), dst.len(), "copy_chunked requires equal lengths");
    assert!(chunk > 0, "chunk size must be positive");
    let mut chunks = 0;
    let mut offset = 0;
    while offset < src.len() {
        let len = chunk.min(src.len() - offset);
        per_chunk(len);
        dst[offset..offset + len].copy_from_slice(&src[offset..offset + len]);
        offset += len;
        chunks += 1;
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn copy_cost_grows_with_size() {
        let model = MemcpyModel::default();
        assert!(model.copy_cost(1024) < model.copy_cost(4096));
        assert!(model.copy_cost(0) >= model.base_latency);
    }

    #[test]
    fn dram_rate_applies_past_llc() {
        let model = MemcpyModel::default();
        let just_inside = model.copy_cost(model.llc_bytes);
        let just_outside = model.copy_cost(model.llc_bytes + 1);
        // Crossing the boundary switches to the slower per-byte rate, so the
        // whole payload becomes more expensive per byte.
        assert!(just_outside > just_inside);
    }

    #[test]
    fn reduce_costs_more_than_copy() {
        let model = MemcpyModel::default();
        assert!(model.reduce_cost(1 << 16) > model.copy_cost(1 << 16));
    }

    #[test]
    fn copy_chunked_copies_everything() {
        let src: Vec<u8> = (0..100u8).collect();
        let mut dst = vec![0u8; 100];
        let mut seen = Vec::new();
        let chunks = copy_chunked(&src, &mut dst, 32, |len| seen.push(len));
        assert_eq!(dst, src);
        assert_eq!(chunks, 4);
        assert_eq!(seen, vec![32, 32, 32, 4]);
    }

    #[test]
    fn copy_chunked_handles_exact_multiple() {
        let src = vec![7u8; 64];
        let mut dst = vec![0u8; 64];
        let chunks = copy_chunked(&src, &mut dst, 16, |_| {});
        assert_eq!(chunks, 4);
        assert_eq!(dst, src);
    }

    #[test]
    fn copy_chunked_empty_is_zero_chunks() {
        let chunks = copy_chunked(&[], &mut [], 16, |_| panic!("no chunks expected"));
        assert_eq!(chunks, 0);
    }

    proptest! {
        #[test]
        fn prop_chunked_copy_is_lossless(payload in proptest::collection::vec(any::<u8>(), 0..2048), chunk in 1usize..512) {
            let mut dst = vec![0u8; payload.len()];
            let chunks = copy_chunked(&payload, &mut dst, chunk, |_| {});
            prop_assert_eq!(&dst, &payload);
            prop_assert_eq!(chunks, payload.len().div_ceil(chunk));
        }

        #[test]
        fn prop_copy_cost_monotone(a in 0usize..(1 << 26), b in 0usize..(1 << 26)) {
            let model = MemcpyModel::default();
            let (small, large) = if a <= b { (a, b) } else { (b, a) };
            // Monotone within each regime; across the LLC boundary the DRAM
            // rate only ever makes the larger payload more expensive.
            prop_assert!(model.copy_cost(large) + 1e-9 >= model.copy_cost(small));
        }
    }
}
