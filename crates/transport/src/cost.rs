//! Cost model types shared by every transport.
//!
//! All latencies are simulated nanoseconds.  The default constants are
//! calibrated against published measurements for dual-socket Broadwell nodes
//! (the paper's testbed) and the mechanism papers the comparators are built
//! on: CMA (Chakraborty et al., CLUSTER '17), XPMEM reductions (Hashmi et
//! al., IPDPS '18), POSIX-SHMEM hierarchical collectives (Parsons & Pai,
//! IPDPS '14) and PiP (Hori et al., HPDC '18).  Absolute values matter less
//! than their *structure*: which mechanism pays a syscall per operation,
//! which pays it once, which copies twice, and which just copies.

use serde::{Deserialize, Serialize};

/// Simulated time in nanoseconds.
pub type Nanos = f64;

/// The intra-node data-movement mechanisms compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntranodeMechanism {
    /// Process-in-Process: peers share one address space, a transfer is a
    /// plain `memcpy` with no kernel involvement (Hori et al., HPDC '18).
    Pip,
    /// POSIX shared memory: copy-in to a bounded shared segment, copy-out on
    /// the receiver — the classic double copy (Parsons & Pai, IPDPS '14).
    PosixShmem,
    /// Cross Memory Attach (`process_vm_readv`/`writev`): a single copy, but
    /// every call is a system call (Chakraborty et al., CLUSTER '17).
    Cma,
    /// XPMEM: single copy through a mapped segment; expose/attach are
    /// syscalls amortized by a registration cache, and first-touch page
    /// faults are charged per page (Hashmi et al., IPDPS '18).
    Xpmem,
}

impl IntranodeMechanism {
    /// All mechanisms, in presentation order.
    pub const ALL: [IntranodeMechanism; 4] = [
        IntranodeMechanism::Pip,
        IntranodeMechanism::PosixShmem,
        IntranodeMechanism::Cma,
        IntranodeMechanism::Xpmem,
    ];

    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            IntranodeMechanism::Pip => "PiP",
            IntranodeMechanism::PosixShmem => "POSIX-SHMEM",
            IntranodeMechanism::Cma => "CMA",
            IntranodeMechanism::Xpmem => "XPMEM",
        }
    }

    /// Number of times the payload crosses memory for one transfer.
    pub fn copies_per_transfer(&self) -> usize {
        match self {
            IntranodeMechanism::PosixShmem => 2,
            _ => 1,
        }
    }

    /// Whether every transfer costs at least one system call.
    pub fn syscall_per_transfer(&self) -> bool {
        matches!(self, IntranodeMechanism::Cma)
    }
}

/// What a functional copy engine actually did for one transfer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CopyStats {
    /// Total bytes moved, counting each copy of the payload separately
    /// (a double copy of `n` bytes reports `2n`).
    pub bytes_moved: usize,
    /// Number of distinct copy passes over the payload.
    pub copies: usize,
    /// System calls performed (CMA reads, XPMEM attach, …).
    pub syscalls: usize,
    /// Page faults taken (XPMEM first touch).
    pub page_faults: usize,
    /// Bytes staged through an intermediate buffer (POSIX-SHMEM segment).
    pub staged_bytes: usize,
}

impl CopyStats {
    /// Merge another transfer's stats into this one.
    pub fn merge(&mut self, other: &CopyStats) {
        self.bytes_moved += other.bytes_moved;
        self.copies += other.copies;
        self.syscalls += other.syscalls;
        self.page_faults += other.page_faults;
        self.staged_bytes += other.staged_bytes;
    }
}

/// Cost model for one intra-node mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntranodeCost {
    /// The mechanism being modelled.
    pub mechanism: IntranodeMechanism,
    /// Fixed software overhead per transfer (queue handling, header setup).
    pub per_transfer_overhead: Nanos,
    /// Cost of one system call, charged `syscalls_per_transfer` times.
    pub syscall_cost: Nanos,
    /// System calls charged on every transfer.
    pub syscalls_per_transfer: usize,
    /// One-time setup cost for a new peer buffer (XPMEM attach); amortized by
    /// the registration cache, so charged only on `first_use`.
    pub setup_cost: Nanos,
    /// Cost of a soft page fault, charged per 4 KiB page on first touch.
    pub page_fault_cost: Nanos,
    /// Copy cost per byte (inverse of sustained single-core copy bandwidth).
    pub per_byte_copy: Nanos,
    /// Number of copy passes over the payload per transfer.
    pub copies: usize,
}

/// Bytes per page used for first-touch page-fault accounting.
pub const PAGE_SIZE: usize = 4096;

impl IntranodeCost {
    /// Default calibration for `mechanism` (see module docs for provenance).
    pub fn defaults_for(mechanism: IntranodeMechanism) -> Self {
        // ~13 GB/s sustained single-core copy bandwidth on Broadwell.
        let per_byte_copy = 0.077;
        match mechanism {
            IntranodeMechanism::Pip => Self {
                mechanism,
                per_transfer_overhead: 60.0,
                syscall_cost: 0.0,
                syscalls_per_transfer: 0,
                setup_cost: 0.0,
                page_fault_cost: 0.0,
                per_byte_copy,
                copies: 1,
            },
            IntranodeMechanism::PosixShmem => Self {
                mechanism,
                per_transfer_overhead: 90.0,
                syscall_cost: 0.0,
                syscalls_per_transfer: 0,
                setup_cost: 0.0,
                page_fault_cost: 0.0,
                per_byte_copy,
                copies: 2,
            },
            IntranodeMechanism::Cma => Self {
                mechanism,
                per_transfer_overhead: 80.0,
                syscall_cost: 450.0,
                syscalls_per_transfer: 1,
                setup_cost: 0.0,
                page_fault_cost: 0.0,
                per_byte_copy,
                copies: 1,
            },
            IntranodeMechanism::Xpmem => Self {
                mechanism,
                per_transfer_overhead: 80.0,
                syscall_cost: 0.0,
                syscalls_per_transfer: 0,
                setup_cost: 2600.0,
                page_fault_cost: 1100.0,
                per_byte_copy,
                copies: 1,
            },
        }
    }

    /// Latency of transferring `bytes` bytes.
    ///
    /// `first_use` selects whether setup (attach) and first-touch page-fault
    /// costs apply; steady-state collective loops pass `false` because the
    /// buffers are registered and warm after the first iteration, which is
    /// how the paper benchmarks (OSU-style loops) behave.
    pub fn transfer_cost(&self, bytes: usize, first_use: bool) -> Nanos {
        let mut cost = self.per_transfer_overhead
            + self.syscall_cost * self.syscalls_per_transfer as Nanos
            + self.per_byte_copy * (bytes * self.copies) as Nanos;
        if first_use {
            cost += self.setup_cost;
            let pages = bytes.div_ceil(PAGE_SIZE).max(1);
            cost += self.page_fault_cost * pages as Nanos;
        }
        cost
    }

    /// Latency of a zero-byte synchronization through this mechanism
    /// (flag write + flag read).
    pub fn signal_cost(&self) -> Nanos {
        self.per_transfer_overhead + self.syscall_cost * self.syscalls_per_transfer as Nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pip_is_cheapest_for_small_messages() {
        let bytes = 64;
        let pip = IntranodeCost::defaults_for(IntranodeMechanism::Pip).transfer_cost(bytes, false);
        for mechanism in [
            IntranodeMechanism::PosixShmem,
            IntranodeMechanism::Cma,
            IntranodeMechanism::Xpmem,
        ] {
            let other = IntranodeCost::defaults_for(mechanism).transfer_cost(bytes, false);
            assert!(
                pip <= other,
                "PiP ({pip}) should not cost more than {mechanism:?} ({other}) at {bytes} B"
            );
        }
    }

    #[test]
    fn cma_syscall_dominates_small_messages() {
        let cma = IntranodeCost::defaults_for(IntranodeMechanism::Cma);
        let small = cma.transfer_cost(16, false);
        assert!(
            small > 450.0,
            "16 B CMA transfer ({small} ns) must pay the syscall"
        );
    }

    #[test]
    fn double_copy_hurts_posix_shmem_for_large_messages() {
        let shmem = IntranodeCost::defaults_for(IntranodeMechanism::PosixShmem);
        let pip = IntranodeCost::defaults_for(IntranodeMechanism::Pip);
        let bytes = 1 << 20;
        let ratio = shmem.transfer_cost(bytes, false) / pip.transfer_cost(bytes, false);
        assert!(
            ratio > 1.8,
            "POSIX-SHMEM should approach 2x PiP for 1 MiB, got {ratio:.2}x"
        );
    }

    #[test]
    fn xpmem_first_use_pays_attach_and_faults() {
        let xpmem = IntranodeCost::defaults_for(IntranodeMechanism::Xpmem);
        let cold = xpmem.transfer_cost(8192, true);
        let warm = xpmem.transfer_cost(8192, false);
        assert!(cold > warm + 2600.0);
    }

    #[test]
    fn copies_per_transfer_matches_cost_model() {
        for mechanism in IntranodeMechanism::ALL {
            let cost = IntranodeCost::defaults_for(mechanism);
            assert_eq!(cost.copies, mechanism.copies_per_transfer());
            assert_eq!(
                cost.syscalls_per_transfer > 0,
                mechanism.syscall_per_transfer()
            );
        }
    }

    #[test]
    fn copy_stats_merge_accumulates() {
        let mut a = CopyStats {
            bytes_moved: 10,
            copies: 1,
            syscalls: 1,
            page_faults: 0,
            staged_bytes: 0,
        };
        let b = CopyStats {
            bytes_moved: 20,
            copies: 2,
            syscalls: 0,
            page_faults: 3,
            staged_bytes: 20,
        };
        a.merge(&b);
        assert_eq!(a.bytes_moved, 30);
        assert_eq!(a.copies, 3);
        assert_eq!(a.syscalls, 1);
        assert_eq!(a.page_faults, 3);
        assert_eq!(a.staged_bytes, 20);
    }

    proptest! {
        #[test]
        fn prop_cost_is_monotone_in_size(bytes in 0usize..(1 << 22), extra in 1usize..4096) {
            for mechanism in IntranodeMechanism::ALL {
                let cost = IntranodeCost::defaults_for(mechanism);
                prop_assert!(cost.transfer_cost(bytes + extra, false) >= cost.transfer_cost(bytes, false));
            }
        }

        #[test]
        fn prop_first_use_never_cheaper(bytes in 0usize..(1 << 20)) {
            for mechanism in IntranodeMechanism::ALL {
                let cost = IntranodeCost::defaults_for(mechanism);
                prop_assert!(cost.transfer_cost(bytes, true) >= cost.transfer_cost(bytes, false));
            }
        }

        #[test]
        fn prop_costs_are_finite_and_positive(bytes in 0usize..(1 << 24)) {
            for mechanism in IntranodeMechanism::ALL {
                let cost = IntranodeCost::defaults_for(mechanism).transfer_cost(bytes, false);
                prop_assert!(cost.is_finite());
                prop_assert!(cost > 0.0);
            }
        }
    }
}
