//! The inter-node network model: a LogGP-style description of the Intel
//! Omni-Path adapter from the paper's testbed (100 Gb/s, ~97 M messages/s)
//! extended with the distinction that motivates the multi-object design:
//!
//! * every *process* pays a host-side overhead `o` for each message it sends
//!   or receives, which limits a single process to roughly `1/o` messages per
//!   second, while
//! * the *NIC* can accept a new message every `g_nic` nanoseconds (its
//!   aggregate message rate) and streams payload at the link bandwidth `G`.
//!
//! Because `o` is an order of magnitude larger than `g_nic` for small
//! messages, one sender per node (the classic single-leader hierarchical
//! collective) leaves the adapter mostly idle; eighteen concurrent senders —
//! the paper's multi-object design — approach the adapter's message rate.
//! The discrete-event simulator serializes per-process work at `o`, per-node
//! injection at `g_nic`/`G`, and adds the wire latency `L`.

use serde::{Deserialize, Serialize};

use crate::cost::Nanos;

/// Parameters of one NIC / one link in LogGP-with-rate-caps form.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NicParams {
    /// Wire + switch latency, one direction (LogGP `L`).
    pub wire_latency: Nanos,
    /// Host CPU time to initiate a send (LogGP `o`, sender side).
    pub send_overhead_base: Nanos,
    /// Additional sender host time per payload byte (header build, copy to
    /// the injection buffer for eager messages).
    pub send_overhead_per_byte: Nanos,
    /// Host CPU time to complete a receive (LogGP `o`, receiver side).
    pub recv_overhead_base: Nanos,
    /// Additional receiver host time per payload byte.
    pub recv_overhead_per_byte: Nanos,
    /// Minimum interval between two messages entering the NIC, i.e. the
    /// inverse of the adapter's aggregate message rate (LogGP `g`).
    pub nic_message_gap: Nanos,
    /// Link bandwidth in bytes per nanosecond (inverse of LogGP `G`).
    pub bytes_per_ns: f64,
}

impl NicParams {
    /// The paper's testbed adapter: Intel Omni-Path, 100 Gb/s, a maximum
    /// message rate of 97 million messages per second.
    pub fn omni_path_hpdc23() -> Self {
        Self {
            wire_latency: 900.0,
            send_overhead_base: 280.0,
            send_overhead_per_byte: 0.012,
            recv_overhead_base: 300.0,
            recv_overhead_per_byte: 0.012,
            // 97e6 msg/s  =>  one message every ~10.3 ns.
            nic_message_gap: 1e9 / 97e6,
            // 100 Gb/s = 12.5 GB/s = 12.5 bytes/ns.
            bytes_per_ns: 12.5,
        }
    }

    /// A slower commodity fabric (useful for sensitivity studies): 25 Gb/s,
    /// 20 M msg/s, higher latency.
    pub fn commodity_25g() -> Self {
        Self {
            wire_latency: 1800.0,
            send_overhead_base: 450.0,
            send_overhead_per_byte: 0.02,
            recv_overhead_base: 500.0,
            recv_overhead_per_byte: 0.02,
            nic_message_gap: 1e9 / 20e6,
            bytes_per_ns: 3.125,
        }
    }

    /// Validate that the parameters are physically meaningful.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("wire_latency", self.wire_latency),
            ("send_overhead_base", self.send_overhead_base),
            ("send_overhead_per_byte", self.send_overhead_per_byte),
            ("recv_overhead_base", self.recv_overhead_base),
            ("recv_overhead_per_byte", self.recv_overhead_per_byte),
            ("nic_message_gap", self.nic_message_gap),
        ];
        for (name, value) in fields {
            if !value.is_finite() || value < 0.0 {
                return Err(format!(
                    "{name} must be finite and non-negative, got {value}"
                ));
            }
        }
        if !(self.bytes_per_ns.is_finite() && self.bytes_per_ns > 0.0) {
            return Err(format!(
                "bytes_per_ns must be positive, got {}",
                self.bytes_per_ns
            ));
        }
        Ok(())
    }
}

impl Default for NicParams {
    fn default() -> Self {
        Self::omni_path_hpdc23()
    }
}

/// Cost queries over a [`NicParams`], used by the simulator and by analytic
/// sanity checks in tests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NicModel {
    params: NicParams,
}

impl NicModel {
    /// Wrap a parameter set.
    pub fn new(params: NicParams) -> Self {
        Self { params }
    }

    /// The underlying parameters.
    pub fn params(&self) -> &NicParams {
        &self.params
    }

    /// Sender host CPU time for one message of `bytes` payload bytes.
    pub fn host_send_overhead(&self, bytes: usize) -> Nanos {
        self.params.send_overhead_base + self.params.send_overhead_per_byte * bytes as Nanos
    }

    /// Receiver host CPU time for one message of `bytes` payload bytes.
    pub fn host_recv_overhead(&self, bytes: usize) -> Nanos {
        self.params.recv_overhead_base + self.params.recv_overhead_per_byte * bytes as Nanos
    }

    /// Time the NIC is occupied injecting one message of `bytes` bytes: the
    /// larger of the per-message gap and the payload serialization time.
    pub fn nic_occupancy(&self, bytes: usize) -> Nanos {
        let serialization = bytes as Nanos / self.params.bytes_per_ns;
        serialization.max(self.params.nic_message_gap)
    }

    /// One-way wire latency.
    pub fn wire_latency(&self) -> Nanos {
        self.params.wire_latency
    }

    /// End-to-end latency of a single isolated message (no contention):
    /// `o_send + occupancy + L + o_recv`.
    pub fn isolated_message_latency(&self, bytes: usize) -> Nanos {
        self.host_send_overhead(bytes)
            + self.nic_occupancy(bytes)
            + self.wire_latency()
            + self.host_recv_overhead(bytes)
    }

    /// Messages per second a single sending process can sustain (limited by
    /// its host overhead).
    pub fn single_process_message_rate(&self, bytes: usize) -> f64 {
        1e9 / self
            .host_send_overhead(bytes)
            .max(self.nic_occupancy(bytes))
    }

    /// Messages per second `senders` concurrent processes on one node can
    /// sustain through one adapter — the quantity the multi-object design
    /// maximizes.  Bounded by the adapter's aggregate message rate.
    pub fn node_message_rate(&self, senders: usize, bytes: usize) -> f64 {
        if senders == 0 {
            return 0.0;
        }
        let host_limited = senders as f64 * 1e9 / self.host_send_overhead(bytes);
        let nic_limited = 1e9 / self.nic_occupancy(bytes);
        host_limited.min(nic_limited)
    }

    /// Achievable node throughput in bytes per second with `senders`
    /// concurrent sender processes and `bytes`-byte messages.
    pub fn node_throughput(&self, senders: usize, bytes: usize) -> f64 {
        self.node_message_rate(senders, bytes) * bytes as f64
    }
}

impl Default for NicModel {
    fn default() -> Self {
        Self::new(NicParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn omni_path_parameters_match_paper_testbed() {
        let params = NicParams::omni_path_hpdc23();
        params.validate().unwrap();
        // 100 Gbps.
        assert!((params.bytes_per_ns - 12.5).abs() < 1e-9);
        // 97 M msg/s aggregate.
        let rate = 1e9 / params.nic_message_gap;
        assert!((rate - 97e6).abs() / 97e6 < 1e-6);
    }

    #[test]
    fn single_process_cannot_saturate_the_nic_message_rate() {
        let nic = NicModel::default();
        let single = nic.single_process_message_rate(64);
        let adapter = 1e9 / nic.nic_occupancy(64);
        assert!(
            single < adapter / 5.0,
            "one process ({single:.0} msg/s) should be far below the adapter ({adapter:.0} msg/s)"
        );
    }

    #[test]
    fn multi_object_scales_message_rate_until_nic_limit() {
        let nic = NicModel::default();
        let one = nic.node_message_rate(1, 64);
        let eighteen = nic.node_message_rate(18, 64);
        assert!(
            eighteen > 10.0 * one,
            "18 senders ({eighteen:.0}) should be ~18x one sender ({one:.0})"
        );
        // And the adapter cap is respected.
        assert!(eighteen <= 1e9 / nic.nic_occupancy(64) + 1.0);
        let thousand = nic.node_message_rate(1000, 64);
        assert!(thousand <= 1e9 / nic.nic_occupancy(64) + 1.0);
    }

    #[test]
    fn large_messages_become_bandwidth_bound() {
        let nic = NicModel::default();
        let bytes = 1 << 20;
        // Serialization of 1 MiB at 12.5 B/ns is ~84 us, far above the gap.
        assert!(nic.nic_occupancy(bytes) > 80_000.0);
        // Message rate with many senders equals the bandwidth limit.
        let rate = nic.node_message_rate(18, bytes);
        let expected = nic.params().bytes_per_ns * 1e9 / bytes as f64;
        assert!((rate - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn isolated_latency_is_sum_of_components() {
        let nic = NicModel::default();
        let latency = nic.isolated_message_latency(0);
        let params = nic.params();
        let expected = params.send_overhead_base
            + params.nic_message_gap
            + params.wire_latency
            + params.recv_overhead_base;
        assert!((latency - expected).abs() < 1e-9);
    }

    #[test]
    fn zero_senders_have_zero_rate() {
        let nic = NicModel::default();
        assert_eq!(nic.node_message_rate(0, 64), 0.0);
    }

    #[test]
    fn invalid_params_are_rejected() {
        let no_bandwidth = NicParams {
            bytes_per_ns: 0.0,
            ..NicParams::default()
        };
        assert!(no_bandwidth.validate().is_err());
        let nan_latency = NicParams {
            wire_latency: f64::NAN,
            ..NicParams::default()
        };
        assert!(nan_latency.validate().is_err());
        let negative_overhead = NicParams {
            send_overhead_base: -1.0,
            ..NicParams::default()
        };
        assert!(negative_overhead.validate().is_err());
    }

    proptest! {
        #[test]
        fn prop_node_rate_monotone_in_senders(senders in 1usize..64, bytes in 1usize..65536) {
            let nic = NicModel::default();
            prop_assert!(nic.node_message_rate(senders + 1, bytes) + 1e-6 >= nic.node_message_rate(senders, bytes));
        }

        #[test]
        fn prop_latency_monotone_in_bytes(bytes in 0usize..(1 << 22), extra in 1usize..4096) {
            let nic = NicModel::default();
            prop_assert!(nic.isolated_message_latency(bytes + extra) >= nic.isolated_message_latency(bytes));
        }

        #[test]
        fn prop_throughput_never_exceeds_link_bandwidth(senders in 1usize..64, bytes in 1usize..(1 << 22)) {
            let nic = NicModel::default();
            let throughput = nic.node_throughput(senders, bytes);
            let link = nic.params().bytes_per_ns * 1e9;
            prop_assert!(throughput <= link * 1.0000001);
        }
    }
}
