//! Calibration constants and their provenance.
//!
//! Absolute values are not the point of this reproduction — the paper's
//! testbed cannot be re-measured here — but the *structure* of the costs is:
//! which library pays kernel crossings, which pays double copies, which pays
//! extra synchronization, and what the adapter can absorb.  The constants
//! below are drawn from published measurements for comparable hardware and
//! from the mechanism papers cited in the paper's introduction:
//!
//! * **NIC / link** (`pip_transport::netcard::NicParams::omni_path_hpdc23`):
//!   Intel Omni-Path 100 series — 100 Gb/s, ~97 M msg/s aggregate message
//!   rate (both quoted in the paper, §3), ~0.9 µs port-to-port latency, and
//!   a few hundred nanoseconds of per-message host send/receive processing
//!   (PSM2 microbenchmarks).
//! * **CMA** (`process_vm_readv`): one system call per transfer, ~0.4–0.5 µs
//!   on Broadwell-class Xeons (Chakraborty et al., CLUSTER '17 report
//!   kernel-assisted copies only winning past a few kilobytes for exactly
//!   this reason).
//! * **XPMEM**: attach ~2–3 µs amortized by a registration cache, ~1 µs soft
//!   page fault on first touch of each mapped page (Hashmi et al.,
//!   IPDPS '18).
//! * **POSIX shared memory**: no kernel crossing in steady state but two
//!   copies of every payload through a bounded segment (Parsons & Pai,
//!   IPDPS '14).
//! * **PiP**: plain load/store access to the peer's memory — a single copy,
//!   no kernel involvement (Hori et al., HPDC '18).
//! * **Per-library software overheads**: relative magnitudes follow the
//!   small-message latency differences commonly reported between these
//!   libraries on OPA/InfiniBand fabrics; PiP-MPICH's extra per-message
//!   synchronization is the "message size synchronization" overhead the
//!   paper blames for PiP-MPICH sometimes being the slowest implementation.

use pip_transport::cost::Nanos;

/// Fixed cost charged once per collective invocation (argument checking,
/// schedule selection), identical for all libraries.
pub const GENERIC_COLLECTIVE_SETUP: Nanos = 150.0;

/// Open MPI per-send software overhead beyond the NIC host overhead.
pub const OPENMPI_SEND_OVERHEAD: Nanos = 180.0;
/// Open MPI per-receive software overhead.
pub const OPENMPI_RECV_OVERHEAD: Nanos = 200.0;

/// Intel MPI per-send software overhead.
pub const INTELMPI_SEND_OVERHEAD: Nanos = 120.0;
/// Intel MPI per-receive software overhead.
pub const INTELMPI_RECV_OVERHEAD: Nanos = 140.0;

/// MVAPICH2 per-send software overhead.
pub const MVAPICH2_SEND_OVERHEAD: Nanos = 150.0;
/// MVAPICH2 per-receive software overhead.
pub const MVAPICH2_RECV_OVERHEAD: Nanos = 170.0;

/// PiP-MPICH per-send software overhead (lean MPICH path over PiP).
pub const PIPMPICH_SEND_OVERHEAD: Nanos = 110.0;
/// PiP-MPICH per-receive software overhead.
pub const PIPMPICH_RECV_OVERHEAD: Nanos = 130.0;
/// PiP-MPICH message-size synchronization, paid on every send and receive
/// (the overhead the paper identifies in §3 as making PiP-MPICH sometimes
/// the slowest implementation).
pub const PIPMPICH_SIZE_SYNC: Nanos = 650.0;

/// PiP-MColl per-send software overhead (the paper's design removes the
/// synchronization and most of the matching work from the critical path).
pub const PIPMCOLL_SEND_OVERHEAD: Nanos = 100.0;
/// PiP-MColl per-receive software overhead.
pub const PIPMCOLL_RECV_OVERHEAD: Nanos = 120.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_are_positive_and_sub_microsecond() {
        for value in [
            OPENMPI_SEND_OVERHEAD,
            OPENMPI_RECV_OVERHEAD,
            INTELMPI_SEND_OVERHEAD,
            INTELMPI_RECV_OVERHEAD,
            MVAPICH2_SEND_OVERHEAD,
            MVAPICH2_RECV_OVERHEAD,
            PIPMPICH_SEND_OVERHEAD,
            PIPMPICH_RECV_OVERHEAD,
            PIPMCOLL_SEND_OVERHEAD,
            PIPMCOLL_RECV_OVERHEAD,
        ] {
            assert!(value > 0.0 && value < 1000.0);
        }
    }

    #[test]
    fn size_sync_dominates_ordinary_software_overheads() {
        const {
            assert!(PIPMPICH_SIZE_SYNC > OPENMPI_SEND_OVERHEAD);
            assert!(PIPMPICH_SIZE_SYNC > MVAPICH2_RECV_OVERHEAD);
        }
    }

    #[test]
    fn pip_mcoll_has_the_leanest_software_path() {
        const {
            assert!(PIPMCOLL_SEND_OVERHEAD <= PIPMPICH_SEND_OVERHEAD);
            assert!(PIPMCOLL_SEND_OVERHEAD <= INTELMPI_SEND_OVERHEAD);
            assert!(PIPMCOLL_SEND_OVERHEAD <= OPENMPI_SEND_OVERHEAD);
        }
    }
}
