//! Dispatching a collective call to the algorithm a library would select.
//!
//! [`execute`] is generic over the communicator, so the same code path is
//! used to run a collective for real on the thread runtime and to record it
//! for the simulator.  The `record_*` helpers build the paper's workloads
//! (per-process message sizes on a given topology) and produce validated
//! traces, which is what the figure binaries and Criterion benches consume.

use pip_collectives::comm::{record_trace, Comm};
use pip_collectives::datatype::{Layout, OwnedReduction, ReduceOp, Reduction};
use pip_collectives::plan::{PlanCursor, RankPlan};
use pip_collectives::{
    binomial, bruck, hierarchical, multi_object, recursive_doubling, recursive_halving, ring, scan,
};
use pip_netsim::trace::Trace;
use pip_runtime::Topology;

use pip_collectives::CollectiveKind;

use crate::selection::{
    AllgatherAlgo, AllreduceAlgo, AlltoallAlgo, BcastAlgo, GatherAlgo, ReduceAlgo,
    ReduceScatterAlgo, ScanAlgo, ScatterAlgo,
};
use crate::LibraryProfile;

/// A collective invocation, expressed over raw byte buffers (the `core`
/// crate layers typed buffers on top).
pub enum CollectiveRequest<'a> {
    /// MPI_Allgather: `sendbuf` is this rank's block, `recvbuf` holds one
    /// block per rank on return.
    Allgather {
        /// Contribution of the calling rank.
        sendbuf: &'a [u8],
        /// Receives every rank's contribution.
        recvbuf: &'a mut [u8],
    },
    /// MPI_Scatter from `root`.
    Scatter {
        /// Root's send buffer (one block per rank); `None` on other ranks.
        sendbuf: Option<&'a [u8]>,
        /// Receives the calling rank's block.
        recvbuf: &'a mut [u8],
        /// Root rank.
        root: usize,
    },
    /// MPI_Bcast from `root`.
    Bcast {
        /// Payload; holds the root's data on return.
        buf: &'a mut [u8],
        /// Root rank.
        root: usize,
    },
    /// MPI_Gather to `root`.
    Gather {
        /// Contribution of the calling rank.
        sendbuf: &'a [u8],
        /// Root's receive buffer (one block per rank); `None` elsewhere.
        recvbuf: Option<&'a mut [u8]>,
        /// Root rank.
        root: usize,
    },
    /// MPI_Allreduce with a commutative operator.
    Allreduce {
        /// Contribution on entry, reduced vector on return.  With a
        /// non-contiguous `layout` this is the strided caller buffer of
        /// `layout.extent() * op.elem_size()` bytes; elements in the
        /// layout's gaps are left untouched.
        buf: &'a mut [u8],
        /// The reduction operator (typed kernel, registered
        /// [`pip_collectives::Op`], or opaque byte closure).
        op: Reduction<'a>,
        /// Optional derived datatype describing which elements of `buf`
        /// participate, in *element* units (an `MPI_Type_vector`).  `None`
        /// means the whole buffer is contiguous payload.
        layout: Option<Layout>,
        /// Optional error-bounded lossy compression of large transfers
        /// (`None` = exact).  Only meaningful for float element types on
        /// the planned dispatch path; the direct path and non-float
        /// operators ignore it and stay exact.
        compress: Option<crate::plan::CompressSpec>,
    },
    /// MPI_Reduce to `root` with a commutative operator.
    Reduce {
        /// Contribution of the calling rank.
        sendbuf: &'a [u8],
        /// Root's receive buffer (same length as `sendbuf`); `None`
        /// elsewhere.
        recvbuf: Option<&'a mut [u8]>,
        /// Root rank.
        root: usize,
        /// The reduction operator (typed kernel or opaque byte closure).
        op: Reduction<'a>,
    },
    /// MPI_Reduce_scatter_block with a commutative operator.
    ReduceScatter {
        /// One block per rank (`world * recvbuf.len()` bytes).
        sendbuf: &'a [u8],
        /// Receives this rank's fully reduced block.
        recvbuf: &'a mut [u8],
        /// The reduction operator (typed kernel or opaque byte closure).
        op: Reduction<'a>,
    },
    /// MPI_Scan (inclusive prefix) with a commutative operator.
    Scan {
        /// Contribution on entry; combination of ranks `0..=rank` on return.
        buf: &'a mut [u8],
        /// The reduction operator (typed kernel or opaque byte closure).
        op: Reduction<'a>,
    },
    /// MPI_Exscan (exclusive prefix) with a commutative operator.  Rank 0's
    /// buffer is left untouched (MPI leaves it undefined).
    Exscan {
        /// Contribution on entry; combination of ranks `0..rank` on return.
        buf: &'a mut [u8],
        /// The reduction operator (typed kernel or opaque byte closure).
        op: Reduction<'a>,
    },
    /// MPI_Alltoall.
    Alltoall {
        /// One block per destination rank.
        sendbuf: &'a [u8],
        /// One block per source rank on return.
        recvbuf: &'a mut [u8],
    },
    /// MPI_Barrier.
    Barrier,
}

/// Execute `request` on `comm` using the algorithms `profile` selects.
///
/// `tag` must be unique per outstanding collective on the communicator
/// (callers typically use a per-communicator sequence number shifted left).
pub fn execute<C: Comm>(
    profile: &LibraryProfile,
    comm: &C,
    request: CollectiveRequest<'_>,
    tag: u64,
) {
    comm.delay(profile.per_collective_setup);
    let world = comm.world_size();
    match request {
        CollectiveRequest::Allgather { sendbuf, recvbuf } => {
            match profile.selection.allgather_for(sendbuf.len(), world) {
                AllgatherAlgo::Bruck => bruck::allgather_bruck(comm, sendbuf, recvbuf, tag),
                AllgatherAlgo::RecursiveDoubling => {
                    recursive_doubling::allgather_recursive_doubling(comm, sendbuf, recvbuf, tag)
                }
                AllgatherAlgo::Ring => ring::allgather_ring(comm, sendbuf, recvbuf, tag),
                AllgatherAlgo::Hierarchical => {
                    hierarchical::allgather_hierarchical(comm, sendbuf, recvbuf, tag)
                }
                AllgatherAlgo::MultiObject => {
                    multi_object::allgather_multi_object(comm, sendbuf, recvbuf, tag)
                }
            }
        }
        CollectiveRequest::Scatter {
            sendbuf,
            recvbuf,
            root,
        } => match profile.selection.scatter {
            ScatterAlgo::Binomial => binomial::scatter_binomial(comm, sendbuf, recvbuf, root, tag),
            ScatterAlgo::Hierarchical => {
                hierarchical::scatter_hierarchical(comm, sendbuf, recvbuf, root, tag)
            }
            ScatterAlgo::MultiObject => {
                multi_object::scatter_multi_object(comm, sendbuf, recvbuf, root, tag)
            }
        },
        CollectiveRequest::Bcast { buf, root } => match profile.selection.bcast {
            BcastAlgo::Binomial => binomial::bcast_binomial(comm, buf, root, tag),
            BcastAlgo::Hierarchical => hierarchical::bcast_hierarchical(comm, buf, root, tag),
            BcastAlgo::MultiObject => multi_object::bcast_multi_object(comm, buf, root, tag),
        },
        CollectiveRequest::Gather {
            sendbuf,
            recvbuf,
            root,
        } => match profile.selection.gather {
            GatherAlgo::Binomial => binomial::gather_binomial(comm, sendbuf, recvbuf, root, tag),
            GatherAlgo::MultiObject => {
                multi_object::gather_multi_object(comm, sendbuf, recvbuf, root, tag)
            }
        },
        CollectiveRequest::Allreduce {
            buf, op, layout, ..
        } => {
            let f = op.as_fn();
            let elem = op.elem_size();
            match layout
                .map(|l| l.scaled(elem))
                .filter(|l| !l.is_contiguous())
            {
                Some(l) => {
                    // Derived datatype: gather the strided elements into a
                    // packed scratch vector, reduce that contiguously, then
                    // scatter the result back without disturbing the gaps.
                    let mut packed = Vec::with_capacity(l.packed_len());
                    l.pack_bytes(buf, &mut packed);
                    allreduce_bytes(profile, comm, &mut packed, elem, f, tag);
                    l.unpack_bytes(&packed, buf);
                }
                None => allreduce_bytes(profile, comm, buf, elem, f, tag),
            }
        }
        CollectiveRequest::Reduce {
            sendbuf,
            recvbuf,
            root,
            op,
        } => {
            let f = op.as_fn();
            match profile.selection.reduce {
                ReduceAlgo::Binomial => {
                    binomial::reduce_binomial(comm, sendbuf, recvbuf, f, root, tag)
                }
                ReduceAlgo::MultiObject => multi_object::reduce_multi_object(
                    comm,
                    sendbuf,
                    recvbuf,
                    op.elem_size(),
                    f,
                    root,
                    tag,
                ),
            }
        }
        CollectiveRequest::ReduceScatter {
            sendbuf,
            recvbuf,
            op,
        } => {
            let f = op.as_fn();
            match profile.selection.reduce_scatter_for(recvbuf.len()) {
                ReduceScatterAlgo::RecursiveHalving => {
                    recursive_halving::reduce_scatter_recursive_halving(
                        comm, sendbuf, recvbuf, f, tag,
                    )
                }
                ReduceScatterAlgo::Ring => {
                    ring::reduce_scatter_ring(comm, sendbuf, recvbuf, f, tag)
                }
                ReduceScatterAlgo::MultiObject => multi_object::reduce_scatter_multi_object(
                    comm,
                    sendbuf,
                    recvbuf,
                    op.elem_size(),
                    f,
                    tag,
                ),
            }
        }
        CollectiveRequest::Scan { buf, op } => match profile.selection.scan {
            ScanAlgo::RecursiveDoubling => {
                scan::scan_recursive_doubling(comm, buf, op.as_fn(), tag)
            }
            ScanAlgo::Linear => scan::scan_linear(comm, buf, op.as_fn(), tag),
        },
        CollectiveRequest::Exscan { buf, op } => match profile.selection.scan {
            ScanAlgo::RecursiveDoubling => {
                scan::exscan_recursive_doubling(comm, buf, op.as_fn(), tag)
            }
            ScanAlgo::Linear => scan::exscan_linear(comm, buf, op.as_fn(), tag),
        },
        CollectiveRequest::Alltoall { sendbuf, recvbuf } => match profile.selection.alltoall {
            AlltoallAlgo::Bruck => bruck::alltoall_bruck(comm, sendbuf, recvbuf, tag),
            AlltoallAlgo::MultiObject => {
                multi_object::alltoall_multi_object(comm, sendbuf, recvbuf, tag)
            }
        },
        CollectiveRequest::Barrier => recursive_doubling::barrier_dissemination(comm, tag),
    }
}

/// Run the selected allreduce algorithm over a contiguous byte vector —
/// the common tail of the contiguous and packed (derived-datatype) paths.
fn allreduce_bytes<C: Comm>(
    profile: &LibraryProfile,
    comm: &C,
    buf: &mut [u8],
    elem_size: usize,
    f: &pip_collectives::ReduceFn<'_>,
    tag: u64,
) {
    match profile
        .selection
        .allreduce_for_fabric(buf.len(), profile.fabric)
    {
        AllreduceAlgo::RecursiveDoubling => {
            recursive_doubling::allreduce_recursive_doubling(comm, buf, f, tag)
        }
        AllreduceAlgo::Ring => ring::allreduce_ring(comm, buf, elem_size, f, tag),
        AllreduceAlgo::Hierarchical => hierarchical::allreduce_hierarchical(comm, buf, f, tag),
        AllreduceAlgo::MultiObject => {
            multi_object::allreduce_multi_object(comm, buf, elem_size, f, tag)
        }
    }
}

impl CollectiveRequest<'_> {
    /// Whether this is a reduction whose operator carries **no identity**
    /// (an anonymous [`Reduction::Opaque`] closure).  Such an invocation
    /// must never populate the plan cache: the key would collapse to
    /// `(kind, size)` alone, so a *different* anonymous operator of the
    /// same width would replay the first one's plan.  Callers who want the
    /// cached fast path register an [`pip_collectives::Op`] instead.
    fn has_anonymous_reduction(&self) -> bool {
        match self {
            CollectiveRequest::Allreduce { op, .. }
            | CollectiveRequest::Reduce { op, .. }
            | CollectiveRequest::ReduceScatter { op, .. }
            | CollectiveRequest::Scan { op, .. }
            | CollectiveRequest::Exscan { op, .. } => op.ident().is_none(),
            _ => false,
        }
    }
}

/// Execute `request` through the per-communicator plan cache: look the
/// invocation's shape up, compile the rank's plan on a miss, then run the
/// compiled program — the hot path of repeated collectives never
/// re-interprets the algorithm.
///
/// Shapes whose buffer footprint exceeds
/// [`crate::plan::EXEC_PLAN_MAX_BYTES`] skip the plan path and execute the
/// algorithm directly: the fingerprint compile's cost scales with buffer
/// bytes, and large messages are bandwidth-bound, so compiling them buys
/// nothing.
pub fn execute_planned<C: Comm>(
    profile: &LibraryProfile,
    comm: &C,
    request: CollectiveRequest<'_>,
    tag: u64,
    cache: &mut crate::plan::PlanCache,
) {
    if request.has_anonymous_reduction() {
        // Anonymous opaque operators have no identity to key the cache
        // with; caching them would alias distinct operators of the same
        // element width onto one plan (see `has_anonymous_reduction`).
        cache.note_bypass();
        execute(profile, comm, request, tag);
        return;
    }
    let world = comm.world_size();
    let shape = crate::plan::CollectiveShape::of(&request, world);
    if shape.buffer_footprint(world) > crate::plan::EXEC_PLAN_MAX_BYTES {
        cache.note_bypass();
        execute(profile, comm, request, tag);
        return;
    }
    let plan = cache.lookup_or_compile(profile, comm.topology(), comm.rank(), &shape);
    let arena = cache.arena();
    crate::plan::run_planned_reusing(&plan, comm, request, tag, &mut arena.borrow_mut());
}

/// A collective invocation over **owned** byte buffers — the form the
/// non-blocking and persistent APIs need, since a request outlives the call
/// frame that created it.
///
/// The variants mirror [`CollectiveRequest`] minus the receive buffers:
/// output buffers are allocated by [`OwnedCollective::into_io`] to match the
/// compiled plan's shape (so non-root scatter/gather ranks allocate
/// nothing).
#[derive(Debug)]
pub enum OwnedCollective {
    /// MPI_Iallgather / MPI_Allgather_init.
    Allgather {
        /// Contribution of the calling rank.
        sendbuf: Vec<u8>,
    },
    /// MPI_Iscatter / MPI_Scatter_init from `root`.
    Scatter {
        /// Root's send buffer (one block per rank); `None` on other ranks.
        sendbuf: Option<Vec<u8>>,
        /// Per-rank block size in bytes.
        block: usize,
        /// Root rank.
        root: usize,
    },
    /// MPI_Ibcast / MPI_Bcast_init from `root`.
    Bcast {
        /// In/out payload; significant at the root on entry.
        buf: Vec<u8>,
        /// Root rank.
        root: usize,
    },
    /// MPI_Igather / MPI_Gather_init to `root`.
    Gather {
        /// Contribution of the calling rank.
        sendbuf: Vec<u8>,
        /// Root rank.
        root: usize,
    },
    /// MPI_Iallreduce / MPI_Allreduce_init (operator supplied separately to
    /// the progress engine).
    Allreduce {
        /// In/out contribution.  With a non-contiguous `layout` this holds
        /// `layout.extent() * op.elem_size()` bytes.
        buf: Vec<u8>,
        /// The reduction operator; its identity (builtin `(datatype, op)`
        /// pair or registered user-op id) keys the plan cache, its byte
        /// closure is what the progress engine runs.
        op: OwnedReduction,
        /// Optional derived datatype in element units; see
        /// [`CollectiveRequest::Allreduce`].
        layout: Option<Layout>,
        /// Optional error-bounded lossy compression; see
        /// [`CollectiveRequest::Allreduce`].
        compress: Option<crate::plan::CompressSpec>,
    },
    /// MPI_Ireduce / MPI_Reduce_init to `root` (operator supplied separately
    /// to the progress engine).
    Reduce {
        /// Contribution of the calling rank.
        sendbuf: Vec<u8>,
        /// Root rank.
        root: usize,
        /// The reduction operator; its identity keys the plan cache, its
        /// byte closure is what the progress engine runs.
        op: OwnedReduction,
    },
    /// MPI_Ireduce_scatter / MPI_Reduce_scatter_init (operator supplied
    /// separately).
    ReduceScatter {
        /// One block per rank (`world * block` bytes).
        sendbuf: Vec<u8>,
        /// The reduction operator; its identity keys the plan cache, its
        /// byte closure is what the progress engine runs.
        op: OwnedReduction,
    },
    /// MPI_Iscan / MPI_Scan_init (operator supplied separately).
    Scan {
        /// In/out contribution.
        buf: Vec<u8>,
        /// The reduction operator; its identity keys the plan cache, its
        /// byte closure is what the progress engine runs.
        op: OwnedReduction,
    },
    /// MPI_Iexscan / MPI_Exscan_init (operator supplied separately).
    Exscan {
        /// In/out contribution.
        buf: Vec<u8>,
        /// The reduction operator; its identity keys the plan cache, its
        /// byte closure is what the progress engine runs.
        op: OwnedReduction,
    },
    /// MPI_Ialltoall / MPI_Alltoall_init.
    Alltoall {
        /// One block per destination rank.
        sendbuf: Vec<u8>,
    },
}

impl OwnedCollective {
    /// The [`crate::plan::CollectiveShape`] of this invocation on a world
    /// of `world` ranks — the plan-cache key component, identical to what
    /// the blocking path derives via [`crate::plan::CollectiveShape::of`].
    pub fn shape(&self, world: usize) -> crate::plan::CollectiveShape {
        // Allreduce is the one variant that carries a derived datatype and
        // a compression spec; normalize both exactly like the borrowed path
        // so the two request forms key the same cache entry.
        if let OwnedCollective::Allreduce {
            buf,
            op,
            layout,
            compress,
        } = self
        {
            let layout = layout.filter(|l| !l.is_contiguous());
            let block = layout.map_or(buf.len(), |l| l.packed_len() * op.elem_size());
            return crate::plan::CollectiveShape {
                kind: CollectiveKind::Allreduce,
                block,
                root: 0,
                elem_size: op.elem_size(),
                reduce: Some(op.ident()),
                layout,
                compress: compress.and_then(|spec| spec.normalized_for(block)),
            };
        }
        let (kind, block, root, op) = match self {
            OwnedCollective::Allgather { sendbuf } => {
                (CollectiveKind::Allgather, sendbuf.len(), 0, None)
            }
            OwnedCollective::Scatter { block, root, .. } => {
                (CollectiveKind::Scatter, *block, *root, None)
            }
            OwnedCollective::Bcast { buf, root } => (CollectiveKind::Bcast, buf.len(), *root, None),
            OwnedCollective::Gather { sendbuf, root } => {
                (CollectiveKind::Gather, sendbuf.len(), *root, None)
            }
            OwnedCollective::Allreduce { .. } => unreachable!("handled above"),
            OwnedCollective::Reduce { sendbuf, root, op } => {
                (CollectiveKind::Reduce, sendbuf.len(), *root, Some(op))
            }
            OwnedCollective::ReduceScatter { sendbuf, op } => (
                CollectiveKind::ReduceScatter,
                sendbuf.len() / world.max(1),
                0,
                Some(op),
            ),
            OwnedCollective::Scan { buf, op } => (CollectiveKind::Scan, buf.len(), 0, Some(op)),
            OwnedCollective::Exscan { buf, op } => (CollectiveKind::Exscan, buf.len(), 0, Some(op)),
            OwnedCollective::Alltoall { sendbuf } => (
                CollectiveKind::Alltoall,
                sendbuf.len() / world.max(1),
                0,
                None,
            ),
        };
        crate::plan::CollectiveShape {
            kind,
            block,
            root,
            elem_size: op.map_or(1, |o| o.elem_size()),
            reduce: op.map(|o| o.ident()),
            layout: None,
            compress: None,
        }
    }

    /// Split into the `(sendbuf, recvbuf)` pair a [`PlanCursor`] takes,
    /// allocating the receive buffer to the shape `plan` declares.  In/out
    /// collectives (bcast, allreduce) travel in the receive slot, and
    /// buffers that are insignificant at this rank (non-root scatter send,
    /// non-root gather receive) come out as `None`.
    pub fn into_io(self, plan: &RankPlan) -> (Option<Vec<u8>>, Option<Vec<u8>>) {
        match self {
            OwnedCollective::Allgather { sendbuf } | OwnedCollective::Alltoall { sendbuf } => {
                let recvbuf = plan.io.recvbuf.map(|len| vec![0u8; len]);
                (Some(sendbuf), recvbuf)
            }
            OwnedCollective::Scatter { sendbuf, .. } => {
                // MPI semantics: significant only at the root; drop a buffer
                // a non-root caller supplied anyway.
                let sendbuf = if plan.io.sendbuf.is_some() {
                    sendbuf
                } else {
                    None
                };
                let recvbuf = plan.io.recvbuf.map(|len| vec![0u8; len]);
                (sendbuf, recvbuf)
            }
            OwnedCollective::Bcast { buf, .. }
            | OwnedCollective::Allreduce { buf, .. }
            | OwnedCollective::Scan { buf, .. }
            | OwnedCollective::Exscan { buf, .. } => (None, Some(buf)),
            OwnedCollective::Gather { sendbuf, .. }
            | OwnedCollective::Reduce { sendbuf, .. }
            | OwnedCollective::ReduceScatter { sendbuf, .. } => {
                let recvbuf = plan.io.recvbuf.map(|len| vec![0u8; len]);
                (Some(sendbuf), recvbuf)
            }
        }
    }
}

/// Resolve `request` against the plan cache: the compiled plan plus the
/// owned `(sendbuf, recvbuf)` pair split to its shape.  The single source
/// of the shape → lookup-or-compile → buffer-split sequence, shared by the
/// one-shot request path ([`begin_planned`]) and persistent-handle
/// initialization, so the two execution models can never populate
/// different cache entries or split buffers differently.
#[allow(clippy::type_complexity)]
pub fn plan_owned<C: Comm>(
    profile: &LibraryProfile,
    comm: &C,
    request: OwnedCollective,
    cache: &mut crate::plan::PlanCache,
) -> (std::rc::Rc<RankPlan>, Option<Vec<u8>>, Option<Vec<u8>>) {
    let shape = request.shape(comm.world_size());
    let plan = cache.lookup_or_compile(profile, comm.topology(), comm.rank(), &shape);
    let (sendbuf, recvbuf) = request.into_io(&plan);
    (plan, sendbuf, recvbuf)
}

/// Begin a non-blocking collective: look the shape up in the plan cache
/// (compiling on a miss, exactly like [`execute_planned`]) and wrap the
/// compiled plan plus the owned buffers into a resumable [`PlanCursor`]
/// ready to be driven by a `pip_collectives::request::ProgressEngine`.
///
/// Unlike the blocking path there is no large-message bypass: a request
/// *requires* a compiled program to be resumable, so oversized shapes pay
/// the compile (once — persistent handles and repeats reuse the cache).
pub fn begin_planned<C: Comm>(
    profile: &LibraryProfile,
    comm: &C,
    request: OwnedCollective,
    tag: u64,
    cache: &mut crate::plan::PlanCache,
) -> PlanCursor {
    let (plan, sendbuf, recvbuf) = plan_owned(profile, comm, request, cache);
    PlanCursor::with_arena(plan, sendbuf, recvbuf, tag, cache.arena())
}

/// The reduction the `record_*` helpers use: the trivial `u8` instantiation
/// of the typed layer (wrapping per-byte sum).
fn byte_sum() -> Reduction<'static> {
    Reduction::typed::<u8>(ReduceOp::Sum)
}

/// Record the trace of an allgather of `bytes` bytes per process.
pub fn record_allgather(profile: &LibraryProfile, topology: Topology, bytes: usize) -> Trace {
    record_trace(topology, |comm| {
        let sendbuf = vec![0u8; bytes];
        let mut recvbuf = vec![0u8; bytes * topology.world_size()];
        execute(
            profile,
            comm,
            CollectiveRequest::Allgather {
                sendbuf: &sendbuf,
                recvbuf: &mut recvbuf,
            },
            1,
        );
    })
}

/// Record the trace of a scatter of `bytes` bytes per process from `root`.
pub fn record_scatter(
    profile: &LibraryProfile,
    topology: Topology,
    bytes: usize,
    root: usize,
) -> Trace {
    record_trace(topology, |comm| {
        let sendbuf = vec![0u8; bytes * topology.world_size()];
        let mut recvbuf = vec![0u8; bytes];
        let send = (comm.rank() == root).then_some(sendbuf.as_slice());
        execute(
            profile,
            comm,
            CollectiveRequest::Scatter {
                sendbuf: send,
                recvbuf: &mut recvbuf,
                root,
            },
            1,
        );
    })
}

/// Record the trace of a broadcast of `bytes` bytes from `root`.
pub fn record_bcast(
    profile: &LibraryProfile,
    topology: Topology,
    bytes: usize,
    root: usize,
) -> Trace {
    record_trace(topology, |comm| {
        let mut buf = vec![0u8; bytes];
        execute(
            profile,
            comm,
            CollectiveRequest::Bcast {
                buf: &mut buf,
                root,
            },
            1,
        );
    })
}

/// Record the trace of a gather of `bytes` bytes per process to `root`.
pub fn record_gather(
    profile: &LibraryProfile,
    topology: Topology,
    bytes: usize,
    root: usize,
) -> Trace {
    record_trace(topology, |comm| {
        let sendbuf = vec![0u8; bytes];
        let mut recvbuf = vec![0u8; bytes * topology.world_size()];
        let recv = (comm.rank() == root).then_some(recvbuf.as_mut_slice());
        execute(
            profile,
            comm,
            CollectiveRequest::Gather {
                sendbuf: &sendbuf,
                recvbuf: recv,
                root,
            },
            1,
        );
    })
}

/// Record the trace of an allreduce over a vector of `bytes` bytes
/// (byte-wise sum operator, element size 1).
pub fn record_allreduce(profile: &LibraryProfile, topology: Topology, bytes: usize) -> Trace {
    record_trace(topology, |comm| {
        let mut buf = vec![0u8; bytes];
        execute(
            profile,
            comm,
            CollectiveRequest::Allreduce {
                buf: &mut buf,
                op: byte_sum(),
                layout: None,
                compress: None,
            },
            1,
        );
    })
}

/// Record the trace of a reduce over a vector of `bytes` bytes to `root`
/// (byte-wise sum operator, element size 1).
pub fn record_reduce(
    profile: &LibraryProfile,
    topology: Topology,
    bytes: usize,
    root: usize,
) -> Trace {
    record_trace(topology, |comm| {
        let sendbuf = vec![0u8; bytes];
        let mut recvbuf = vec![0u8; bytes];
        let recv = (comm.rank() == root).then_some(recvbuf.as_mut_slice());
        execute(
            profile,
            comm,
            CollectiveRequest::Reduce {
                sendbuf: &sendbuf,
                recvbuf: recv,
                root,
                op: byte_sum(),
            },
            1,
        );
    })
}

/// Record the trace of a reduce_scatter of `bytes` bytes per process
/// (byte-wise sum operator, element size 1).
pub fn record_reduce_scatter(profile: &LibraryProfile, topology: Topology, bytes: usize) -> Trace {
    record_trace(topology, |comm| {
        let sendbuf = vec![0u8; bytes * topology.world_size()];
        let mut recvbuf = vec![0u8; bytes];
        execute(
            profile,
            comm,
            CollectiveRequest::ReduceScatter {
                sendbuf: &sendbuf,
                recvbuf: &mut recvbuf,
                op: byte_sum(),
            },
            1,
        );
    })
}

/// Record the trace of an inclusive scan over a vector of `bytes` bytes
/// (byte-wise sum operator, element size 1).
pub fn record_scan(profile: &LibraryProfile, topology: Topology, bytes: usize) -> Trace {
    record_trace(topology, |comm| {
        let mut buf = vec![0u8; bytes];
        execute(
            profile,
            comm,
            CollectiveRequest::Scan {
                buf: &mut buf,
                op: byte_sum(),
            },
            1,
        );
    })
}

/// Record the trace of an exclusive scan over a vector of `bytes` bytes
/// (byte-wise sum operator, element size 1).
pub fn record_exscan(profile: &LibraryProfile, topology: Topology, bytes: usize) -> Trace {
    record_trace(topology, |comm| {
        let mut buf = vec![0u8; bytes];
        execute(
            profile,
            comm,
            CollectiveRequest::Exscan {
                buf: &mut buf,
                op: byte_sum(),
            },
            1,
        );
    })
}

/// Record the trace of an alltoall of `bytes` bytes per destination process.
pub fn record_alltoall(profile: &LibraryProfile, topology: Topology, bytes: usize) -> Trace {
    record_trace(topology, |comm| {
        let sendbuf = vec![0u8; bytes * topology.world_size()];
        let mut recvbuf = vec![0u8; bytes * topology.world_size()];
        execute(
            profile,
            comm,
            CollectiveRequest::Alltoall {
                sendbuf: &sendbuf,
                recvbuf: &mut recvbuf,
            },
            1,
        );
    })
}

/// Record the trace of a barrier.
pub fn record_barrier(profile: &LibraryProfile, topology: Topology) -> Trace {
    record_trace(topology, |comm| {
        execute(profile, comm, CollectiveRequest::Barrier, 1);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Library;
    use pip_collectives::datatype::ReduceKernel;
    use pip_collectives::oracle;
    use pip_collectives::ThreadComm;
    use pip_runtime::Cluster;

    /// Run an allgather through the dispatcher for every library on the real
    /// runtime and check the result against the oracle — this exercises the
    /// exact code path the figures measure, end to end.
    #[test]
    fn dispatched_allgather_is_correct_for_every_library() {
        let topo = Topology::new(3, 2);
        let world = topo.world_size();
        let block = 16;
        let contributions: Vec<Vec<u8>> =
            (0..world).map(|r| oracle::rank_payload(r, block)).collect();
        let expected = oracle::allgather(&contributions);
        for library in Library::ALL {
            let profile = library.profile();
            let results = Cluster::launch(topo, |ctx| {
                let comm = ThreadComm::new(ctx);
                let sendbuf = oracle::rank_payload(comm.rank(), block);
                let mut recvbuf = vec![0u8; world * block];
                execute(
                    &profile,
                    &comm,
                    CollectiveRequest::Allgather {
                        sendbuf: &sendbuf,
                        recvbuf: &mut recvbuf,
                    },
                    1,
                );
                recvbuf
            })
            .unwrap();
            for buf in &results {
                assert_eq!(buf, &expected, "{} allgather incorrect", library.name());
            }
        }
    }

    #[test]
    fn dispatched_scatter_is_correct_for_every_library() {
        let topo = Topology::new(2, 3);
        let world = topo.world_size();
        let block = 8;
        let sendbuf = oracle::rank_payload(0, world * block);
        let expected = oracle::scatter(&sendbuf, world);
        for library in Library::ALL {
            let profile = library.profile();
            let sendbuf_ref = &sendbuf;
            let results = Cluster::launch(topo, |ctx| {
                let comm = ThreadComm::new(ctx);
                let mut recvbuf = vec![0u8; block];
                let send = (comm.rank() == 0).then_some(sendbuf_ref.as_slice());
                execute(
                    &profile,
                    &comm,
                    CollectiveRequest::Scatter {
                        sendbuf: send,
                        recvbuf: &mut recvbuf,
                        root: 0,
                    },
                    1,
                );
                recvbuf
            })
            .unwrap();
            for (rank, buf) in results.iter().enumerate() {
                assert_eq!(buf, &expected[rank], "{} scatter incorrect", library.name());
            }
        }
    }

    #[test]
    fn dispatched_allreduce_is_correct_for_every_library() {
        let topo = Topology::new(2, 2);
        let world = topo.world_size();
        let len = 24;
        let contributions: Vec<Vec<u8>> =
            (0..world).map(|r| oracle::rank_payload(r, len)).collect();
        let expected = oracle::allreduce(&contributions, oracle::wrapping_add_u8);
        for library in Library::ALL {
            let profile = library.profile();
            let results = Cluster::launch(topo, |ctx| {
                let comm = ThreadComm::new(ctx);
                let mut buf = oracle::rank_payload(comm.rank(), len);
                execute(
                    &profile,
                    &comm,
                    CollectiveRequest::Allreduce {
                        buf: &mut buf,
                        op: Reduction::typed::<u8>(ReduceOp::Sum),
                        layout: None,
                        compress: None,
                    },
                    1,
                );
                buf
            })
            .unwrap();
            for buf in &results {
                assert_eq!(buf, &expected, "{} allreduce incorrect", library.name());
            }
        }
    }

    #[test]
    fn recorded_traces_validate_for_every_library_and_collective() {
        let topo = Topology::new(4, 3);
        for library in Library::ALL {
            let profile = library.profile();
            for trace in [
                record_allgather(&profile, topo, 64),
                record_scatter(&profile, topo, 64, 0),
                record_bcast(&profile, topo, 256, 0),
                record_gather(&profile, topo, 64, 0),
                record_allreduce(&profile, topo, 512),
                record_alltoall(&profile, topo, 32),
                record_barrier(&profile, topo),
            ] {
                trace
                    .validate()
                    .unwrap_or_else(|e| panic!("{}: invalid trace: {e}", library.name()));
            }
        }
    }

    /// The owned (non-blocking) request form derives exactly the shape the
    /// borrowed (blocking) form does — they must share plan-cache entries.
    #[test]
    fn owned_collective_shapes_agree_with_borrowed_requests() {
        let world = 4;
        let block = 8;
        let mut recvbuf = vec![0u8; block];

        let owned = OwnedCollective::Allgather {
            sendbuf: vec![0u8; block],
        };
        let sendbuf = vec![0u8; block];
        let mut allgather_recv = vec![0u8; block * world];
        let borrowed = CollectiveRequest::Allgather {
            sendbuf: &sendbuf,
            recvbuf: &mut allgather_recv,
        };
        assert_eq!(
            owned.shape(world),
            crate::plan::CollectiveShape::of(&borrowed, world)
        );

        let owned = OwnedCollective::Scatter {
            sendbuf: None,
            block,
            root: 3,
        };
        let borrowed = CollectiveRequest::Scatter {
            sendbuf: None,
            recvbuf: &mut recvbuf,
            root: 3,
        };
        assert_eq!(
            owned.shape(world),
            crate::plan::CollectiveShape::of(&borrowed, world)
        );

        let owned = OwnedCollective::Alltoall {
            sendbuf: vec![0u8; block * world],
        };
        let sendbuf = vec![0u8; block * world];
        let mut alltoall_recv = vec![0u8; block * world];
        let borrowed = CollectiveRequest::Alltoall {
            sendbuf: &sendbuf,
            recvbuf: &mut alltoall_recv,
        };
        assert_eq!(
            owned.shape(world),
            crate::plan::CollectiveShape::of(&borrowed, world)
        );

        // Typed reductions agree too — including the (datatype, op) identity.
        let kernel = ReduceKernel::of::<f32>(ReduceOp::Sum);
        let owned = OwnedCollective::Allreduce {
            buf: vec![0u8; block],
            op: OwnedReduction::Typed(kernel),
            layout: None,
            compress: None,
        };
        let mut allreduce_buf = vec![0u8; block];
        let borrowed = CollectiveRequest::Allreduce {
            buf: &mut allreduce_buf,
            op: Reduction::Typed(kernel),
            layout: None,
            compress: None,
        };
        let shape = crate::plan::CollectiveShape::of(&borrowed, world);
        assert_eq!(owned.shape(world), shape);
        assert_eq!(shape.elem_size, 4);
        assert_eq!(shape.reduce, Some(kernel.ident()));

        // Registered user operators agree as well, and a derived datatype
        // keys by its packed size plus the layout triple.
        let op = pip_collectives::Op::create(2, |acc, other| {
            for (a, b) in acc.iter_mut().zip(other) {
                *a = a.wrapping_add(*b);
            }
        });
        let layout = Layout::vector(3, 2, 4);
        let owned = OwnedCollective::Allreduce {
            buf: vec![0u8; layout.extent() * 2],
            op: OwnedReduction::User(op.clone()),
            layout: Some(layout),
            compress: None,
        };
        let mut strided_buf = vec![0u8; layout.extent() * 2];
        let borrowed = CollectiveRequest::Allreduce {
            buf: &mut strided_buf,
            op: Reduction::User(&op),
            layout: Some(layout),
            compress: None,
        };
        let shape = crate::plan::CollectiveShape::of(&borrowed, world);
        assert_eq!(owned.shape(world), shape);
        assert_eq!(shape.block, layout.packed_len() * 2);
        assert_eq!(shape.layout, Some(layout));
        assert_eq!(shape.reduce, Some(op.ident()));
    }

    /// `begin_planned` populates the same cache entry the blocking path
    /// hits afterwards: one compile serves both execution models.
    #[test]
    fn begin_planned_shares_the_plan_cache_with_blocking_dispatch() {
        let profile = Library::PipMColl.profile();
        let topo = Topology::new(2, 2);
        let mut cache = crate::plan::PlanCache::new();
        let cursor = begin_planned(
            &profile,
            &pip_collectives::TraceComm::new(0, topo),
            OwnedCollective::Allgather {
                sendbuf: vec![0u8; 16],
            },
            1 << 16,
            &mut cache,
        );
        assert!(!cursor.is_finished());
        assert_eq!(cache.stats(), (0, 1));
        // The blocking path's lookup for the same shape is a hit.
        let shape = crate::plan::CollectiveShape {
            kind: CollectiveKind::Allgather,
            block: 16,
            root: 0,
            elem_size: 1,
            reduce: None,
            layout: None,
            compress: None,
        };
        cache.lookup_or_compile(&profile, topo, 0, &shape);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn pip_mcoll_spreads_network_work_across_local_ranks() {
        let topo = Topology::new(8, 4);
        let mcoll = record_allgather(&Library::PipMColl.profile(), topo, 64);
        let mvapich = record_allgather(&Library::Mvapich2.profile(), topo, 64);
        // Flat Bruck: every rank sends in every round.  Multi-object: at most
        // a couple of sends per rank.
        let mcoll_max_sends = (0..4).map(|r| mcoll.ranks[r].send_count()).max().unwrap();
        let mvapich_rank0_sends = mvapich.ranks[0].send_count();
        assert!(mcoll_max_sends < mvapich_rank0_sends);
    }

    #[test]
    fn large_allgather_switches_algorithms_for_comparators() {
        let topo = Topology::new(4, 2);
        let profile = Library::OpenMpi.profile();
        let small = record_allgather(&profile, topo, 64);
        let large = record_allgather(&profile, topo, 64 * 1024);
        // Ring allgather sends p-1 messages per rank; Bruck sends log2(p).
        assert!(large.ranks[0].send_count() > small.ranks[0].send_count());
    }
}
