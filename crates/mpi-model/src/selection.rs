//! Per-library algorithm selection tables.
//!
//! MPI libraries pick a collective algorithm from the message size, the
//! communicator size and (for node-aware libraries) the topology.  The
//! tables below reproduce the choices the comparators make in the regime the
//! paper evaluates (small and medium messages, large communicators), plus
//! the large-message switch points so that the "larger messages" experiments
//! exercise the same crossovers real libraries have.

use serde::{Deserialize, Serialize};

/// Allgather algorithm choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllgatherAlgo {
    /// Bruck's algorithm (small messages, any rank count).
    Bruck,
    /// Recursive doubling (small messages, power-of-two ranks).
    RecursiveDoubling,
    /// Ring (large messages).
    Ring,
    /// Single-leader two-level algorithm.
    Hierarchical,
    /// PiP-MColl multi-object Bruck with base P+1.
    MultiObject,
}

/// Scatter algorithm choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScatterAlgo {
    /// Binomial tree over all ranks.
    Binomial,
    /// Single-leader two-level algorithm.
    Hierarchical,
    /// PiP-MColl multi-object scatter.
    MultiObject,
}

/// Broadcast algorithm choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BcastAlgo {
    /// Binomial tree over all ranks.
    Binomial,
    /// Single-leader two-level algorithm.
    Hierarchical,
    /// PiP-MColl multi-object broadcast.
    MultiObject,
}

/// Gather algorithm choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GatherAlgo {
    /// Binomial tree over all ranks.
    Binomial,
    /// PiP-MColl multi-object gather.
    MultiObject,
}

/// Allreduce algorithm choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllreduceAlgo {
    /// Recursive doubling (small messages).
    RecursiveDoubling,
    /// Ring reduce-scatter + allgather (large messages).
    Ring,
    /// Single-leader two-level algorithm.
    Hierarchical,
    /// PiP-MColl multi-object chunked allreduce.
    MultiObject,
}

/// Alltoall algorithm choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlltoallAlgo {
    /// Bruck's algorithm (small messages).
    Bruck,
    /// PiP-MColl multi-object node-aware pairwise exchange.
    MultiObject,
}

/// Reduce algorithm choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReduceAlgo {
    /// Binomial tree over all ranks (MPICH-derived small-message default).
    Binomial,
    /// PiP-MColl multi-object chunk-ownership reduce.
    MultiObject,
}

/// Reduce_scatter algorithm choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReduceScatterAlgo {
    /// Recursive halving (MPICH default for commutative operators at small
    /// and medium sizes).
    RecursiveHalving,
    /// Ring pipeline (bandwidth-optimal large-message choice).
    Ring,
    /// PiP-MColl multi-object chunk-ownership reduce_scatter.
    MultiObject,
}

/// Scan / exscan algorithm choices (the prefix collectives share one
/// switch, as the real libraries do).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScanAlgo {
    /// Recursive doubling (MPICH default).
    RecursiveDoubling,
    /// Linear pipeline (Open MPI's base implementation).
    Linear,
}

/// The byte threshold (per-process message size) above which libraries
/// switch from latency-oriented to bandwidth-oriented algorithms.
pub const LARGE_MESSAGE_THRESHOLD: usize = 32 * 1024;

/// The message-drop rate at which the degradation sweep
/// (`BENCH_degradation.json`) shows deep multi-leader fan-outs starting to
/// lose to the single-leader hierarchy: every extra inter-node message is
/// another retransmission lottery ticket, so above this rate selection
/// should trade parallelism for fewer, larger transfers.
pub const LOSSY_DROP_CROSSOVER: f64 = 0.05;

/// Observed fabric health, as a selection dimension.  Libraries that adapt
/// (PiP-MColl) switch their allreduce to a shallower schedule on a lossy
/// fabric; the comparators' tables keep their stock choice in both states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FabricCondition {
    /// Nominal fabric: negligible drops, selection by message size alone.
    Healthy,
    /// Drop rate at or above [`LOSSY_DROP_CROSSOVER`]: prefer schedules
    /// with fewer inter-node messages.
    Lossy,
}

impl FabricCondition {
    /// Classify a measured (or configured) message-drop rate.
    pub fn from_drop_rate(rate: f64) -> Self {
        if rate >= LOSSY_DROP_CROSSOVER {
            FabricCondition::Lossy
        } else {
            FabricCondition::Healthy
        }
    }
}

/// Per-collective algorithm selection for one library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectionTable {
    /// Allgather for small messages (below [`LARGE_MESSAGE_THRESHOLD`]).
    pub allgather_small: AllgatherAlgo,
    /// Allgather for large messages.
    pub allgather_large: AllgatherAlgo,
    /// Scatter (same algorithm across the sizes studied).
    pub scatter: ScatterAlgo,
    /// Broadcast.
    pub bcast: BcastAlgo,
    /// Gather.
    pub gather: GatherAlgo,
    /// Allreduce for small messages.
    pub allreduce_small: AllreduceAlgo,
    /// Allreduce for large messages.
    pub allreduce_large: AllreduceAlgo,
    /// Allreduce on a [`FabricCondition::Lossy`] fabric (any size): the
    /// schedule with the fewest inter-node messages the library offers.
    pub allreduce_lossy: AllreduceAlgo,
    /// Alltoall.
    pub alltoall: AlltoallAlgo,
    /// Reduce (same algorithm across the sizes studied).
    pub reduce: ReduceAlgo,
    /// Reduce_scatter for small messages (per-rank block below
    /// [`LARGE_MESSAGE_THRESHOLD`]).
    pub reduce_scatter_small: ReduceScatterAlgo,
    /// Reduce_scatter for large messages.
    pub reduce_scatter_large: ReduceScatterAlgo,
    /// Scan and exscan.
    pub scan: ScanAlgo,
    /// Whether recursive doubling replaces Bruck when the rank count is a
    /// power of two (MPICH-derived behaviour).
    pub prefer_recursive_doubling_pow2: bool,
    /// Bytes-on-wire threshold for error-bounded lossy compression: a
    /// compressed allreduce only rewrites transfers of at least this many
    /// bytes (below it, the codec's latency overhead outweighs the wire
    /// savings, exactly like the large-message algorithm switch).
    pub compress_min_bytes: usize,
}

impl SelectionTable {
    /// Open MPI (tuned decision rules, flat algorithms at this scale).
    pub fn open_mpi() -> Self {
        Self {
            allgather_small: AllgatherAlgo::Bruck,
            allgather_large: AllgatherAlgo::Ring,
            scatter: ScatterAlgo::Binomial,
            bcast: BcastAlgo::Binomial,
            gather: GatherAlgo::Binomial,
            allreduce_small: AllreduceAlgo::RecursiveDoubling,
            allreduce_large: AllreduceAlgo::Ring,
            allreduce_lossy: AllreduceAlgo::RecursiveDoubling,
            alltoall: AlltoallAlgo::Bruck,
            reduce: ReduceAlgo::Binomial,
            reduce_scatter_small: ReduceScatterAlgo::RecursiveHalving,
            reduce_scatter_large: ReduceScatterAlgo::Ring,
            scan: ScanAlgo::Linear,
            prefer_recursive_doubling_pow2: false,
            compress_min_bytes: LARGE_MESSAGE_THRESHOLD,
        }
    }

    /// Intel MPI (MPICH-derived defaults).
    pub fn intel_mpi() -> Self {
        Self {
            allgather_small: AllgatherAlgo::Bruck,
            allgather_large: AllgatherAlgo::Ring,
            scatter: ScatterAlgo::Binomial,
            bcast: BcastAlgo::Hierarchical,
            gather: GatherAlgo::Binomial,
            allreduce_small: AllreduceAlgo::RecursiveDoubling,
            allreduce_large: AllreduceAlgo::Ring,
            allreduce_lossy: AllreduceAlgo::RecursiveDoubling,
            alltoall: AlltoallAlgo::Bruck,
            reduce: ReduceAlgo::Binomial,
            reduce_scatter_small: ReduceScatterAlgo::RecursiveHalving,
            reduce_scatter_large: ReduceScatterAlgo::Ring,
            scan: ScanAlgo::RecursiveDoubling,
            prefer_recursive_doubling_pow2: true,
            compress_min_bytes: LARGE_MESSAGE_THRESHOLD,
        }
    }

    /// MVAPICH2 (node-aware scatter/bcast/allreduce, flat small allgather).
    pub fn mvapich2() -> Self {
        Self {
            allgather_small: AllgatherAlgo::Bruck,
            allgather_large: AllgatherAlgo::Ring,
            scatter: ScatterAlgo::Hierarchical,
            bcast: BcastAlgo::Hierarchical,
            gather: GatherAlgo::Binomial,
            allreduce_small: AllreduceAlgo::Hierarchical,
            allreduce_large: AllreduceAlgo::Ring,
            allreduce_lossy: AllreduceAlgo::Hierarchical,
            alltoall: AlltoallAlgo::Bruck,
            reduce: ReduceAlgo::Binomial,
            reduce_scatter_small: ReduceScatterAlgo::RecursiveHalving,
            reduce_scatter_large: ReduceScatterAlgo::Ring,
            scan: ScanAlgo::RecursiveDoubling,
            prefer_recursive_doubling_pow2: true,
            compress_min_bytes: LARGE_MESSAGE_THRESHOLD,
        }
    }

    /// PiP-MPICH: stock MPICH algorithm selection over the PiP transport.
    pub fn pip_mpich() -> Self {
        Self {
            allgather_small: AllgatherAlgo::Bruck,
            allgather_large: AllgatherAlgo::Ring,
            scatter: ScatterAlgo::Binomial,
            bcast: BcastAlgo::Binomial,
            gather: GatherAlgo::Binomial,
            allreduce_small: AllreduceAlgo::RecursiveDoubling,
            allreduce_large: AllreduceAlgo::Ring,
            allreduce_lossy: AllreduceAlgo::RecursiveDoubling,
            alltoall: AlltoallAlgo::Bruck,
            reduce: ReduceAlgo::Binomial,
            reduce_scatter_small: ReduceScatterAlgo::RecursiveHalving,
            reduce_scatter_large: ReduceScatterAlgo::Ring,
            scan: ScanAlgo::RecursiveDoubling,
            prefer_recursive_doubling_pow2: true,
            compress_min_bytes: LARGE_MESSAGE_THRESHOLD,
        }
    }

    /// PiP-MColl: the multi-object algorithms everywhere they exist.
    pub fn pip_mcoll() -> Self {
        Self {
            allgather_small: AllgatherAlgo::MultiObject,
            allgather_large: AllgatherAlgo::MultiObject,
            scatter: ScatterAlgo::MultiObject,
            bcast: BcastAlgo::MultiObject,
            gather: GatherAlgo::MultiObject,
            allreduce_small: AllreduceAlgo::MultiObject,
            allreduce_large: AllreduceAlgo::MultiObject,
            allreduce_lossy: AllreduceAlgo::Hierarchical,
            alltoall: AlltoallAlgo::MultiObject,
            reduce: ReduceAlgo::MultiObject,
            reduce_scatter_small: ReduceScatterAlgo::MultiObject,
            reduce_scatter_large: ReduceScatterAlgo::MultiObject,
            scan: ScanAlgo::RecursiveDoubling,
            prefer_recursive_doubling_pow2: false,
            compress_min_bytes: LARGE_MESSAGE_THRESHOLD,
        }
    }

    /// The allgather algorithm for a per-process block of `bytes` bytes on a
    /// communicator of `world` ranks.
    pub fn allgather_for(&self, bytes: usize, world: usize) -> AllgatherAlgo {
        let algo = if bytes >= LARGE_MESSAGE_THRESHOLD {
            self.allgather_large
        } else {
            self.allgather_small
        };
        if algo == AllgatherAlgo::Bruck
            && self.prefer_recursive_doubling_pow2
            && world.is_power_of_two()
        {
            AllgatherAlgo::RecursiveDoubling
        } else {
            algo
        }
    }

    /// The allreduce algorithm for a vector of `bytes` bytes.
    pub fn allreduce_for(&self, bytes: usize) -> AllreduceAlgo {
        if bytes >= LARGE_MESSAGE_THRESHOLD {
            self.allreduce_large
        } else {
            self.allreduce_small
        }
    }

    /// The allreduce algorithm for a vector of `bytes` bytes on a fabric in
    /// the given condition: a lossy fabric overrides the size-based choice
    /// with [`SelectionTable::allreduce_lossy`].
    pub fn allreduce_for_fabric(&self, bytes: usize, fabric: FabricCondition) -> AllreduceAlgo {
        match fabric {
            FabricCondition::Healthy => self.allreduce_for(bytes),
            FabricCondition::Lossy => self.allreduce_lossy,
        }
    }

    /// The reduce_scatter algorithm for a per-rank output block of `bytes`
    /// bytes (the same per-process message-size axis the other collectives
    /// switch on; the ring's `p - 1` rounds only pay off once each block is
    /// bandwidth-bound).
    pub fn reduce_scatter_for(&self, bytes: usize) -> ReduceScatterAlgo {
        if bytes >= LARGE_MESSAGE_THRESHOLD {
            self.reduce_scatter_large
        } else {
            self.reduce_scatter_small
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pip_mcoll_always_selects_multi_object() {
        let table = SelectionTable::pip_mcoll();
        assert_eq!(table.allgather_for(64, 2304), AllgatherAlgo::MultiObject);
        assert_eq!(
            table.allgather_for(1 << 20, 2304),
            AllgatherAlgo::MultiObject
        );
        assert_eq!(table.allreduce_for(64), AllreduceAlgo::MultiObject);
        assert_eq!(table.scatter, ScatterAlgo::MultiObject);
    }

    #[test]
    fn comparators_use_flat_small_message_allgather() {
        for table in [
            SelectionTable::open_mpi(),
            SelectionTable::intel_mpi(),
            SelectionTable::mvapich2(),
            SelectionTable::pip_mpich(),
        ] {
            let algo = table.allgather_for(64, 2304);
            assert!(
                matches!(
                    algo,
                    AllgatherAlgo::Bruck | AllgatherAlgo::RecursiveDoubling
                ),
                "expected a flat algorithm, got {algo:?}"
            );
        }
    }

    #[test]
    fn power_of_two_switches_bruck_to_recursive_doubling() {
        let table = SelectionTable::pip_mpich();
        assert_eq!(
            table.allgather_for(64, 1024),
            AllgatherAlgo::RecursiveDoubling
        );
        assert_eq!(table.allgather_for(64, 2304), AllgatherAlgo::Bruck);
        // Open MPI keeps Bruck regardless.
        assert_eq!(
            SelectionTable::open_mpi().allgather_for(64, 1024),
            AllgatherAlgo::Bruck
        );
    }

    #[test]
    fn large_messages_switch_to_ring() {
        let table = SelectionTable::open_mpi();
        assert_eq!(
            table.allgather_for(LARGE_MESSAGE_THRESHOLD, 100),
            AllgatherAlgo::Ring
        );
        assert_eq!(table.allreduce_for(1 << 20), AllreduceAlgo::Ring);
        assert_eq!(table.allreduce_for(256), AllreduceAlgo::RecursiveDoubling);
    }

    #[test]
    fn mvapich2_is_node_aware_for_rooted_collectives() {
        let table = SelectionTable::mvapich2();
        assert_eq!(table.scatter, ScatterAlgo::Hierarchical);
        assert_eq!(table.bcast, BcastAlgo::Hierarchical);
    }

    #[test]
    fn pip_mcoll_selects_multi_object_for_the_reduction_family() {
        let table = SelectionTable::pip_mcoll();
        assert_eq!(table.reduce, ReduceAlgo::MultiObject);
        assert_eq!(table.reduce_scatter_for(64), ReduceScatterAlgo::MultiObject);
        assert_eq!(
            table.reduce_scatter_for(1 << 20),
            ReduceScatterAlgo::MultiObject
        );
    }

    #[test]
    fn comparators_switch_reduce_scatter_to_ring_for_large_vectors() {
        for table in [
            SelectionTable::open_mpi(),
            SelectionTable::intel_mpi(),
            SelectionTable::mvapich2(),
            SelectionTable::pip_mpich(),
        ] {
            assert_eq!(
                table.reduce_scatter_for(256),
                ReduceScatterAlgo::RecursiveHalving
            );
            assert_eq!(
                table.reduce_scatter_for(LARGE_MESSAGE_THRESHOLD),
                ReduceScatterAlgo::Ring
            );
            assert_eq!(table.reduce, ReduceAlgo::Binomial);
        }
    }

    #[test]
    fn open_mpi_uses_the_linear_scan_pipeline() {
        assert_eq!(SelectionTable::open_mpi().scan, ScanAlgo::Linear);
        assert_eq!(
            SelectionTable::pip_mpich().scan,
            ScanAlgo::RecursiveDoubling
        );
    }
}
