//! Compiling collectives to plans, and caching them.
//!
//! This is where the plan/execute split meets the library model: a
//! [`CollectiveShape`] (collective kind, per-process block size, root,
//! element size) plus a [`crate::LibraryProfile`] and a topology fully
//! determine the schedule, so a compiled plan is cached under a [`PlanKey`]
//! and reused for every later call with the same shape.
//!
//! Two cache granularities exist for the two consumers:
//!
//! * [`PlanCache`] holds **one rank's** plans (exec fidelity, 8-pass
//!   fingerprint compile) — what a `Communicator` embeds so its dispatch hot
//!   path becomes *lookup-or-compile, then run*.
//! * [`ClusterPlanCache`] holds **whole-cluster** plans (schedule fidelity,
//!   single pass) — what figure generation uses so repeated data points
//!   lower a cached plan to a trace instead of replaying the algorithm once
//!   per rank.

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use pip_collectives::comm::Comm;
use pip_collectives::plan::{
    assemble, compress_rank_transfers, execute_rank_plan_reusing, schedules_equal_under,
    shared_arena, ArenaStats, BufferArena, Fidelity, IoShape, Plan, PlanComm, PlanIo, RankPlan,
    SharedArena, EXEC_PASSES,
};
use pip_collectives::CollectiveKind;
use pip_netsim::{FoldGroup, FoldedTrace};
use pip_runtime::Topology;

use pip_collectives::datatype::{Layout, ReduceIdent, Reduction};

use crate::dispatch::{self, CollectiveRequest};
use crate::{Library, LibraryProfile};

/// The tag base plans are compiled at; executions rebase by the invocation
/// tag.  Zero keeps recorded tags equal to the algorithms' tag offsets.
pub const COMPILE_TAG_BASE: u64 = 0;

/// Compression request carried by a collective's shape: the end-to-end
/// absolute error bound (stored as `f64` bits so the shape stays `Eq +
/// Hash`) plus the bytes-on-wire threshold below which transfers stay
/// exact.
///
/// Being part of [`CollectiveShape`] puts the spec in the [`PlanKey`], so a
/// bounded plan can never alias the exact plan of the same size — and two
/// different bounds never alias each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompressSpec {
    /// `f64::to_bits` of the end-to-end absolute error bound.
    pub bound_bits: u64,
    /// Transfers below this many bytes stay exact.
    pub min_wire_bytes: usize,
}

impl CompressSpec {
    /// A spec for the given end-to-end bound and wire threshold.
    pub fn from_bound(bound: f64, min_wire_bytes: usize) -> Self {
        Self {
            bound_bits: bound.to_bits(),
            min_wire_bytes,
        }
    }

    /// The end-to-end absolute error bound.
    pub fn bound(self) -> f64 {
        f64::from_bits(self.bound_bits)
    }

    /// Normalize against a message of `block` bytes: a spec that cannot
    /// rewrite anything (zero/invalid bound, or the whole buffer under the
    /// wire threshold) collapses to `None`, so the invocation shares the
    /// exact plan's cache entry instead of compiling a bit-identical twin.
    pub fn normalized_for(self, block: usize) -> Option<Self> {
        (self.bound() > 0.0 && block >= self.min_wire_bytes).then_some(self)
    }
}

/// The shape of one collective invocation — everything besides library and
/// topology that algorithm selection and scheduling depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CollectiveShape {
    /// Which collective.
    pub kind: CollectiveKind,
    /// Per-process block size in bytes (the paper's message size axis).
    pub block: usize,
    /// Root rank for rooted collectives; 0 otherwise.
    pub root: usize,
    /// Reduction element size in bytes (reduction family only; 1 otherwise).
    pub elem_size: usize,
    /// Identity of the reduction operator; `None` for non-reductions.  Part
    /// of the plan-cache key, so an `f32`-Sum plan never serves an
    /// `i32`-Max call even though both have `elem_size: 4`, and a
    /// user-defined operator ([`pip_collectives::datatype::Op`]) never
    /// serves another user operator of the same width.  Anonymous
    /// [`Reduction::Opaque`] operators also have `None` here — the dispatch
    /// layer refuses to cache those (see
    /// [`crate::dispatch::execute_planned`]) precisely because this field
    /// cannot distinguish them.
    pub reduce: Option<ReduceIdent>,
    /// Strided layout of the caller's buffer, in **elements**; `None` for
    /// contiguous buffers (including degenerate layouts normalized away by
    /// [`CollectiveShape::of`]).  Part of the plan-cache key, so two
    /// layouts with equal total bytes never alias, and a strided call
    /// never hits a contiguous plan.  When present, [`CollectiveShape::block`]
    /// is the **packed** byte count.
    pub layout: Option<Layout>,
    /// Error-bounded lossy compression of large transfers; `None` for the
    /// exact path (including bounded requests normalized away by
    /// [`CompressSpec::normalized_for`]).  Part of the plan-cache key:
    /// bounded and exact plans of the same size never alias, nor do two
    /// different bounds.
    pub compress: Option<CompressSpec>,
}

impl CollectiveShape {
    /// The shape of `request` on a world of `world` ranks.
    ///
    /// Non-reduction kinds key on `elem_size: 1, reduce: None, layout: None`
    /// uniformly: their schedules depend only on byte counts, so `(kind,
    /// block, root)` fully determines per-rank IO and no aliasing is
    /// possible between two requests of the same kind and byte count —
    /// unlike reductions (operator identity) and strided buffers (layout),
    /// which each contribute their own key component.
    pub fn of(request: &CollectiveRequest<'_>, world: usize) -> Self {
        let contiguous = |kind, block, root| Self {
            kind,
            block,
            root,
            elem_size: 1,
            reduce: None,
            layout: None,
            compress: None,
        };
        match request {
            CollectiveRequest::Allgather { sendbuf, .. } => {
                contiguous(CollectiveKind::Allgather, sendbuf.len(), 0)
            }
            CollectiveRequest::Scatter { recvbuf, root, .. } => {
                contiguous(CollectiveKind::Scatter, recvbuf.len(), *root)
            }
            CollectiveRequest::Bcast { buf, root } => {
                contiguous(CollectiveKind::Bcast, buf.len(), *root)
            }
            CollectiveRequest::Gather { sendbuf, root, .. } => {
                contiguous(CollectiveKind::Gather, sendbuf.len(), *root)
            }
            CollectiveRequest::Allreduce {
                buf,
                op,
                layout,
                compress,
            } => {
                // Degenerate (contiguous) layouts share the contiguous
                // plans: their IO behavior is byte-identical, so giving
                // them distinct keys would only split the cache.
                let layout = layout.filter(|l| !l.is_contiguous());
                let block = layout.map_or(buf.len(), |l| l.packed_len() * op.elem_size());
                Self {
                    kind: CollectiveKind::Allreduce,
                    block,
                    root: 0,
                    elem_size: op.elem_size(),
                    reduce: op.ident(),
                    layout,
                    compress: compress.and_then(|spec| spec.normalized_for(block)),
                }
            }
            CollectiveRequest::Reduce {
                sendbuf, root, op, ..
            } => Self {
                kind: CollectiveKind::Reduce,
                block: sendbuf.len(),
                root: *root,
                elem_size: op.elem_size(),
                reduce: op.ident(),
                layout: None,
                compress: None,
            },
            CollectiveRequest::ReduceScatter { recvbuf, op, .. } => Self {
                kind: CollectiveKind::ReduceScatter,
                block: recvbuf.len(),
                root: 0,
                elem_size: op.elem_size(),
                reduce: op.ident(),
                layout: None,
                compress: None,
            },
            CollectiveRequest::Scan { buf, op } => Self {
                kind: CollectiveKind::Scan,
                block: buf.len(),
                root: 0,
                elem_size: op.elem_size(),
                reduce: op.ident(),
                layout: None,
                compress: None,
            },
            CollectiveRequest::Exscan { buf, op } => Self {
                kind: CollectiveKind::Exscan,
                block: buf.len(),
                root: 0,
                elem_size: op.elem_size(),
                reduce: op.ident(),
                layout: None,
                compress: None,
            },
            CollectiveRequest::Alltoall { sendbuf, .. } => {
                contiguous(CollectiveKind::Alltoall, sendbuf.len() / world.max(1), 0)
            }
            CollectiveRequest::Barrier => contiguous(CollectiveKind::Barrier, 0, 0),
        }
    }

    /// The largest single caller buffer this shape touches, in bytes — the
    /// quantity the exec-fidelity compile's cost scales with (8 recording
    /// passes plus a per-byte provenance table).
    pub fn buffer_footprint(&self, world: usize) -> usize {
        match self.kind {
            CollectiveKind::Allgather
            | CollectiveKind::Scatter
            | CollectiveKind::Gather
            | CollectiveKind::ReduceScatter
            | CollectiveKind::Alltoall => world * self.block,
            CollectiveKind::Bcast
            | CollectiveKind::Allreduce
            | CollectiveKind::Reduce
            | CollectiveKind::Scan
            | CollectiveKind::Exscan => self.block,
            CollectiveKind::Barrier => 0,
        }
    }

    /// The buffer shape rank `rank` presents to a plan of this shape.
    ///
    /// `sendbuf`/`recvbuf` are packed byte counts; a strided shape
    /// additionally carries its byte-scaled layout so the executor packs
    /// the caller's extent-length buffer before replay.
    fn io_for(&self, rank: usize, world: usize) -> IoShape {
        let b = self.block;
        match self.kind {
            CollectiveKind::Allgather => IoShape {
                sendbuf: Some(b),
                recvbuf: Some(world * b),
                ..IoShape::default()
            },
            CollectiveKind::Scatter => IoShape {
                sendbuf: (rank == self.root).then_some(world * b),
                recvbuf: Some(b),
                ..IoShape::default()
            },
            CollectiveKind::Bcast => IoShape {
                sendbuf: None,
                recvbuf: Some(b),
                inout: true,
                ..IoShape::default()
            },
            CollectiveKind::Gather => IoShape {
                sendbuf: Some(b),
                recvbuf: (rank == self.root).then_some(world * b),
                ..IoShape::default()
            },
            CollectiveKind::Allreduce => IoShape {
                sendbuf: None,
                recvbuf: Some(b),
                inout: true,
                needs_reduce_op: true,
                recv_layout: self.layout.map(|l| l.scaled(self.elem_size)),
                ..IoShape::default()
            },
            CollectiveKind::Reduce => IoShape {
                sendbuf: Some(b),
                recvbuf: (rank == self.root).then_some(b),
                needs_reduce_op: true,
                ..IoShape::default()
            },
            CollectiveKind::ReduceScatter => IoShape {
                sendbuf: Some(world * b),
                recvbuf: Some(b),
                needs_reduce_op: true,
                ..IoShape::default()
            },
            CollectiveKind::Scan | CollectiveKind::Exscan => IoShape {
                sendbuf: None,
                recvbuf: Some(b),
                inout: true,
                needs_reduce_op: true,
                ..IoShape::default()
            },
            CollectiveKind::Alltoall => IoShape {
                sendbuf: Some(world * b),
                recvbuf: Some(world * b),
                ..IoShape::default()
            },
            CollectiveKind::Barrier => IoShape::default(),
        }
    }
}

/// Cache key: the full functional determinant of a compiled plan.
///
/// The profile enters via a content fingerprint rather than just its
/// [`Library`] tag: `LibraryProfile` fields are public, so a caller can run
/// a customized profile (different selection table, different overheads)
/// under the same library tag — those must not alias to one cached plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// The library whose selection tables chose the algorithm.
    pub library: Library,
    /// Fingerprint of the profile's full contents.
    pub profile_fp: u64,
    /// Number of nodes.
    pub nodes: usize,
    /// Processes per node.
    pub ppn: usize,
    /// The invocation shape.
    pub shape: CollectiveShape,
}

impl PlanKey {
    /// Build a key.
    pub fn new(profile: &LibraryProfile, topology: Topology, shape: CollectiveShape) -> Self {
        Self {
            library: profile.library,
            profile_fp: profile_fingerprint(profile),
            nodes: topology.nodes(),
            ppn: topology.ppn(),
            shape,
        }
    }
}

/// Content fingerprint of a profile.  The `Debug` rendering covers every
/// field (including the selection table and the float overheads, which
/// format with round-trip precision), so distinct profiles get distinct
/// fingerprints; the caches additionally memoize the last profile seen, so
/// the rendering cost is only paid when the profile actually changes.
fn profile_fingerprint(profile: &LibraryProfile) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    format!("{profile:?}").hash(&mut hasher);
    hasher.finish()
}

/// Memo of the last profile fingerprinted by a cache, so the hot path pays
/// a field-wise equality check instead of a `Debug` rendering per call.
#[derive(Debug, Default)]
struct ProfileMemo {
    last: Option<(LibraryProfile, u64)>,
}

impl ProfileMemo {
    fn fingerprint(&mut self, profile: &LibraryProfile) -> u64 {
        if let Some((memoized, fp)) = &self.last {
            if memoized == profile {
                return *fp;
            }
        }
        let fp = profile_fingerprint(profile);
        self.last = Some((profile.clone(), fp));
        fp
    }

    fn key(
        &mut self,
        profile: &LibraryProfile,
        topology: Topology,
        shape: CollectiveShape,
    ) -> PlanKey {
        PlanKey {
            library: profile.library,
            profile_fp: self.fingerprint(profile),
            nodes: topology.nodes(),
            ppn: topology.ppn(),
            shape,
        }
    }
}

/// Compile the plan of one rank by running the selected algorithm against
/// the recording communicator — [`EXEC_PASSES`] fingerprint passes for exec
/// fidelity, a single zero-filled pass for schedule fidelity.
pub fn compile_rank(
    profile: &LibraryProfile,
    topology: Topology,
    rank: usize,
    shape: &CollectiveShape,
    fidelity: Fidelity,
) -> RankPlan {
    let world = topology.world_size();
    let io = shape.io_for(rank, world);
    let npasses = match fidelity {
        Fidelity::Exec => EXEC_PASSES,
        Fidelity::Schedule => 1,
    };
    let passes = (0..npasses as u32)
        .map(|pass| {
            run_for_recording(
                profile,
                PlanComm::new(rank, topology, pass, fidelity),
                shape,
                io,
            )
        })
        .collect();
    let mut plan = assemble(rank, topology, fidelity, io, passes);
    if let Some(spec) = shape.compress {
        if let Some(codec) = per_message_codec(spec, shape.elem_size, world) {
            compress_rank_transfers(&mut plan, codec, spec.min_wire_bytes);
        }
    }
    plan
}

/// The per-message codec a [`CompressSpec`] implies on a world of `world`
/// ranks, or `None` when the element size is not a float width the codec
/// handles.
///
/// The user's bound constrains the **result**; each decode adds at most the
/// per-message bound to one element's error, and an element of a ring
/// allreduce (the deepest schedule here: `world - 1` reduce-scatter hops
/// plus `world - 1` allgather hops) passes through at most
/// `2 * (world - 1)` lossy transfers, so dividing by that keeps the
/// end-to-end error within the user's bound for every schedule in the
/// workspace.  Recursive doubling and the hierarchical schedules touch each
/// element strictly fewer times, so the budget is conservative there.
fn per_message_codec(
    spec: CompressSpec,
    elem_size: usize,
    world: usize,
) -> Option<pip_collectives::Codec> {
    let elem = pip_collectives::FloatElem::for_size(elem_size)?;
    let hops = 2 * world.saturating_sub(1);
    Some(pip_collectives::Codec {
        elem,
        bound: spec.bound() / hops.max(1) as f64,
    })
}

/// Compile the whole-cluster plan (every rank's program).
pub fn compile_cluster(
    profile: &LibraryProfile,
    topology: Topology,
    shape: &CollectiveShape,
    fidelity: Fidelity,
) -> Plan {
    let ranks = (0..topology.world_size())
        .map(|rank| compile_rank(profile, topology, rank, shape, fidelity))
        .collect();
    Plan { topology, ranks }
}

/// Compile a symmetry-folded trace without compiling the whole world.
///
/// Compiles node 0's `ppn` ranks (the class representatives) plus the same
/// local ranks on a few *probe* nodes, and checks that a node group carries
/// node 0's programs onto every probe — rotation first, then XOR for
/// power-of-two node counts.  On success the representatives are lowered
/// (tags rebased by `tag`) into a [`FoldedTrace`] ready for
/// `SimEngine::run_folded_trace`; on failure (rooted collectives, scans,
/// asymmetric schedules) the caller must compile the full cluster.
///
/// The probe check samples the symmetry rather than proving it: probes at
/// nodes `{1, N/2, N-1}` catch every asymmetry the workspace's algorithms
/// can exhibit (root-adjacency, halfway pivots, wrap-around edges), and the
/// equivalence suites pin folded == full replay on exhaustive grids where
/// the whole plan *is* materialized.  This entry point exists for the
/// 10^5–10^6-rank projections where an O(world) compile is itself the
/// bottleneck: its cost is `(1 + probes) × ppn` rank compilations, i.e.
/// independent of the node count.
pub fn compile_folded(
    profile: &LibraryProfile,
    topology: Topology,
    shape: &CollectiveShape,
    tag: u64,
) -> Option<FoldedTrace> {
    let nodes = topology.nodes();
    let ppn = topology.ppn();
    if nodes < 2 {
        return None;
    }
    let reps: Vec<RankPlan> = (0..ppn)
        .map(|local| compile_rank(profile, topology, local, shape, Fidelity::Schedule))
        .collect();
    let mut probes = vec![1, nodes / 2, nodes - 1];
    probes.sort_unstable();
    probes.dedup();
    probes.retain(|&m| m != 0);
    let verified = |group: FoldGroup| {
        probes.iter().all(|&m| {
            (0..ppn).all(|local| {
                let probe = compile_rank(
                    profile,
                    topology,
                    topology.rank_of(m, local),
                    shape,
                    Fidelity::Schedule,
                );
                schedules_equal_under(topology, group, m, &reps[local], &probe)
            })
        })
    };
    let group = if verified(FoldGroup::Rotation) {
        FoldGroup::Rotation
    } else if nodes.is_power_of_two() && verified(FoldGroup::Xor) {
        FoldGroup::Xor
    } else {
        return None;
    };
    let lowered = reps
        .iter()
        .map(|plan| plan.to_trace_ops(tag).into())
        .collect();
    FoldedTrace::from_representatives(topology, group, lowered).ok()
}

/// Run one recording pass: build the synthetic request for `shape` and push
/// it through the ordinary dispatcher against the recorder.
fn run_for_recording(
    profile: &LibraryProfile,
    comm: PlanComm,
    shape: &CollectiveShape,
    io: IoShape,
) -> pip_collectives::plan::record::PassRecording {
    let b = shape.block;
    let world = comm.world_size();
    match shape.kind {
        CollectiveKind::Allgather => {
            let mut sendbuf = vec![0u8; b];
            comm.fill_sendbuf(&mut sendbuf);
            let mut recvbuf = vec![0u8; world * b];
            comm.fill_recvbuf(&mut recvbuf);
            dispatch::execute(
                profile,
                &comm,
                CollectiveRequest::Allgather {
                    sendbuf: &sendbuf,
                    recvbuf: &mut recvbuf,
                },
                COMPILE_TAG_BASE,
            );
            comm.finish(Some(recvbuf))
        }
        CollectiveKind::Scatter => {
            let sendbuf = io.sendbuf.map(|len| {
                let mut buf = vec![0u8; len];
                comm.fill_sendbuf(&mut buf);
                buf
            });
            let mut recvbuf = vec![0u8; b];
            comm.fill_recvbuf(&mut recvbuf);
            dispatch::execute(
                profile,
                &comm,
                CollectiveRequest::Scatter {
                    sendbuf: sendbuf.as_deref(),
                    recvbuf: &mut recvbuf,
                    root: shape.root,
                },
                COMPILE_TAG_BASE,
            );
            comm.finish(Some(recvbuf))
        }
        CollectiveKind::Bcast => {
            let mut buf = vec![0u8; b];
            comm.fill_sendbuf(&mut buf);
            dispatch::execute(
                profile,
                &comm,
                CollectiveRequest::Bcast {
                    buf: &mut buf,
                    root: shape.root,
                },
                COMPILE_TAG_BASE,
            );
            comm.finish(Some(buf))
        }
        CollectiveKind::Gather => {
            let mut sendbuf = vec![0u8; b];
            comm.fill_sendbuf(&mut sendbuf);
            let mut recvbuf = io.recvbuf.map(|len| {
                let mut buf = vec![0u8; len];
                comm.fill_recvbuf(&mut buf);
                buf
            });
            dispatch::execute(
                profile,
                &comm,
                CollectiveRequest::Gather {
                    sendbuf: &sendbuf,
                    recvbuf: recvbuf.as_deref_mut(),
                    root: shape.root,
                },
                COMPILE_TAG_BASE,
            );
            comm.finish(recvbuf)
        }
        CollectiveKind::Allreduce => {
            let mut buf = vec![0u8; b];
            comm.fill_sendbuf(&mut buf);
            {
                let op = comm.reducer();
                dispatch::execute(
                    profile,
                    &comm,
                    CollectiveRequest::Allreduce {
                        buf: &mut buf,
                        op: Reduction::Opaque {
                            elem_size: shape.elem_size,
                            f: &op,
                        },
                        // Recording always runs on packed contiguous
                        // buffers; the layout lives in the plan's IoShape
                        // (io_for), where the executor packs/unpacks.
                        layout: None,
                        compress: None,
                    },
                    COMPILE_TAG_BASE,
                );
            }
            comm.finish(Some(buf))
        }
        CollectiveKind::Reduce => {
            let mut sendbuf = vec![0u8; b];
            comm.fill_sendbuf(&mut sendbuf);
            let mut recvbuf = io.recvbuf.map(|len| {
                let mut buf = vec![0u8; len];
                comm.fill_recvbuf(&mut buf);
                buf
            });
            {
                let op = comm.reducer();
                dispatch::execute(
                    profile,
                    &comm,
                    CollectiveRequest::Reduce {
                        sendbuf: &sendbuf,
                        recvbuf: recvbuf.as_deref_mut(),
                        root: shape.root,
                        op: Reduction::Opaque {
                            elem_size: shape.elem_size,
                            f: &op,
                        },
                    },
                    COMPILE_TAG_BASE,
                );
            }
            comm.finish(recvbuf)
        }
        CollectiveKind::ReduceScatter => {
            let mut sendbuf = vec![0u8; world * b];
            comm.fill_sendbuf(&mut sendbuf);
            let mut recvbuf = vec![0u8; b];
            comm.fill_recvbuf(&mut recvbuf);
            {
                let op = comm.reducer();
                dispatch::execute(
                    profile,
                    &comm,
                    CollectiveRequest::ReduceScatter {
                        sendbuf: &sendbuf,
                        recvbuf: &mut recvbuf,
                        op: Reduction::Opaque {
                            elem_size: shape.elem_size,
                            f: &op,
                        },
                    },
                    COMPILE_TAG_BASE,
                );
            }
            comm.finish(Some(recvbuf))
        }
        CollectiveKind::Scan | CollectiveKind::Exscan => {
            let mut buf = vec![0u8; b];
            comm.fill_sendbuf(&mut buf);
            {
                let op = comm.reducer();
                let reduction = Reduction::Opaque {
                    elem_size: shape.elem_size,
                    f: &op,
                };
                let request = if shape.kind == CollectiveKind::Scan {
                    CollectiveRequest::Scan {
                        buf: &mut buf,
                        op: reduction,
                    }
                } else {
                    CollectiveRequest::Exscan {
                        buf: &mut buf,
                        op: reduction,
                    }
                };
                dispatch::execute(profile, &comm, request, COMPILE_TAG_BASE);
            }
            comm.finish(Some(buf))
        }
        CollectiveKind::Alltoall => {
            let mut sendbuf = vec![0u8; world * b];
            comm.fill_sendbuf(&mut sendbuf);
            let mut recvbuf = vec![0u8; world * b];
            comm.fill_recvbuf(&mut recvbuf);
            dispatch::execute(
                profile,
                &comm,
                CollectiveRequest::Alltoall {
                    sendbuf: &sendbuf,
                    recvbuf: &mut recvbuf,
                },
                COMPILE_TAG_BASE,
            );
            comm.finish(Some(recvbuf))
        }
        CollectiveKind::Barrier => {
            dispatch::execute(profile, &comm, CollectiveRequest::Barrier, COMPILE_TAG_BASE);
            comm.finish(None)
        }
    }
}

/// Run `request` through a compiled rank plan (scratch buffers come from a
/// throwaway arena; use [`run_planned_reusing`] on repeated paths).
pub fn run_planned<C: Comm>(plan: &RankPlan, comm: &C, request: CollectiveRequest<'_>, tag: u64) {
    let mut arena = BufferArena::new();
    run_planned_reusing(plan, comm, request, tag, &mut arena);
}

/// Run `request` through a compiled rank plan, drawing scratch buffers from
/// `arena` — the allocation-free repeat path the per-communicator
/// [`PlanCache`] wires into dispatch.
pub fn run_planned_reusing<C: Comm>(
    plan: &RankPlan,
    comm: &C,
    request: CollectiveRequest<'_>,
    tag: u64,
    arena: &mut BufferArena,
) {
    match request {
        CollectiveRequest::Allgather { sendbuf, recvbuf } => execute_rank_plan_reusing(
            plan,
            comm,
            PlanIo {
                sendbuf: Some(sendbuf),
                recvbuf: Some(recvbuf),
            },
            None,
            tag,
            arena,
        ),
        CollectiveRequest::Scatter {
            sendbuf, recvbuf, ..
        } => execute_rank_plan_reusing(
            plan,
            comm,
            PlanIo {
                // MPI semantics: the send buffer is significant only at the
                // root.  Non-root callers may still pass one; the plan has
                // no use for it, so drop it rather than tripping the
                // executor's shape check.
                sendbuf: plan.io.sendbuf.is_some().then_some(sendbuf).flatten(),
                recvbuf: Some(recvbuf),
            },
            None,
            tag,
            arena,
        ),
        CollectiveRequest::Bcast { buf, .. } => execute_rank_plan_reusing(
            plan,
            comm,
            PlanIo {
                sendbuf: None,
                recvbuf: Some(buf),
            },
            None,
            tag,
            arena,
        ),
        CollectiveRequest::Gather {
            sendbuf, recvbuf, ..
        } => execute_rank_plan_reusing(
            plan,
            comm,
            PlanIo {
                sendbuf: Some(sendbuf),
                // Significant only at the root, as with the scatter sendbuf.
                recvbuf: plan.io.recvbuf.is_some().then_some(recvbuf).flatten(),
            },
            None,
            tag,
            arena,
        ),
        CollectiveRequest::Allreduce { buf, op, .. } => execute_rank_plan_reusing(
            plan,
            comm,
            PlanIo {
                sendbuf: None,
                recvbuf: Some(buf),
            },
            Some(op.as_fn()),
            tag,
            arena,
        ),
        CollectiveRequest::Reduce {
            sendbuf,
            recvbuf,
            op,
            ..
        } => execute_rank_plan_reusing(
            plan,
            comm,
            PlanIo {
                sendbuf: Some(sendbuf),
                // Significant only at the root, as with the gather recvbuf.
                recvbuf: plan.io.recvbuf.is_some().then_some(recvbuf).flatten(),
            },
            Some(op.as_fn()),
            tag,
            arena,
        ),
        CollectiveRequest::ReduceScatter {
            sendbuf,
            recvbuf,
            op,
            ..
        } => execute_rank_plan_reusing(
            plan,
            comm,
            PlanIo {
                sendbuf: Some(sendbuf),
                recvbuf: Some(recvbuf),
            },
            Some(op.as_fn()),
            tag,
            arena,
        ),
        CollectiveRequest::Scan { buf, op, .. } | CollectiveRequest::Exscan { buf, op, .. } => {
            execute_rank_plan_reusing(
                plan,
                comm,
                PlanIo {
                    sendbuf: None,
                    recvbuf: Some(buf),
                },
                Some(op.as_fn()),
                tag,
                arena,
            )
        }
        CollectiveRequest::Alltoall { sendbuf, recvbuf } => execute_rank_plan_reusing(
            plan,
            comm,
            PlanIo {
                sendbuf: Some(sendbuf),
                recvbuf: Some(recvbuf),
            },
            None,
            tag,
            arena,
        ),
        CollectiveRequest::Barrier => {
            execute_rank_plan_reusing(plan, comm, PlanIo::default(), None, tag, arena)
        }
    }
}

/// Shapes whose [`CollectiveShape::buffer_footprint`] exceeds this are not
/// compiled on the dispatch path; [`crate::dispatch::execute_planned`]
/// falls back to direct algorithm execution instead.  The fingerprint
/// compile pays 8 recording passes plus a ~16-byte provenance-table entry
/// per buffer byte — a great trade for the small, endlessly repeated
/// messages the paper targets, a poor one for a one-shot multi-megabyte
/// collective (which is bandwidth-bound anyway, so schedule interpretation
/// is noise there).
pub const EXEC_PLAN_MAX_BYTES: usize = 4 << 20;

/// Per-communicator cache of one rank's compiled plans (exec fidelity),
/// plus the rank's shared scratch-buffer arena — together they make the
/// repeat-dispatch hot path both compile-free and allocation-free.
#[derive(Debug)]
pub struct PlanCache {
    plans: HashMap<PlanKey, Rc<RankPlan>>,
    memo: ProfileMemo,
    arena: SharedArena,
    hits: u64,
    misses: u64,
    bypasses: u64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self {
            plans: HashMap::new(),
            memo: ProfileMemo::default(),
            arena: shared_arena(),
            hits: 0,
            misses: 0,
            bypasses: 0,
        }
    }
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The scratch-buffer arena shared by every execution dispatched through
    /// this cache (blocking runs, cursors, persistent handles).
    pub fn arena(&self) -> SharedArena {
        Rc::clone(&self.arena)
    }

    /// Arena accounting: in the persistent-collective steady state the miss
    /// counter stops moving after the first invocation of each shape.
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.borrow().stats()
    }

    /// Look the key up, compiling (and remembering) the rank's plan on a
    /// miss.
    pub fn lookup_or_compile(
        &mut self,
        profile: &LibraryProfile,
        topology: Topology,
        rank: usize,
        shape: &CollectiveShape,
    ) -> Rc<RankPlan> {
        let key = self.memo.key(profile, topology, *shape);
        if let Some(plan) = self.plans.get(&key) {
            debug_assert_eq!(plan.rank, rank, "one cache serves one rank");
            self.hits += 1;
            return Rc::clone(plan);
        }
        self.misses += 1;
        let plan = Rc::new(compile_rank(profile, topology, rank, shape, Fidelity::Exec));
        self.plans.insert(key, Rc::clone(&plan));
        plan
    }

    /// `(hits, misses)` since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Record that a request bypassed compilation (footprint over
    /// [`EXEC_PLAN_MAX_BYTES`]).
    pub fn note_bypass(&mut self) {
        self.bypasses += 1;
    }

    /// Requests that skipped the plan path since creation.
    pub fn bypasses(&self) -> u64 {
        self.bypasses
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

/// Cache of whole-cluster schedule-fidelity plans, shared by figure
/// generation (thread-safe values so one cache can sit behind a lock).
#[derive(Debug, Default)]
pub struct ClusterPlanCache {
    plans: HashMap<PlanKey, Arc<Plan>>,
    memo: ProfileMemo,
    hits: u64,
    misses: u64,
}

impl ClusterPlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look the key up, compiling the whole-cluster plan on a miss.
    ///
    /// When the cache sits behind a lock shared by several threads, prefer
    /// [`ClusterPlanCache::lookup`] + [`ClusterPlanCache::insert`] so the
    /// (possibly multi-second, whole-cluster) compile runs outside the
    /// critical section.
    pub fn lookup_or_compile(
        &mut self,
        profile: &LibraryProfile,
        topology: Topology,
        shape: &CollectiveShape,
    ) -> Arc<Plan> {
        if let Some(plan) = self.lookup(profile, topology, shape) {
            return plan;
        }
        let plan = Arc::new(compile_cluster(
            profile,
            topology,
            shape,
            Fidelity::Schedule,
        ));
        self.insert(profile, topology, shape, plan)
    }

    /// Look the key up without compiling; records a hit when found.
    pub fn lookup(
        &mut self,
        profile: &LibraryProfile,
        topology: Topology,
        shape: &CollectiveShape,
    ) -> Option<Arc<Plan>> {
        let key = self.memo.key(profile, topology, *shape);
        let plan = self.plans.get(&key).map(Arc::clone);
        if plan.is_some() {
            self.hits += 1;
        }
        plan
    }

    /// Insert a plan compiled outside the cache (records a miss).  If a
    /// concurrent compile got there first, the existing entry wins and is
    /// returned, so every caller shares one canonical plan per key.
    pub fn insert(
        &mut self,
        profile: &LibraryProfile,
        topology: Topology,
        shape: &CollectiveShape,
        plan: Arc<Plan>,
    ) -> Arc<Plan> {
        let key = self.memo.key(profile, topology, *shape);
        self.misses += 1;
        Arc::clone(self.plans.entry(key).or_insert(plan))
    }

    /// `(hits, misses)` since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_collectives::oracle;
    use pip_collectives::ThreadComm;
    use pip_runtime::Cluster;

    #[test]
    fn shape_of_extracts_block_and_root() {
        let mut recvbuf = vec![0u8; 8];
        let request = CollectiveRequest::Scatter {
            sendbuf: None,
            recvbuf: &mut recvbuf,
            root: 3,
        };
        let shape = CollectiveShape::of(&request, 4);
        assert_eq!(shape.kind, CollectiveKind::Scatter);
        assert_eq!(shape.block, 8);
        assert_eq!(shape.root, 3);
    }

    #[test]
    fn customized_profiles_do_not_alias_in_the_cache() {
        // Two profiles sharing a Library tag but differing in content must
        // get distinct cached plans (the profile fingerprint is part of the
        // key — the tag alone is not the functional determinant).
        let stock = Library::OpenMpi.profile();
        let mut custom = Library::OpenMpi.profile();
        custom.selection = crate::selection::SelectionTable::pip_mcoll();
        let topo = Topology::new(2, 2);
        let shape = CollectiveShape {
            kind: CollectiveKind::Allgather,
            block: 16,
            root: 0,
            elem_size: 1,
            reduce: None,
            layout: None,
            compress: None,
        };
        let mut cache = PlanCache::new();
        let a = cache.lookup_or_compile(&stock, topo, 0, &shape);
        let b = cache.lookup_or_compile(&custom, topo, 0, &shape);
        assert_eq!(cache.stats(), (0, 2), "distinct profiles must both compile");
        assert_ne!(a.ops, b.ops, "different selection tables, different plans");
        // And each profile still hits its own entry on repeat.
        cache.lookup_or_compile(&stock, topo, 0, &shape);
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn cache_hits_after_first_compile() {
        let profile = Library::PipMColl.profile();
        let topo = Topology::new(2, 2);
        let shape = CollectiveShape {
            kind: CollectiveKind::Allgather,
            block: 16,
            root: 0,
            elem_size: 1,
            reduce: None,
            layout: None,
            compress: None,
        };
        let mut cache = PlanCache::new();
        let a = cache.lookup_or_compile(&profile, topo, 0, &shape);
        let b = cache.lookup_or_compile(&profile, topo, 0, &shape);
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_shapes_get_different_plans() {
        let profile = Library::PipMColl.profile();
        let topo = Topology::new(2, 2);
        let mut cache = PlanCache::new();
        for block in [16usize, 32, 64] {
            let shape = CollectiveShape {
                kind: CollectiveKind::Allgather,
                block,
                root: 0,
                elem_size: 1,
                reduce: None,
                layout: None,
                compress: None,
            };
            cache.lookup_or_compile(&profile, topo, 0, &shape);
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats(), (0, 3));
    }

    /// Compile a multi-object allgather plan per rank and execute it on the
    /// thread runtime: the output must equal the oracle.
    #[test]
    fn compiled_allgather_executes_correctly() {
        let profile = Library::PipMColl.profile();
        let topo = Topology::new(3, 2);
        let world = topo.world_size();
        let block = 8;
        let shape = CollectiveShape {
            kind: CollectiveKind::Allgather,
            block,
            root: 0,
            elem_size: 1,
            reduce: None,
            layout: None,
            compress: None,
        };
        let plans: Vec<RankPlan> = (0..world)
            .map(|rank| compile_rank(&profile, topo, rank, &shape, Fidelity::Exec))
            .collect();
        let contributions: Vec<Vec<u8>> =
            (0..world).map(|r| oracle::rank_payload(r, block)).collect();
        let expected = oracle::allgather(&contributions);
        let plans_ref = &plans;
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let sendbuf = oracle::rank_payload(comm.rank(), block);
            let mut recvbuf = vec![0u8; world * block];
            run_planned(
                &plans_ref[comm.rank()],
                &comm,
                CollectiveRequest::Allgather {
                    sendbuf: &sendbuf,
                    recvbuf: &mut recvbuf,
                },
                1 << 16,
            );
            recvbuf
        })
        .unwrap();
        for buf in &results {
            assert_eq!(buf, &expected);
        }
    }

    /// MPI semantics: the scatter send buffer is significant only at the
    /// root.  Non-root ranks passing `Some` anyway (a common caller idiom)
    /// must behave exactly as under the legacy dispatch path.
    #[test]
    fn scatter_sendbuf_at_non_root_is_ignored_like_legacy() {
        let profile = Library::PipMColl.profile();
        let topo = Topology::new(2, 2);
        let world = topo.world_size();
        let block = 8;
        let sendbuf = oracle::rank_payload(0, world * block);
        let expected = oracle::scatter(&sendbuf, world);
        let sendbuf_ref = &sendbuf;
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let mut cache = PlanCache::new();
            let mut recvbuf = vec![0u8; block];
            dispatch::execute_planned(
                &profile,
                &comm,
                CollectiveRequest::Scatter {
                    // Every rank supplies the buffer, not just the root.
                    sendbuf: Some(sendbuf_ref.as_slice()),
                    recvbuf: &mut recvbuf,
                    root: 0,
                },
                1 << 16,
                &mut cache,
            );
            recvbuf
        })
        .unwrap();
        for (rank, buf) in results.iter().enumerate() {
            assert_eq!(buf, &expected[rank]);
        }
    }

    /// Collectives whose buffer footprint exceeds [`EXEC_PLAN_MAX_BYTES`]
    /// skip compilation entirely and still produce correct results.
    #[test]
    fn oversized_collectives_bypass_the_plan_path() {
        let profile = Library::PipMColl.profile();
        let topo = Topology::new(1, 2);
        let world = topo.world_size();
        // world * block = 6 MiB > the 4 MiB compile ceiling.
        let block = 3 << 20;
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let mut cache = PlanCache::new();
            let sendbuf = vec![comm.rank() as u8 + 1; block];
            let mut recvbuf = vec![0u8; world * block];
            dispatch::execute_planned(
                &profile,
                &comm,
                CollectiveRequest::Allgather {
                    sendbuf: &sendbuf,
                    recvbuf: &mut recvbuf,
                },
                1 << 16,
                &mut cache,
            );
            let stats = cache.stats();
            (
                recvbuf[0],
                recvbuf[world * block - 1],
                stats,
                cache.bypasses(),
            )
        })
        .unwrap();
        for (first, last, stats, bypasses) in results {
            assert_eq!(first, 1);
            assert_eq!(last, 2);
            assert_eq!(stats, (0, 0), "no compile must happen");
            assert_eq!(bypasses, 1);
        }
    }

    /// Schedule-fidelity cluster plans lower to exactly the trace the legacy
    /// record path produces.
    #[test]
    fn cluster_plan_lowering_matches_record_trace() {
        let topo = Topology::new(4, 3);
        for library in Library::ALL {
            let profile = library.profile();
            let shape = CollectiveShape {
                kind: CollectiveKind::Allgather,
                block: 64,
                root: 0,
                elem_size: 1,
                reduce: None,
                layout: None,
                compress: None,
            };
            let plan = compile_cluster(&profile, topo, &shape, Fidelity::Schedule);
            plan.validate().unwrap();
            let lowered = plan.to_trace(1);
            let legacy = dispatch::record_allgather(&profile, topo, 64);
            assert_eq!(lowered, legacy, "{} lowering diverges", library.name());
        }
    }
}
