//! # pip-mpi-model
//!
//! Models of the MPI libraries the paper compares against, plus PiP-MColl
//! itself.  A [`LibraryProfile`] bundles everything that distinguishes the
//! comparators at the message sizes the paper studies:
//!
//! * which **algorithm** the library selects for each collective and message
//!   size ([`selection`]),
//! * which **intra-node transport** it uses (CMA, XPMEM, POSIX shared
//!   memory, or PiP),
//! * its per-message **software overhead** and, for PiP-MPICH, the
//!   message-size synchronization cost the paper identifies as its weakness,
//!
//! and knows how to turn all of that into the `SimParams` the discrete-event
//! simulator consumes and how to [`dispatch`] a collective call to the right
//! algorithm implementation (for real execution on the thread runtime or for
//! trace recording).
//!
//! Calibration constants and their provenance are documented in
//! [`calibration`].

pub mod calibration;
pub mod dispatch;
pub mod plan;
pub mod selection;

use pip_netsim::params::SimParams;
use pip_transport::cost::{IntranodeMechanism, Nanos};
use serde::{Deserialize, Serialize};

pub use dispatch::{CollectiveRequest, OwnedCollective};
pub use plan::{
    compile_folded, ClusterPlanCache, CollectiveShape, CompressSpec, PlanCache, PlanKey,
};
pub use selection::{
    AllgatherAlgo, AllreduceAlgo, AlltoallAlgo, BcastAlgo, FabricCondition, GatherAlgo, ReduceAlgo,
    ReduceScatterAlgo, ScanAlgo, ScatterAlgo, SelectionTable, LOSSY_DROP_CROSSOVER,
};

/// The five MPI implementations evaluated in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Library {
    /// Open MPI: flat (non-node-aware) algorithms over CMA for intra-node
    /// transfers.
    OpenMpi,
    /// Intel MPI: flat small-message algorithms over a POSIX shared-memory
    /// double-copy transport, with slightly leaner software overhead.
    IntelMpi,
    /// MVAPICH2: node-aware (single-leader) scatter/bcast plus flat
    /// small-message allgather, over kernel-assisted CMA/XPMEM transports.
    Mvapich2,
    /// PiP-MPICH: MPICH's flat algorithms running on PiP address-space
    /// sharing — the paper's baseline.  Fast copies, but every transfer pays
    /// the message-size synchronization the paper calls out.
    PipMpich,
    /// PiP-MColl: the paper's contribution — multi-object node-aware
    /// algorithms over PiP.
    PipMColl,
}

impl Library {
    /// All libraries in the order the paper's figures list them.
    pub const ALL: [Library; 5] = [
        Library::OpenMpi,
        Library::IntelMpi,
        Library::Mvapich2,
        Library::PipMpich,
        Library::PipMColl,
    ];

    /// Display name used in figures and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Library::OpenMpi => "Open MPI",
            Library::IntelMpi => "Intel-MPI",
            Library::Mvapich2 => "MVAPICH2",
            Library::PipMpich => "PiP-MPICH",
            Library::PipMColl => "PiP-MColl",
        }
    }

    /// The default profile for this library.
    pub fn profile(&self) -> LibraryProfile {
        LibraryProfile::for_library(*self)
    }
}

/// Everything that characterizes one MPI implementation in this model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LibraryProfile {
    /// Which library this profile describes.
    pub library: Library,
    /// Intra-node data-movement mechanism.
    pub intranode: IntranodeMechanism,
    /// Software overhead added to every send beyond the NIC host overhead
    /// (matching, queueing, datatype handling).
    pub software_send_overhead: Nanos,
    /// Software overhead added to every receive.
    pub software_recv_overhead: Nanos,
    /// Extra synchronization cost paid on every message (send and receive)
    /// by PiP-MPICH: the "message size synchronization before
    /// communications" the paper identifies (§3).
    pub per_message_sync: Nanos,
    /// Fixed cost paid once per collective invocation (communicator setup,
    /// schedule selection).
    pub per_collective_setup: Nanos,
    /// Algorithm selection table.
    pub selection: SelectionTable,
    /// Observed fabric condition this profile selects for.  `Healthy` in
    /// every stock profile; flip to `Lossy` (see
    /// [`LibraryProfile::for_fabric`]) when the configured drop rate
    /// crosses [`selection::LOSSY_DROP_CROSSOVER`].
    pub fabric: selection::FabricCondition,
}

impl LibraryProfile {
    /// The default profile of `library`, calibrated per [`calibration`].
    pub fn for_library(library: Library) -> Self {
        use calibration as cal;
        match library {
            Library::OpenMpi => Self {
                library,
                intranode: IntranodeMechanism::Cma,
                software_send_overhead: cal::OPENMPI_SEND_OVERHEAD,
                software_recv_overhead: cal::OPENMPI_RECV_OVERHEAD,
                per_message_sync: 0.0,
                per_collective_setup: cal::GENERIC_COLLECTIVE_SETUP,
                selection: SelectionTable::open_mpi(),
                fabric: selection::FabricCondition::Healthy,
            },
            Library::IntelMpi => Self {
                library,
                intranode: IntranodeMechanism::PosixShmem,
                software_send_overhead: cal::INTELMPI_SEND_OVERHEAD,
                software_recv_overhead: cal::INTELMPI_RECV_OVERHEAD,
                per_message_sync: 0.0,
                per_collective_setup: cal::GENERIC_COLLECTIVE_SETUP,
                selection: SelectionTable::intel_mpi(),
                fabric: selection::FabricCondition::Healthy,
            },
            Library::Mvapich2 => Self {
                library,
                intranode: IntranodeMechanism::Xpmem,
                software_send_overhead: cal::MVAPICH2_SEND_OVERHEAD,
                software_recv_overhead: cal::MVAPICH2_RECV_OVERHEAD,
                per_message_sync: 0.0,
                per_collective_setup: cal::GENERIC_COLLECTIVE_SETUP,
                selection: SelectionTable::mvapich2(),
                fabric: selection::FabricCondition::Healthy,
            },
            Library::PipMpich => Self {
                library,
                intranode: IntranodeMechanism::Pip,
                software_send_overhead: cal::PIPMPICH_SEND_OVERHEAD,
                software_recv_overhead: cal::PIPMPICH_RECV_OVERHEAD,
                per_message_sync: cal::PIPMPICH_SIZE_SYNC,
                per_collective_setup: cal::GENERIC_COLLECTIVE_SETUP,
                selection: SelectionTable::pip_mpich(),
                fabric: selection::FabricCondition::Healthy,
            },
            Library::PipMColl => Self {
                library,
                intranode: IntranodeMechanism::Pip,
                software_send_overhead: cal::PIPMCOLL_SEND_OVERHEAD,
                software_recv_overhead: cal::PIPMCOLL_RECV_OVERHEAD,
                per_message_sync: 0.0,
                per_collective_setup: cal::GENERIC_COLLECTIVE_SETUP,
                selection: SelectionTable::pip_mcoll(),
                fabric: selection::FabricCondition::Healthy,
            },
        }
    }

    /// Display name of the library.
    pub fn name(&self) -> &'static str {
        self.library.name()
    }

    /// This profile re-targeted at a fabric in the given condition.  The
    /// fabric is part of the profile (not a per-call argument) so compiled
    /// plans key on it: a lossy-fabric plan never aliases a healthy one.
    pub fn for_fabric(mut self, fabric: selection::FabricCondition) -> Self {
        self.fabric = fabric;
        self
    }

    /// Simulation parameters for this library on the given NIC.
    pub fn sim_params(&self, nic: pip_transport::netcard::NicParams) -> SimParams {
        let mut params = SimParams::pip_defaults().with_intranode(self.intranode);
        params.nic = nic;
        params.software_send_overhead = self.software_send_overhead + self.per_message_sync;
        params.software_recv_overhead = self.software_recv_overhead + self.per_message_sync;
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_libraries_match_the_figures() {
        assert_eq!(Library::ALL.len(), 5);
        let names: Vec<_> = Library::ALL.iter().map(Library::name).collect();
        assert_eq!(
            names,
            vec![
                "Open MPI",
                "Intel-MPI",
                "MVAPICH2",
                "PiP-MPICH",
                "PiP-MColl"
            ]
        );
    }

    #[test]
    fn pip_libraries_use_pip_transport() {
        assert_eq!(
            Library::PipMpich.profile().intranode,
            IntranodeMechanism::Pip
        );
        assert_eq!(
            Library::PipMColl.profile().intranode,
            IntranodeMechanism::Pip
        );
    }

    #[test]
    fn only_pip_mpich_pays_size_synchronization() {
        for library in Library::ALL {
            let profile = library.profile();
            if library == Library::PipMpich {
                assert!(profile.per_message_sync > 0.0);
            } else {
                assert_eq!(profile.per_message_sync, 0.0);
            }
        }
    }

    #[test]
    fn sim_params_fold_sync_into_software_overhead() {
        let nic = pip_transport::netcard::NicParams::default();
        let pip_mpich = Library::PipMpich.profile().sim_params(nic);
        let pip_mcoll = Library::PipMColl.profile().sim_params(nic);
        assert!(pip_mpich.software_send_overhead > pip_mcoll.software_send_overhead);
        assert_eq!(pip_mpich.intranode.mechanism, IntranodeMechanism::Pip);
    }

    #[test]
    fn comparators_use_kernel_or_shm_transports() {
        assert_eq!(
            Library::OpenMpi.profile().intranode,
            IntranodeMechanism::Cma
        );
        assert_eq!(
            Library::IntelMpi.profile().intranode,
            IntranodeMechanism::PosixShmem
        );
        assert_eq!(
            Library::Mvapich2.profile().intranode,
            IntranodeMechanism::Xpmem
        );
    }
}
