//! Binomial-tree broadcast, scatter, gather and reduce — the classic
//! small-message algorithms of MPICH-derived libraries (and therefore of the
//! Open MPI / Intel MPI / MVAPICH2 comparators at the message sizes the
//! paper studies).
//!
//! All three operate on a *virtual rank* `vrank = (rank - root) mod p` so
//! that the tree is always rooted at virtual rank 0, and they handle
//! non-power-of-two process counts the way MPICH does (subtree sizes are
//! clipped at the world size).

use crate::comm::{Comm, ReduceFn};

fn vrank_of(rank: usize, root: usize, p: usize) -> usize {
    (rank + p - root) % p
}

fn rank_of(vrank: usize, root: usize, p: usize) -> usize {
    (vrank + root) % p
}

/// Binomial-tree broadcast: after the call every rank's `buf` equals the
/// root's `buf`.
pub fn bcast_binomial<C: Comm>(comm: &C, buf: &mut [u8], root: usize, tag: u64) {
    let p = comm.world_size();
    if p == 1 {
        return;
    }
    let rank = comm.rank();
    let vrank = vrank_of(rank, root, p);

    // Receive phase: find the bit where this rank hangs off the tree.
    let mut mask = 1usize;
    while mask < p {
        if vrank & mask != 0 {
            let src = rank_of(vrank - mask, root, p);
            let data = comm.recv(src, tag, buf.len());
            buf.copy_from_slice(&data);
            break;
        }
        mask <<= 1;
    }

    // Send phase: forward to the subtrees hanging off lower bits.
    mask >>= 1;
    while mask > 0 {
        if vrank + mask < p {
            let dst = rank_of(vrank + mask, root, p);
            comm.send(dst, tag, buf);
        }
        mask >>= 1;
    }
}

/// Binomial-tree scatter: the root's `sendbuf` holds one block per rank (in
/// absolute rank order); every rank receives its block into `recvbuf`.
///
/// `sendbuf` must be `Some` at the root and is ignored elsewhere.
pub fn scatter_binomial<C: Comm>(
    comm: &C,
    sendbuf: Option<&[u8]>,
    recvbuf: &mut [u8],
    root: usize,
    tag: u64,
) {
    let p = comm.world_size();
    let rank = comm.rank();
    let block = recvbuf.len();
    if p == 1 {
        let sendbuf = sendbuf.expect("root must supply a send buffer");
        recvbuf.copy_from_slice(&sendbuf[..block]);
        return;
    }
    let vrank = vrank_of(rank, root, p);

    // Working buffer in virtual-rank order; entry i holds the block destined
    // for virtual rank vrank + i while it travels down the tree.
    let mut tmp = vec![0u8; p * block];
    let mut curr_blocks = 0usize;
    if rank == root {
        let sendbuf = sendbuf.expect("root must supply a send buffer");
        assert_eq!(
            sendbuf.len(),
            p * block,
            "root send buffer must hold one block per rank"
        );
        for i in 0..p {
            let abs = rank_of(i, root, p);
            tmp[i * block..(i + 1) * block]
                .copy_from_slice(&sendbuf[abs * block..(abs + 1) * block]);
        }
        if root != 0 {
            // MPICH copies into a rotated temporary only for non-zero roots.
            comm.charge_copy(p * block);
        }
        curr_blocks = p;
    }

    // Receive phase.
    let mut mask = 1usize;
    while mask < p {
        if vrank & mask != 0 {
            let src = rank_of(vrank - mask, root, p);
            let recv_blocks = mask.min(p - vrank);
            let data = comm.recv(src, tag, recv_blocks * block);
            tmp[..recv_blocks * block].copy_from_slice(&data);
            curr_blocks = recv_blocks;
            break;
        }
        mask <<= 1;
    }

    // Send phase: peel off the far half of the blocks we hold at each step.
    mask >>= 1;
    while mask > 0 {
        if vrank + mask < p {
            let dst = rank_of(vrank + mask, root, p);
            let send_blocks = curr_blocks - mask;
            comm.send(dst, tag, &tmp[mask * block..(mask + send_blocks) * block]);
            curr_blocks -= send_blocks;
        }
        mask >>= 1;
    }

    recvbuf.copy_from_slice(&tmp[..block]);
}

/// Binomial-tree gather: every rank contributes `sendbuf`; the root's
/// `recvbuf` receives all blocks in absolute rank order.
///
/// `recvbuf` must be `Some` at the root and is ignored elsewhere.
pub fn gather_binomial<C: Comm>(
    comm: &C,
    sendbuf: &[u8],
    mut recvbuf: Option<&mut [u8]>,
    root: usize,
    tag: u64,
) {
    let p = comm.world_size();
    let rank = comm.rank();
    let block = sendbuf.len();
    if p == 1 {
        let recvbuf = recvbuf.as_deref_mut().expect("root must supply recvbuf");
        recvbuf[..block].copy_from_slice(sendbuf);
        return;
    }
    let vrank = vrank_of(rank, root, p);

    let mut tmp = vec![0u8; p * block];
    tmp[..block].copy_from_slice(sendbuf);
    let mut curr_blocks = 1usize;

    let mut mask = 1usize;
    while mask < p {
        if vrank & mask == 0 {
            if vrank + mask < p {
                let child_v = vrank + mask;
                let src = rank_of(child_v, root, p);
                let recv_blocks = mask.min(p - child_v);
                let data = comm.recv(src, tag, recv_blocks * block);
                tmp[mask * block..mask * block + data.len()].copy_from_slice(&data);
                curr_blocks += recv_blocks;
            }
        } else {
            let dst = rank_of(vrank - mask, root, p);
            comm.send(dst, tag, &tmp[..curr_blocks * block]);
            break;
        }
        mask <<= 1;
    }

    if rank == root {
        let recvbuf = recvbuf.expect("root must supply recvbuf");
        assert_eq!(recvbuf.len(), p * block);
        for i in 0..p {
            let abs = rank_of(i, root, p);
            recvbuf[abs * block..(abs + 1) * block]
                .copy_from_slice(&tmp[i * block..(i + 1) * block]);
        }
        if root != 0 {
            comm.charge_copy(p * block);
        }
    }
}

/// Binomial-tree reduce for a commutative `op`: every rank contributes
/// `sendbuf`; the root's `recvbuf` receives the element-wise combination of
/// all contributions.  Leaves send their contribution up the tree; interior
/// ranks combine every child subtree into a private accumulator before
/// forwarding it.
///
/// `recvbuf` must be `Some` at the root and is ignored elsewhere.
pub fn reduce_binomial<C: Comm>(
    comm: &C,
    sendbuf: &[u8],
    recvbuf: Option<&mut [u8]>,
    op: &ReduceFn<'_>,
    root: usize,
    tag: u64,
) {
    let p = comm.world_size();
    let rank = comm.rank();
    let bytes = sendbuf.len();
    if p == 1 {
        let recvbuf = recvbuf.expect("root must supply recvbuf");
        recvbuf.copy_from_slice(sendbuf);
        return;
    }
    let vrank = vrank_of(rank, root, p);

    let mut acc = sendbuf.to_vec();
    let mut mask = 1usize;
    while mask < p {
        if vrank & mask == 0 {
            // Combine the child subtree hanging off this bit, if it exists.
            if vrank + mask < p {
                let src = rank_of(vrank + mask, root, p);
                let data = comm.recv(src, tag, bytes);
                op(&mut acc, &data);
                comm.charge_reduce(bytes);
            }
        } else {
            let dst = rank_of(vrank - mask, root, p);
            comm.send(dst, tag, &acc);
            break;
        }
        mask <<= 1;
    }

    if rank == root {
        let recvbuf = recvbuf.expect("root must supply recvbuf");
        recvbuf.copy_from_slice(&acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{record_trace, ThreadComm};
    use crate::oracle;
    use pip_runtime::{Cluster, Topology};

    fn run_bcast(nodes: usize, ppn: usize, root: usize, len: usize) {
        let topo = Topology::new(nodes, ppn);
        let reference = oracle::rank_payload(root, len);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let mut buf = if comm.rank() == root {
                oracle::rank_payload(root, len)
            } else {
                vec![0u8; len]
            };
            bcast_binomial(&comm, &mut buf, root, 100);
            buf
        })
        .unwrap();
        for (rank, buf) in results.iter().enumerate() {
            assert_eq!(buf, &reference, "bcast mismatch at rank {rank}");
        }
    }

    fn run_scatter(nodes: usize, ppn: usize, root: usize, block: usize) {
        let topo = Topology::new(nodes, ppn);
        let world = topo.world_size();
        let sendbuf = oracle::rank_payload(root, world * block);
        let expected = oracle::scatter(&sendbuf, world);
        let sendbuf_ref = &sendbuf;
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let mut recvbuf = vec![0u8; block];
            let send = (comm.rank() == root).then_some(sendbuf_ref.as_slice());
            scatter_binomial(&comm, send, &mut recvbuf, root, 200);
            recvbuf
        })
        .unwrap();
        for (rank, buf) in results.iter().enumerate() {
            assert_eq!(buf, &expected[rank], "scatter mismatch at rank {rank}");
        }
    }

    fn run_gather(nodes: usize, ppn: usize, root: usize, block: usize) {
        let topo = Topology::new(nodes, ppn);
        let world = topo.world_size();
        let contributions: Vec<Vec<u8>> =
            (0..world).map(|r| oracle::rank_payload(r, block)).collect();
        let expected = oracle::gather(&contributions);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let sendbuf = oracle::rank_payload(comm.rank(), block);
            let mut recvbuf = vec![0u8; world * block];
            let recv = (comm.rank() == root).then_some(recvbuf.as_mut_slice());
            gather_binomial(&comm, &sendbuf, recv, root, 300);
            recvbuf
        })
        .unwrap();
        assert_eq!(results[root], expected, "gather mismatch at root {root}");
    }

    #[test]
    fn bcast_power_of_two_world() {
        run_bcast(2, 4, 0, 64);
    }

    #[test]
    fn bcast_non_power_of_two_world_and_nonzero_root() {
        run_bcast(3, 3, 4, 33);
    }

    #[test]
    fn bcast_single_rank() {
        run_bcast(1, 1, 0, 16);
    }

    #[test]
    fn bcast_two_ranks_root_one() {
        run_bcast(1, 2, 1, 8);
    }

    #[test]
    fn scatter_power_of_two_world() {
        run_scatter(2, 4, 0, 16);
    }

    #[test]
    fn scatter_non_power_of_two_world() {
        run_scatter(3, 2, 0, 8);
    }

    #[test]
    fn scatter_nonzero_root() {
        run_scatter(2, 3, 4, 32);
    }

    #[test]
    fn scatter_prime_world_size() {
        run_scatter(7, 1, 3, 8);
    }

    #[test]
    fn scatter_single_rank() {
        run_scatter(1, 1, 0, 64);
    }

    #[test]
    fn gather_power_of_two_world() {
        run_gather(2, 4, 0, 16);
    }

    #[test]
    fn gather_non_power_of_two_world() {
        run_gather(3, 2, 5, 8);
    }

    #[test]
    fn gather_prime_world_size() {
        run_gather(5, 1, 2, 24);
    }

    #[test]
    fn gather_single_rank() {
        run_gather(1, 1, 0, 8);
    }

    fn run_reduce(nodes: usize, ppn: usize, root: usize, len: usize) {
        let topo = Topology::new(nodes, ppn);
        let world = topo.world_size();
        let contributions: Vec<Vec<u8>> =
            (0..world).map(|r| oracle::rank_payload(r, len)).collect();
        let expected = oracle::reduce(&contributions, oracle::wrapping_add_u8);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let sendbuf = oracle::rank_payload(comm.rank(), len);
            let mut recvbuf = vec![0u8; len];
            let recv = (comm.rank() == root).then_some(recvbuf.as_mut_slice());
            reduce_binomial(&comm, &sendbuf, recv, &oracle::wrapping_add_u8, root, 400);
            recvbuf
        })
        .unwrap();
        assert_eq!(results[root], expected, "reduce mismatch at root {root}");
    }

    #[test]
    fn reduce_power_of_two_world() {
        run_reduce(2, 4, 0, 16);
    }

    #[test]
    fn reduce_non_power_of_two_world_and_nonzero_root() {
        run_reduce(3, 3, 4, 33);
    }

    #[test]
    fn reduce_prime_world_size() {
        run_reduce(7, 1, 3, 8);
    }

    #[test]
    fn reduce_single_rank() {
        run_reduce(1, 1, 0, 8);
    }

    #[test]
    fn reduce_min_operator_keeps_elementwise_minimum() {
        let topo = Topology::new(2, 3);
        let world = topo.world_size();
        let len = 9;
        let contributions: Vec<Vec<u8>> =
            (0..world).map(|r| oracle::rank_payload(r, len)).collect();
        let expected = oracle::reduce(&contributions, oracle::min_u8);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let sendbuf = oracle::rank_payload(comm.rank(), len);
            let mut recvbuf = vec![0u8; len];
            let recv = (comm.rank() == 2).then_some(recvbuf.as_mut_slice());
            reduce_binomial(&comm, &sendbuf, recv, &oracle::min_u8, 2, 410);
            recvbuf
        })
        .unwrap();
        assert_eq!(results[2], expected);
    }

    #[test]
    fn reduce_typed_u64_prod_matches_the_typed_oracle() {
        use crate::datatype::{from_bytes, to_bytes, ReduceKernel, ReduceOp};
        let topo = Topology::new(3, 2);
        let world = topo.world_size();
        let root = 1;
        let contributions: Vec<Vec<u64>> = (0..world)
            .map(|r| (0..5).map(|i| (r as u64 + 2) * 10 + i).collect())
            .collect();
        let expected = oracle::allreduce_t(&contributions, ReduceOp::Prod);
        let inputs = &contributions;
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let sendbuf = to_bytes(&inputs[comm.rank()]);
            let mut recvbuf = vec![0u8; sendbuf.len()];
            let recv = (comm.rank() == root).then_some(recvbuf.as_mut_slice());
            let kernel = ReduceKernel::of::<u64>(ReduceOp::Prod);
            reduce_binomial(&comm, &sendbuf, recv, kernel.as_fn(), root, 420);
            from_bytes::<u64>(&recvbuf)
        })
        .unwrap();
        assert_eq!(results[root], expected);
    }

    #[test]
    fn reduce_trace_sends_exactly_p_minus_1_messages() {
        let topo = Topology::new(8, 1);
        let trace = record_trace(topo, |comm| {
            let sendbuf = vec![0u8; 32];
            let mut recvbuf = vec![0u8; 32];
            let recv = (comm.rank() == 0).then_some(recvbuf.as_mut_slice());
            reduce_binomial(comm, &sendbuf, recv, &oracle::wrapping_add_u8, 0, 1);
        });
        trace.validate().unwrap();
        // A binomial reduce over p ranks moves exactly p-1 messages; the
        // root sends none and receives log2(p).
        assert_eq!(trace.total_messages(), 7);
        assert_eq!(trace.ranks[0].send_count(), 0);
    }

    #[test]
    fn bcast_trace_has_logarithmic_depth_and_full_coverage() {
        let topo = Topology::new(16, 1);
        let trace = record_trace(topo, |comm| {
            let mut buf = vec![0u8; 64];
            bcast_binomial(comm, &mut buf, 0, 1);
        });
        trace.validate().unwrap();
        // A binomial broadcast over p ranks sends exactly p-1 messages.
        assert_eq!(trace.total_messages(), 15);
        // The root sends log2(p) of them.
        assert_eq!(trace.ranks[0].send_count(), 4);
    }

    #[test]
    fn scatter_trace_message_volume_matches_theory() {
        let world = 8;
        let block = 32;
        let topo = Topology::new(world, 1);
        let sendbuf = vec![0u8; world * block];
        let trace = record_trace(topo, |comm| {
            let mut recvbuf = vec![0u8; block];
            let send = (comm.rank() == 0).then_some(sendbuf.as_slice());
            scatter_binomial(comm, send, &mut recvbuf, 0, 1);
        });
        trace.validate().unwrap();
        // Binomial scatter moves sum over levels of p/2 blocks = block * p/2 * log p... exact:
        // each rank except the root receives its subtree once: total bytes = sum of subtree sizes.
        let total: usize = trace.ranks.iter().map(|r| r.bytes_sent()).sum();
        // For p=8: subtrees received: 4+2+1 (from root) + 2+1 + 1 + ... = 4+2+2+1+1+1+1 = 12 blocks.
        assert_eq!(total, 12 * block);
    }
}
