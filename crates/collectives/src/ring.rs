//! Ring algorithms: the bandwidth-optimal large-message baselines — ring
//! allgather, ring reduce_scatter and ring allreduce (reduce-scatter
//! followed by allgather).

use crate::comm::{Comm, ReduceFn};

/// Ring allgather: `p - 1` steps; in each step every rank forwards to its
/// right neighbour the block it received in the previous step.
pub fn allgather_ring<C: Comm>(comm: &C, sendbuf: &[u8], recvbuf: &mut [u8], tag: u64) {
    let p = comm.world_size();
    let rank = comm.rank();
    let block = sendbuf.len();
    assert_eq!(recvbuf.len(), p * block);
    recvbuf[rank * block..(rank + 1) * block].copy_from_slice(sendbuf);
    if p == 1 {
        return;
    }
    let right = (rank + 1) % p;
    let left = (rank + p - 1) % p;
    for step in 0..p - 1 {
        // Block to forward: the one that originated `step` ranks behind us.
        let send_block = (rank + p - step) % p;
        let recv_block = (rank + p - step - 1) % p;
        let outgoing = recvbuf[send_block * block..(send_block + 1) * block].to_vec();
        let incoming = comm.sendrecv(
            right,
            tag + step as u64,
            &outgoing,
            left,
            tag + step as u64,
            block,
        );
        recvbuf[recv_block * block..(recv_block + 1) * block].copy_from_slice(&incoming);
    }
}

/// Ring allreduce: a reduce-scatter ring (each rank ends up owning the fully
/// reduced value of one chunk) followed by a ring allgather of the chunks.
/// This is the bandwidth-optimal algorithm used for large messages.
///
/// The buffer is split into `p` chunks at `elem_size`-aligned boundaries, so
/// `op` is only ever handed whole elements — splitting a multi-byte element
/// across two chunks would corrupt it when each half is reduced separately.
/// `buf.len()` must be a multiple of `elem_size` but the element count need
/// not be divisible by `p` (trailing chunks are smaller, possibly empty).
pub fn allreduce_ring<C: Comm>(
    comm: &C,
    buf: &mut [u8],
    elem_size: usize,
    op: &ReduceFn<'_>,
    tag: u64,
) {
    let p = comm.world_size();
    let rank = comm.rank();
    if p == 1 {
        return;
    }
    assert_eq!(
        buf.len() % elem_size,
        0,
        "ring allreduce buffer of {} B is not a whole number of {}-byte elements",
        buf.len(),
        elem_size
    );
    let n = buf.len() / elem_size;
    let chunk_bounds = |i: usize| -> (usize, usize) {
        let base = n / p;
        let extra = n % p;
        let start = i * base + i.min(extra);
        let len = base + usize::from(i < extra);
        (start * elem_size, (start + len) * elem_size)
    };
    let right = (rank + 1) % p;
    let left = (rank + p - 1) % p;

    // Reduce-scatter phase: after p-1 steps, rank r owns the fully reduced
    // chunk (r + 1) % p.
    for step in 0..p - 1 {
        let send_chunk = (rank + p - step) % p;
        let recv_chunk = (rank + p - step - 1) % p;
        let (ss, se) = chunk_bounds(send_chunk);
        let (rs, re) = chunk_bounds(recv_chunk);
        let outgoing = buf[ss..se].to_vec();
        let incoming = comm.sendrecv(
            right,
            tag + step as u64,
            &outgoing,
            left,
            tag + step as u64,
            re - rs,
        );
        op(&mut buf[rs..re], &incoming);
        comm.charge_reduce(re - rs);
    }

    // Allgather phase: circulate the reduced chunks.
    for step in 0..p - 1 {
        let send_chunk = (rank + 1 + p - step) % p;
        let recv_chunk = (rank + p - step) % p;
        let (ss, se) = chunk_bounds(send_chunk);
        let (rs, re) = chunk_bounds(recv_chunk);
        let outgoing = buf[ss..se].to_vec();
        let incoming = comm.sendrecv(
            right,
            tag + 1000 + step as u64,
            &outgoing,
            left,
            tag + 1000 + step as u64,
            re - rs,
        );
        buf[rs..re].copy_from_slice(&incoming);
    }
}

/// Ring reduce_scatter for a commutative `op`: `p - 1` steps in which every
/// rank forwards a partially reduced block to its right neighbour, folding
/// its own contribution in as the block passes through.  Bandwidth-optimal:
/// each rank moves `(p - 1) / p` of the vector once.
///
/// `sendbuf` holds one block per rank (`world * recvbuf.len()` bytes);
/// `recvbuf` receives this rank's fully reduced block.
pub fn reduce_scatter_ring<C: Comm>(
    comm: &C,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    op: &ReduceFn<'_>,
    tag: u64,
) {
    let p = comm.world_size();
    let rank = comm.rank();
    let block = recvbuf.len();
    assert_eq!(
        sendbuf.len(),
        p * block,
        "sendbuf must hold one block per rank"
    );
    if p == 1 {
        recvbuf.copy_from_slice(sendbuf);
        return;
    }
    let mut buf = sendbuf.to_vec();
    let right = (rank + 1) % p;
    let left = (rank + p - 1) % p;
    // Block indices are chosen so that after p-1 steps rank r has folded
    // every contribution into block r.
    for step in 0..p - 1 {
        let send_block = (rank + p - step - 1) % p;
        let recv_block = (rank + p - step - 2) % p;
        let outgoing = buf[send_block * block..(send_block + 1) * block].to_vec();
        let incoming = comm.sendrecv(
            right,
            tag + step as u64,
            &outgoing,
            left,
            tag + step as u64,
            block,
        );
        op(
            &mut buf[recv_block * block..(recv_block + 1) * block],
            &incoming,
        );
        comm.charge_reduce(block);
    }
    recvbuf.copy_from_slice(&buf[rank * block..(rank + 1) * block]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{record_trace, ThreadComm};
    use crate::oracle;
    use pip_runtime::{Cluster, Topology};

    fn run_allgather_ring(nodes: usize, ppn: usize, block: usize) {
        let topo = Topology::new(nodes, ppn);
        let world = topo.world_size();
        let contributions: Vec<Vec<u8>> =
            (0..world).map(|r| oracle::rank_payload(r, block)).collect();
        let expected = oracle::allgather(&contributions);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let sendbuf = oracle::rank_payload(comm.rank(), block);
            let mut recvbuf = vec![0u8; world * block];
            allgather_ring(&comm, &sendbuf, &mut recvbuf, 1500);
            recvbuf
        })
        .unwrap();
        for buf in &results {
            assert_eq!(buf, &expected);
        }
    }

    fn run_allreduce_ring(nodes: usize, ppn: usize, len: usize) {
        let topo = Topology::new(nodes, ppn);
        let world = topo.world_size();
        let contributions: Vec<Vec<u8>> =
            (0..world).map(|r| oracle::rank_payload(r, len)).collect();
        let expected = oracle::allreduce(&contributions, oracle::wrapping_add_u8);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let mut buf = oracle::rank_payload(comm.rank(), len);
            allreduce_ring(&comm, &mut buf, 1, &oracle::wrapping_add_u8, 1700);
            buf
        })
        .unwrap();
        for (rank, buf) in results.iter().enumerate() {
            assert_eq!(buf, &expected, "ring allreduce mismatch at rank {rank}");
        }
    }

    #[test]
    fn allgather_ring_power_of_two() {
        run_allgather_ring(2, 2, 8);
    }

    #[test]
    fn allgather_ring_non_power_of_two() {
        run_allgather_ring(3, 2, 16);
    }

    #[test]
    fn allgather_ring_single_rank() {
        run_allgather_ring(1, 1, 8);
    }

    #[test]
    fn allreduce_ring_even_split() {
        run_allreduce_ring(2, 2, 64);
    }

    #[test]
    fn allreduce_ring_uneven_split() {
        // 6 ranks, 32 bytes: chunks of 6,6,5,5,5,5.
        run_allreduce_ring(3, 2, 32);
    }

    #[test]
    fn allreduce_ring_len_smaller_than_world() {
        run_allreduce_ring(5, 1, 3);
    }

    #[test]
    fn allreduce_ring_single_rank() {
        run_allreduce_ring(1, 1, 16);
    }

    #[test]
    fn allreduce_ring_two_ranks() {
        run_allreduce_ring(1, 2, 9);
    }

    #[test]
    fn allreduce_ring_typed_i32_min_matches_the_typed_oracle() {
        use crate::datatype::{from_bytes, to_bytes, ReduceKernel, ReduceOp};
        let topo = Topology::new(3, 2);
        let world = topo.world_size();
        let contributions: Vec<Vec<i32>> = (0..world)
            .map(|r| (0..7).map(|i| (r as i32 - 3) * 17 - i).collect())
            .collect();
        let expected = oracle::allreduce_t(&contributions, ReduceOp::Min);
        let inputs = &contributions;
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let mut buf = to_bytes(&inputs[comm.rank()]);
            let kernel = ReduceKernel::of::<i32>(ReduceOp::Min);
            allreduce_ring(&comm, &mut buf, 4, kernel.as_fn(), 1750);
            from_bytes::<i32>(&buf)
        })
        .unwrap();
        for (rank, out) in results.iter().enumerate() {
            assert_eq!(
                out, &expected,
                "typed ring allreduce mismatch at rank {rank}"
            );
        }
    }

    #[test]
    fn ring_allgather_trace_has_p_minus_1_rounds() {
        let world = 6;
        let topo = Topology::new(world, 1);
        let trace = record_trace(topo, |comm| {
            let sendbuf = vec![0u8; 8];
            let mut recvbuf = vec![0u8; world * 8];
            allgather_ring(comm, &sendbuf, &mut recvbuf, 1);
        });
        trace.validate().unwrap();
        assert_eq!(trace.ranks[0].send_count(), world - 1);
    }

    #[test]
    fn ring_allreduce_trace_volume_is_2n_per_rank() {
        let world = 4;
        let len = 64;
        let topo = Topology::new(world, 1);
        let trace = record_trace(topo, |comm| {
            let mut buf = vec![0u8; len];
            allreduce_ring(comm, &mut buf, 1, &oracle::wrapping_add_u8, 1);
        });
        trace.validate().unwrap();
        // Each rank sends 2 * (p-1) chunks of n/p bytes.
        let sent = trace.ranks[0].bytes_sent();
        assert_eq!(sent, 2 * (len / world) * (world - 1));
        assert!(sent <= 2 * len);
    }
}
