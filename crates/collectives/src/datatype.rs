//! Typed elements, reduction operators and the erased reduction kernels the
//! collective algorithms consume.
//!
//! MPI expresses a buffer as `(pointer, count, datatype, op)`; the Rust
//! equivalent used here is a slice of a type implementing [`Datatype`], which
//! knows how to serialize itself to the little-endian byte representation the
//! communication layer moves around, and how the built-in [`ReduceOp`]s
//! combine two values.
//!
//! The collective algorithms themselves stay byte-oriented (they move and
//! combine `[u8]` runs); the bridge between the two worlds is
//! [`ReduceKernel`]: a `Copy` handle around a **monomorphized** `(type, op)`
//! byte kernel (`fn(&mut [u8], &[u8])`) together with its
//! [`ReduceIdent`] identity. The identity travels with every reduction
//! request so compiled plans can be keyed by `(collective, type, op)` —
//! an `f32`-Sum plan never serves an `i32`-Max call — while the kernel
//! pointer coerces to the `&ReduceFn` the algorithms already accept.
//!
//! ## Kernel performance
//!
//! [`ReduceOp::apply_bytes`] no longer round-trips every element through
//! `read_le`/`write_le` with a per-element operator dispatch. The operator
//! match is hoisted out of the loop (one monomorphized fold per `(type,
//! op)`), and each fold walks the buffers in [`LANES`]-element groups that
//! decode, combine and re-encode as straight-line code — a shape LLVM
//! auto-vectorizes — with an explicitly unrolled path for the `f32`/`f64`
//! Sum kernels that dominate gradient workloads. The historical per-element
//! path survives as [`ReduceOp::apply_bytes_scalar`], the baseline for
//! `bench_reduce_kernels` and the differential tests.
//!
//! ## Float semantics
//!
//! `Max`/`Min` over floats are **NaN-propagating**: if either input is NaN
//! the result is the canonical `NAN` of the type, so the outcome does not
//! depend on which rank contributed the NaN or on the algorithm's combine
//! order (Rust's `f32::max` would silently drop the NaN instead). Signed
//! zeros are ordered like [`f32::total_cmp`]: `max(-0.0, +0.0) == +0.0` and
//! `min(-0.0, +0.0) == -0.0`, again independent of combine order.

use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::comm::ReduceFn;
use crate::request::SharedReduceOp;

/// Elements per group in the chunked reduction kernels.
///
/// Eight elements is wide enough to fill a 256-bit vector with `f32` and to
/// give the compiler independent lanes to schedule for the 8-byte types.
pub const LANES: usize = 8;

/// Wire identity of a [`Datatype`] implementation.
///
/// This is what travels inside [`ReduceIdent`] into plan-cache keys, so two
/// datatypes with the same byte width (`f32` vs `i32`) still produce
/// distinct plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DtypeId {
    /// `u8`
    U8,
    /// `i8`
    I8,
    /// `u16`
    U16,
    /// `i16`
    I16,
    /// `u32`
    U32,
    /// `i32`
    I32,
    /// `u64`
    U64,
    /// `i64`
    I64,
    /// `f32`
    F32,
    /// `f64`
    F64,
}

impl DtypeId {
    /// Wire size of one element in bytes.
    pub fn size(self) -> usize {
        match self {
            DtypeId::U8 | DtypeId::I8 => 1,
            DtypeId::U16 | DtypeId::I16 => 2,
            DtypeId::U32 | DtypeId::I32 | DtypeId::F32 => 4,
            DtypeId::U64 | DtypeId::I64 | DtypeId::F64 => 8,
        }
    }

    /// Display name (the Rust type name).
    pub fn name(self) -> &'static str {
        match self {
            DtypeId::U8 => "u8",
            DtypeId::I8 => "i8",
            DtypeId::U16 => "u16",
            DtypeId::I16 => "i16",
            DtypeId::U32 => "u32",
            DtypeId::I32 => "i32",
            DtypeId::U64 => "u64",
            DtypeId::I64 => "i64",
            DtypeId::F32 => "f32",
            DtypeId::F64 => "f64",
        }
    }
}

/// A fixed-size element that can travel through the communication layer.
///
/// # Wire-format stability
///
/// The serialized form is part of the cross-rank protocol, so every
/// implementation must guarantee:
///
/// * [`Datatype::SIZE`] is a **platform-independent** constant (this is why
///   `usize`/`isize` deliberately have no impl — their width differs between
///   32- and 64-bit targets, so a serialized buffer would not be portable);
/// * the encoding is little-endian and exactly `SIZE` bytes, regardless of
///   host endianness;
/// * `read_le(write_le(x)) == x` bit-for-bit (floats round-trip NaN
///   payloads unchanged).
pub trait Datatype: Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static {
    /// Size of one element in bytes.
    const SIZE: usize;

    /// Stable wire identity of this type.
    const ID: DtypeId;

    /// Serialize into exactly [`Datatype::SIZE`] bytes.
    fn write_le(&self, out: &mut [u8]);

    /// Deserialize from exactly [`Datatype::SIZE`] bytes.
    fn read_le(src: &[u8]) -> Self;

    /// `a + b` for the SUM operator.
    fn op_sum(a: Self, b: Self) -> Self;
    /// `a * b` for the PROD operator.
    fn op_prod(a: Self, b: Self) -> Self;
    /// `max(a, b)` for the MAX operator (NaN-propagating for floats).
    fn op_max(a: Self, b: Self) -> Self;
    /// `min(a, b)` for the MIN operator (NaN-propagating for floats).
    fn op_min(a: Self, b: Self) -> Self;

    /// Chunked `acc[i] += other[i]` over serialized buffers.
    ///
    /// The default walks [`LANES`]-element groups with the operator fixed at
    /// monomorphization time; the float impls override it with an explicitly
    /// unrolled version. Callers go through [`ReduceOp::apply_bytes`], which
    /// validates lengths first.
    fn fold_sum(acc: &mut [u8], other: &[u8]) {
        fold_chunked(Self::op_sum, acc, other);
    }

    /// Chunked `acc[i] *= other[i]` over serialized buffers.
    fn fold_prod(acc: &mut [u8], other: &[u8]) {
        fold_chunked(Self::op_prod, acc, other);
    }

    /// Chunked `acc[i] = max(acc[i], other[i])` over serialized buffers.
    fn fold_max(acc: &mut [u8], other: &[u8]) {
        fold_chunked(Self::op_max, acc, other);
    }

    /// Chunked `acc[i] = min(acc[i], other[i])` over serialized buffers.
    fn fold_min(acc: &mut [u8], other: &[u8]) {
        fold_chunked(Self::op_min, acc, other);
    }
}

/// Shared loop shape of the chunked kernels: decode a [`LANES`]-element
/// group from each side, combine lane-wise, re-encode, then finish the tail
/// element by element. `combine` is a concrete `fn`/closure per `(type,
/// op)`, so the whole body monomorphizes without per-element dispatch.
fn fold_chunked<T: Datatype>(combine: impl Fn(T, T) -> T + Copy, acc: &mut [u8], other: &[u8]) {
    let stride = T::SIZE * LANES;
    let mut acc_runs = acc.chunks_exact_mut(stride);
    let mut other_runs = other.chunks_exact(stride);
    for (acc_run, other_run) in acc_runs.by_ref().zip(other_runs.by_ref()) {
        let a: [T; LANES] =
            std::array::from_fn(|l| T::read_le(&acc_run[l * T::SIZE..(l + 1) * T::SIZE]));
        let b: [T; LANES] =
            std::array::from_fn(|l| T::read_le(&other_run[l * T::SIZE..(l + 1) * T::SIZE]));
        for l in 0..LANES {
            combine(a[l], b[l]).write_le(&mut acc_run[l * T::SIZE..(l + 1) * T::SIZE]);
        }
    }
    let acc_tail = acc_runs.into_remainder();
    let other_tail = other_runs.remainder();
    for (acc_el, other_el) in acc_tail
        .chunks_exact_mut(T::SIZE)
        .zip(other_tail.chunks_exact(T::SIZE))
    {
        combine(T::read_le(acc_el), T::read_le(other_el)).write_le(acc_el);
    }
}

macro_rules! impl_datatype_int {
    ($($ty:ty => $id:ident),* $(,)?) => {$(
        impl Datatype for $ty {
            const SIZE: usize = std::mem::size_of::<$ty>();
            const ID: DtypeId = DtypeId::$id;

            fn write_le(&self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }

            fn read_le(src: &[u8]) -> Self {
                <$ty>::from_le_bytes(src.try_into().expect("element size"))
            }

            fn op_sum(a: Self, b: Self) -> Self {
                a.wrapping_add(b)
            }

            fn op_prod(a: Self, b: Self) -> Self {
                a.wrapping_mul(b)
            }

            fn op_max(a: Self, b: Self) -> Self {
                a.max(b)
            }

            fn op_min(a: Self, b: Self) -> Self {
                a.min(b)
            }
        }
    )*};
}

macro_rules! impl_datatype_float {
    ($($ty:ty => $id:ident),* $(,)?) => {$(
        impl Datatype for $ty {
            const SIZE: usize = std::mem::size_of::<$ty>();
            const ID: DtypeId = DtypeId::$id;

            fn write_le(&self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }

            fn read_le(src: &[u8]) -> Self {
                <$ty>::from_le_bytes(src.try_into().expect("element size"))
            }

            fn op_sum(a: Self, b: Self) -> Self {
                a + b
            }

            fn op_prod(a: Self, b: Self) -> Self {
                a * b
            }

            // NaN-propagating, canonical-NaN max/min with total_cmp ordering
            // of signed zeros (see the module docs). Rust's `max`/`min`
            // would drop the NaN, making the reduction depend on combine
            // order.
            fn op_max(a: Self, b: Self) -> Self {
                if a.is_nan() || b.is_nan() {
                    <$ty>::NAN
                } else if a.total_cmp(&b) == std::cmp::Ordering::Less {
                    b
                } else {
                    a
                }
            }

            fn op_min(a: Self, b: Self) -> Self {
                if a.is_nan() || b.is_nan() {
                    <$ty>::NAN
                } else if a.total_cmp(&b) == std::cmp::Ordering::Greater {
                    b
                } else {
                    a
                }
            }

            // Explicitly unrolled Sum: the dominant kernel of gradient
            // workloads gets straight-line lane adds instead of trusting the
            // optimizer to unroll the generic loop.
            fn fold_sum(acc: &mut [u8], other: &[u8]) {
                const S: usize = std::mem::size_of::<$ty>();
                let stride = S * LANES;
                let mut acc_runs = acc.chunks_exact_mut(stride);
                let mut other_runs = other.chunks_exact(stride);
                for (acc_run, other_run) in acc_runs.by_ref().zip(other_runs.by_ref()) {
                    let a: [$ty; LANES] =
                        std::array::from_fn(|l| <$ty>::read_le(&acc_run[l * S..(l + 1) * S]));
                    let b: [$ty; LANES] =
                        std::array::from_fn(|l| <$ty>::read_le(&other_run[l * S..(l + 1) * S]));
                    let r = [
                        a[0] + b[0],
                        a[1] + b[1],
                        a[2] + b[2],
                        a[3] + b[3],
                        a[4] + b[4],
                        a[5] + b[5],
                        a[6] + b[6],
                        a[7] + b[7],
                    ];
                    for l in 0..LANES {
                        acc_run[l * S..(l + 1) * S].copy_from_slice(&r[l].to_le_bytes());
                    }
                }
                let acc_tail = acc_runs.into_remainder();
                let other_tail = other_runs.remainder();
                for (acc_el, other_el) in acc_tail
                    .chunks_exact_mut(S)
                    .zip(other_tail.chunks_exact(S))
                {
                    let r = <$ty>::read_le(acc_el) + <$ty>::read_le(other_el);
                    acc_el.copy_from_slice(&r.to_le_bytes());
                }
            }
        }
    )*};
}

impl_datatype_int!(
    u8 => U8,
    i8 => I8,
    u16 => U16,
    i16 => I16,
    u32 => U32,
    i32 => I32,
    u64 => U64,
    i64 => I64,
);
impl_datatype_float!(f32 => F32, f64 => F64);

/// The built-in commutative reduction operators (MPI_SUM, MPI_PROD, MPI_MAX,
/// MPI_MIN).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise product.
    Prod,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    /// All built-in operators, for grids in tests and benches.
    pub const ALL: [ReduceOp; 4] = [ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Max, ReduceOp::Min];

    /// Display name matching MPI nomenclature.
    pub fn name(&self) -> &'static str {
        match self {
            ReduceOp::Sum => "MPI_SUM",
            ReduceOp::Prod => "MPI_PROD",
            ReduceOp::Max => "MPI_MAX",
            ReduceOp::Min => "MPI_MIN",
        }
    }

    /// Combine two values.
    pub fn combine<T: Datatype>(&self, a: T, b: T) -> T {
        match self {
            ReduceOp::Sum => T::op_sum(a, b),
            ReduceOp::Prod => T::op_prod(a, b),
            ReduceOp::Max => T::op_max(a, b),
            ReduceOp::Min => T::op_min(a, b),
        }
    }

    /// Element-wise combine over serialized buffers (`acc ⊕= other`), the
    /// form the byte-level collective algorithms consume.
    ///
    /// Dispatches once to the chunked `(type, op)` fold (see the module
    /// docs); use [`ReduceKernel::of`] to fix the dispatch ahead of time.
    ///
    /// # Panics
    ///
    /// In **every** build profile, if the buffers differ in length or the
    /// length is not a whole number of elements. These used to be
    /// `debug_assert`s, which in release builds turned a short `other` into
    /// a mid-loop index panic and *silently dropped* a trailing partial
    /// element.
    pub fn apply_bytes<T: Datatype>(&self, acc: &mut [u8], other: &[u8]) {
        validate_reduce_buffers::<T>(acc, other);
        match self {
            ReduceOp::Sum => T::fold_sum(acc, other),
            ReduceOp::Prod => T::fold_prod(acc, other),
            ReduceOp::Max => T::fold_max(acc, other),
            ReduceOp::Min => T::fold_min(acc, other),
        }
    }

    /// The historical per-element implementation: decode one element from
    /// each side, dispatch the operator, re-encode.
    ///
    /// Kept as the reference semantics for the differential tests and as
    /// the scalar baseline `bench_reduce_kernels` measures
    /// [`ReduceOp::apply_bytes`] against. Validates like `apply_bytes`.
    pub fn apply_bytes_scalar<T: Datatype>(&self, acc: &mut [u8], other: &[u8]) {
        validate_reduce_buffers::<T>(acc, other);
        for (acc_el, other_el) in acc
            .chunks_exact_mut(T::SIZE)
            .zip(other.chunks_exact(T::SIZE))
        {
            let a = T::read_le(acc_el);
            let b = T::read_le(other_el);
            self.combine(a, b).write_le(acc_el);
        }
    }
}

/// Unconditional buffer validation shared by both kernel paths.
fn validate_reduce_buffers<T: Datatype>(acc: &[u8], other: &[u8]) {
    assert_eq!(
        acc.len(),
        other.len(),
        "reduction buffers must have equal lengths (acc {} B, other {} B)",
        acc.len(),
        other.len()
    );
    assert_eq!(
        acc.len() % T::SIZE,
        0,
        "reduction buffer of {} B is not a whole number of {}-byte {} elements",
        acc.len(),
        T::SIZE,
        T::ID.name()
    );
}

/// Identity of a reduction: which element type and which operator.
///
/// Travels with every reduction request into `CollectiveShape`/`PlanKey`,
/// so the plan cache distinguishes same-width, different-meaning reductions.
/// Built-in reductions are identified structurally by `(type, op)`;
/// user-defined operators ([`Op`]) carry the process-unique id minted at
/// registration, so two different user operators over same-size elements
/// never serve each other's cached plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceIdent {
    /// A built-in `(type, op)` kernel.
    Builtin {
        /// Element type.
        dtype: DtypeId,
        /// Reduction operator.
        op: ReduceOp,
    },
    /// A user-defined operator registered through [`Op::create`].
    User {
        /// Process-unique registration id (see [`Op::id`]).
        id: u64,
        /// Element size in bytes the operator assumes.
        elem_size: usize,
    },
}

impl ReduceIdent {
    /// Wire size of one element.
    pub fn elem_size(self) -> usize {
        match self {
            ReduceIdent::Builtin { dtype, .. } => dtype.size(),
            ReduceIdent::User { elem_size, .. } => elem_size,
        }
    }
}

/// Source of process-unique [`Op`] ids. Starts at 1 so 0 never names a
/// registered operator.
static NEXT_OP_ID: AtomicU64 = AtomicU64::new(1);

/// A user-defined reduction operator — the `MPI_Op_create` analogue.
///
/// Wraps an arbitrary `acc ⊕= other` byte closure together with a **stable
/// 64-bit identity** minted at registration. The identity travels into
/// `CollectiveShape`/`PlanKey` as [`ReduceIdent::User`], so plans compiled
/// for one user operator are never served to another, even when both operate
/// on same-size elements.
///
/// # Operator contract
///
/// The collective algorithms assume the operator is **associative and
/// commutative**: recursive doubling, ring and hierarchical schedules all
/// combine contributions in rank orders that vary with the topology and the
/// library. A non-commutative or non-associative closure produces
/// schedule-dependent results (exactly as a non-commutative `MPI_Op` does
/// under `MPI_Allreduce`). Floating-point closures additionally inherit the
/// usual caveat that `(a + b) + c != a + (b + c)` in general; the built-in
/// float kernels (see the module docs) pick NaN-propagating, total-order
/// semantics for this reason.
///
/// `Op` is cheaply cloneable (the closure is behind an [`Arc`]); clones share
/// the same identity, so they also share cached plans.
#[derive(Clone)]
pub struct Op {
    id: u64,
    elem_size: usize,
    f: SharedOpFn,
}

/// The shared, erased form of a registered operator's combine closure.
type SharedOpFn = Arc<dyn Fn(&mut [u8], &[u8]) + Send + Sync>;

impl Op {
    /// Register a byte-level operator over `elem_size`-byte elements.
    ///
    /// The closure receives `(acc, other)` buffers of equal length, always a
    /// whole number of elements, and must fold `other` into `acc`
    /// element-wise. See the type docs for the associativity/commutativity
    /// contract.
    ///
    /// # Panics
    ///
    /// If `elem_size` is zero.
    pub fn create(elem_size: usize, f: impl Fn(&mut [u8], &[u8]) + Send + Sync + 'static) -> Self {
        assert!(elem_size > 0, "user operator element size must be non-zero");
        Op {
            id: NEXT_OP_ID.fetch_add(1, Ordering::Relaxed),
            elem_size,
            f: Arc::new(f),
        }
    }

    /// Register a typed element-wise operator: `combine(acc, other)` is
    /// applied per element, with serialization handled here.
    pub fn of_typed<T: Datatype>(combine: impl Fn(T, T) -> T + Send + Sync + 'static) -> Self {
        Op::create(T::SIZE, move |acc, other| {
            validate_reduce_buffers::<T>(acc, other);
            for (acc_el, other_el) in acc
                .chunks_exact_mut(T::SIZE)
                .zip(other.chunks_exact(T::SIZE))
            {
                combine(T::read_le(acc_el), T::read_le(other_el)).write_le(acc_el);
            }
        })
    }

    /// The process-unique registration id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Element size in bytes the operator assumes.
    pub fn elem_size(&self) -> usize {
        self.elem_size
    }

    /// The plan-cache identity of this operator.
    pub fn ident(&self) -> ReduceIdent {
        ReduceIdent::User {
            id: self.id,
            elem_size: self.elem_size,
        }
    }

    /// Combine `other` into `acc`.
    pub fn apply(&self, acc: &mut [u8], other: &[u8]) {
        (self.f)(acc, other)
    }

    /// Borrow as the `&ReduceFn` form every collective algorithm accepts.
    pub fn as_fn(&self) -> &ReduceFn<'_> {
        // `&(dyn Fn + Send + Sync)` coerces to `&(dyn Fn + Sync)` by
        // dropping the auto trait.
        &*self.f
    }

    /// Owned, shareable form for the progress engine (non-blocking and
    /// persistent entry points).
    pub fn shared(&self) -> SharedReduceOp {
        let f = Arc::clone(&self.f);
        Rc::new(move |acc: &mut [u8], other: &[u8]| f(acc, other))
    }

    /// The request-level [`Reduction`] view of this operator.
    pub fn reduction(&self) -> Reduction<'_> {
        Reduction::User(self)
    }
}

impl std::fmt::Debug for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Op")
            .field("id", &self.id)
            .field("elem_size", &self.elem_size)
            .finish_non_exhaustive()
    }
}

/// An owned reduction operator for the owned-collective path (`i*` and
/// `*_init` entry styles): either a built-in [`ReduceKernel`] or a
/// user-defined [`Op`].
#[derive(Debug, Clone)]
pub enum OwnedReduction {
    /// A built-in `(type, op)` kernel.
    Typed(ReduceKernel),
    /// A user-defined operator.
    User(Op),
}

impl OwnedReduction {
    /// The plan-cache identity.
    pub fn ident(&self) -> ReduceIdent {
        match self {
            OwnedReduction::Typed(kernel) => kernel.ident(),
            OwnedReduction::User(op) => op.ident(),
        }
    }

    /// Wire size of one element.
    pub fn elem_size(&self) -> usize {
        match self {
            OwnedReduction::Typed(kernel) => kernel.elem_size(),
            OwnedReduction::User(op) => op.elem_size(),
        }
    }

    /// Owned, shareable operator form for the progress engine.
    pub fn shared(&self) -> SharedReduceOp {
        match self {
            OwnedReduction::Typed(kernel) => kernel.shared(),
            OwnedReduction::User(op) => op.shared(),
        }
    }
}

/// A strided (vector) derived datatype: `count` blocks of `blocklen`
/// elements, block starts `stride` elements apart — the `MPI_Type_vector`
/// triple. All fields are in **elements**; multiply by the element size
/// ([`Layout::scaled`]) to get the byte-level layout the plan executor uses.
///
/// A layout describes how a collective's data sits in the caller's buffer:
/// the buffer spans [`Layout::extent`] elements, of which the
/// [`Layout::packed_len`] elements inside blocks participate in the
/// collective and the gap elements are left untouched. Non-contiguous
/// layouts are packed into scratch before the algorithm runs and unpacked
/// after ([`Layout::pack_bytes`]/[`Layout::unpack_bytes`]); contiguous ones
/// (`stride == blocklen`, or fewer than two blocks) ride the existing
/// contiguous plans unchanged.
///
/// The layout is part of [`ReduceIdent`]'s sibling key material in
/// `CollectiveShape`, so two layouts with equal total bytes never alias a
/// cached plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Layout {
    /// Number of blocks.
    pub count: usize,
    /// Elements per block.
    pub blocklen: usize,
    /// Elements between successive block starts (`>= blocklen`).
    pub stride: usize,
}

impl Layout {
    /// The `MPI_Type_vector(count, blocklen, stride)` layout.
    ///
    /// # Panics
    ///
    /// If `stride < blocklen` (blocks would overlap) or `blocklen == 0`
    /// with a non-zero count.
    pub fn vector(count: usize, blocklen: usize, stride: usize) -> Self {
        assert!(
            stride >= blocklen,
            "layout stride {stride} must be >= blocklen {blocklen} (blocks may not overlap)"
        );
        assert!(
            count == 0 || blocklen > 0,
            "layout blocklen must be non-zero when count > 0"
        );
        Layout {
            count,
            blocklen,
            stride,
        }
    }

    /// A contiguous run of `len` elements (`stride == blocklen`).
    pub fn contiguous(len: usize) -> Self {
        Layout {
            count: 1,
            blocklen: len,
            stride: len,
        }
    }

    /// Elements that participate in the collective: `count * blocklen`.
    pub fn packed_len(&self) -> usize {
        self.count * self.blocklen
    }

    /// Elements the caller's buffer must span: the last block ends at
    /// `(count - 1) * stride + blocklen`. Zero when `count == 0`.
    pub fn extent(&self) -> usize {
        if self.count == 0 {
            0
        } else {
            (self.count - 1) * self.stride + self.blocklen
        }
    }

    /// Whether the layout is a plain contiguous run (no gaps). Contiguous
    /// layouts share the plans of un-layouted collectives.
    pub fn is_contiguous(&self) -> bool {
        self.count <= 1 || self.stride == self.blocklen
    }

    /// The same layout with every field scaled from elements to bytes.
    pub fn scaled(&self, elem_size: usize) -> Layout {
        Layout {
            count: self.count,
            blocklen: self.blocklen * elem_size,
            stride: self.stride * elem_size,
        }
    }

    /// Gather the blocks of `src` (an extent-length buffer, fields in
    /// bytes) into `dst`, which is cleared first and ends up
    /// `packed_len` bytes long.
    pub fn pack_bytes(&self, src: &[u8], dst: &mut Vec<u8>) {
        assert!(
            src.len() >= self.extent(),
            "pack source of {} B is shorter than the layout extent {} B",
            src.len(),
            self.extent()
        );
        dst.clear();
        dst.reserve(self.packed_len());
        for block in 0..self.count {
            let start = block * self.stride;
            dst.extend_from_slice(&src[start..start + self.blocklen]);
        }
    }

    /// Scatter `src` (`packed_len` bytes) back into the blocks of `dst`
    /// (an extent-length buffer, fields in bytes), leaving the gap bytes
    /// untouched.
    pub fn unpack_bytes(&self, src: &[u8], dst: &mut [u8]) {
        assert_eq!(
            src.len(),
            self.packed_len(),
            "unpack source must be exactly the packed length"
        );
        assert!(
            dst.len() >= self.extent(),
            "unpack destination of {} B is shorter than the layout extent {} B",
            dst.len(),
            self.extent()
        );
        for block in 0..self.count {
            let start = block * self.stride;
            dst[start..start + self.blocklen]
                .copy_from_slice(&src[block * self.blocklen..(block + 1) * self.blocklen]);
        }
    }
}

/// An erased reduction kernel: the monomorphized `(type, op)` byte fold plus
/// its identity.
///
/// `Copy` and `'static`, so it can be stored in owned collective
/// descriptors, turned into the `&ReduceFn` the algorithms take
/// ([`ReduceKernel::as_fn`]), or into the shared handle the progress engine
/// holds ([`ReduceKernel::shared`]).
#[derive(Debug, Clone, Copy)]
pub struct ReduceKernel {
    ident: ReduceIdent,
    kernel: fn(&mut [u8], &[u8]),
}

impl ReduceKernel {
    /// The kernel for element type `T` and operator `op`.
    ///
    /// `ReduceKernel::of::<u8>(ReduceOp::Sum)` is the trivial instantiation
    /// the historical byte API reduces to (wrapping per-byte addition).
    pub fn of<T: Datatype>(op: ReduceOp) -> Self {
        // Capture-free closures coerce to `fn`, fixing the (type, op)
        // dispatch here instead of per call.
        let kernel: fn(&mut [u8], &[u8]) = match op {
            ReduceOp::Sum => |acc, other| ReduceOp::Sum.apply_bytes::<T>(acc, other),
            ReduceOp::Prod => |acc, other| ReduceOp::Prod.apply_bytes::<T>(acc, other),
            ReduceOp::Max => |acc, other| ReduceOp::Max.apply_bytes::<T>(acc, other),
            ReduceOp::Min => |acc, other| ReduceOp::Min.apply_bytes::<T>(acc, other),
        };
        ReduceKernel {
            ident: ReduceIdent::Builtin { dtype: T::ID, op },
            kernel,
        }
    }

    /// The `(type, op)` identity.
    pub fn ident(&self) -> ReduceIdent {
        self.ident
    }

    /// Wire size of one element.
    pub fn elem_size(&self) -> usize {
        self.ident.elem_size()
    }

    /// Combine `other` into `acc`.
    pub fn apply(&self, acc: &mut [u8], other: &[u8]) {
        (self.kernel)(acc, other)
    }

    /// Borrow as the `&ReduceFn` form every collective algorithm accepts.
    pub fn as_fn(&self) -> &ReduceFn<'static> {
        &self.kernel
    }

    /// Owned, shareable form for the progress engine (non-blocking and
    /// persistent entry points).
    pub fn shared(&self) -> SharedReduceOp {
        Rc::new(self.kernel)
    }
}

/// The reduction operator as a collective request carries it.
///
/// The normal path is [`Reduction::Typed`] — a monomorphized kernel whose
/// identity keys the plan cache. [`Reduction::User`] borrows a registered
/// [`Op`], whose minted id keys the cache instead. [`Reduction::Opaque`]
/// carries an *anonymous* byte closure (plan recording substitutes one;
/// tests build throwaway operators); it has no identity, so the dispatch
/// layer never caches a plan for it — anonymous operators always take the
/// direct-execute path rather than risk aliasing by element size.
#[derive(Clone, Copy)]
pub enum Reduction<'a> {
    /// A typed `(type, op)` kernel.
    Typed(ReduceKernel),
    /// A registered user-defined operator.
    User(&'a Op),
    /// An anonymous byte operator over `elem_size`-byte elements.
    Opaque {
        /// Element size in bytes the closure assumes.
        elem_size: usize,
        /// The operator (`acc ⊕= other`).
        f: &'a ReduceFn<'a>,
    },
}

impl<'a> Reduction<'a> {
    /// A typed kernel for `T` and `op`.
    pub fn typed<T: Datatype>(op: ReduceOp) -> Self {
        Reduction::Typed(ReduceKernel::of::<T>(op))
    }

    /// Wire size of one element.
    pub fn elem_size(&self) -> usize {
        match self {
            Reduction::Typed(kernel) => kernel.elem_size(),
            Reduction::User(op) => op.elem_size(),
            Reduction::Opaque { elem_size, .. } => *elem_size,
        }
    }

    /// The plan-cache identity, if this reduction has one. Anonymous
    /// [`Reduction::Opaque`] operators have none, which the dispatch layer
    /// treats as "never cache".
    pub fn ident(&self) -> Option<ReduceIdent> {
        match self {
            Reduction::Typed(kernel) => Some(kernel.ident()),
            Reduction::User(op) => Some(op.ident()),
            Reduction::Opaque { .. } => None,
        }
    }

    /// Borrow the byte operator every collective algorithm accepts.
    pub fn as_fn(&self) -> &ReduceFn<'_> {
        match self {
            Reduction::Typed(kernel) => kernel.as_fn(),
            Reduction::User(op) => op.as_fn(),
            Reduction::Opaque { f, .. } => f,
        }
    }
}

impl std::fmt::Debug for Reduction<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reduction::Typed(kernel) => f.debug_tuple("Typed").field(&kernel.ident()).finish(),
            Reduction::User(op) => f.debug_tuple("User").field(op).finish(),
            Reduction::Opaque { elem_size, .. } => f
                .debug_struct("Opaque")
                .field("elem_size", elem_size)
                .finish_non_exhaustive(),
        }
    }
}

/// Serialize a typed slice to its little-endian byte representation.
pub fn to_bytes<T: Datatype>(values: &[T]) -> Vec<u8> {
    let mut out = vec![0u8; values.len() * T::SIZE];
    for (value, chunk) in values.iter().zip(out.chunks_exact_mut(T::SIZE)) {
        value.write_le(chunk);
    }
    out
}

/// Deserialize a little-endian byte buffer into typed elements.
pub fn from_bytes<T: Datatype>(bytes: &[u8]) -> Vec<T> {
    assert_eq!(
        bytes.len() % T::SIZE,
        0,
        "byte length must be a multiple of the element size"
    );
    bytes.chunks_exact(T::SIZE).map(T::read_le).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let values: Vec<i32> = vec![-5, 0, 7, i32::MAX, i32::MIN];
        assert_eq!(from_bytes::<i32>(&to_bytes(&values)), values);
        let values: Vec<u64> = vec![0, 1, u64::MAX];
        assert_eq!(from_bytes::<u64>(&to_bytes(&values)), values);
    }

    #[test]
    fn round_trip_floats() {
        let values: Vec<f64> = vec![0.0, -1.5, std::f64::consts::PI];
        assert_eq!(from_bytes::<f64>(&to_bytes(&values)), values);
    }

    #[test]
    fn dtype_ids_report_their_wire_size() {
        assert_eq!(<u8 as Datatype>::ID.size(), 1);
        assert_eq!(<i16 as Datatype>::ID.size(), 2);
        assert_eq!(<f32 as Datatype>::ID.size(), 4);
        assert_eq!(<u64 as Datatype>::ID.size(), 8);
        assert_eq!(DtypeId::F64.name(), "f64");
    }

    #[test]
    fn reduce_ops_combine_as_expected() {
        assert_eq!(ReduceOp::Sum.combine(3i32, 4), 7);
        assert_eq!(ReduceOp::Prod.combine(3i32, 4), 12);
        assert_eq!(ReduceOp::Max.combine(3i32, 4), 4);
        assert_eq!(ReduceOp::Min.combine(3i32, 4), 3);
        assert_eq!(ReduceOp::Sum.combine(1.5f64, 2.25), 3.75);
    }

    #[test]
    fn apply_bytes_is_elementwise() {
        let mut acc = to_bytes(&[1i32, 10, 100]);
        let other = to_bytes(&[2i32, 20, 200]);
        ReduceOp::Sum.apply_bytes::<i32>(&mut acc, &other);
        assert_eq!(from_bytes::<i32>(&acc), vec![3, 30, 300]);
        ReduceOp::Max.apply_bytes::<i32>(&mut acc, &to_bytes(&[5i32, 40, 1]));
        assert_eq!(from_bytes::<i32>(&acc), vec![5, 40, 300]);
    }

    #[test]
    fn integer_sum_wraps_instead_of_panicking() {
        assert_eq!(ReduceOp::Sum.combine(u8::MAX, 1u8), 0);
    }

    #[test]
    #[should_panic(expected = "multiple of the element size")]
    fn from_bytes_rejects_misaligned_lengths() {
        let _ = from_bytes::<i32>(&[0u8; 6]);
    }

    /// Chunked and scalar kernels agree bit-for-bit, across the lane
    /// boundary (lengths around multiples of LANES) and for every op.
    #[test]
    fn chunked_kernels_match_the_scalar_reference() {
        fn check<T: Datatype>(values: impl Fn(usize) -> T) {
            for count in [0, 1, 7, 8, 9, 15, 16, 17, 64, 65] {
                let a: Vec<T> = (0..count).map(&values).collect();
                let b: Vec<T> = (0..count).map(|i| values(i + 3)).collect();
                for op in ReduceOp::ALL {
                    let mut chunked = to_bytes(&a);
                    let mut scalar = chunked.clone();
                    let other = to_bytes(&b);
                    op.apply_bytes::<T>(&mut chunked, &other);
                    op.apply_bytes_scalar::<T>(&mut scalar, &other);
                    assert_eq!(
                        chunked,
                        scalar,
                        "{:?} over {} x {}",
                        op,
                        count,
                        std::any::type_name::<T>()
                    );
                }
            }
        }
        check::<u8>(|i| (i * 37 + 11) as u8);
        check::<i32>(|i| i as i32 * 1_000_003 - 17);
        check::<u64>(|i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        check::<f32>(|i| i as f32 * 0.75 - 4.0);
        check::<f64>(|i| i as f64 * -1.25 + 3.0);
    }

    #[test]
    fn float_max_min_propagate_nan_canonically() {
        for op in [ReduceOp::Max, ReduceOp::Min] {
            assert!(op.combine(f32::NAN, 1.0).is_nan());
            assert!(op.combine(1.0f32, f32::NAN).is_nan());
            assert!(op.combine(f64::NAN, f64::NEG_INFINITY).is_nan());
            // Canonical: the result is the positive canonical NaN, not the
            // input's payload — so combine order cannot change the bits.
            let negative_nan = f32::from_bits(f32::NAN.to_bits() | 0x8000_0000);
            assert_eq!(
                op.combine(negative_nan, 1.0f32).to_bits(),
                f32::NAN.to_bits()
            );
        }
    }

    #[test]
    fn float_max_min_order_signed_zeros_like_total_cmp() {
        assert_eq!(
            ReduceOp::Max.combine(-0.0f32, 0.0).to_bits(),
            0.0f32.to_bits()
        );
        assert_eq!(
            ReduceOp::Max.combine(0.0f32, -0.0).to_bits(),
            0.0f32.to_bits()
        );
        assert_eq!(
            ReduceOp::Min.combine(-0.0f64, 0.0).to_bits(),
            (-0.0f64).to_bits()
        );
        assert_eq!(
            ReduceOp::Min.combine(0.0f64, -0.0).to_bits(),
            (-0.0f64).to_bits()
        );
    }

    #[test]
    fn reduce_kernel_carries_identity_and_reduces() {
        let kernel = ReduceKernel::of::<f32>(ReduceOp::Sum);
        assert_eq!(
            kernel.ident(),
            ReduceIdent::Builtin {
                dtype: DtypeId::F32,
                op: ReduceOp::Sum
            }
        );
        assert_eq!(kernel.elem_size(), 4);
        let mut acc = to_bytes(&[1.0f32, 2.0]);
        kernel.apply(&mut acc, &to_bytes(&[0.5f32, 0.25]));
        assert_eq!(from_bytes::<f32>(&acc), vec![1.5, 2.25]);
        // The erased forms keep working as plain byte operators.
        let mut acc = to_bytes(&[1.0f32]);
        (kernel.as_fn())(&mut acc, &to_bytes(&[2.0f32]));
        (kernel.shared())(&mut acc, &to_bytes(&[4.0f32]));
        assert_eq!(from_bytes::<f32>(&acc), vec![7.0]);
    }

    #[test]
    fn u8_sum_kernel_is_the_trivial_byte_instantiation() {
        let kernel = ReduceKernel::of::<u8>(ReduceOp::Sum);
        let mut acc = vec![250u8, 1, 2];
        kernel.apply(&mut acc, &[10, 1, 1]);
        assert_eq!(acc, vec![4, 2, 3], "wrapping per-byte addition");
    }

    #[test]
    fn reduction_reports_identity_only_when_typed() {
        let typed = Reduction::typed::<i32>(ReduceOp::Max);
        assert_eq!(typed.elem_size(), 4);
        assert_eq!(
            typed.ident(),
            Some(ReduceIdent::Builtin {
                dtype: DtypeId::I32,
                op: ReduceOp::Max
            })
        );
        let custom = |acc: &mut [u8], other: &[u8]| {
            for (a, b) in acc.iter_mut().zip(other) {
                *a ^= *b;
            }
        };
        let opaque = Reduction::Opaque {
            elem_size: 2,
            f: &custom,
        };
        assert_eq!(opaque.elem_size(), 2);
        assert_eq!(opaque.ident(), None);
        let mut acc = vec![0b1010u8, 0xFF];
        (opaque.as_fn())(&mut acc, &[0b0110, 0x0F]);
        assert_eq!(acc, vec![0b1100, 0xF0]);
    }

    #[test]
    fn user_ops_mint_distinct_identities() {
        let a = Op::create(4, |acc, other| {
            for (x, y) in acc.iter_mut().zip(other) {
                *x = x.wrapping_add(*y);
            }
        });
        let b = Op::of_typed::<u32>(|x, y| x.wrapping_add(y).wrapping_add(7));
        assert_ne!(a.ident(), b.ident(), "each registration mints a fresh id");
        assert_ne!(a.id(), 0, "id 0 never names a registered operator");
        // Clones share identity (and therefore cached plans).
        assert_eq!(a.ident(), a.clone().ident());
        assert_eq!(a.elem_size(), 4);
        assert_eq!(
            a.ident(),
            ReduceIdent::User {
                id: a.id(),
                elem_size: 4
            }
        );
        // A user identity never equals a builtin of the same width.
        assert_ne!(
            a.ident(),
            ReduceKernel::of::<f32>(ReduceOp::Sum).ident(),
            "user ids and builtin (type, op) pairs live in disjoint key spaces"
        );
    }

    #[test]
    fn user_op_erased_forms_apply_the_closure() {
        let op = Op::of_typed::<u32>(|x, y| x.wrapping_add(y).wrapping_add(10));
        let mut acc = to_bytes(&[1u32, 2]);
        op.apply(&mut acc, &to_bytes(&[5u32, 6]));
        assert_eq!(from_bytes::<u32>(&acc), vec![16, 18]);
        (op.as_fn())(&mut acc, &to_bytes(&[0u32, 0]));
        (op.shared())(&mut acc, &to_bytes(&[1u32, 1]));
        assert_eq!(from_bytes::<u32>(&acc), vec![37, 39]);
        // And through the request-level view.
        let red = op.reduction();
        assert_eq!(red.elem_size(), 4);
        assert_eq!(red.ident(), Some(op.ident()));
    }

    #[test]
    fn layout_geometry_is_mpi_type_vector() {
        let l = Layout::vector(3, 2, 5);
        assert_eq!(l.packed_len(), 6);
        assert_eq!(l.extent(), 12); // 2*5 + 2
        assert!(!l.is_contiguous());
        assert_eq!(l.scaled(8), Layout::vector(3, 16, 40));

        assert!(Layout::contiguous(7).is_contiguous());
        assert_eq!(Layout::contiguous(7).extent(), 7);
        assert_eq!(Layout::contiguous(7).packed_len(), 7);
        // stride == blocklen is the degenerate-contiguous edge.
        assert!(Layout::vector(4, 3, 3).is_contiguous());
        assert_eq!(Layout::vector(4, 3, 3).extent(), 12);
        // count <= 1 is contiguous regardless of stride.
        assert!(Layout::vector(1, 3, 9).is_contiguous());
        assert_eq!(Layout::vector(1, 3, 9).extent(), 3);
        assert_eq!(Layout::vector(0, 3, 9).extent(), 0);
    }

    #[test]
    #[should_panic(expected = "blocks may not overlap")]
    fn layout_rejects_overlapping_blocks() {
        let _ = Layout::vector(2, 4, 3);
    }

    #[test]
    fn layout_pack_unpack_round_trips_and_preserves_gaps() {
        let l = Layout::vector(3, 2, 4); // bytes: blocks at 0..2, 4..6, 8..10
        let src: Vec<u8> = (0..10).collect();
        let mut packed = Vec::new();
        l.pack_bytes(&src, &mut packed);
        assert_eq!(packed, vec![0, 1, 4, 5, 8, 9]);

        let mut dst = vec![0xEEu8; 10];
        l.unpack_bytes(&packed, &mut dst);
        assert_eq!(dst, vec![0, 1, 0xEE, 0xEE, 4, 5, 0xEE, 0xEE, 8, 9]);
    }

    // --- release-profile pins -------------------------------------------
    //
    // The validation used to be `debug_assert_eq!`, so release builds
    // panicked mid-loop on short buffers and silently *dropped* a trailing
    // partial element. These run in every profile (CI additionally runs the
    // ignored twin under `cargo test --release -- --ignored` to pin the
    // release behavior specifically).

    fn assert_rejects_in_this_profile() {
        let mismatch = std::panic::catch_unwind(|| {
            let mut acc = vec![0u8; 8];
            ReduceOp::Sum.apply_bytes::<i32>(&mut acc, &[0u8; 4]);
        });
        let message = *mismatch
            .expect_err("length mismatch must panic in every profile")
            .downcast::<String>()
            .expect("panic message");
        assert!(
            message.contains("equal lengths"),
            "unexpected message: {message}"
        );

        let partial = std::panic::catch_unwind(|| {
            let mut acc = vec![0u8; 6];
            ReduceOp::Sum.apply_bytes::<i32>(&mut acc, &[0u8; 6]);
        });
        let message = *partial
            .expect_err("trailing partial element must panic, not be dropped")
            .downcast::<String>()
            .expect("panic message");
        assert!(
            message.contains("whole number"),
            "unexpected message: {message}"
        );
    }

    #[test]
    fn apply_bytes_validates_buffers_unconditionally() {
        assert_rejects_in_this_profile();
    }

    #[test]
    #[ignore = "release-profile pin: CI runs this under cargo test --release -- --ignored"]
    fn apply_bytes_validation_survives_release_profile() {
        assert_rejects_in_this_profile();
    }
}
