//! Recursive-halving reduce_scatter — the MPICH default for commutative
//! operators at small and medium message sizes.
//!
//! Every rank contributes `world` blocks; rank `r` ends with block `r` of
//! the element-wise combination of all contributions
//! (MPI_Reduce_scatter_block semantics).  Non-power-of-two worlds use the
//! standard fold step: the first `2 * rem` ranks pair up so a power of two
//! remains, each surviving odd rank representing *two* real blocks through
//! the halving and handing the even partner's block back at the end.

use crate::comm::{Comm, ReduceFn};
use crate::recursive_doubling::largest_pow2_leq;

/// The real-rank block range `(start, end)` represented by "new rank" `j`
/// after folding `rem` pairs: `j < rem` stands for real ranks `2j` and
/// `2j + 1`, `j >= rem` for real rank `j + rem`.
fn newrank_blocks(j: usize, rem: usize) -> (usize, usize) {
    if j < rem {
        (2 * j, 2 * j + 2)
    } else {
        (j + rem, j + rem + 1)
    }
}

/// Recursive-halving reduce_scatter for a commutative `op`.
///
/// `sendbuf` holds one block per rank (`world * recvbuf.len()` bytes);
/// `recvbuf` receives this rank's fully reduced block.
pub fn reduce_scatter_recursive_halving<C: Comm>(
    comm: &C,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    op: &ReduceFn<'_>,
    tag: u64,
) {
    let p = comm.world_size();
    let rank = comm.rank();
    let block = recvbuf.len();
    assert_eq!(
        sendbuf.len(),
        p * block,
        "sendbuf must hold one block per rank"
    );
    if p == 1 {
        recvbuf.copy_from_slice(sendbuf);
        return;
    }

    let pof2 = largest_pow2_leq(p);
    let rem = p - pof2;
    let mut buf = sendbuf.to_vec();

    // Fold step: even ranks of the first 2*rem send their whole vector to
    // the odd partner, which then represents both ranks' blocks.
    let newrank: isize = if rank < 2 * rem {
        if rank.is_multiple_of(2) {
            comm.send(rank + 1, tag, &buf);
            -1
        } else {
            let data = comm.recv(rank - 1, tag, buf.len());
            op(&mut buf, &data);
            comm.charge_reduce(buf.len());
            (rank / 2) as isize
        }
    } else {
        (rank - rem) as isize
    };

    if newrank >= 0 {
        let newrank = newrank as usize;
        let to_real = |nr: usize| -> usize {
            if nr < rem {
                nr * 2 + 1
            } else {
                nr + rem
            }
        };
        // Recursive halving over the pof2 new-rank blocks: keep the half
        // containing this rank's own block, exchange-and-reduce the other.
        let mut lo = 0usize;
        let mut hi = pof2;
        let mut mask = pof2 >> 1;
        let mut round = 1u64;
        while mask > 0 {
            let partner = to_real(newrank ^ mask);
            let mid = lo + mask;
            let (keep, send) = if newrank < lo + mask {
                ((lo, mid), (mid, hi))
            } else {
                ((mid, hi), (lo, mid))
            };
            let byte_range = |(a, b): (usize, usize)| -> (usize, usize) {
                (
                    newrank_blocks(a, rem).0 * block,
                    newrank_blocks(b - 1, rem).1 * block,
                )
            };
            let (ss, se) = byte_range(send);
            let (ks, ke) = byte_range(keep);
            let outgoing = buf[ss..se].to_vec();
            let incoming = comm.sendrecv(
                partner,
                tag + round,
                &outgoing,
                partner,
                tag + round,
                ke - ks,
            );
            op(&mut buf[ks..ke], &incoming);
            comm.charge_reduce(ke - ks);
            lo = keep.0;
            hi = keep.1;
            mask >>= 1;
            round += 1;
        }
        debug_assert_eq!(hi, lo + 1);
        // This new rank now holds its real block(s), fully reduced.
        let (first, last) = newrank_blocks(lo, rem);
        if newrank < rem {
            // Hand the folded-out even partner its block back.
            comm.send(
                2 * newrank,
                tag + 63,
                &buf[first * block..(first + 1) * block],
            );
            recvbuf.copy_from_slice(&buf[(last - 1) * block..last * block]);
        } else {
            recvbuf.copy_from_slice(&buf[first * block..last * block]);
        }
    } else {
        let data = comm.recv(rank + 1, tag + 63, block);
        recvbuf.copy_from_slice(&data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{record_trace, ThreadComm};
    use crate::oracle;
    use pip_runtime::{Cluster, Topology};

    fn run(nodes: usize, ppn: usize, block: usize) {
        let topo = Topology::new(nodes, ppn);
        let world = topo.world_size();
        let contributions: Vec<Vec<u8>> = (0..world)
            .map(|r| oracle::rank_payload(r, world * block))
            .collect();
        let expected = oracle::reduce_scatter(&contributions, world, oracle::wrapping_add_u8);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let sendbuf = oracle::rank_payload(comm.rank(), world * block);
            let mut recvbuf = vec![0u8; block];
            reduce_scatter_recursive_halving(
                &comm,
                &sendbuf,
                &mut recvbuf,
                &oracle::wrapping_add_u8,
                2100,
            );
            recvbuf
        })
        .unwrap();
        for (rank, buf) in results.iter().enumerate() {
            assert_eq!(
                buf, &expected[rank],
                "reduce_scatter mismatch at rank {rank} ({nodes}x{ppn})"
            );
        }
    }

    #[test]
    fn power_of_two_world() {
        run(2, 2, 8);
    }

    #[test]
    fn non_power_of_two_world() {
        run(3, 2, 8);
    }

    #[test]
    fn prime_world_size() {
        run(7, 1, 5);
    }

    #[test]
    fn odd_block_size() {
        run(3, 3, 7);
    }

    #[test]
    fn two_ranks() {
        run(1, 2, 16);
    }

    #[test]
    fn single_rank() {
        run(1, 1, 8);
    }

    #[test]
    fn max_operator_survives_the_fold_step() {
        // Non-power-of-two world with a non-invertible operator: a wrong
        // contribution subset (double-count or miss) changes the result.
        let topo = Topology::new(5, 1);
        let world = topo.world_size();
        let block = 4;
        let contributions: Vec<Vec<u8>> = (0..world)
            .map(|r| oracle::rank_payload(r, world * block))
            .collect();
        let expected = oracle::reduce_scatter(&contributions, world, oracle::max_u8);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let sendbuf = oracle::rank_payload(comm.rank(), world * block);
            let mut recvbuf = vec![0u8; block];
            reduce_scatter_recursive_halving(&comm, &sendbuf, &mut recvbuf, &oracle::max_u8, 2200);
            recvbuf
        })
        .unwrap();
        for (rank, buf) in results.iter().enumerate() {
            assert_eq!(buf, &expected[rank]);
        }
    }

    #[test]
    fn typed_f64_max_reduce_scatter_matches_the_typed_oracle_with_nan() {
        use crate::datatype::{from_bytes, to_bytes, ReduceKernel, ReduceOp};
        let topo = Topology::new(3, 1);
        let world = topo.world_size();
        let block = 3;
        // Rank 1 contributes a NaN in the element that lands in rank 2's
        // block; everything else is finite and rank-dependent.
        let contributions: Vec<Vec<f64>> = (0..world)
            .map(|r| {
                (0..world * block)
                    .map(|i| {
                        if r == 1 && i == 2 * block {
                            f64::NAN
                        } else {
                            (r * 100 + i) as f64 - 450.0
                        }
                    })
                    .collect()
            })
            .collect();
        let expected = oracle::reduce_scatter_t(&contributions, world, ReduceOp::Max);
        let inputs = &contributions;
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let sendbuf = to_bytes(&inputs[comm.rank()]);
            let mut recvbuf = vec![0u8; block * 8];
            let kernel = ReduceKernel::of::<f64>(ReduceOp::Max);
            reduce_scatter_recursive_halving(&comm, &sendbuf, &mut recvbuf, kernel.as_fn(), 2250);
            from_bytes::<f64>(&recvbuf)
        })
        .unwrap();
        for (rank, out) in results.iter().enumerate() {
            for (i, (got, want)) in out.iter().zip(&expected[rank]).enumerate() {
                if want.is_nan() {
                    assert!(got.is_nan(), "rank {rank} elem {i}: NaN must survive");
                } else {
                    assert_eq!(got, want, "rank {rank} elem {i}");
                }
            }
        }
        assert!(expected[2][0].is_nan(), "the NaN lane must land on rank 2");
    }

    #[test]
    fn trace_rounds_are_logarithmic_for_power_of_two() {
        let world = 8;
        let block = 16;
        let topo = Topology::new(world, 1);
        let trace = record_trace(topo, |comm| {
            let sendbuf = vec![0u8; world * block];
            let mut recvbuf = vec![0u8; block];
            reduce_scatter_recursive_halving(
                comm,
                &sendbuf,
                &mut recvbuf,
                &oracle::wrapping_add_u8,
                1,
            );
        });
        trace.validate().unwrap();
        // Power of two: log2(p) exchange rounds, each halving the volume:
        // 4 + 2 + 1 blocks sent per rank.
        assert_eq!(trace.ranks[0].send_count(), 3);
        assert_eq!(trace.ranks[0].bytes_sent(), 7 * block);
    }
}
