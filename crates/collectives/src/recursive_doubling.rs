//! Recursive-doubling algorithms: allgather (power-of-two ranks), allreduce
//! (arbitrary ranks, with the MPICH non-power-of-two pre/post step), and the
//! dissemination barrier.

use crate::comm::{Comm, ReduceFn};

/// Largest power of two that is `<= n` (`n >= 1`).
pub fn largest_pow2_leq(n: usize) -> usize {
    debug_assert!(n >= 1);
    1usize << (usize::BITS - 1 - n.leading_zeros())
}

/// Recursive-doubling allgather.  Requires a power-of-two world size (the
/// MPI libraries fall back to Bruck otherwise; callers should do the same —
/// see `pip-mpi-model`'s selection tables).
pub fn allgather_recursive_doubling<C: Comm>(
    comm: &C,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    tag: u64,
) {
    let p = comm.world_size();
    assert!(p.is_power_of_two(), "recursive doubling requires 2^k ranks");
    let rank = comm.rank();
    let block = sendbuf.len();
    assert_eq!(recvbuf.len(), p * block);

    recvbuf[rank * block..(rank + 1) * block].copy_from_slice(sendbuf);
    let mut mask = 1usize;
    let mut round = 0u64;
    while mask < p {
        let partner = rank ^ mask;
        // The contiguous range of blocks this rank currently owns starts at
        // the rank with the low `log2(mask)` bits cleared.
        let my_start = (rank & !(mask - 1)) * block;
        let partner_start = (partner & !(mask - 1)) * block;
        let len = mask * block;
        let received = comm.sendrecv(
            partner,
            tag + round,
            &recvbuf[my_start..my_start + len],
            partner,
            tag + round,
            len,
        );
        recvbuf[partner_start..partner_start + len].copy_from_slice(&received);
        mask <<= 1;
        round += 1;
    }
}

/// Recursive-doubling allreduce for a commutative `op`.  Handles
/// non-power-of-two world sizes with the standard fold-in/fold-out step.
pub fn allreduce_recursive_doubling<C: Comm>(
    comm: &C,
    buf: &mut [u8],
    op: &ReduceFn<'_>,
    tag: u64,
) {
    let p = comm.world_size();
    let rank = comm.rank();
    let bytes = buf.len();
    if p == 1 {
        return;
    }

    let pof2 = largest_pow2_leq(p);
    let rem = p - pof2;

    // Fold the first 2*rem ranks into rem ranks so a power of two remains.
    let newrank: isize = if rank < 2 * rem {
        if rank.is_multiple_of(2) {
            comm.send(rank + 1, tag, buf);
            -1
        } else {
            let data = comm.recv(rank - 1, tag, bytes);
            op(buf, &data);
            comm.charge_reduce(bytes);
            (rank / 2) as isize
        }
    } else {
        (rank - rem) as isize
    };

    // Recursive doubling among the pof2 survivors.
    if newrank >= 0 {
        let newrank = newrank as usize;
        let to_real = |nr: usize| -> usize {
            if nr < rem {
                nr * 2 + 1
            } else {
                nr + rem
            }
        };
        let mut mask = 1usize;
        let mut round = 1u64;
        while mask < pof2 {
            let partner = to_real(newrank ^ mask);
            let received = comm.sendrecv(partner, tag + round, buf, partner, tag + round, bytes);
            op(buf, &received);
            comm.charge_reduce(bytes);
            mask <<= 1;
            round += 1;
        }
    }

    // Hand the result back to the folded-out ranks.
    if rank < 2 * rem {
        if rank.is_multiple_of(2) {
            let data = comm.recv(rank + 1, tag + 63, bytes);
            buf.copy_from_slice(&data);
        } else {
            comm.send(rank - 1, tag + 63, buf);
        }
    }
}

/// Dissemination barrier: `ceil(log2 p)` rounds of zero-byte messages.
pub fn barrier_dissemination<C: Comm>(comm: &C, tag: u64) {
    let p = comm.world_size();
    if p == 1 {
        return;
    }
    let rank = comm.rank();
    let mut step = 1usize;
    let mut round = 0u64;
    while step < p {
        let dst = (rank + step) % p;
        let src = (rank + p - step) % p;
        comm.sendrecv(dst, tag + round, &[], src, tag + round, 0);
        step <<= 1;
        round += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{record_trace, ThreadComm};
    use crate::oracle;
    use pip_runtime::{Cluster, Topology};

    #[test]
    fn largest_pow2_examples() {
        assert_eq!(largest_pow2_leq(1), 1);
        assert_eq!(largest_pow2_leq(2), 2);
        assert_eq!(largest_pow2_leq(3), 2);
        assert_eq!(largest_pow2_leq(18), 16);
        assert_eq!(largest_pow2_leq(128), 128);
        assert_eq!(largest_pow2_leq(2304), 2048);
    }

    fn run_allgather_rd(nodes: usize, ppn: usize, block: usize) {
        let topo = Topology::new(nodes, ppn);
        let world = topo.world_size();
        let contributions: Vec<Vec<u8>> =
            (0..world).map(|r| oracle::rank_payload(r, block)).collect();
        let expected = oracle::allgather(&contributions);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let sendbuf = oracle::rank_payload(comm.rank(), block);
            let mut recvbuf = vec![0u8; world * block];
            allgather_recursive_doubling(&comm, &sendbuf, &mut recvbuf, 900);
            recvbuf
        })
        .unwrap();
        for buf in &results {
            assert_eq!(buf, &expected);
        }
    }

    fn run_allreduce_rd(nodes: usize, ppn: usize, len: usize) {
        let topo = Topology::new(nodes, ppn);
        let world = topo.world_size();
        let contributions: Vec<Vec<u8>> =
            (0..world).map(|r| oracle::rank_payload(r, len)).collect();
        let expected = oracle::allreduce(&contributions, oracle::wrapping_add_u8);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let mut buf = oracle::rank_payload(comm.rank(), len);
            allreduce_recursive_doubling(&comm, &mut buf, &oracle::wrapping_add_u8, 1100);
            buf
        })
        .unwrap();
        for (rank, buf) in results.iter().enumerate() {
            assert_eq!(buf, &expected, "allreduce mismatch at rank {rank}");
        }
    }

    #[test]
    fn allgather_rd_small_power_of_two() {
        run_allgather_rd(2, 2, 16);
    }

    #[test]
    fn allgather_rd_larger_power_of_two() {
        run_allgather_rd(4, 4, 8);
    }

    #[test]
    fn allgather_rd_single_rank() {
        run_allgather_rd(1, 1, 8);
    }

    #[test]
    #[should_panic(expected = "recursive doubling requires 2^k ranks")]
    fn allgather_rd_rejects_non_power_of_two() {
        run_allgather_rd(3, 1, 8);
    }

    #[test]
    fn allreduce_rd_power_of_two() {
        run_allreduce_rd(2, 4, 64);
    }

    #[test]
    fn allreduce_rd_non_power_of_two() {
        run_allreduce_rd(3, 2, 32);
    }

    #[test]
    fn allreduce_rd_prime_world() {
        run_allreduce_rd(7, 1, 16);
    }

    #[test]
    fn allreduce_rd_two_ranks() {
        run_allreduce_rd(1, 2, 8);
    }

    #[test]
    fn allreduce_rd_single_rank() {
        run_allreduce_rd(1, 1, 8);
    }

    #[test]
    fn allreduce_rd_f64_sum() {
        let topo = Topology::new(2, 3);
        let world = topo.world_size();
        let expected: f64 = (0..world as u64).map(|r| r as f64 + 0.5).sum();
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let mut buf = (comm.rank() as f64 + 0.5).to_le_bytes().to_vec();
            allreduce_recursive_doubling(&comm, &mut buf, &oracle::sum_f64, 1200);
            f64::from_le_bytes(buf.try_into().unwrap())
        })
        .unwrap();
        for value in results {
            assert!((value - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn allreduce_rd_typed_f32_max_propagates_nan() {
        use crate::datatype::{from_bytes, to_bytes, ReduceKernel, ReduceOp};
        let topo = Topology::new(2, 2);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            // Element 0 carries a NaN on rank 2 only; element 1 is clean.
            let input: [f32; 2] = if comm.rank() == 2 {
                [f32::NAN, 2.0]
            } else {
                [comm.rank() as f32, comm.rank() as f32]
            };
            let mut buf = to_bytes(&input);
            let kernel = ReduceKernel::of::<f32>(ReduceOp::Max);
            allreduce_recursive_doubling(&comm, &mut buf, kernel.as_fn(), 1250);
            from_bytes::<f32>(&buf)
        })
        .unwrap();
        for (rank, out) in results.iter().enumerate() {
            assert!(
                out[0].is_nan(),
                "rank {rank}: NaN must propagate through max"
            );
            assert_eq!(out[1], 3.0, "rank {rank}: clean lane takes the true max");
        }
    }

    #[test]
    fn barrier_completes_on_all_world_sizes() {
        for (nodes, ppn) in [(1, 1), (1, 2), (3, 1), (2, 3), (4, 4)] {
            let topo = Topology::new(nodes, ppn);
            let results = Cluster::launch(topo, |ctx| {
                let comm = ThreadComm::new(ctx);
                barrier_dissemination(&comm, 1300);
                true
            })
            .unwrap();
            assert!(results.into_iter().all(|done| done));
        }
    }

    #[test]
    fn barrier_trace_rounds_are_logarithmic() {
        let topo = Topology::new(9, 1);
        let trace = record_trace(topo, |comm| barrier_dissemination(comm, 1));
        trace.validate().unwrap();
        // ceil(log2(9)) = 4 rounds of one zero-byte message per rank.
        assert_eq!(trace.ranks[0].send_count(), 4);
        assert_eq!(trace.ranks[0].bytes_sent(), 0);
    }

    #[test]
    fn allreduce_trace_matches_volume_for_power_of_two() {
        let topo = Topology::new(8, 1);
        let trace = record_trace(topo, |comm| {
            let mut buf = vec![0u8; 128];
            allreduce_recursive_doubling(comm, &mut buf, &oracle::wrapping_add_u8, 1);
        });
        trace.validate().unwrap();
        // log2(8) = 3 rounds, full buffer each round.
        assert_eq!(trace.ranks[0].send_count(), 3);
        assert_eq!(trace.ranks[0].bytes_sent(), 3 * 128);
    }
}
