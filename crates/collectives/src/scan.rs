//! Prefix reductions: MPI_Scan (inclusive) and MPI_Exscan (exclusive).
//!
//! Two algorithm families, matching what the comparator libraries ship:
//!
//! * **Recursive doubling** ([`scan_recursive_doubling`],
//!   [`exscan_recursive_doubling`]) — the MPICH default: `ceil(log2 p)`
//!   rounds in which every rank exchanges its *partial* (the combination of
//!   its hypercube group) and folds contributions from lower-ranked partners
//!   into its own prefix.
//! * **Linear pipeline** ([`scan_linear`], [`exscan_linear`]) — Open MPI's
//!   base implementation: rank `r` waits for the prefix of `0..r` from its
//!   left neighbour, combines, and forwards to `r + 1`.
//!
//! Exclusive-scan semantics at rank 0: MPI leaves the receive buffer
//! undefined; this implementation pins it to the rank's own input (the
//! buffer is left untouched), and `oracle::exscan` mirrors that.

use crate::comm::{Comm, ReduceFn};

/// Recursive-doubling inclusive scan for a commutative `op`: on return,
/// rank `r`'s `buf` holds the combination of the contributions of ranks
/// `0..=r`.
pub fn scan_recursive_doubling<C: Comm>(comm: &C, buf: &mut [u8], op: &ReduceFn<'_>, tag: u64) {
    let p = comm.world_size();
    let rank = comm.rank();
    let bytes = buf.len();
    if p == 1 {
        return;
    }
    // `partial` accumulates every contribution seen so far (the hypercube
    // group); `buf` accumulates only those from ranks <= rank (the prefix).
    let mut partial = buf.to_vec();
    let mut mask = 1usize;
    let mut round = 0u64;
    while mask < p {
        let partner = rank ^ mask;
        if partner < p {
            let received =
                comm.sendrecv(partner, tag + round, &partial, partner, tag + round, bytes);
            op(&mut partial, &received);
            comm.charge_reduce(bytes);
            if partner < rank {
                op(buf, &received);
                comm.charge_reduce(bytes);
            }
        }
        mask <<= 1;
        round += 1;
    }
}

/// Recursive-doubling exclusive scan for a commutative `op`: on return,
/// rank `r > 0`'s `buf` holds the combination of the contributions of ranks
/// `0..r`; rank 0's `buf` is left untouched.
pub fn exscan_recursive_doubling<C: Comm>(comm: &C, buf: &mut [u8], op: &ReduceFn<'_>, tag: u64) {
    let p = comm.world_size();
    let rank = comm.rank();
    let bytes = buf.len();
    if p == 1 {
        return;
    }
    let mut partial = buf.to_vec();
    // The exclusive prefix is built only from lower-ranked partners'
    // partials; the first such contribution seeds it.
    let mut prefix: Option<Vec<u8>> = None;
    let mut mask = 1usize;
    let mut round = 0u64;
    while mask < p {
        let partner = rank ^ mask;
        if partner < p {
            let received =
                comm.sendrecv(partner, tag + round, &partial, partner, tag + round, bytes);
            op(&mut partial, &received);
            comm.charge_reduce(bytes);
            if partner < rank {
                match prefix.as_mut() {
                    Some(prefix) => {
                        op(prefix, &received);
                        comm.charge_reduce(bytes);
                    }
                    None => prefix = Some(received),
                }
            }
        }
        mask <<= 1;
        round += 1;
    }
    if let Some(prefix) = prefix {
        buf.copy_from_slice(&prefix);
        comm.charge_copy(bytes);
    }
}

/// Linear-pipeline inclusive scan: rank `r` receives the prefix of `0..r`
/// from rank `r - 1`, combines its own contribution and forwards the
/// inclusive prefix to rank `r + 1`.
pub fn scan_linear<C: Comm>(comm: &C, buf: &mut [u8], op: &ReduceFn<'_>, tag: u64) {
    let p = comm.world_size();
    let rank = comm.rank();
    let bytes = buf.len();
    if p == 1 {
        return;
    }
    if rank > 0 {
        let prefix = comm.recv(rank - 1, tag, bytes);
        op(buf, &prefix);
        comm.charge_reduce(bytes);
    }
    if rank + 1 < p {
        comm.send(rank + 1, tag, buf);
    }
}

/// Linear-pipeline exclusive scan: rank `r > 0` receives the prefix of
/// `0..r` (its result) and forwards the inclusive prefix; rank 0's `buf` is
/// left untouched.
pub fn exscan_linear<C: Comm>(comm: &C, buf: &mut [u8], op: &ReduceFn<'_>, tag: u64) {
    let p = comm.world_size();
    let rank = comm.rank();
    let bytes = buf.len();
    if p == 1 {
        return;
    }
    if rank == 0 {
        comm.send(1, tag, buf);
        return;
    }
    let prefix = comm.recv(rank - 1, tag, bytes);
    if rank + 1 < p {
        let mut inclusive = prefix.clone();
        op(&mut inclusive, buf);
        comm.charge_reduce(bytes);
        comm.send_owned(rank + 1, tag, inclusive);
    }
    buf.copy_from_slice(&prefix);
    comm.charge_copy(bytes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{record_trace, ThreadComm};
    use crate::oracle;
    use pip_runtime::{Cluster, Topology};

    type ByteCombine = fn(&mut [u8], &[u8]);
    type OracleFn = fn(&[Vec<u8>], ByteCombine) -> Vec<Vec<u8>>;

    fn run_scan<F>(
        algo: F,
        oracle_fn: OracleFn,
        nodes: usize,
        ppn: usize,
        len: usize,
        op: ByteCombine,
    ) where
        F: for<'a, 'b> Fn(&ThreadComm<'a>, &mut [u8], &ReduceFn<'b>, u64) + Sync,
    {
        let topo = Topology::new(nodes, ppn);
        let world = topo.world_size();
        let contributions: Vec<Vec<u8>> =
            (0..world).map(|r| oracle::rank_payload(r, len)).collect();
        let expected = oracle_fn(&contributions, op);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let mut buf = oracle::rank_payload(comm.rank(), len);
            algo(&comm, &mut buf, &op, 2500);
            buf
        })
        .unwrap();
        for (rank, buf) in results.iter().enumerate() {
            assert_eq!(buf, &expected[rank], "scan mismatch at rank {rank}");
        }
    }

    fn scan_oracle(contributions: &[Vec<u8>], op: ByteCombine) -> Vec<Vec<u8>> {
        oracle::scan(contributions, op)
    }

    fn exscan_oracle(contributions: &[Vec<u8>], op: ByteCombine) -> Vec<Vec<u8>> {
        oracle::exscan(contributions, op)
    }

    #[test]
    fn scan_rd_matches_oracle_on_grid() {
        for (nodes, ppn) in [(1, 1), (1, 2), (2, 2), (3, 2), (5, 1), (3, 3)] {
            run_scan(
                |c, b, o, t| scan_recursive_doubling(c, b, o, t),
                scan_oracle,
                nodes,
                ppn,
                11,
                oracle::wrapping_add_u8,
            );
        }
    }

    #[test]
    fn exscan_rd_matches_oracle_on_grid() {
        for (nodes, ppn) in [(1, 1), (1, 2), (2, 2), (3, 2), (5, 1), (3, 3)] {
            run_scan(
                |c, b, o, t| exscan_recursive_doubling(c, b, o, t),
                exscan_oracle,
                nodes,
                ppn,
                11,
                oracle::wrapping_add_u8,
            );
        }
    }

    #[test]
    fn scan_linear_matches_oracle_on_grid() {
        for (nodes, ppn) in [(1, 1), (1, 2), (3, 2), (2, 3)] {
            run_scan(
                |c, b, o, t| scan_linear(c, b, o, t),
                scan_oracle,
                nodes,
                ppn,
                9,
                oracle::wrapping_add_u8,
            );
        }
    }

    #[test]
    fn exscan_linear_matches_oracle_on_grid() {
        for (nodes, ppn) in [(1, 1), (1, 2), (3, 2), (2, 3)] {
            run_scan(
                |c, b, o, t| exscan_linear(c, b, o, t),
                exscan_oracle,
                nodes,
                ppn,
                9,
                oracle::wrapping_add_u8,
            );
        }
    }

    #[test]
    fn scan_with_max_requires_the_exact_prefix_subset() {
        // Max is not invertible: any rank folded into the wrong prefix
        // cannot be cancelled out, so subset errors are visible.
        run_scan(
            |c, b, o, t| scan_recursive_doubling(c, b, o, t),
            scan_oracle,
            3,
            3,
            8,
            oracle::max_u8,
        );
        run_scan(
            |c, b, o, t| exscan_recursive_doubling(c, b, o, t),
            exscan_oracle,
            3,
            3,
            8,
            oracle::min_u8,
        );
    }

    #[test]
    fn typed_i32_scans_match_the_typed_oracle() {
        use crate::datatype::{from_bytes, to_bytes, ReduceKernel, ReduceOp};
        let topo = Topology::new(3, 2);
        let world = topo.world_size();
        let contributions: Vec<Vec<i32>> = (0..world)
            .map(|r| (0..5).map(|i| (r as i32 + 1) * 1000 - i * 7).collect())
            .collect();
        let expected_scan = oracle::scan_t(&contributions, ReduceOp::Sum);
        let expected_exscan = oracle::exscan_t(&contributions, ReduceOp::Sum);
        let inputs = &contributions;
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let kernel = ReduceKernel::of::<i32>(ReduceOp::Sum);
            let mut inclusive = to_bytes(&inputs[comm.rank()]);
            scan_recursive_doubling(&comm, &mut inclusive, kernel.as_fn(), 2600);
            let mut exclusive = to_bytes(&inputs[comm.rank()]);
            exscan_recursive_doubling(&comm, &mut exclusive, kernel.as_fn(), 2700);
            (from_bytes::<i32>(&inclusive), from_bytes::<i32>(&exclusive))
        })
        .unwrap();
        for (rank, (inclusive, exclusive)) in results.iter().enumerate() {
            assert_eq!(inclusive, &expected_scan[rank], "scan at rank {rank}");
            assert_eq!(exclusive, &expected_exscan[rank], "exscan at rank {rank}");
        }
    }

    #[test]
    fn scan_rd_trace_has_logarithmic_rounds() {
        let topo = Topology::new(8, 1);
        let trace = record_trace(topo, |comm| {
            let mut buf = vec![0u8; 16];
            scan_recursive_doubling(comm, &mut buf, &oracle::wrapping_add_u8, 1);
        });
        trace.validate().unwrap();
        // Power-of-two world: every rank exchanges in every one of the
        // log2(p) rounds.
        assert_eq!(trace.ranks[0].send_count(), 3);
    }

    #[test]
    fn scan_linear_trace_is_a_chain() {
        let topo = Topology::new(6, 1);
        let trace = record_trace(topo, |comm| {
            let mut buf = vec![0u8; 16];
            scan_linear(comm, &mut buf, &oracle::wrapping_add_u8, 1);
        });
        trace.validate().unwrap();
        assert_eq!(trace.total_messages(), 5);
    }
}
