//! # pip-collectives
//!
//! The collective algorithms of the PiP-MColl reproduction.
//!
//! Every algorithm is written once against the [`comm::Comm`] trait and can
//! then be
//!
//! * **executed** on the thread-based PiP runtime ([`comm::ThreadComm`]),
//!   moving real bytes — this is how correctness is established against the
//!   sequential [`oracle`]; or
//! * **recorded** with [`comm::TraceComm`] into a `pip-netsim` trace — this
//!   is how the paper-scale performance figures are produced; or
//! * **compiled** with [`plan::PlanComm`] into a symbolic [`plan::Plan`]
//!   that can be cached, executed repeatedly ([`plan::execute_rank_plan`])
//!   and lowered straight to a trace — the plan/execute split.
//!
//! ## Algorithm families
//!
//! * [`binomial`] — binomial-tree broadcast, scatter and gather (the
//!   small-message defaults of MPICH-derived libraries).
//! * [`bruck`] — Bruck allgather and alltoall (non-power-of-two small
//!   messages).
//! * [`recursive_doubling`] — recursive-doubling allgather and allreduce and
//!   the dissemination barrier.
//! * [`ring`] — ring allgather, ring reduce_scatter and ring
//!   (reduce-scatter + allgather) allreduce, the large-message baselines.
//! * [`recursive_halving`] — recursive-halving reduce_scatter, the MPICH
//!   small/medium-message default for commutative operators.
//! * [`scan`] — inclusive and exclusive prefix reductions (recursive
//!   doubling and the linear pipeline Open MPI defaults to).
//! * [`hierarchical`] — classic *single-leader* two-level collectives: the
//!   node leader is the only process that talks to the network, everything
//!   else moves through node-local shared memory.  This is the
//!   "single-object" design the paper improves on.
//! * [`multi_object`] — the PiP-MColl algorithms: every local process drives
//!   the NIC simultaneously, using the shared address space to read and
//!   write the node leader's buffers directly (HPDC '23, §2).
//!
//! [`oracle`] holds sequential reference implementations used by the tests.
//!
//! ## Execution models
//!
//! Compiled plans run two ways: [`plan::execute_rank_plan`] walks a plan in
//! one blocking sweep, while [`plan::PlanCursor`] walks it *resumably* —
//! advancing only as completions become available — which is what the
//! [`request::ProgressEngine`] drives to give MPI-style non-blocking and
//! persistent collectives.

#![warn(missing_docs)]

pub mod binomial;
pub mod bruck;
pub mod comm;
pub mod compress;
pub mod datatype;
pub mod hierarchical;
pub mod multi_object;
pub mod oracle;
pub mod plan;
pub mod recursive_doubling;
pub mod recursive_halving;
pub mod request;
pub mod ring;
pub mod scan;

pub use comm::{Comm, NonBlockingComm, ReduceFn, ThreadComm, TraceComm};
pub use compress::{Codec, CompressionPolicy, FloatDatatype, FloatElem};
pub use datatype::{
    Datatype, DtypeId, Layout, Op, OwnedReduction, ReduceIdent, ReduceKernel, ReduceOp, Reduction,
};
pub use request::{ProgressEngine, ReqId, SharedReduceOp};

/// Identifies a collective operation (used by the library presets and the
/// benchmark harness to name what they are measuring).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// MPI_Bcast.
    Bcast,
    /// MPI_Scatter.
    Scatter,
    /// MPI_Gather.
    Gather,
    /// MPI_Allgather.
    Allgather,
    /// MPI_Reduce.
    Reduce,
    /// MPI_Allreduce.
    Allreduce,
    /// MPI_Reduce_scatter_block.
    ReduceScatter,
    /// MPI_Scan.
    Scan,
    /// MPI_Exscan.
    Exscan,
    /// MPI_Alltoall.
    Alltoall,
    /// MPI_Barrier.
    Barrier,
}

impl CollectiveKind {
    /// Display name matching MPI nomenclature.
    pub fn name(&self) -> &'static str {
        match self {
            CollectiveKind::Bcast => "MPI_Bcast",
            CollectiveKind::Scatter => "MPI_Scatter",
            CollectiveKind::Gather => "MPI_Gather",
            CollectiveKind::Allgather => "MPI_Allgather",
            CollectiveKind::Reduce => "MPI_Reduce",
            CollectiveKind::Allreduce => "MPI_Allreduce",
            CollectiveKind::ReduceScatter => "MPI_Reduce_scatter",
            CollectiveKind::Scan => "MPI_Scan",
            CollectiveKind::Exscan => "MPI_Exscan",
            CollectiveKind::Alltoall => "MPI_Alltoall",
            CollectiveKind::Barrier => "MPI_Barrier",
        }
    }

    /// All collectives implemented in this crate.
    pub const ALL: [CollectiveKind; 11] = [
        CollectiveKind::Bcast,
        CollectiveKind::Scatter,
        CollectiveKind::Gather,
        CollectiveKind::Allgather,
        CollectiveKind::Reduce,
        CollectiveKind::Allreduce,
        CollectiveKind::ReduceScatter,
        CollectiveKind::Scan,
        CollectiveKind::Exscan,
        CollectiveKind::Alltoall,
        CollectiveKind::Barrier,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collective_names_follow_mpi_convention() {
        assert_eq!(CollectiveKind::Allgather.name(), "MPI_Allgather");
        assert_eq!(CollectiveKind::Scatter.name(), "MPI_Scatter");
        assert_eq!(CollectiveKind::Barrier.name(), "MPI_Barrier");
    }

    #[test]
    fn all_kinds_have_unique_names() {
        let names: std::collections::HashSet<_> =
            CollectiveKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), CollectiveKind::ALL.len());
    }
}
