//! The communication abstraction the algorithms are written against, and its
//! two implementations: real execution on the PiP thread runtime and trace
//! recording for the simulator.
//!
//! ## Cost semantics
//!
//! The trait separates operations by what they cost on the real system:
//!
//! * [`Comm::send`] / [`Comm::recv`] — a message between two processes.  The
//!   simulator charges network costs when the endpoints are on different
//!   nodes and the library's intra-node transport when they share a node.
//! * [`Comm::shared_write`] / [`Comm::shared_read`] — a PiP-style direct
//!   load/store into a peer's exposed buffer: exactly one copy, charged to
//!   the calling process.
//! * [`Comm::send_from_shared`] / [`Comm::recv_into_shared`] — the zero-copy
//!   pattern PiP-MColl relies on: a process injects a message straight out
//!   of (or receives straight into) a peer's exposed buffer, so only the
//!   network transfer is charged.
//! * [`Comm::charge_copy`] / [`Comm::charge_reduce`] / [`Comm::delay`] —
//!   local work annotations; the thread implementation performs no
//!   additional movement (the algorithm already did the work on its own
//!   buffers), the trace implementation records the corresponding cost.
//!
//! Algorithms must never branch on *received payload contents* — only on
//! ranks, sizes and topology — so that a trace recorded without real data is
//! faithful to the real execution.

use std::cell::RefCell;

use pip_netsim::trace::{Trace, TraceOp};
use pip_runtime::{TaskCtx, Topology};
use pip_transport::cost::IntranodeMechanism;

/// A commutative reduction operator over raw bytes.
///
/// The operator combines `other` into `acc` (`acc[i] ⊕= other[i]` for the
/// element interpretation the caller chose).
pub type ReduceFn<'a> = dyn Fn(&mut [u8], &[u8]) + Sync + 'a;

/// The communication surface available to a collective algorithm.
pub trait Comm {
    /// This process's global rank.
    fn rank(&self) -> usize;

    /// The cluster topology.
    fn topology(&self) -> Topology;

    /// Total number of processes.
    fn world_size(&self) -> usize {
        self.topology().world_size()
    }

    /// Node hosting this process.
    fn node_id(&self) -> usize {
        self.topology().node_of(self.rank())
    }

    /// Local rank within the node (the paper's `R_l`).
    fn local_rank(&self) -> usize {
        self.topology().local_rank_of(self.rank())
    }

    /// Processes per node (the paper's `P`).
    fn ppn(&self) -> usize {
        self.topology().ppn()
    }

    /// Number of nodes (the paper's `N`).
    fn num_nodes(&self) -> usize {
        self.topology().nodes()
    }

    /// Whether this process is its node's leader (local rank 0).
    fn is_node_root(&self) -> bool {
        self.local_rank() == 0
    }

    // -- messaging -----------------------------------------------------

    /// Send `data` to `dest` with `tag`.
    ///
    /// **Contract: sending never blocks.**  Every implementation provides
    /// buffered (eager) semantics — the call enqueues the message and
    /// returns without waiting for a matching receive.  The default
    /// [`Comm::sendrecv`] and the deadlock-freedom of every symmetric
    /// exchange in the algorithms rely on this guarantee.
    fn send(&self, dest: usize, tag: u64, data: &[u8]);

    /// As [`Comm::send`] but taking ownership of the payload, so
    /// implementations that can hand the buffer straight to the transport
    /// (the thread runtime's fabric) avoid re-copying it.  The default
    /// forwards to [`Comm::send`].
    fn send_owned(&self, dest: usize, tag: u64, data: Vec<u8>) {
        self.send(dest, tag, &data);
    }

    /// Receive exactly `len` bytes from `source` with `tag`.
    fn recv(&self, source: usize, tag: u64, len: usize) -> Vec<u8>;

    /// Receive a message of *unknown* length from `source` with `tag` —
    /// the receive side of a compressed transfer, whose frame length
    /// depends on the sender's payload and so cannot be asserted.
    ///
    /// Only live executors ever hit this (recording communicators see the
    /// symbolic [`crate::plan::PlanOp::Decompress`] op, never a real
    /// frame), so the default panics rather than forcing recorders to
    /// invent a length.
    fn recv_unsized(&self, source: usize, tag: u64) -> Vec<u8> {
        let _ = (source, tag);
        panic!("this communicator does not support unsized receives");
    }

    /// Send to `dest`, then receive from `source`.
    ///
    /// The default implementation posts the send first and then blocks on
    /// the receive.  Because [`Comm::send`] is guaranteed not to block, the
    /// two directions cannot deadlock: in a symmetric exchange both peers
    /// get their sends posted before either waits, regardless of ordering.
    /// This is MPI_Sendrecv's semantics over an eager transport — the
    /// directions are concurrent *in effect* (neither waits on the other's
    /// completion), not via extra threads.
    fn sendrecv(
        &self,
        dest: usize,
        send_tag: u64,
        data: &[u8],
        source: usize,
        recv_tag: u64,
        recv_len: usize,
    ) -> Vec<u8> {
        self.send(dest, send_tag, data);
        self.recv(source, recv_tag, recv_len)
    }

    // -- PiP shared address space (intra-node) ---------------------------

    /// Expose a buffer of `len` bytes under `name`, owned by this process.
    fn shared_alloc(&self, name: &str, len: usize);

    /// Publish an existing private buffer under `name` so peers can read it
    /// directly.
    ///
    /// Under PiP a process's private memory is already addressable by its
    /// peers, so publication costs nothing — this is the zero-copy property
    /// the multi-object algorithms rely on.  (The thread implementation
    /// copies into a region purely to make the bytes reachable; no cost is
    /// recorded.)
    fn shared_publish(&self, name: &str, data: &[u8]);

    /// Retrieve the contents of a region this process owns, at no cost.
    ///
    /// The inverse of [`Comm::shared_publish`]: the region served as this
    /// process's own destination buffer (peers deposited data into it), so
    /// under PiP no additional copy is needed to "collect" it.
    fn shared_collect(&self, name: &str, len: usize) -> Vec<u8>;

    /// As [`Comm::shared_collect`] but depositing the bytes into `out`
    /// (cleared and filled to `len`), so callers holding a reusable buffer —
    /// the plan executor's arena — avoid the allocation.  The default
    /// forwards to [`Comm::shared_collect`] and copies; live implementations
    /// override it to read in place.
    fn shared_collect_into(&self, name: &str, len: usize, out: &mut Vec<u8>) {
        let data = self.shared_collect(name, len);
        out.clear();
        out.extend_from_slice(&data);
    }

    /// Store `data` into the buffer `name` owned by local rank
    /// `owner_local`, starting at `offset` (one copy, performed by the
    /// caller).
    fn shared_write(&self, owner_local: usize, name: &str, offset: usize, data: &[u8]);

    /// Load `len` bytes from the buffer `name` owned by local rank
    /// `owner_local`, starting at `offset` (one copy, performed by the
    /// caller).
    fn shared_read(&self, owner_local: usize, name: &str, offset: usize, len: usize) -> Vec<u8>;

    /// As [`Comm::shared_read`] but depositing the bytes into `out` (cleared
    /// and filled to `len`) — the allocation-free twin used by the plan
    /// executor's arena.  The default forwards to [`Comm::shared_read`] and
    /// copies; live implementations override it to read in place.
    fn shared_read_into(
        &self,
        owner_local: usize,
        name: &str,
        offset: usize,
        len: usize,
        out: &mut Vec<u8>,
    ) {
        let data = self.shared_read(owner_local, name, offset, len);
        out.clear();
        out.extend_from_slice(&data);
    }

    /// Send `len` bytes straight out of a peer's exposed buffer (zero-copy:
    /// only the message itself is charged).
    fn send_from_shared(
        &self,
        owner_local: usize,
        name: &str,
        offset: usize,
        len: usize,
        dest: usize,
        tag: u64,
    );

    /// Receive `len` bytes straight into a peer's exposed buffer (zero-copy).
    fn recv_into_shared(
        &self,
        owner_local: usize,
        name: &str,
        offset: usize,
        source: usize,
        tag: u64,
        len: usize,
    );

    /// Barrier across the tasks of this node.
    fn node_barrier(&self);

    // -- local work annotations ------------------------------------------

    /// Account for a local copy of `bytes` bytes the algorithm performed on
    /// its private buffers (e.g. the final Bruck shift).
    fn charge_copy(&self, bytes: usize);

    /// Account for a local reduction over `bytes` bytes.
    fn charge_reduce(&self, bytes: usize);

    /// Account for fixed software overhead (e.g. PiP-MPICH's size
    /// synchronization).
    fn delay(&self, nanos: f64);
}

/// A [`Comm`] that can additionally *poll* for message completion instead of
/// blocking — the primitive the plan cursor and the request-based
/// non-blocking collectives are built on.
///
/// Only live communicators implement this: recording communicators
/// ([`TraceComm`], `plan::PlanComm`) materialize receives immediately and so
/// never need to poll.
pub trait NonBlockingComm: Comm {
    /// Non-blocking matched receive: returns the payload when a message from
    /// `source` with `tag` has arrived, `None` otherwise.
    ///
    /// When a message is returned its length must equal `len`
    /// (implementations assert this — a mismatch is a schedule bug, not a
    /// data-dependent failure).
    fn try_recv(&self, source: usize, tag: u64, len: usize) -> Option<Vec<u8>>;

    /// Non-blocking twin of [`Comm::recv_unsized`]: returns whatever
    /// payload has arrived from `source` with `tag` without checking its
    /// length.  Default panics — only live communicators receive real
    /// compressed frames.
    fn try_recv_unsized(&self, source: usize, tag: u64) -> Option<Vec<u8>> {
        let _ = (source, tag);
        panic!("this communicator does not support unsized receives");
    }

    /// How long a caller polling via [`NonBlockingComm::try_recv`] should
    /// wait without observing any progress before declaring the schedule
    /// broken.  Mirrors the blocking receive timeout so deadlocks surface as
    /// failures either way.
    fn progress_timeout(&self) -> std::time::Duration {
        std::time::Duration::from_secs(30)
    }
}

// ---------------------------------------------------------------------------
// Real execution on the PiP thread runtime.
// ---------------------------------------------------------------------------

/// [`Comm`] implementation that runs on the thread-based PiP runtime and
/// moves real bytes.  Used by the correctness tests and the examples.
pub struct ThreadComm<'a> {
    ctx: &'a TaskCtx,
}

impl<'a> ThreadComm<'a> {
    /// Wrap a task context.
    pub fn new(ctx: &'a TaskCtx) -> Self {
        Self { ctx }
    }

    /// The underlying task context.
    pub fn ctx(&self) -> &TaskCtx {
        self.ctx
    }
}

impl Comm for ThreadComm<'_> {
    fn rank(&self) -> usize {
        self.ctx.rank()
    }

    fn topology(&self) -> Topology {
        self.ctx.topology()
    }

    fn send(&self, dest: usize, tag: u64, data: &[u8]) {
        // One copy: the fabric takes ownership of the borrowed bytes once
        // and the allocation travels to the receiver untouched.
        self.ctx.send_bytes(dest, tag, data).expect("send failed");
    }

    fn send_owned(&self, dest: usize, tag: u64, data: Vec<u8>) {
        // Zero copies: the caller's allocation moves into the fabric.
        self.ctx.send(dest, tag, data).expect("send failed");
    }

    fn recv(&self, source: usize, tag: u64, len: usize) -> Vec<u8> {
        let msg = self.ctx.recv(source, tag).expect("recv failed");
        assert_eq!(
            msg.payload.len(),
            len,
            "rank {} expected {} bytes from {} (tag {}), got {}",
            self.rank(),
            len,
            source,
            tag,
            msg.payload.len()
        );
        msg.payload.into_vec()
    }

    fn recv_unsized(&self, source: usize, tag: u64) -> Vec<u8> {
        let msg = self.ctx.recv(source, tag).expect("recv failed");
        msg.payload.into_vec()
    }

    fn shared_alloc(&self, name: &str, len: usize) {
        self.ctx.expose(name, len);
    }

    fn shared_publish(&self, name: &str, data: &[u8]) {
        let region = self.ctx.expose(name, data.len());
        region.write(0, data);
    }

    fn shared_collect(&self, name: &str, len: usize) -> Vec<u8> {
        let region = self.ctx.attach(self.local_rank(), name);
        region.read_vec(0, len).expect("shared_collect in bounds")
    }

    fn shared_collect_into(&self, name: &str, len: usize, out: &mut Vec<u8>) {
        let region = self.ctx.attach(self.local_rank(), name);
        region.read_into_vec(0, len, out);
    }

    fn shared_write(&self, owner_local: usize, name: &str, offset: usize, data: &[u8]) {
        let region = self.ctx.attach(owner_local, name);
        region.write(offset, data);
    }

    fn shared_read(&self, owner_local: usize, name: &str, offset: usize, len: usize) -> Vec<u8> {
        let region = self.ctx.attach(owner_local, name);
        region.read_vec(offset, len).expect("shared_read in bounds")
    }

    fn shared_read_into(
        &self,
        owner_local: usize,
        name: &str,
        offset: usize,
        len: usize,
        out: &mut Vec<u8>,
    ) {
        let region = self.ctx.attach(owner_local, name);
        region.read_into_vec(offset, len, out);
    }

    fn send_from_shared(
        &self,
        owner_local: usize,
        name: &str,
        offset: usize,
        len: usize,
        dest: usize,
        tag: u64,
    ) {
        let region = self.ctx.attach(owner_local, name);
        let data = region
            .read_vec(offset, len)
            .expect("send_from_shared in bounds");
        // The single copy out of the shared region is the only one; the
        // resulting allocation moves into the fabric.
        self.ctx.send(dest, tag, data).expect("send failed");
    }

    fn recv_into_shared(
        &self,
        owner_local: usize,
        name: &str,
        offset: usize,
        source: usize,
        tag: u64,
        len: usize,
    ) {
        let msg = self.ctx.recv(source, tag).expect("recv failed");
        assert_eq!(msg.payload.len(), len, "recv_into_shared length mismatch");
        let region = self.ctx.attach(owner_local, name);
        region.write(offset, &msg.payload);
    }

    fn node_barrier(&self) {
        self.ctx.node_barrier();
    }

    fn charge_copy(&self, _bytes: usize) {}

    fn charge_reduce(&self, _bytes: usize) {}

    fn delay(&self, _nanos: f64) {}
}

impl NonBlockingComm for ThreadComm<'_> {
    fn try_recv(&self, source: usize, tag: u64, len: usize) -> Option<Vec<u8>> {
        let msg = self.ctx.try_recv(source, tag).expect("try_recv failed")?;
        assert_eq!(
            msg.payload.len(),
            len,
            "rank {} expected {} bytes from {} (tag {}), got {}",
            self.rank(),
            len,
            source,
            tag,
            msg.payload.len()
        );
        Some(msg.payload.into_vec())
    }

    fn try_recv_unsized(&self, source: usize, tag: u64) -> Option<Vec<u8>> {
        let msg = self.ctx.try_recv(source, tag).expect("try_recv failed")?;
        Some(msg.payload.into_vec())
    }

    fn progress_timeout(&self) -> std::time::Duration {
        self.ctx.fabric().recv_timeout()
    }
}

// ---------------------------------------------------------------------------
// Trace recording for the simulator.
// ---------------------------------------------------------------------------

/// [`Comm`] implementation that records the operations a rank performs,
/// without moving data.  Receives return zeroed buffers of the requested
/// length, which is sound because algorithms never branch on payload
/// contents.
pub struct TraceComm {
    rank: usize,
    topology: Topology,
    ops: RefCell<Vec<TraceOp>>,
}

impl TraceComm {
    /// Create a recorder for `rank` in `topology`.
    pub fn new(rank: usize, topology: Topology) -> Self {
        Self {
            rank,
            topology,
            ops: RefCell::new(Vec::new()),
        }
    }

    /// The operations recorded so far, consuming the recorder.
    pub fn into_ops(self) -> Vec<TraceOp> {
        self.ops.into_inner()
    }

    fn push(&self, op: TraceOp) {
        self.ops.borrow_mut().push(op);
    }
}

impl Comm for TraceComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn topology(&self) -> Topology {
        self.topology
    }

    fn send(&self, dest: usize, tag: u64, data: &[u8]) {
        self.push(TraceOp::Send {
            dest,
            bytes: data.len(),
            tag,
        });
    }

    fn recv(&self, source: usize, tag: u64, len: usize) -> Vec<u8> {
        self.push(TraceOp::Recv {
            source,
            bytes: len,
            tag,
        });
        vec![0u8; len]
    }

    fn shared_alloc(&self, _name: &str, _len: usize) {}

    fn shared_publish(&self, _name: &str, _data: &[u8]) {}

    fn shared_collect(&self, _name: &str, len: usize) -> Vec<u8> {
        vec![0u8; len]
    }

    fn shared_write(&self, _owner_local: usize, _name: &str, _offset: usize, data: &[u8]) {
        self.push(TraceOp::CopyIntra {
            bytes: data.len(),
            mechanism: None,
            first_use: false,
        });
    }

    fn shared_read(&self, _owner_local: usize, _name: &str, _offset: usize, len: usize) -> Vec<u8> {
        self.push(TraceOp::CopyIntra {
            bytes: len,
            mechanism: None,
            first_use: false,
        });
        vec![0u8; len]
    }

    fn send_from_shared(
        &self,
        _owner_local: usize,
        _name: &str,
        _offset: usize,
        len: usize,
        dest: usize,
        tag: u64,
    ) {
        self.push(TraceOp::Send {
            dest,
            bytes: len,
            tag,
        });
    }

    fn recv_into_shared(
        &self,
        _owner_local: usize,
        _name: &str,
        _offset: usize,
        source: usize,
        tag: u64,
        len: usize,
    ) {
        self.push(TraceOp::Recv {
            source,
            bytes: len,
            tag,
        });
    }

    fn node_barrier(&self) {
        self.push(TraceOp::LocalBarrier);
    }

    fn charge_copy(&self, bytes: usize) {
        self.push(TraceOp::CopyIntra {
            bytes,
            mechanism: Some(IntranodeMechanism::Pip),
            first_use: false,
        });
    }

    fn charge_reduce(&self, bytes: usize) {
        self.push(TraceOp::Reduce { bytes });
    }

    fn delay(&self, nanos: f64) {
        self.push(TraceOp::Delay { nanos });
    }
}

/// Record a full-cluster trace of an algorithm by replaying it once per rank
/// against a [`TraceComm`].
///
/// The closure receives the rank's recorder and must run the *same* algorithm
/// every rank would run; recording is sequential and needs no threads because
/// recorded receives never block.
pub fn record_trace<F>(topology: Topology, per_rank: F) -> Trace
where
    F: Fn(&TraceComm),
{
    let mut trace = Trace::empty(topology);
    for rank in 0..topology.world_size() {
        let comm = TraceComm::new(rank, topology);
        per_rank(&comm);
        trace.ranks[rank].ops = comm.into_ops().into();
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_runtime::Cluster;

    #[test]
    fn thread_comm_exposes_coordinates() {
        let topo = Topology::new(2, 3);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            (comm.rank(), comm.node_id(), comm.local_rank(), comm.ppn())
        })
        .unwrap();
        assert_eq!(results[4], (4, 1, 1, 3));
    }

    #[test]
    fn thread_comm_send_recv_moves_real_bytes() {
        let topo = Topology::new(1, 2);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            if comm.rank() == 0 {
                comm.send(1, 5, &[1, 2, 3]);
                Vec::new()
            } else {
                comm.recv(0, 5, 3)
            }
        })
        .unwrap();
        assert_eq!(results[1], vec![1, 2, 3]);
    }

    #[test]
    fn thread_comm_shared_ops_move_real_bytes() {
        let topo = Topology::new(1, 2);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            if comm.local_rank() == 0 {
                comm.shared_alloc("buf", 8);
            }
            comm.node_barrier();
            if comm.local_rank() == 1 {
                comm.shared_write(0, "buf", 2, &[7, 8]);
            }
            comm.node_barrier();
            comm.shared_read(0, "buf", 0, 4)
        })
        .unwrap();
        assert_eq!(results[0], vec![0, 0, 7, 8]);
        assert_eq!(results[1], vec![0, 0, 7, 8]);
    }

    #[test]
    fn thread_comm_zero_copy_paths_deliver_data() {
        let topo = Topology::new(2, 2);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            // Node 0's leader exposes data; node 0's rank 1 sends it from the
            // shared buffer to node 1's rank 1, which receives it into node
            // 1's leader's buffer.
            if comm.rank() == 0 {
                comm.shared_alloc("src", 4);
                comm.shared_write(0, "src", 0, &[9, 9, 9, 9]);
            }
            if comm.rank() == 2 {
                comm.shared_alloc("dst", 4);
            }
            comm.node_barrier();
            if comm.rank() == 1 {
                comm.send_from_shared(0, "src", 0, 4, 3, 11);
            }
            if comm.rank() == 3 {
                comm.recv_into_shared(0, "dst", 0, 1, 11, 4);
            }
            comm.node_barrier();
            if comm.node_id() == 1 {
                comm.shared_read(0, "dst", 0, 4)
            } else {
                Vec::new()
            }
        })
        .unwrap();
        assert_eq!(results[2], vec![9, 9, 9, 9]);
        assert_eq!(results[3], vec![9, 9, 9, 9]);
    }

    /// Regression test for the sendrecv contract: symmetric exchange
    /// patterns — both peers inside a pairwise exchange calling `sendrecv`
    /// towards each other at the same time — must complete, because sends
    /// are buffered and never block.  Runs several rounds with payloads big
    /// enough that a rendezvous-style (blocking) send would deadlock the
    /// pair immediately.
    #[test]
    fn sendrecv_exchange_pattern_completes_and_delivers() {
        let topo = Topology::new(2, 2);
        let rounds = 4u64;
        let len = 256 * 1024;
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            let p = comm.world_size();
            let mut sum = 0u64;
            for round in 0..rounds {
                // Pairwise exchange: partner = rank ^ (1 + round % (p-1)),
                // clipped to the world — every rank sends and receives in
                // the same call.
                let partner = comm.rank() ^ (1 + (round as usize) % (p - 1));
                if partner >= p {
                    continue;
                }
                let payload = vec![comm.rank() as u8; len];
                let received =
                    comm.sendrecv(partner, 42 + round, &payload, partner, 42 + round, len);
                assert_eq!(received, vec![partner as u8; len]);
                sum += received[0] as u64;
            }
            sum
        })
        .unwrap();
        assert_eq!(results.len(), 4);
    }

    #[test]
    fn send_owned_delivers_without_extra_copy() {
        let topo = Topology::new(1, 2);
        let results = Cluster::launch(topo, |ctx| {
            let comm = ThreadComm::new(ctx);
            if comm.rank() == 0 {
                comm.send_owned(1, 5, vec![4, 5, 6]);
                Vec::new()
            } else {
                comm.recv(0, 5, 3)
            }
        })
        .unwrap();
        assert_eq!(results[1], vec![4, 5, 6]);
    }

    #[test]
    fn trace_comm_records_expected_ops() {
        let topo = Topology::new(2, 2);
        let comm = TraceComm::new(1, topo);
        comm.send(3, 7, &[0u8; 32]);
        let data = comm.recv(3, 8, 16);
        assert_eq!(data, vec![0u8; 16]);
        comm.shared_write(0, "x", 0, &[0u8; 8]);
        comm.node_barrier();
        comm.charge_reduce(64);
        comm.delay(123.0);
        comm.send_from_shared(0, "x", 0, 24, 2, 9);
        let ops = comm.into_ops();
        assert_eq!(ops.len(), 7);
        assert!(matches!(
            ops[0],
            TraceOp::Send {
                dest: 3,
                bytes: 32,
                tag: 7
            }
        ));
        assert!(matches!(
            ops[1],
            TraceOp::Recv {
                source: 3,
                bytes: 16,
                tag: 8
            }
        ));
        assert!(matches!(ops[2], TraceOp::CopyIntra { bytes: 8, .. }));
        assert!(matches!(ops[3], TraceOp::LocalBarrier));
        assert!(matches!(ops[4], TraceOp::Reduce { bytes: 64 }));
        assert!(matches!(ops[5], TraceOp::Delay { .. }));
        assert!(matches!(
            ops[6],
            TraceOp::Send {
                dest: 2,
                bytes: 24,
                tag: 9
            }
        ));
    }

    #[test]
    fn record_trace_produces_one_entry_per_rank() {
        let topo = Topology::new(2, 2);
        let trace = record_trace(topo, |comm| {
            let next = (comm.rank() + 1) % comm.world_size();
            let prev = (comm.rank() + comm.world_size() - 1) % comm.world_size();
            comm.send(next, 0, &[0u8; 8]);
            comm.recv(prev, 0, 8);
        });
        assert_eq!(trace.ranks.len(), 4);
        assert!(trace.validate().is_ok());
        assert_eq!(trace.total_messages(), 4);
    }

    #[test]
    fn default_accessors_derive_from_topology() {
        let topo = Topology::new(3, 4);
        let comm = TraceComm::new(7, topo);
        assert_eq!(comm.world_size(), 12);
        assert_eq!(comm.node_id(), 1);
        assert_eq!(comm.local_rank(), 3);
        assert_eq!(comm.num_nodes(), 3);
        assert!(!comm.is_node_root());
    }
}
