//! Sequential reference implementations of every collective, used by the
//! tests to check the distributed algorithms.
//!
//! Each function takes the per-rank inputs for the whole cluster and returns
//! the per-rank outputs MPI semantics require.

/// Expected allgather result: the concatenation of every rank's contribution,
/// identical on every rank.
pub fn allgather(contributions: &[Vec<u8>]) -> Vec<u8> {
    contributions.concat()
}

/// Expected scatter result for each rank: rank `i` receives block `i` of the
/// root's send buffer.
pub fn scatter(root_sendbuf: &[u8], world: usize) -> Vec<Vec<u8>> {
    assert_eq!(
        root_sendbuf.len() % world,
        0,
        "sendbuf must hold world blocks"
    );
    let block = root_sendbuf.len() / world;
    (0..world)
        .map(|rank| root_sendbuf[rank * block..(rank + 1) * block].to_vec())
        .collect()
}

/// Expected gather result at the root: the concatenation of every rank's
/// contribution (other ranks receive nothing).
pub fn gather(contributions: &[Vec<u8>]) -> Vec<u8> {
    contributions.concat()
}

/// Expected bcast result: every rank ends with the root's buffer.
pub fn bcast(root_buf: &[u8]) -> Vec<u8> {
    root_buf.to_vec()
}

/// Expected allreduce result with a caller-provided element-wise combine,
/// identical on every rank.
pub fn allreduce(contributions: &[Vec<u8>], combine: impl Fn(&mut [u8], &[u8])) -> Vec<u8> {
    let mut acc = contributions[0].clone();
    for contribution in &contributions[1..] {
        combine(&mut acc, contribution);
    }
    acc
}

/// Expected alltoall result for each rank: rank `i`'s output block `j` is
/// rank `j`'s input block `i`.
pub fn alltoall(inputs: &[Vec<u8>], world: usize) -> Vec<Vec<u8>> {
    let block = inputs[0].len() / world;
    (0..world)
        .map(|receiver| {
            let mut out = Vec::with_capacity(world * block);
            for input in &inputs[..world] {
                out.extend_from_slice(&input[receiver * block..(receiver + 1) * block]);
            }
            out
        })
        .collect()
}

/// Element-wise wrapping addition over `u8` payloads, a convenient
/// commutative reduction for tests.
pub fn wrapping_add_u8(acc: &mut [u8], other: &[u8]) {
    for (a, b) in acc.iter_mut().zip(other) {
        *a = a.wrapping_add(*b);
    }
}

/// Element-wise addition over little-endian `f64` payloads (the typical HPC
/// reduction).
pub fn sum_f64(acc: &mut [u8], other: &[u8]) {
    assert_eq!(acc.len(), other.len());
    assert_eq!(acc.len() % 8, 0);
    for i in (0..acc.len()).step_by(8) {
        let a = f64::from_le_bytes(acc[i..i + 8].try_into().unwrap());
        let b = f64::from_le_bytes(other[i..i + 8].try_into().unwrap());
        acc[i..i + 8].copy_from_slice(&(a + b).to_le_bytes());
    }
}

/// Deterministic per-rank payload generator used throughout the tests: rank
/// `r` contributes `len` bytes whose value depends on the rank and position.
pub fn rank_payload(rank: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((rank * 131 + i * 7 + 13) % 251) as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_splits_blocks_in_rank_order() {
        let sendbuf: Vec<u8> = (0..12).collect();
        let out = scatter(&sendbuf, 4);
        assert_eq!(out[0], vec![0, 1, 2]);
        assert_eq!(out[3], vec![9, 10, 11]);
    }

    #[test]
    fn allgather_concatenates_in_rank_order() {
        let contributions = vec![vec![1, 1], vec![2, 2], vec![3, 3]];
        assert_eq!(allgather(&contributions), vec![1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn allreduce_applies_combine_across_all_ranks() {
        let contributions = vec![vec![1u8, 2], vec![3, 4], vec![5, 6]];
        let result = allreduce(&contributions, wrapping_add_u8);
        assert_eq!(result, vec![9, 12]);
    }

    #[test]
    fn alltoall_transposes_blocks() {
        // 2 ranks, 1-byte blocks.
        let inputs = vec![vec![10, 11], vec![20, 21]];
        let out = alltoall(&inputs, 2);
        assert_eq!(out[0], vec![10, 20]);
        assert_eq!(out[1], vec![11, 21]);
    }

    #[test]
    fn sum_f64_adds_elementwise() {
        let mut acc = 1.5f64.to_le_bytes().to_vec();
        let other = 2.25f64.to_le_bytes().to_vec();
        sum_f64(&mut acc, &other);
        assert_eq!(f64::from_le_bytes(acc.try_into().unwrap()), 3.75);
    }

    #[test]
    fn rank_payload_is_deterministic_and_rank_dependent() {
        assert_eq!(rank_payload(3, 16), rank_payload(3, 16));
        assert_ne!(rank_payload(3, 16), rank_payload(4, 16));
    }
}
