//! Sequential reference implementations of every collective, used by the
//! tests to check the distributed algorithms.
//!
//! Each function takes the per-rank inputs for the whole cluster and returns
//! the per-rank outputs MPI semantics require.

/// Expected allgather result: the concatenation of every rank's contribution,
/// identical on every rank.
pub fn allgather(contributions: &[Vec<u8>]) -> Vec<u8> {
    contributions.concat()
}

/// Expected scatter result for each rank: rank `i` receives block `i` of the
/// root's send buffer.
pub fn scatter(root_sendbuf: &[u8], world: usize) -> Vec<Vec<u8>> {
    assert_eq!(
        root_sendbuf.len() % world,
        0,
        "sendbuf must hold world blocks"
    );
    let block = root_sendbuf.len() / world;
    (0..world)
        .map(|rank| root_sendbuf[rank * block..(rank + 1) * block].to_vec())
        .collect()
}

/// Expected gather result at the root: the concatenation of every rank's
/// contribution (other ranks receive nothing).
pub fn gather(contributions: &[Vec<u8>]) -> Vec<u8> {
    contributions.concat()
}

/// Expected bcast result: every rank ends with the root's buffer.
pub fn bcast(root_buf: &[u8]) -> Vec<u8> {
    root_buf.to_vec()
}

/// Expected allreduce result with a caller-provided element-wise combine,
/// identical on every rank.
pub fn allreduce(contributions: &[Vec<u8>], combine: impl Fn(&mut [u8], &[u8])) -> Vec<u8> {
    let mut acc = contributions[0].clone();
    for contribution in &contributions[1..] {
        combine(&mut acc, contribution);
    }
    acc
}

/// Expected reduce result at the root: every rank's contribution combined
/// element-wise (other ranks receive nothing).
pub fn reduce(contributions: &[Vec<u8>], combine: impl Fn(&mut [u8], &[u8])) -> Vec<u8> {
    allreduce(contributions, combine)
}

/// Expected reduce_scatter result for each rank: the full reduction split
/// into `world` equal blocks, rank `i` receiving block `i`.
///
/// Every contribution must hold `world` blocks (MPI_Reduce_scatter_block
/// semantics).
pub fn reduce_scatter(
    contributions: &[Vec<u8>],
    world: usize,
    combine: impl Fn(&mut [u8], &[u8]),
) -> Vec<Vec<u8>> {
    let reduced = allreduce(contributions, combine);
    scatter(&reduced, world)
}

/// Expected inclusive scan result for each rank: rank `i` receives the
/// combination of contributions `0..=i`.
pub fn scan(contributions: &[Vec<u8>], combine: impl Fn(&mut [u8], &[u8])) -> Vec<Vec<u8>> {
    let mut acc = contributions[0].clone();
    let mut out = vec![acc.clone()];
    for contribution in &contributions[1..] {
        combine(&mut acc, contribution);
        out.push(acc.clone());
    }
    out
}

/// Expected exclusive scan result for each rank: rank `i > 0` receives the
/// combination of contributions `0..i`.
///
/// MPI leaves rank 0's receive buffer undefined; this implementation pins it
/// to rank 0's own input (the buffer is left untouched), and the oracle
/// mirrors that.
pub fn exscan(contributions: &[Vec<u8>], combine: impl Fn(&mut [u8], &[u8])) -> Vec<Vec<u8>> {
    let mut acc = contributions[0].clone();
    let mut out = vec![contributions[0].clone()];
    for contribution in &contributions[1..] {
        out.push(acc.clone());
        combine(&mut acc, contribution);
    }
    out
}

/// Expected alltoall result for each rank: rank `i`'s output block `j` is
/// rank `j`'s input block `i`.
pub fn alltoall(inputs: &[Vec<u8>], world: usize) -> Vec<Vec<u8>> {
    let block = inputs[0].len() / world;
    (0..world)
        .map(|receiver| {
            let mut out = Vec::with_capacity(world * block);
            for input in &inputs[..world] {
                out.extend_from_slice(&input[receiver * block..(receiver + 1) * block]);
            }
            out
        })
        .collect()
}

/// Element-wise wrapping addition over `u8` payloads, a convenient
/// commutative reduction for tests.
pub fn wrapping_add_u8(acc: &mut [u8], other: &[u8]) {
    for (a, b) in acc.iter_mut().zip(other) {
        *a = a.wrapping_add(*b);
    }
}

/// Element-wise maximum over `u8` payloads.  Not invertible, so a wrong
/// *subset* of contributions (not merely a wrong combination order) shows up
/// in the result — the property the differential reduction tests lean on.
pub fn max_u8(acc: &mut [u8], other: &[u8]) {
    for (a, b) in acc.iter_mut().zip(other) {
        *a = (*a).max(*b);
    }
}

/// Element-wise minimum over `u8` payloads (see [`max_u8`]).
pub fn min_u8(acc: &mut [u8], other: &[u8]) {
    for (a, b) in acc.iter_mut().zip(other) {
        *a = (*a).min(*b);
    }
}

/// Element-wise addition over little-endian `f64` payloads (the typical HPC
/// reduction).
pub fn sum_f64(acc: &mut [u8], other: &[u8]) {
    assert_eq!(acc.len(), other.len());
    assert_eq!(acc.len() % 8, 0);
    for i in (0..acc.len()).step_by(8) {
        let a = f64::from_le_bytes(acc[i..i + 8].try_into().unwrap());
        let b = f64::from_le_bytes(other[i..i + 8].try_into().unwrap());
        acc[i..i + 8].copy_from_slice(&(a + b).to_le_bytes());
    }
}

// ---------------------------------------------------------------------
// Typed reduction oracles
// ---------------------------------------------------------------------
//
// The sequential references for the typed reduction family, combining in
// strict rank order with `ReduceOp::combine` — the semantics every
// distributed algorithm must reproduce (exactly for integers, up to
// combine-order rounding for floats).

use crate::datatype::{Datatype, ReduceOp};

/// Expected typed allreduce/reduce result: every rank's contribution
/// combined element-wise in rank order.
pub fn allreduce_t<T: Datatype>(contributions: &[Vec<T>], op: ReduceOp) -> Vec<T> {
    let mut acc = contributions[0].clone();
    for contribution in &contributions[1..] {
        for (a, b) in acc.iter_mut().zip(contribution) {
            *a = op.combine(*a, *b);
        }
    }
    acc
}

/// Expected typed reduce_scatter result per rank: the full reduction split
/// into `world` equal blocks, rank `i` receiving block `i`.
pub fn reduce_scatter_t<T: Datatype>(
    contributions: &[Vec<T>],
    world: usize,
    op: ReduceOp,
) -> Vec<Vec<T>> {
    let reduced = allreduce_t(contributions, op);
    let block = reduced.len() / world;
    (0..world)
        .map(|rank| reduced[rank * block..(rank + 1) * block].to_vec())
        .collect()
}

/// Expected typed inclusive scan per rank: rank `i` receives the
/// combination of contributions `0..=i`.
pub fn scan_t<T: Datatype>(contributions: &[Vec<T>], op: ReduceOp) -> Vec<Vec<T>> {
    let mut acc = contributions[0].clone();
    let mut out = vec![acc.clone()];
    for contribution in &contributions[1..] {
        for (a, b) in acc.iter_mut().zip(contribution) {
            *a = op.combine(*a, *b);
        }
        out.push(acc.clone());
    }
    out
}

/// Expected typed exclusive scan per rank: rank `i > 0` receives the
/// combination of contributions `0..i`; rank 0 is pinned to its own input
/// (see [`exscan`]).
pub fn exscan_t<T: Datatype>(contributions: &[Vec<T>], op: ReduceOp) -> Vec<Vec<T>> {
    let mut acc = contributions[0].clone();
    let mut out = vec![contributions[0].clone()];
    for contribution in &contributions[1..] {
        out.push(acc.clone());
        for (a, b) in acc.iter_mut().zip(contribution) {
            *a = op.combine(*a, *b);
        }
    }
    out
}

/// Deterministic per-rank payload generator used throughout the tests: rank
/// `r` contributes `len` bytes whose value depends on the rank and position.
pub fn rank_payload(rank: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((rank * 131 + i * 7 + 13) % 251) as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_splits_blocks_in_rank_order() {
        let sendbuf: Vec<u8> = (0..12).collect();
        let out = scatter(&sendbuf, 4);
        assert_eq!(out[0], vec![0, 1, 2]);
        assert_eq!(out[3], vec![9, 10, 11]);
    }

    #[test]
    fn allgather_concatenates_in_rank_order() {
        let contributions = vec![vec![1, 1], vec![2, 2], vec![3, 3]];
        assert_eq!(allgather(&contributions), vec![1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn allreduce_applies_combine_across_all_ranks() {
        let contributions = vec![vec![1u8, 2], vec![3, 4], vec![5, 6]];
        let result = allreduce(&contributions, wrapping_add_u8);
        assert_eq!(result, vec![9, 12]);
    }

    #[test]
    fn alltoall_transposes_blocks() {
        // 2 ranks, 1-byte blocks.
        let inputs = vec![vec![10, 11], vec![20, 21]];
        let out = alltoall(&inputs, 2);
        assert_eq!(out[0], vec![10, 20]);
        assert_eq!(out[1], vec![11, 21]);
    }

    #[test]
    fn reduce_scatter_splits_the_full_reduction() {
        let contributions = vec![vec![1u8, 2, 3, 4], vec![10, 20, 30, 40]];
        let out = reduce_scatter(&contributions, 2, wrapping_add_u8);
        assert_eq!(out[0], vec![11, 22]);
        assert_eq!(out[1], vec![33, 44]);
    }

    #[test]
    fn scan_is_an_inclusive_prefix() {
        let contributions = vec![vec![1u8], vec![2], vec![4]];
        let out = scan(&contributions, wrapping_add_u8);
        assert_eq!(out, vec![vec![1], vec![3], vec![7]]);
    }

    #[test]
    fn exscan_is_an_exclusive_prefix_with_rank0_pinned_to_its_input() {
        let contributions = vec![vec![1u8], vec![2], vec![4]];
        let out = exscan(&contributions, wrapping_add_u8);
        assert_eq!(out, vec![vec![1], vec![1], vec![3]]);
    }

    #[test]
    fn min_and_max_are_elementwise() {
        let mut acc = vec![3u8, 200];
        max_u8(&mut acc, &[7, 100]);
        assert_eq!(acc, vec![7, 200]);
        min_u8(&mut acc, &[5, 150]);
        assert_eq!(acc, vec![5, 150]);
    }

    #[test]
    fn sum_f64_adds_elementwise() {
        let mut acc = 1.5f64.to_le_bytes().to_vec();
        let other = 2.25f64.to_le_bytes().to_vec();
        sum_f64(&mut acc, &other);
        assert_eq!(f64::from_le_bytes(acc.try_into().unwrap()), 3.75);
    }

    #[test]
    fn rank_payload_is_deterministic_and_rank_dependent() {
        assert_eq!(rank_payload(3, 16), rank_payload(3, 16));
        assert_ne!(rank_payload(3, 16), rank_payload(4, 16));
    }

    #[test]
    fn typed_allreduce_matches_the_byte_oracle_on_u8_sum() {
        let typed = vec![vec![1u8, 250], vec![3, 4], vec![5, 6]];
        let bytes: Vec<Vec<u8>> = typed.clone();
        assert_eq!(
            allreduce_t(&typed, ReduceOp::Sum),
            allreduce(&bytes, wrapping_add_u8)
        );
    }

    #[test]
    fn typed_oracles_cover_the_reduction_family() {
        let contributions = vec![vec![1i32, -8], vec![2, 5], vec![4, 3]];
        assert_eq!(allreduce_t(&contributions, ReduceOp::Sum), vec![7, 0]);
        assert_eq!(allreduce_t(&contributions, ReduceOp::Max), vec![4, 5]);
        assert_eq!(allreduce_t(&contributions, ReduceOp::Min), vec![1, -8]);
        assert_eq!(allreduce_t(&contributions, ReduceOp::Prod), vec![8, -120]);

        let rs = vec![vec![1i32, 2, 3], vec![10, 20, 30], vec![100, 200, 300]];
        assert_eq!(
            reduce_scatter_t(&rs, 3, ReduceOp::Sum),
            vec![vec![111], vec![222], vec![333]]
        );

        assert_eq!(
            scan_t(&contributions, ReduceOp::Sum),
            vec![vec![1, -8], vec![3, -3], vec![7, 0]]
        );
        assert_eq!(
            exscan_t(&contributions, ReduceOp::Sum),
            vec![vec![1, -8], vec![1, -8], vec![3, -3]]
        );
    }
}
