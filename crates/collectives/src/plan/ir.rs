//! The collective-schedule IR: a validated, per-rank program of
//! communication and data-movement operations with *symbolic* buffer
//! references.
//!
//! A [`Plan`] is what a collective algorithm compiles to: one [`RankPlan`]
//! per rank, each an ordered list of [`PlanOp`]s.  Data-carrying operations
//! reference bytes through [`Src`] — a concatenation of ranges over the
//! caller's send buffer, the initial contents of the receive buffer, or
//! *values* (bytes that materialize during execution: received messages,
//! shared-memory reads, reduction results).  Because every reference is
//! symbolic, the same plan can be
//!
//! * **executed** against any [`crate::comm::Comm`] with fresh caller
//!   buffers ([`crate::plan::exec::execute_rank_plan`]), or
//! * **lowered** straight to a `pip-netsim` [`Trace`] without running the
//!   algorithm again ([`Plan::to_trace`]).
//!
//! Plans are compiled at tag base 0; [`Plan::to_trace`] and the executor
//! rebase every tag by the invocation tag, and shared-region names are
//! namespaced per invocation so back-to-back executions of the same cached
//! plan never collide.

use pip_netsim::trace::{Trace, TraceOp};
use pip_runtime::Topology;
use pip_transport::cost::IntranodeMechanism;

use crate::compress::Codec;

/// Index of a runtime value (received message, shared read, reduction
/// result) within a rank's plan.
pub type ValId = u32;

/// Index into [`RankPlan::names`].
pub type NameId = u32;

/// How much information a plan carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Full data provenance: every payload resolves to symbolic sources, so
    /// the plan can be executed and must reproduce the algorithm's output.
    Exec,
    /// Schedule only: payloads carry lengths but not provenance
    /// ([`SrcSeg::Opaque`]).  Enough for [`Plan::to_trace`]; refusing
    /// execution.
    Schedule,
}

/// One contiguous piece of a payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SrcSeg {
    /// Bytes `offset..offset + len` of the caller's send buffer.
    SendBuf {
        /// Start within the send buffer.
        offset: usize,
        /// Length in bytes.
        len: usize,
    },
    /// Bytes of the caller's receive buffer *as it was on entry*.
    RecvInit {
        /// Start within the receive buffer.
        offset: usize,
        /// Length in bytes.
        len: usize,
    },
    /// Bytes `offset..offset + len` of runtime value `id`.
    Val {
        /// The value.
        id: ValId,
        /// Start within the value.
        offset: usize,
        /// Length in bytes.
        len: usize,
    },
    /// Bytes that are the same on every execution (the algorithm wrote
    /// constants, e.g. zero padding).
    Lit(Vec<u8>),
    /// Unknown provenance of a known length (schedule-fidelity plans only).
    Opaque {
        /// Length in bytes.
        len: usize,
    },
}

impl SrcSeg {
    /// Length of this segment in bytes.
    pub fn len(&self) -> usize {
        match self {
            SrcSeg::SendBuf { len, .. }
            | SrcSeg::RecvInit { len, .. }
            | SrcSeg::Val { len, .. }
            | SrcSeg::Opaque { len } => *len,
            SrcSeg::Lit(bytes) => bytes.len(),
        }
    }

    /// Whether the segment is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A payload source: a concatenation of segments.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Src {
    /// Segments in concatenation order.
    pub segs: Vec<SrcSeg>,
}

impl Src {
    /// A source with no bytes.
    pub fn empty() -> Self {
        Self::default()
    }

    /// An opaque source of `len` bytes (schedule fidelity).
    pub fn opaque(len: usize) -> Self {
        Self {
            segs: vec![SrcSeg::Opaque { len }],
        }
    }

    /// Total length in bytes.
    pub fn len(&self) -> usize {
        self.segs.iter().map(SrcSeg::len).sum()
    }

    /// Whether the source carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether any segment is [`SrcSeg::Opaque`].
    pub fn is_opaque(&self) -> bool {
        self.segs.iter().any(|s| matches!(s, SrcSeg::Opaque { .. }))
    }
}

/// One operation of a rank's compiled program.
///
/// The communication operations mirror the [`crate::comm::Comm`] surface
/// one-for-one (so lowering to a trace is mechanical); [`PlanOp::Reduce`]
/// and [`PlanOp::CopyOut`] are *data* operations the compiler derived from
/// the algorithm's private buffer manipulation — they move bytes at
/// execution time but are invisible to the trace, exactly like the private
/// manipulation they replace.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// Expose a shared region of `len` bytes owned by this rank.
    SharedAlloc {
        /// Region name.
        name: NameId,
        /// Region length.
        len: usize,
    },
    /// Expose a shared region and fill it from `src` (free under PiP).
    SharedPublish {
        /// Region name.
        name: NameId,
        /// Bytes to publish.
        src: Src,
    },
    /// Read back a whole region this rank owns into value `dst` (free).
    SharedCollect {
        /// Region name.
        name: NameId,
        /// Region length.
        len: usize,
        /// Value receiving the bytes.
        dst: ValId,
    },
    /// Store `src` into local rank `owner_local`'s region at `offset`.
    SharedWrite {
        /// Owner of the region within this node.
        owner_local: usize,
        /// Region name.
        name: NameId,
        /// Byte offset within the region.
        offset: usize,
        /// Bytes to store.
        src: Src,
    },
    /// Load `len` bytes from a peer's region into value `dst`.
    SharedRead {
        /// Owner of the region within this node.
        owner_local: usize,
        /// Region name.
        name: NameId,
        /// Byte offset within the region.
        offset: usize,
        /// Length in bytes.
        len: usize,
        /// Value receiving the bytes.
        dst: ValId,
    },
    /// Send `src` to `dest` with tag base + `tag`.
    Send {
        /// Destination rank.
        dest: usize,
        /// Tag offset from the invocation tag.
        tag: u64,
        /// Payload.
        src: Src,
    },
    /// Receive `len` bytes from `source` into value `dst`.
    Recv {
        /// Source rank.
        source: usize,
        /// Tag offset from the invocation tag.
        tag: u64,
        /// Expected length.
        len: usize,
        /// Value receiving the bytes.
        dst: ValId,
    },
    /// Compress `src` under `codec` and send the frame to `dest` — the
    /// fused lossy twin of [`PlanOp::Send`], produced by the compression
    /// rewrite pass.  The live frame's length depends on the payload;
    /// lowered traces price the transfer at the deterministic
    /// `wire_bytes` both endpoints stamped from the calibration stream
    /// (see [`crate::compress::calibrated_wire_bytes`]), plus a
    /// [`TraceOp::Codec`] pass over the raw length for the codec's CPU
    /// cost — a single vectorized sweep priced at streaming-copy speed.
    Compress {
        /// Destination rank.
        dest: usize,
        /// Tag offset from the invocation tag.
        tag: u64,
        /// Uncompressed payload.
        src: Src,
        /// Error-bound codec applied to the payload.
        codec: Codec,
        /// Calibrated wire size the trace charges for this transfer.
        wire_bytes: usize,
    },
    /// Receive a compressed frame from `source` and decompress it into
    /// value `dst` of exactly `raw_len` bytes — the fused lossy twin of
    /// [`PlanOp::Recv`].  Both endpoints derive the same `wire_bytes`
    /// from `(raw_len, codec)`, so lowered traces keep matched
    /// send/receive byte counts.
    Decompress {
        /// Source rank.
        source: usize,
        /// Tag offset from the invocation tag.
        tag: u64,
        /// Uncompressed length the frame must decode to.
        raw_len: usize,
        /// Value receiving the decoded bytes.
        dst: ValId,
        /// Error-bound codec the sender applied.
        codec: Codec,
        /// Calibrated wire size the trace charges for this transfer.
        wire_bytes: usize,
    },
    /// Send straight out of a peer's shared region (zero-copy).
    SendFromShared {
        /// Owner of the region within this node.
        owner_local: usize,
        /// Region name.
        name: NameId,
        /// Byte offset within the region.
        offset: usize,
        /// Length in bytes.
        len: usize,
        /// Destination rank.
        dest: usize,
        /// Tag offset from the invocation tag.
        tag: u64,
    },
    /// Receive straight into a peer's shared region (zero-copy).
    RecvIntoShared {
        /// Owner of the region within this node.
        owner_local: usize,
        /// Region name.
        name: NameId,
        /// Byte offset within the region.
        offset: usize,
        /// Source rank.
        source: usize,
        /// Tag offset from the invocation tag.
        tag: u64,
        /// Length in bytes.
        len: usize,
    },
    /// Barrier across the tasks of this rank's node.
    NodeBarrier,
    /// Apply the caller's reduction operator: `dst = op(acc, other)`.
    ///
    /// Data operation — replaces the algorithm's private `op(...)` call;
    /// does not lower to a trace op (the matching cost is recorded
    /// separately by [`PlanOp::ChargeReduce`]).
    Reduce {
        /// Value receiving the reduced bytes.
        dst: ValId,
        /// Accumulator input.
        acc: Src,
        /// Second operand.
        other: Src,
    },
    /// Write `src` into the caller's receive buffer at `offset`.
    ///
    /// Data operation — replaces the algorithm's private copies into the
    /// output buffer; does not lower to a trace op.
    CopyOut {
        /// Destination offset within the receive buffer.
        offset: usize,
        /// Bytes to write.
        src: Src,
    },
    /// Cost annotation: a private copy of `bytes` bytes.
    ChargeCopy {
        /// Bytes copied.
        bytes: usize,
    },
    /// Cost annotation: a private reduction over `bytes` bytes.
    ChargeReduce {
        /// Bytes reduced.
        bytes: usize,
    },
    /// Cost annotation: fixed software overhead.
    Delay {
        /// Duration in nanoseconds.
        nanos: f64,
    },
}

/// Buffer shapes a plan expects from its caller.
///
/// `sendbuf`/`recvbuf` are always the **packed** lengths the plan's ops were
/// recorded against. When a layout is present, the *caller's* buffer spans
/// the layout extent instead; the executor packs it into packed-length
/// scratch before replay and unpacks afterwards, so the plan body never sees
/// a gap byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoShape {
    /// Required send-buffer length in packed bytes (`None`: no send buffer,
    /// e.g. a non-root scatter rank).
    pub sendbuf: Option<usize>,
    /// Required receive-buffer length in packed bytes (`None`: no receive
    /// buffer, e.g. a non-root gather rank).
    pub recvbuf: Option<usize>,
    /// The send and receive buffer are the *same* caller buffer (bcast,
    /// allreduce).  The executor then reads [`SrcSeg::SendBuf`] from the
    /// receive buffer's pre-execution contents.
    pub inout: bool,
    /// The plan contains [`PlanOp::Reduce`] and needs a reduction operator.
    pub needs_reduce_op: bool,
    /// Strided layout of the caller's send buffer, in **bytes**
    /// ([`crate::datatype::Layout::scaled`]). `None`: contiguous.
    pub send_layout: Option<crate::datatype::Layout>,
    /// Strided layout of the caller's receive buffer, in **bytes**.
    /// `None`: contiguous. For `inout` plans this is the layout of the
    /// single caller buffer.
    pub recv_layout: Option<crate::datatype::Layout>,
}

/// Problems detected by plan validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// An op references a name index outside [`RankPlan::names`].
    BadName {
        /// Rank whose plan is invalid.
        rank: usize,
        /// Index of the offending op.
        op: usize,
    },
    /// An op references a value never defined, defined later, or out of
    /// range.
    UndefinedValue {
        /// Rank whose plan is invalid.
        rank: usize,
        /// Index of the offending op.
        op: usize,
        /// The value referenced.
        val: ValId,
    },
    /// A source range exceeds the referenced buffer or value.
    SrcOutOfBounds {
        /// Rank whose plan is invalid.
        rank: usize,
        /// Index of the offending op.
        op: usize,
    },
    /// A `CopyOut` writes outside the receive buffer, or the plan writes
    /// output without declaring a receive buffer.
    OutOfBoundsOutput {
        /// Rank whose plan is invalid.
        rank: usize,
        /// Index of the offending op.
        op: usize,
    },
    /// A shared-region access exceeds the region, or targets a region never
    /// allocated.
    BadRegionAccess {
        /// Rank whose plan is invalid.
        rank: usize,
        /// Index of the offending op.
        op: usize,
        /// Region name.
        name: String,
    },
    /// Two allocations of the same region disagree on length.
    RegionSizeConflict {
        /// Region name.
        name: String,
    },
    /// The lowered trace failed structural validation (unmatched messages,
    /// inconsistent barriers, bad peer ranks).
    InvalidSchedule(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::BadName { rank, op } => {
                write!(f, "rank {rank} op {op}: name index out of range")
            }
            PlanError::UndefinedValue { rank, op, val } => {
                write!(f, "rank {rank} op {op}: value {val} used before definition")
            }
            PlanError::SrcOutOfBounds { rank, op } => {
                write!(f, "rank {rank} op {op}: source range out of bounds")
            }
            PlanError::OutOfBoundsOutput { rank, op } => {
                write!(f, "rank {rank} op {op}: output write out of bounds")
            }
            PlanError::BadRegionAccess { rank, op, name } => {
                write!(f, "rank {rank} op {op}: bad access to region {name:?}")
            }
            PlanError::RegionSizeConflict { name } => {
                write!(f, "region {name:?} allocated with conflicting lengths")
            }
            PlanError::InvalidSchedule(e) => write!(f, "invalid schedule: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// The compiled program of one rank.
#[derive(Debug, Clone, PartialEq)]
pub struct RankPlan {
    /// The rank this plan was compiled for.
    pub rank: usize,
    /// The topology it was compiled for.
    pub topology: Topology,
    /// How much information the plan carries.
    pub fidelity: Fidelity,
    /// Buffer shapes expected from the caller.
    pub io: IoShape,
    /// Shared-region names, as recorded at the canonical tag base; the
    /// executor namespaces them per invocation.
    pub names: Vec<String>,
    /// Length of each runtime value, indexed by [`ValId`].
    pub val_lens: Vec<usize>,
    /// Operations in program order.
    pub ops: Vec<PlanOp>,
}

impl RankPlan {
    /// Validate the rank-local invariants: in-range names, define-before-use
    /// values, in-bounds source ranges and output writes.
    pub fn validate(&self) -> Result<(), PlanError> {
        let rank = self.rank;
        let mut defined = vec![false; self.val_lens.len()];
        let check_name = |op: usize, name: NameId| -> Result<(), PlanError> {
            if (name as usize) < self.names.len() {
                Ok(())
            } else {
                Err(PlanError::BadName { rank, op })
            }
        };
        let sendbuf_len = if self.io.inout {
            self.io.recvbuf
        } else {
            self.io.sendbuf
        };
        for (i, op) in self.ops.iter().enumerate() {
            let check_src = |src: &Src, defined: &[bool]| -> Result<(), PlanError> {
                for seg in &src.segs {
                    match *seg {
                        SrcSeg::SendBuf { offset, len } => {
                            let limit =
                                sendbuf_len.ok_or(PlanError::SrcOutOfBounds { rank, op: i })?;
                            if offset + len > limit {
                                return Err(PlanError::SrcOutOfBounds { rank, op: i });
                            }
                        }
                        SrcSeg::RecvInit { offset, len } => {
                            let limit = self
                                .io
                                .recvbuf
                                .ok_or(PlanError::SrcOutOfBounds { rank, op: i })?;
                            if offset + len > limit {
                                return Err(PlanError::SrcOutOfBounds { rank, op: i });
                            }
                        }
                        SrcSeg::Val { id, offset, len } => {
                            let id = id as usize;
                            if id >= defined.len() || !defined[id] {
                                return Err(PlanError::UndefinedValue {
                                    rank,
                                    op: i,
                                    val: id as ValId,
                                });
                            }
                            if offset + len > self.val_lens[id] {
                                return Err(PlanError::SrcOutOfBounds { rank, op: i });
                            }
                        }
                        SrcSeg::Lit(_) | SrcSeg::Opaque { .. } => {}
                    }
                }
                Ok(())
            };
            let define = |op_idx: usize, val: ValId, len: usize, defined: &mut Vec<bool>| {
                let idx = val as usize;
                if idx >= self.val_lens.len() || self.val_lens[idx] != len {
                    return Err(PlanError::UndefinedValue {
                        rank,
                        op: op_idx,
                        val,
                    });
                }
                defined[idx] = true;
                Ok(())
            };
            match op {
                PlanOp::SharedAlloc { name, .. } => check_name(i, *name)?,
                PlanOp::SharedPublish { name, src } => {
                    check_name(i, *name)?;
                    check_src(src, &defined)?;
                }
                PlanOp::SharedCollect { name, len, dst } => {
                    check_name(i, *name)?;
                    define(i, *dst, *len, &mut defined)?;
                }
                PlanOp::SharedWrite { name, src, .. } => {
                    check_name(i, *name)?;
                    check_src(src, &defined)?;
                }
                PlanOp::SharedRead { name, len, dst, .. } => {
                    check_name(i, *name)?;
                    define(i, *dst, *len, &mut defined)?;
                }
                PlanOp::Send { src, .. } => check_src(src, &defined)?,
                PlanOp::Recv { len, dst, .. } => define(i, *dst, *len, &mut defined)?,
                PlanOp::Compress { src, .. } => check_src(src, &defined)?,
                PlanOp::Decompress { raw_len, dst, .. } => define(i, *dst, *raw_len, &mut defined)?,
                PlanOp::SendFromShared { name, .. } | PlanOp::RecvIntoShared { name, .. } => {
                    check_name(i, *name)?
                }
                PlanOp::NodeBarrier => {}
                PlanOp::Reduce { dst, acc, other } => {
                    check_src(acc, &defined)?;
                    check_src(other, &defined)?;
                    define(i, *dst, acc.len(), &mut defined)?;
                }
                PlanOp::CopyOut { offset, src } => {
                    check_src(src, &defined)?;
                    let limit = self
                        .io
                        .recvbuf
                        .ok_or(PlanError::OutOfBoundsOutput { rank, op: i })?;
                    if offset + src.len() > limit {
                        return Err(PlanError::OutOfBoundsOutput { rank, op: i });
                    }
                }
                PlanOp::ChargeCopy { .. } | PlanOp::ChargeReduce { .. } | PlanOp::Delay { .. } => {}
            }
        }
        Ok(())
    }

    /// Lower this rank's program to the trace ops [`crate::comm::TraceComm`]
    /// would record, with tags rebased by `tag`.
    pub fn to_trace_ops(&self, tag: u64) -> Vec<TraceOp> {
        let mut ops = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            match op {
                PlanOp::Send { dest, tag: t, src } => ops.push(TraceOp::Send {
                    dest: *dest,
                    bytes: src.len(),
                    tag: tag + t,
                }),
                PlanOp::Recv {
                    source,
                    tag: t,
                    len,
                    ..
                } => ops.push(TraceOp::Recv {
                    source: *source,
                    bytes: *len,
                    tag: tag + t,
                }),
                // A compressed transfer costs the codec pass (one
                // vectorized sweep of the raw bytes at streaming-copy
                // speed) plus the calibrated wire size on the network.
                PlanOp::Compress {
                    dest,
                    tag: t,
                    src,
                    wire_bytes,
                    ..
                } => {
                    ops.push(TraceOp::Codec { bytes: src.len() });
                    ops.push(TraceOp::Send {
                        dest: *dest,
                        bytes: *wire_bytes,
                        tag: tag + t,
                    });
                }
                PlanOp::Decompress {
                    source,
                    tag: t,
                    raw_len,
                    wire_bytes,
                    ..
                } => {
                    ops.push(TraceOp::Recv {
                        source: *source,
                        bytes: *wire_bytes,
                        tag: tag + t,
                    });
                    ops.push(TraceOp::Codec { bytes: *raw_len });
                }
                PlanOp::SendFromShared {
                    len, dest, tag: t, ..
                } => ops.push(TraceOp::Send {
                    dest: *dest,
                    bytes: *len,
                    tag: tag + t,
                }),
                PlanOp::RecvIntoShared {
                    source,
                    tag: t,
                    len,
                    ..
                } => ops.push(TraceOp::Recv {
                    source: *source,
                    bytes: *len,
                    tag: tag + t,
                }),
                PlanOp::SharedWrite { src, .. } => ops.push(TraceOp::CopyIntra {
                    bytes: src.len(),
                    mechanism: None,
                    first_use: false,
                }),
                PlanOp::SharedRead { len, .. } => ops.push(TraceOp::CopyIntra {
                    bytes: *len,
                    mechanism: None,
                    first_use: false,
                }),
                PlanOp::NodeBarrier => ops.push(TraceOp::LocalBarrier),
                PlanOp::ChargeCopy { bytes } => ops.push(TraceOp::CopyIntra {
                    bytes: *bytes,
                    mechanism: Some(IntranodeMechanism::Pip),
                    first_use: false,
                }),
                PlanOp::ChargeReduce { bytes } => ops.push(TraceOp::Reduce { bytes: *bytes }),
                PlanOp::Delay { nanos } => ops.push(TraceOp::Delay { nanos: *nanos }),
                // Free under PiP (TraceComm records nothing for these) or
                // pure data ops the trace never sees.
                PlanOp::SharedAlloc { .. }
                | PlanOp::SharedPublish { .. }
                | PlanOp::SharedCollect { .. }
                | PlanOp::Reduce { .. }
                | PlanOp::CopyOut { .. } => {}
            }
        }
        ops
    }
}

/// A whole-cluster plan: one [`RankPlan`] per rank.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The topology the plan was compiled for.
    pub topology: Topology,
    /// Per-rank programs, indexed by rank.
    pub ranks: Vec<RankPlan>,
}

impl Plan {
    /// Lower the whole plan to a validated-shape [`Trace`] with tags rebased
    /// by `tag` — the direct replacement for replaying the algorithm once
    /// per rank through a recording communicator.
    pub fn to_trace(&self, tag: u64) -> Trace {
        // `from_rank_ops` aliases identical programs, so symmetric plans
        // (every non-leader of a hierarchical schedule, say) lower to one
        // stored op vector per equivalence class instead of one per rank.
        Trace::from_rank_ops(
            self.topology,
            self.ranks
                .iter()
                .map(|plan| plan.to_trace_ops(tag))
                .collect(),
        )
    }

    /// Validate every rank's program plus the cross-rank invariants: matched
    /// send/receive multisets, consistent barrier counts, and in-bounds
    /// shared-region accesses against the regions the owning ranks allocate.
    pub fn validate(&self) -> Result<(), PlanError> {
        use std::collections::HashMap;
        for plan in &self.ranks {
            plan.validate()?;
        }
        // Message matching and barrier consistency: reuse the trace
        // validator on the lowered schedule.
        self.to_trace(0)
            .validate()
            .map_err(|e| PlanError::InvalidSchedule(e.to_string()))?;
        // Region registry: (node, owner_local, name) -> len.
        let mut regions: HashMap<(usize, usize, String), usize> = HashMap::new();
        for (rank, plan) in self.ranks.iter().enumerate() {
            let node = self.topology.node_of(rank);
            let local = self.topology.local_rank_of(rank);
            for op in &plan.ops {
                let (name, len) = match op {
                    PlanOp::SharedAlloc { name, len } => (*name, *len),
                    PlanOp::SharedPublish { name, src } => (*name, src.len()),
                    _ => continue,
                };
                let name = plan.names[name as usize].clone();
                match regions.entry((node, local, name.clone())) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        if *e.get() != len {
                            return Err(PlanError::RegionSizeConflict { name });
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(len);
                    }
                }
            }
        }
        let region_len = |node: usize, owner: usize, name: &str| -> Option<usize> {
            regions.get(&(node, owner, name.to_string())).copied()
        };
        for (rank, plan) in self.ranks.iter().enumerate() {
            let node = self.topology.node_of(rank);
            for (i, op) in plan.ops.iter().enumerate() {
                let access = match op {
                    PlanOp::SharedWrite {
                        owner_local,
                        name,
                        offset,
                        src,
                    } => Some((*owner_local, *name, *offset, src.len())),
                    PlanOp::SharedRead {
                        owner_local,
                        name,
                        offset,
                        len,
                        ..
                    }
                    | PlanOp::SendFromShared {
                        owner_local,
                        name,
                        offset,
                        len,
                        ..
                    }
                    | PlanOp::RecvIntoShared {
                        owner_local,
                        name,
                        offset,
                        len,
                        ..
                    } => Some((*owner_local, *name, *offset, *len)),
                    PlanOp::SharedCollect { name, len, dst: _ } => {
                        Some((self.topology.local_rank_of(rank), *name, 0, *len))
                    }
                    _ => None,
                };
                if let Some((owner, name, offset, len)) = access {
                    let name = &plan.names[name as usize];
                    match region_len(node, owner, name) {
                        Some(region) if offset + len <= region => {}
                        _ => {
                            return Err(PlanError::BadRegionAccess {
                                rank,
                                op: i,
                                name: name.clone(),
                            })
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Total number of ops across all ranks.
    pub fn total_ops(&self) -> usize {
        self.ranks.iter().map(|r| r.ops.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf_plan(rank: usize, topo: Topology) -> RankPlan {
        RankPlan {
            rank,
            topology: topo,
            fidelity: Fidelity::Exec,
            io: IoShape {
                sendbuf: Some(4),
                recvbuf: Some(8),
                ..IoShape::default()
            },
            names: vec!["r_0".to_string()],
            val_lens: vec![4],
            ops: Vec::new(),
        }
    }

    #[test]
    fn validate_accepts_define_before_use() {
        let topo = Topology::new(1, 2);
        let mut plan = leaf_plan(0, topo);
        plan.ops = vec![
            PlanOp::Recv {
                source: 1,
                tag: 0,
                len: 4,
                dst: 0,
            },
            PlanOp::CopyOut {
                offset: 4,
                src: Src {
                    segs: vec![SrcSeg::Val {
                        id: 0,
                        offset: 0,
                        len: 4,
                    }],
                },
            },
        ];
        plan.validate().unwrap();
    }

    #[test]
    fn validate_rejects_use_before_define() {
        let topo = Topology::new(1, 2);
        let mut plan = leaf_plan(0, topo);
        plan.ops = vec![PlanOp::Send {
            dest: 1,
            tag: 0,
            src: Src {
                segs: vec![SrcSeg::Val {
                    id: 0,
                    offset: 0,
                    len: 4,
                }],
            },
        }];
        assert!(matches!(
            plan.validate().unwrap_err(),
            PlanError::UndefinedValue { val: 0, .. }
        ));
    }

    #[test]
    fn validate_rejects_out_of_bounds_copy_out() {
        let topo = Topology::new(1, 2);
        let mut plan = leaf_plan(0, topo);
        plan.ops = vec![PlanOp::CopyOut {
            offset: 6,
            src: Src {
                segs: vec![SrcSeg::SendBuf { offset: 0, len: 4 }],
            },
        }];
        assert!(matches!(
            plan.validate().unwrap_err(),
            PlanError::OutOfBoundsOutput { .. }
        ));
    }

    #[test]
    fn validate_rejects_oversized_sendbuf_range() {
        let topo = Topology::new(1, 2);
        let mut plan = leaf_plan(0, topo);
        plan.ops = vec![PlanOp::Send {
            dest: 1,
            tag: 0,
            src: Src {
                segs: vec![SrcSeg::SendBuf { offset: 2, len: 4 }],
            },
        }];
        assert!(matches!(
            plan.validate().unwrap_err(),
            PlanError::SrcOutOfBounds { .. }
        ));
    }

    #[test]
    fn plan_validate_rejects_unmatched_messages() {
        let topo = Topology::new(1, 2);
        let mut a = leaf_plan(0, topo);
        a.ops = vec![PlanOp::Send {
            dest: 1,
            tag: 0,
            src: Src {
                segs: vec![SrcSeg::SendBuf { offset: 0, len: 4 }],
            },
        }];
        let b = leaf_plan(1, topo);
        let plan = Plan {
            topology: topo,
            ranks: vec![a, b],
        };
        assert!(matches!(
            plan.validate().unwrap_err(),
            PlanError::InvalidSchedule(_)
        ));
    }

    #[test]
    fn plan_validate_rejects_region_overflow() {
        let topo = Topology::new(1, 2);
        let mut a = leaf_plan(0, topo);
        a.ops = vec![PlanOp::SharedAlloc { name: 0, len: 4 }];
        let mut b = leaf_plan(1, topo);
        b.ops = vec![PlanOp::SharedWrite {
            owner_local: 0,
            name: 0,
            offset: 2,
            src: Src {
                segs: vec![SrcSeg::SendBuf { offset: 0, len: 4 }],
            },
        }];
        let plan = Plan {
            topology: topo,
            ranks: vec![a, b],
        };
        assert!(matches!(
            plan.validate().unwrap_err(),
            PlanError::BadRegionAccess { rank: 1, .. }
        ));
    }

    #[test]
    fn lowering_rebases_tags_and_skips_data_ops() {
        let topo = Topology::new(1, 2);
        let mut a = leaf_plan(0, topo);
        a.val_lens = vec![4, 4];
        a.io.needs_reduce_op = true;
        a.ops = vec![
            PlanOp::Recv {
                source: 1,
                tag: 3,
                len: 4,
                dst: 0,
            },
            PlanOp::Reduce {
                dst: 1,
                acc: Src {
                    segs: vec![SrcSeg::SendBuf { offset: 0, len: 4 }],
                },
                other: Src {
                    segs: vec![SrcSeg::Val {
                        id: 0,
                        offset: 0,
                        len: 4,
                    }],
                },
            },
            PlanOp::ChargeReduce { bytes: 4 },
            PlanOp::CopyOut {
                offset: 0,
                src: Src {
                    segs: vec![SrcSeg::Val {
                        id: 1,
                        offset: 0,
                        len: 4,
                    }],
                },
            },
        ];
        let ops = a.to_trace_ops(100);
        assert_eq!(ops.len(), 2);
        assert!(matches!(
            ops[0],
            TraceOp::Recv {
                source: 1,
                bytes: 4,
                tag: 103
            }
        ));
        assert!(matches!(ops[1], TraceOp::Reduce { bytes: 4 }));
    }
}
