//! Plan-level symmetry: equivalence classes of ranks in a compiled plan.
//!
//! [`crate::plan::ir::Plan`] lowers to a `pip-netsim` trace, and the trace
//! layer already detects node symmetry ([`pip_netsim::FoldedTrace`]).  Doing
//! the analysis *before* lowering has two advantages:
//!
//! * Symmetry can be established — and, for probing callers, *sampled* —
//!   per compiled rank without materializing the world's trace, and a
//!   stronger whole-program comparison is available when a caller wants to
//!   share one compiled program between ranks.
//! * The classes let a caller compile one representative per class instead
//!   of the whole world.  `pip-mpi-model`'s folded compilation path uses
//!   exactly this to reach 10^5–10^6-rank projections without an O(world)
//!   compile.
//!
//! The candidate groups mirror the trace layer: node **rotation**
//! `(n, l) → ((n + d) mod N, l)` for ring-structured schedules and node
//! **XOR** `(n, l) → (n ⊕ d, l)` for recursive-doubling schedules.  Both
//! fix local ranks, so when a group closes the classes are "same local
//! rank, any node".
//!
//! Two comparison strengths are exposed, because a plan op carries fields a
//! trace op does not:
//!
//! * [`schedules_equal_under`] compares the **schedule projection** — the
//!   trace-relevant content of each op, with peers relabeled.  Data-op
//!   details that never reach the simulator (`CopyOut` offsets, value
//!   identities, payload provenance) are ignored; an allgather whose ranks
//!   write their blocks at rank-dependent output offsets still folds.
//!   This is the notion [`PlanSymmetry::analyze`] and [`folded_trace`] use.
//! * [`ranks_equal_under`] compares the **whole program** under the
//!   relabeling, data ops included — the strictly stronger statement a
//!   caller needs to share a compiled plan between ranks.
//!
//! When neither group closes, [`PlanSymmetry::analyze`] falls back to
//! partitioning ranks by *identical programs* — no relabeling, so peers
//! must literally match, which only same-program no-communication ranks
//! satisfy across nodes — but the partition is still exact.

use pip_netsim::trace::TraceOp;
use pip_netsim::{FoldGroup, FoldedTrace};
use pip_runtime::Topology;
use pip_transport::cost::IntranodeMechanism;

use super::ir::{Plan, PlanOp, RankPlan};

/// The node-symmetry structure of a compiled [`Plan`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSymmetry {
    group: Option<FoldGroup>,
    classes: Vec<Vec<usize>>,
}

impl PlanSymmetry {
    /// Partition `plan`'s ranks into equivalence classes.
    ///
    /// Tries the rotation generator first (one generator proves closure of
    /// the cyclic group), then every XOR bit mask for power-of-two node
    /// counts.  Verification is exact at the schedule projection — every
    /// trace-relevant op of every rank is compared against its image under
    /// the relabeling ([`schedules_equal_under`]) — and costs O(total ops)
    /// per generator.  When no group closes, ranks with bytewise-identical
    /// programs share a class.
    pub fn analyze(plan: &Plan) -> PlanSymmetry {
        let topology = plan.topology;
        let nodes = topology.nodes();
        if nodes >= 2 && plan.ranks.len() == topology.world_size() {
            let group = if generator_closes(plan, FoldGroup::Rotation, 1) {
                Some(FoldGroup::Rotation)
            } else if nodes.is_power_of_two()
                && (0..nodes.trailing_zeros())
                    .all(|bit| generator_closes(plan, FoldGroup::Xor, 1 << bit))
            {
                Some(FoldGroup::Xor)
            } else {
                None
            };
            if group.is_some() {
                // The group acts transitively on nodes and fixes local
                // ranks: class `l` is rank `(m, l)` of every node.
                let classes = (0..topology.ppn())
                    .map(|l| (0..nodes).map(|m| topology.rank_of(m, l)).collect())
                    .collect();
                return PlanSymmetry { group, classes };
            }
        }
        PlanSymmetry {
            group: None,
            classes: identical_program_classes(plan),
        }
    }

    /// The group the plan closed under, if any.
    pub fn group(&self) -> Option<FoldGroup> {
        self.group
    }

    /// The rank equivalence classes, each sorted ascending; their union is
    /// the whole world.
    pub fn classes(&self) -> &[Vec<usize>] {
        &self.classes
    }

    /// Number of equivalence classes (the number of distinct programs a
    /// folded replay must process).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Whether a transitive node group closed — i.e. whether the plan can
    /// be replayed folded with one representative per local rank.
    pub fn folds(&self) -> bool {
        self.group.is_some()
    }

    /// Fraction of ranks a folded replay simulates (1.0 when nothing
    /// folds and every class is a singleton).
    pub fn replay_fraction(&self) -> f64 {
        let world: usize = self.classes.iter().map(|c| c.len()).sum();
        if world == 0 {
            1.0
        } else {
            self.classes.len() as f64 / world as f64
        }
    }
}

/// Lower `plan` to a symmetry-folded trace, materializing only node 0's
/// programs.  Returns `None` when no node group closes (rooted collectives,
/// single-node topologies) — the caller should lower with
/// [`Plan::to_trace`] and replay in full.
///
/// The folded trace is built with [`FoldedTrace::from_representatives`]
/// rather than trace-level detection, so only `ppn` programs are lowered —
/// the other `world - ppn` never exist as trace ops at all.
pub fn folded_trace(plan: &Plan, tag: u64) -> Option<FoldedTrace> {
    let symmetry = PlanSymmetry::analyze(plan);
    let group = symmetry.group()?;
    let reps = plan.ranks[..plan.topology.ppn()]
        .iter()
        .map(|rank_plan| rank_plan.to_trace_ops(tag).into())
        .collect();
    // Plan-level closure implies the structural invariants the constructor
    // re-checks (peer ranges, uniform barrier counts), so this cannot fail
    // on an analyzed plan.
    FoldedTrace::from_representatives(plan.topology, group, reps).ok()
}

/// Compare two rank programs' *schedule projections* under the group
/// element carrying nodes by `delta`: each op is reduced to the trace op it
/// lowers to (data ops vanish, exactly as in `RankPlan::to_trace_ops`) and
/// compared with `base`'s global-rank peers relabeled.  Exposed so
/// `pip-mpi-model` can verify a claimed symmetry by probing a few compiled
/// ranks instead of the world.
pub fn schedules_equal_under(
    topology: Topology,
    group: FoldGroup,
    delta: usize,
    base: &RankPlan,
    image: &RankPlan,
) -> bool {
    let relabeled = base
        .ops
        .iter()
        .flat_map(schedule_atoms)
        .map(|op| relabel_atom(op, group, topology, delta));
    relabeled.eq(image.ops.iter().flat_map(schedule_atoms))
}

/// The trace ops a plan op lowers to (zero, one, or — for the fused
/// compressed transfers — two), with tags left at their recorded offsets
/// (rebasing shifts all ranks alike, so equality is unaffected).  Must
/// mirror `RankPlan::to_trace_ops` — pinned by a test below.
fn schedule_atoms(op: &PlanOp) -> Vec<TraceOp> {
    match op {
        PlanOp::Send { dest, tag, src } => vec![TraceOp::Send {
            dest: *dest,
            bytes: src.len(),
            tag: *tag,
        }],
        PlanOp::Recv {
            source, tag, len, ..
        } => vec![TraceOp::Recv {
            source: *source,
            bytes: *len,
            tag: *tag,
        }],
        PlanOp::Compress {
            dest,
            tag,
            src,
            wire_bytes,
            ..
        } => vec![
            TraceOp::Codec { bytes: src.len() },
            TraceOp::Send {
                dest: *dest,
                bytes: *wire_bytes,
                tag: *tag,
            },
        ],
        PlanOp::Decompress {
            source,
            tag,
            raw_len,
            wire_bytes,
            ..
        } => vec![
            TraceOp::Recv {
                source: *source,
                bytes: *wire_bytes,
                tag: *tag,
            },
            TraceOp::Codec { bytes: *raw_len },
        ],
        PlanOp::SendFromShared { len, dest, tag, .. } => vec![TraceOp::Send {
            dest: *dest,
            bytes: *len,
            tag: *tag,
        }],
        PlanOp::RecvIntoShared {
            source, tag, len, ..
        } => vec![TraceOp::Recv {
            source: *source,
            bytes: *len,
            tag: *tag,
        }],
        PlanOp::SharedWrite { src, .. } => vec![TraceOp::CopyIntra {
            bytes: src.len(),
            mechanism: None,
            first_use: false,
        }],
        PlanOp::SharedRead { len, .. } => vec![TraceOp::CopyIntra {
            bytes: *len,
            mechanism: None,
            first_use: false,
        }],
        PlanOp::NodeBarrier => vec![TraceOp::LocalBarrier],
        PlanOp::ChargeCopy { bytes } => vec![TraceOp::CopyIntra {
            bytes: *bytes,
            mechanism: Some(IntranodeMechanism::Pip),
            first_use: false,
        }],
        PlanOp::ChargeReduce { bytes } => vec![TraceOp::Reduce { bytes: *bytes }],
        PlanOp::Delay { nanos } => vec![TraceOp::Delay { nanos: *nanos }],
        PlanOp::SharedAlloc { .. }
        | PlanOp::SharedPublish { .. }
        | PlanOp::SharedCollect { .. }
        | PlanOp::Reduce { .. }
        | PlanOp::CopyOut { .. } => Vec::new(),
    }
}

fn relabel_atom(op: TraceOp, group: FoldGroup, topology: Topology, delta: usize) -> TraceOp {
    match op {
        TraceOp::Send { dest, bytes, tag } => TraceOp::Send {
            dest: relabel_rank(dest, group, topology, delta),
            bytes,
            tag,
        },
        TraceOp::Recv { source, bytes, tag } => TraceOp::Recv {
            source: relabel_rank(source, group, topology, delta),
            bytes,
            tag,
        },
        other => other,
    }
}

/// Compare two whole rank programs under the group element carrying nodes
/// by `delta`: metadata must match verbatim, every op — data ops included —
/// must match with `base`'s global-rank peers relabeled.  Strictly stronger
/// than [`schedules_equal_under`]; what a caller needs to reuse one
/// compiled program for both ranks.
pub fn ranks_equal_under(
    topology: Topology,
    group: FoldGroup,
    delta: usize,
    base: &RankPlan,
    image: &RankPlan,
) -> bool {
    if base.fidelity != image.fidelity
        || base.io != image.io
        || base.names != image.names
        || base.val_lens != image.val_lens
        || base.ops.len() != image.ops.len()
    {
        return false;
    }
    base.ops
        .iter()
        .zip(image.ops.iter())
        .all(|(op, image_op)| ops_equal_under(topology, group, delta, op, image_op))
}

/// Per-op relabeled comparison.  Only four fields address peers by global
/// rank — `Send::dest`, `Recv::source`, `SendFromShared::dest`,
/// `RecvIntoShared::source`; `owner_local` fields are node-local and fixed
/// by both groups, and everything else (names, offsets, values, costs) must
/// be equal verbatim.
fn ops_equal_under(
    topology: Topology,
    group: FoldGroup,
    delta: usize,
    base: &PlanOp,
    image: &PlanOp,
) -> bool {
    let map = |rank: usize| relabel_rank(rank, group, topology, delta);
    match (base, image) {
        (
            PlanOp::Send { dest, tag, src },
            PlanOp::Send {
                dest: i_dest,
                tag: i_tag,
                src: i_src,
            },
        ) => map(*dest) == *i_dest && tag == i_tag && src == i_src,
        (
            PlanOp::Recv {
                source,
                tag,
                len,
                dst,
            },
            PlanOp::Recv {
                source: i_source,
                tag: i_tag,
                len: i_len,
                dst: i_dst,
            },
        ) => map(*source) == *i_source && tag == i_tag && len == i_len && dst == i_dst,
        (
            PlanOp::SendFromShared {
                owner_local,
                name,
                offset,
                len,
                dest,
                tag,
            },
            PlanOp::SendFromShared {
                owner_local: i_owner,
                name: i_name,
                offset: i_offset,
                len: i_len,
                dest: i_dest,
                tag: i_tag,
            },
        ) => {
            owner_local == i_owner
                && name == i_name
                && offset == i_offset
                && len == i_len
                && map(*dest) == *i_dest
                && tag == i_tag
        }
        (
            PlanOp::RecvIntoShared {
                owner_local,
                name,
                offset,
                source,
                tag,
                len,
            },
            PlanOp::RecvIntoShared {
                owner_local: i_owner,
                name: i_name,
                offset: i_offset,
                source: i_source,
                tag: i_tag,
                len: i_len,
            },
        ) => {
            owner_local == i_owner
                && name == i_name
                && offset == i_offset
                && map(*source) == *i_source
                && tag == i_tag
                && len == i_len
        }
        _ => base == image,
    }
}

fn relabel_rank(rank: usize, group: FoldGroup, topology: Topology, delta: usize) -> usize {
    let node = topology.node_of(rank);
    let local = topology.local_rank_of(rank);
    let mapped = match group {
        FoldGroup::Rotation => (node + delta) % topology.nodes(),
        FoldGroup::Xor => node ^ delta,
    };
    topology.rank_of(mapped, local)
}

/// Check that relabeling every rank's schedule by `delta` reproduces the
/// mapped rank's schedule exactly.
fn generator_closes(plan: &Plan, group: FoldGroup, delta: usize) -> bool {
    let topology = plan.topology;
    plan.ranks.iter().enumerate().all(|(rank, rank_plan)| {
        let image = relabel_rank(rank, group, topology, delta);
        schedules_equal_under(topology, group, delta, rank_plan, &plan.ranks[image])
    })
}

/// Fallback partition: ranks with identical programs (metadata and ops,
/// ignoring the `rank` field itself) share a class.
fn identical_program_classes(plan: &Plan) -> Vec<Vec<usize>> {
    let mut classes: Vec<Vec<usize>> = Vec::new();
    let mut reps: Vec<&RankPlan> = Vec::new();
    for (rank, rank_plan) in plan.ranks.iter().enumerate() {
        let found = reps.iter().position(|rep| {
            rep.fidelity == rank_plan.fidelity
                && rep.io == rank_plan.io
                && rep.names == rank_plan.names
                && rep.val_lens == rank_plan.val_lens
                && rep.ops == rank_plan.ops
        });
        match found {
            Some(class) => classes[class].push(rank),
            None => {
                reps.push(rank_plan);
                classes.push(vec![rank]);
            }
        }
    }
    classes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ir::{Fidelity, IoShape};

    /// A hand-built node ring at fixed local rank: rotation-symmetric.
    fn ring_plan(nodes: usize, ppn: usize, bytes: usize) -> Plan {
        let topology = Topology::new(nodes, ppn);
        let ranks = (0..topology.world_size())
            .map(|rank| {
                let node = topology.node_of(rank);
                let local = topology.local_rank_of(rank);
                let next = topology.rank_of((node + 1) % nodes, local);
                let prev = topology.rank_of((node + nodes - 1) % nodes, local);
                RankPlan {
                    rank,
                    topology,
                    fidelity: Fidelity::Schedule,
                    io: IoShape::default(),
                    names: Vec::new(),
                    val_lens: vec![bytes],
                    ops: vec![
                        PlanOp::Send {
                            dest: next,
                            tag: 0,
                            src: crate::plan::ir::Src::opaque(bytes),
                        },
                        PlanOp::Recv {
                            source: prev,
                            tag: 0,
                            len: bytes,
                            dst: 0,
                        },
                    ],
                }
            })
            .collect();
        Plan { topology, ranks }
    }

    /// Recursive doubling over nodes: XOR-symmetric, not rotation-symmetric
    /// for nodes > 2.
    fn doubling_plan(nodes: usize, ppn: usize) -> Plan {
        assert!(nodes.is_power_of_two());
        let topology = Topology::new(nodes, ppn);
        let ranks = (0..topology.world_size())
            .map(|rank| {
                let node = topology.node_of(rank);
                let local = topology.local_rank_of(rank);
                let mut ops = Vec::new();
                let mut val_lens = Vec::new();
                let mut mask = 1usize;
                while mask < nodes {
                    let peer = topology.rank_of(node ^ mask, local);
                    ops.push(PlanOp::Send {
                        dest: peer,
                        tag: mask as u64,
                        src: crate::plan::ir::Src::opaque(16),
                    });
                    ops.push(PlanOp::Recv {
                        source: peer,
                        tag: mask as u64,
                        len: 16,
                        dst: val_lens.len() as u32,
                    });
                    val_lens.push(16);
                    mask <<= 1;
                }
                RankPlan {
                    rank,
                    topology,
                    fidelity: Fidelity::Schedule,
                    io: IoShape::default(),
                    names: Vec::new(),
                    val_lens,
                    ops,
                }
            })
            .collect();
        Plan { topology, ranks }
    }

    /// Everyone sends to rank 0: rooted, no node group closes.
    fn rooted_plan(nodes: usize, ppn: usize) -> Plan {
        let topology = Topology::new(nodes, ppn);
        let ranks = (0..topology.world_size())
            .map(|rank| {
                let (ops, val_lens) = if rank == 0 {
                    let ops = (1..topology.world_size())
                        .map(|peer| PlanOp::Recv {
                            source: peer,
                            tag: peer as u64,
                            len: 8,
                            dst: (peer - 1) as u32,
                        })
                        .collect();
                    (ops, vec![8; topology.world_size() - 1])
                } else {
                    (
                        vec![PlanOp::Send {
                            dest: 0,
                            tag: rank as u64,
                            src: crate::plan::ir::Src::opaque(8),
                        }],
                        Vec::new(),
                    )
                };
                RankPlan {
                    rank,
                    topology,
                    fidelity: Fidelity::Schedule,
                    io: IoShape::default(),
                    names: Vec::new(),
                    val_lens,
                    ops,
                }
            })
            .collect();
        Plan { topology, ranks }
    }

    #[test]
    fn ring_plan_closes_under_rotation() {
        let symmetry = PlanSymmetry::analyze(&ring_plan(5, 3, 64));
        assert_eq!(symmetry.group(), Some(FoldGroup::Rotation));
        assert_eq!(symmetry.class_count(), 3);
        assert_eq!(symmetry.classes()[1], vec![1, 4, 7, 10, 13]);
        assert!((symmetry.replay_fraction() - 1.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn doubling_plan_closes_under_xor() {
        let symmetry = PlanSymmetry::analyze(&doubling_plan(8, 2));
        assert_eq!(symmetry.group(), Some(FoldGroup::Xor));
        assert_eq!(symmetry.class_count(), 2);
    }

    #[test]
    fn rooted_plan_falls_back_to_identical_program_classes() {
        let symmetry = PlanSymmetry::analyze(&rooted_plan(3, 2));
        assert_eq!(symmetry.group(), None);
        assert!(!symmetry.folds());
        // Rank 0 is alone; every sender has a distinct dest tag... the tags
        // differ per rank, so all classes are singletons here.
        assert_eq!(symmetry.class_count(), 6);
        assert!((symmetry.replay_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_programs_share_a_fallback_class() {
        // Single-node plans never fold, but ranks running the same local
        // program still collapse into one class.
        let topology = Topology::new(1, 4);
        let ranks = (0..4)
            .map(|rank| RankPlan {
                rank,
                topology,
                fidelity: Fidelity::Schedule,
                io: IoShape::default(),
                names: Vec::new(),
                val_lens: Vec::new(),
                ops: vec![PlanOp::NodeBarrier, PlanOp::ChargeCopy { bytes: 256 }],
            })
            .collect();
        let symmetry = PlanSymmetry::analyze(&Plan { topology, ranks });
        assert_eq!(symmetry.group(), None);
        assert_eq!(symmetry.class_count(), 1);
        assert_eq!(symmetry.classes()[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn folded_trace_matches_full_lowering() {
        for plan in [ring_plan(6, 2, 512), doubling_plan(4, 3)] {
            let folded = folded_trace(&plan, 7).expect("symmetric plan should fold");
            assert_eq!(folded.expand(), plan.to_trace(7));
        }
    }

    #[test]
    fn folded_trace_is_none_for_rooted_plans() {
        assert!(folded_trace(&rooted_plan(3, 2), 0).is_none());
    }

    #[test]
    fn probe_comparison_matches_relabeled_ranks() {
        let plan = ring_plan(5, 2, 32);
        let topology = plan.topology;
        // Node 0 local 1 relabeled by delta 3 should equal node 3 local 1,
        // at both comparison strengths (this plan has no data ops that
        // vary by rank).
        for check in [ranks_equal_under, schedules_equal_under] {
            assert!(check(
                topology,
                FoldGroup::Rotation,
                3,
                &plan.ranks[1],
                &plan.ranks[topology.rank_of(3, 1)],
            ));
            // ... and must not equal a different local rank's program.
            assert!(!check(
                topology,
                FoldGroup::Rotation,
                3,
                &plan.ranks[0],
                &plan.ranks[topology.rank_of(3, 1)],
            ));
        }
    }

    #[test]
    fn rank_dependent_data_ops_fold_at_schedule_strength_only() {
        // An allgather-like plan: the communication schedule is a node
        // ring, but each rank writes its output at a rank-dependent offset.
        let mut plan = ring_plan(4, 2, 16);
        for (rank, rank_plan) in plan.ranks.iter_mut().enumerate() {
            rank_plan.io.recvbuf = Some(8 * 16);
            rank_plan.ops.push(PlanOp::CopyOut {
                offset: rank * 16,
                src: crate::plan::ir::Src::opaque(16),
            });
        }
        let topology = plan.topology;
        let image = topology.rank_of(1, 0);
        assert!(!ranks_equal_under(
            topology,
            FoldGroup::Rotation,
            1,
            &plan.ranks[0],
            &plan.ranks[image],
        ));
        assert!(schedules_equal_under(
            topology,
            FoldGroup::Rotation,
            1,
            &plan.ranks[0],
            &plan.ranks[image],
        ));
        let symmetry = PlanSymmetry::analyze(&plan);
        assert_eq!(symmetry.group(), Some(FoldGroup::Rotation));
        let folded = folded_trace(&plan, 0).expect("schedule symmetry folds");
        assert_eq!(folded.expand(), plan.to_trace(0));
    }

    #[test]
    fn schedule_atoms_mirror_to_trace_ops() {
        // `schedule_atoms` must stay in lockstep with `to_trace_ops`: same
        // ops, same order, tags shifted by exactly the rebase.
        let plan = ring_plan(3, 2, 64);
        for rank_plan in &plan.ranks {
            let atoms: Vec<TraceOp> = rank_plan.ops.iter().flat_map(schedule_atoms).collect();
            assert_eq!(atoms, rank_plan.to_trace_ops(0));
        }
    }
}
