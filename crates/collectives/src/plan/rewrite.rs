//! The compression rewrite pass: turn a compiled plan's large plain
//! transfers into fused [`PlanOp::Compress`] / [`PlanOp::Decompress`] pairs.
//!
//! The pass runs *after* assembly, so the collective algorithms stay
//! unmodified — ring, recursive doubling and the hierarchical schedules all
//! pick up compression for free.  Only plain [`PlanOp::Send`] /
//! [`PlanOp::Recv`] ops are rewritten; the zero-copy shared-region
//! transfers ([`PlanOp::SendFromShared`] / [`PlanOp::RecvIntoShared`])
//! stay exact, as do messages below the policy's wire threshold, messages
//! whose length is not a whole number of elements, and **node-local**
//! transfers — compression trades codec compute for wire bytes, and a
//! shared-memory copy has no wire to save, so only traffic that crosses a
//! node boundary is rewritten.
//!
//! **Symmetry.** Each rank's plan is rewritten independently, so the
//! predicate deciding whether a transfer is compressed must agree on both
//! endpoints.  It depends only on the message *length* (plus the codec,
//! which is part of the cache key and therefore identical cluster-wide)
//! and on whether the endpoints sit on different nodes — a property both
//! ends compute identically from the shared topology.  Plan validation
//! guarantees matched sends and receives carry equal lengths — so a send
//! is rewritten exactly when its matching receive is, and both stamp the
//! same calibrated `wire_bytes`.

use crate::compress::{calibrated_wire_bytes, Codec};
use crate::plan::ir::{PlanOp, RankPlan};

/// Whether a transfer of `len` bytes is compressed under `codec` with the
/// given wire threshold.  Pure in the length so both endpoints agree.
fn eligible(len: usize, codec: Codec, min_wire_bytes: usize) -> bool {
    codec.bound > 0.0 && len >= min_wire_bytes && len > 0 && len.is_multiple_of(codec.elem.size())
}

/// Rewrite `plan`'s eligible plain inter-node transfers into compressed
/// ones.  Returns how many ops were rewritten.
pub fn compress_rank_transfers(plan: &mut RankPlan, codec: Codec, min_wire_bytes: usize) -> usize {
    let mut rewritten = 0;
    let topology = plan.topology;
    let node = topology.node_of(plan.rank);
    let internode = |peer: usize| topology.node_of(peer) != node;
    for op in &mut plan.ops {
        match op {
            PlanOp::Send { dest, tag, src }
                if internode(*dest) && eligible(src.len(), codec, min_wire_bytes) =>
            {
                let wire_bytes = calibrated_wire_bytes(src.len(), codec);
                *op = PlanOp::Compress {
                    dest: *dest,
                    tag: *tag,
                    src: std::mem::take(src),
                    codec,
                    wire_bytes,
                };
                rewritten += 1;
            }
            PlanOp::Recv {
                source,
                tag,
                len,
                dst,
            } if internode(*source) && eligible(*len, codec, min_wire_bytes) => {
                *op = PlanOp::Decompress {
                    source: *source,
                    tag: *tag,
                    raw_len: *len,
                    dst: *dst,
                    codec,
                    wire_bytes: calibrated_wire_bytes(*len, codec),
                };
                rewritten += 1;
            }
            _ => {}
        }
    }
    rewritten
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::FloatElem;
    use crate::plan::ir::{Fidelity, IoShape, Plan, Src, SrcSeg};
    use pip_netsim::trace::TraceOp;
    use pip_runtime::Topology;

    fn codec() -> Codec {
        Codec {
            elem: FloatElem::F64,
            bound: 1e-3,
        }
    }

    fn exchange_plan() -> Plan {
        exchange_plan_on(Topology::new(2, 1))
    }

    fn exchange_plan_on(topo: Topology) -> Plan {
        let big = 1024usize;
        let small = 16usize;
        let mk = |rank: usize, peer: usize| RankPlan {
            rank,
            topology: topo,
            fidelity: Fidelity::Exec,
            io: IoShape {
                sendbuf: Some(big + small),
                recvbuf: Some(big + small),
                ..IoShape::default()
            },
            names: Vec::new(),
            val_lens: vec![big, small],
            ops: vec![
                PlanOp::Send {
                    dest: peer,
                    tag: 0,
                    src: Src {
                        segs: vec![SrcSeg::SendBuf {
                            offset: 0,
                            len: big,
                        }],
                    },
                },
                PlanOp::Recv {
                    source: peer,
                    tag: 0,
                    len: big,
                    dst: 0,
                },
                PlanOp::Send {
                    dest: peer,
                    tag: 1,
                    src: Src {
                        segs: vec![SrcSeg::SendBuf {
                            offset: big,
                            len: small,
                        }],
                    },
                },
                PlanOp::Recv {
                    source: peer,
                    tag: 1,
                    len: small,
                    dst: 1,
                },
            ],
        };
        Plan {
            topology: topo,
            ranks: vec![mk(0, 1), mk(1, 0)],
        }
    }

    #[test]
    fn rewrites_only_transfers_above_the_threshold() {
        let mut plan = exchange_plan();
        for rank in &mut plan.ranks {
            assert_eq!(compress_rank_transfers(rank, codec(), 512), 2);
        }
        plan.validate().unwrap();
        let rank0 = &plan.ranks[0].ops;
        assert!(matches!(rank0[0], PlanOp::Compress { .. }));
        assert!(matches!(rank0[1], PlanOp::Decompress { .. }));
        assert!(matches!(rank0[2], PlanOp::Send { .. }), "small send exact");
        assert!(matches!(rank0[3], PlanOp::Recv { .. }), "small recv exact");
    }

    #[test]
    fn lowered_trace_prices_the_calibrated_wire_size_on_both_ends() {
        let mut plan = exchange_plan();
        for rank in &mut plan.ranks {
            compress_rank_transfers(rank, codec(), 512);
        }
        let wire = calibrated_wire_bytes(1024, codec());
        assert!(wire < 1024, "calibration stream must compress");
        let trace = plan.to_trace(0);
        trace.validate().unwrap();
        let sent: Vec<usize> = trace.ranks[0]
            .ops
            .iter()
            .filter_map(|op| match op {
                TraceOp::Send { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect();
        assert_eq!(sent, vec![wire, 16]);
    }

    #[test]
    fn node_local_transfers_stay_exact() {
        // Same exchange, but both ranks share one node: a shared-memory
        // copy has no wire to save, so nothing rewrites.
        let mut plan = exchange_plan_on(Topology::new(1, 2));
        for rank in &mut plan.ranks {
            assert_eq!(compress_rank_transfers(rank, codec(), 0), 0);
        }
        plan.validate().unwrap();
        assert!(plan.ranks[0]
            .ops
            .iter()
            .all(|op| matches!(op, PlanOp::Send { .. } | PlanOp::Recv { .. })));
    }

    #[test]
    fn zero_bound_rewrites_nothing() {
        let mut plan = exchange_plan();
        let exact = Codec {
            elem: FloatElem::F64,
            bound: 0.0,
        };
        for rank in &mut plan.ranks {
            assert_eq!(compress_rank_transfers(rank, exact, 0), 0);
        }
    }

    #[test]
    fn misaligned_lengths_stay_exact() {
        let mut plan = exchange_plan();
        // f64 codec, but pretend the big transfer were 1023 bytes: simulate
        // by using a codec whose element width does not divide the length.
        let wide = Codec {
            elem: FloatElem::F64,
            bound: 1e-3,
        };
        // 16-byte small message is a multiple of 8, so with threshold 0 all
        // four ops rewrite; with a non-dividing width nothing would.  Here we
        // check the alignment guard directly.
        assert!(eligible(1024, wide, 512));
        assert!(!eligible(1023, wide, 512));
        assert!(!eligible(0, wide, 0));
        for rank in &mut plan.ranks {
            assert_eq!(compress_rank_transfers(rank, wide, 0), 4);
        }
        plan.validate().unwrap();
    }
}
